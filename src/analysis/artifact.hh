#ifndef DIABLO_ANALYSIS_ARTIFACT_HH_
#define DIABLO_ANALYSIS_ARTIFACT_HH_

/**
 * @file
 * Machine-readable run artifacts.
 *
 * A RunArtifact is the structured twin of everything the experiment
 * drivers print: workload identity, engine selection, app-level results
 * (goodput, request counts, latency digests incl. per hop class),
 * network/TCP/fault pathology counters, per-partition engine and
 * packet-pool ledgers, the memory-diet report, and the full resolved
 * configuration.  `diablo_run --json <path>` writes one per run;
 * `diablo_sweep` collects them into a run directory and merges them
 * into a comparison report.  The schema is versioned (`schema`) so
 * downstream readers (bench_guard.py, notebooks) can evolve safely.
 *
 * Determinism: fingerprint() chains the latency-digest fingerprints
 * with every event-driven counter, in a fixed field order, using the
 * same order-sensitive mix the seq≡par engine tests use.  Two runs of
 * the same scenario on the sequential and parallel engines — or with
 * the telemetry probe on and off — must produce equal fingerprints;
 * wall-clock-dependent counters (pool recycle/heap split, high water)
 * and engine-internal event counts are deliberately excluded, and are
 * reported but never folded.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/stats.hh"

namespace diablo {
namespace analysis {

/** Fixed percentile summary of a LatencyStat, safe for both modes. */
struct LatencyDigest {
    uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    bool sketched = false;
    double relative_error = 0.0; ///< sketch quantization bound; 0 raw
    uint64_t fingerprint = 0;

    static LatencyDigest of(const LatencyStat &s);
    /** Raw-sample digest (insertion-order fingerprint over the bits). */
    static LatencyDigest of(const SampleSet &s);
};

/** Everything one experiment run reports, JSON-serializable. */
struct RunArtifact {
    /** Bump when a field is renamed/removed; additions are free. */
    static constexpr int kSchemaVersion = 1;

    std::string workload; ///< "memcached" | "incast"
    /**
     * "ok" for a run that completed, "interrupted" for a partial
     * artifact finalized from a SIGINT/SIGTERM handler or a watchdog
     * trip.  Interrupted artifacts carry results-so-far and a
     * fingerprint-so-far; they are real JSON (the writer path is the
     * same) but validate() rejects them, so resumable sweeps re-run
     * those grid points.  Never folded into the fingerprint: a clean
     * run's digest is unchanged by the existence of this field.
     */
    std::string status = "ok";
    /** Why an interrupted run stopped ("SIGTERM", "watchdog-stall"). */
    std::string interrupt_cause;
    std::string engine; ///< "single" | "seq" | "par"
    uint64_t threads_requested = 0;
    uint64_t partitions = 1;
    uint64_t workers = 1;
    /** Online CPUs the engine saw (0 = not recorded). */
    uint64_t cores = 0;
    /** True when the run fused more workers than the host has CPUs. */
    bool oversubscribed = false;
    /**
     * Worker -> cpu pinning map of the last parallel run (-1 =
     * unpinned); empty single-engine.  Reported, never fingerprinted:
     * placement must not affect results.
     */
    std::vector<int> worker_cpus;

    uint32_t nodes = 0;
    double elapsed_us = 0.0; ///< measured phase, simulated time
    double goodput_mbps = 0.0;
    uint64_t requests_completed = 0;

    /** Named latency digests ("latency_us", "latency_us.local", ...). */
    std::vector<std::pair<std::string, LatencyDigest>> latencies;

    /**
     * Named counter groups ("network", "tcp", "faults", ...).  Groups
     * carrying only event-driven counters fold into the fingerprint;
     * set `deterministic = false` on groups whose values depend on
     * wall-clock scheduling (they are reported but never folded).
     */
    struct CounterGroup {
        std::string name;
        bool deterministic = true;
        std::vector<std::pair<std::string, uint64_t>> counters;
    };
    std::vector<CounterGroup> groups;

    /** Engine + pool ledger per partition (one row single-engine). */
    struct PartitionRow {
        uint64_t events = 0; ///< executed events (engine-internal)
        uint64_t pool_makes = 0;
        uint64_t pool_recycles = 0;
        uint64_t pool_heap_allocs = 0;
        uint64_t pool_returns = 0;
        uint64_t pool_high_water = 0;
    };
    std::vector<PartitionRow> partition_rows;
    uint64_t executed_events = 0; ///< total, engine-internal
    uint64_t quanta = 0;          ///< 0 single-engine

    /** --mem-report ledger; emitted when has_mem is set. */
    bool has_mem = false;
    double peak_rss_mb = 0.0;
    uint64_t materialized_nodes = 0;
    bool lazy_servers = false;
    uint64_t arena_bytes_used = 0;
    uint64_t arena_bytes_reserved = 0;

    /** Telemetry stream metadata (when telemetry.period was set). */
    std::string telemetry_path;
    double telemetry_period_us = 0.0;
    uint64_t telemetry_samples = 0;

    /** Full resolved key=value configuration of the run. */
    Config config;

    /** Add a counter group in one call (keeps call sites compact). */
    CounterGroup &
    addGroup(std::string name, bool deterministic = true)
    {
        groups.push_back(CounterGroup{std::move(name), deterministic, {}});
        return groups.back();
    }

    /**
     * Order-sensitive chained digest over the deterministic fields;
     * see the file comment for what is included.
     */
    uint64_t fingerprint() const;

    /** Full JSON document (pretty-printed). */
    std::string toJson() const;

    /**
     * Write toJson() to @p path crash-consistently (temp file in the
     * target directory, fsync, rename; fatal on I/O error).  A file at
     * @p path is therefore always a whole document — truncated debris
     * can only exist under a .tmp name a crash left behind.
     */
    void writeJson(const std::string &path) const;

    /**
     * Is the file at @p path a complete artifact of a *finished* run?
     * Distinguishes the three things a run directory can contain at a
     * given artifact name: a complete "ok" artifact (valid — a resumed
     * sweep skips this grid point), an "interrupted" partial artifact
     * (invalid for resume, but status tells the caller why), and
     * debris (unparseable, wrong schema, or truncated — which atomic
     * writes make impossible for *our* writers, but a sweep directory
     * outlives any one process).
     */
    struct Validation {
        bool ok = false;      ///< complete artifact of a finished run
        std::string status;   ///< "ok"/"interrupted"/"" (unreadable)
        std::string fingerprint; ///< "0x..." hex string when present
        std::string error;    ///< human-readable reason when !ok
    };
    static Validation validate(const std::string &path);
};

} // namespace analysis
} // namespace diablo

#endif // DIABLO_ANALYSIS_ARTIFACT_HH_
