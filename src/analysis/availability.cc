#include "analysis/availability.hh"

#include "analysis/report.hh"
#include "core/log.hh"

namespace diablo {
namespace analysis {

namespace {

/** splitmix64 finalizer: the mixing step of the fingerprint fold. */
uint64_t
mix(uint64_t h, uint64_t v)
{
    uint64_t x = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

uint64_t
mixString(uint64_t h, const std::string &s)
{
    h = mix(h, s.size());
    for (char c : s) {
        h = mix(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    }
    return h;
}

} // namespace

void
AvailabilityReport::definePhase(const std::string &name, SimTime begin,
                                SimTime end)
{
    if (end < begin) {
        fatal("AvailabilityReport: phase '%s' ends before it begins",
              name.c_str());
    }
    Phase p;
    p.name = name;
    p.begin = begin;
    p.end = end;
    phases_.push_back(std::move(p));
}

void
AvailabilityReport::recordDelivery(SimTime at, uint64_t bytes)
{
    total_bytes_ += bytes;
    ++total_deliveries_;
    for (Phase &p : phases_) {
        if (at >= p.begin && at < p.end) {
            p.bytes += bytes;
            ++p.deliveries;
        }
    }
}

void
AvailabilityReport::setCounter(const std::string &name, uint64_t value)
{
    for (NamedCounter &c : counters_) {
        if (c.name == name) {
            c.value = value;
            return;
        }
    }
    counters_.push_back(NamedCounter{name, value});
}

void
AvailabilityReport::attachLatencySketch(const std::string &name,
                                        const QuantileSketch &sketch)
{
    for (NamedSketch &s : sketches_) {
        if (s.name == name) {
            s.sketch = sketch;
            return;
        }
    }
    sketches_.push_back(NamedSketch{name, sketch});
}

double
AvailabilityReport::phaseGoodputMbps(size_t i) const
{
    const Phase &p = phases_[i];
    const double secs = (p.end - p.begin).toPs() / 1e12;
    if (secs <= 0) {
        return 0.0;
    }
    return static_cast<double>(p.bytes) * 8.0 / 1e6 / secs;
}

uint64_t
AvailabilityReport::counter(const std::string &name) const
{
    for (const NamedCounter &c : counters_) {
        if (c.name == name) {
            return c.value;
        }
    }
    return 0;
}

uint64_t
AvailabilityReport::fingerprint() const
{
    uint64_t h = 0x5D1AB10FA7157ULL;
    h = mix(h, phases_.size());
    for (const Phase &p : phases_) {
        h = mixString(h, p.name);
        h = mix(h, static_cast<uint64_t>(p.begin.toPs()));
        h = mix(h, static_cast<uint64_t>(p.end.toPs()));
        h = mix(h, p.bytes);
        h = mix(h, p.deliveries);
    }
    h = mix(h, counters_.size());
    for (const NamedCounter &c : counters_) {
        h = mixString(h, c.name);
        h = mix(h, c.value);
    }
    h = mix(h, sketches_.size());
    for (const NamedSketch &s : sketches_) {
        h = mixString(h, s.name);
        h = mix(h, s.sketch.fingerprint());
    }
    h = mix(h, total_bytes_);
    h = mix(h, total_deliveries_);
    return h;
}

std::string
AvailabilityReport::str() const
{
    Table t({"phase", "window_ms", "bytes", "deliveries", "goodput_mbps"});
    for (size_t i = 0; i < phases_.size(); ++i) {
        const Phase &p = phases_[i];
        t.addRow({p.name,
                  Table::cell("%.1f-%.1f", p.begin.toPs() / 1e9,
                              p.end.toPs() / 1e9),
                  Table::cell("%llu",
                              static_cast<unsigned long long>(p.bytes)),
                  Table::cell("%llu", static_cast<unsigned long long>(
                                          p.deliveries)),
                  Table::cell("%.2f", phaseGoodputMbps(i))});
    }
    std::string out = t.str();
    for (const NamedCounter &c : counters_) {
        out += strprintf("%-24s %llu\n", c.name.c_str(),
                         static_cast<unsigned long long>(c.value));
    }
    for (const NamedSketch &s : sketches_) {
        out += strprintf(
            "%-24s n=%llu p50=%.0f p99=%.0f p99.9=%.0f max=%.0f (us)\n",
            s.name.c_str(),
            static_cast<unsigned long long>(s.sketch.count()),
            s.sketch.percentile(50), s.sketch.percentile(99),
            s.sketch.percentile(99.9), s.sketch.max());
    }
    out += strprintf("fingerprint              %016llx\n",
                     static_cast<unsigned long long>(fingerprint()));
    return out;
}

} // namespace analysis
} // namespace diablo
