#ifndef DIABLO_ANALYSIS_AVAILABILITY_HH_
#define DIABLO_ANALYSIS_AVAILABILITY_HH_

/**
 * @file
 * Availability / graceful-degradation report for fault-injection runs.
 *
 * Fault experiments ask a time-phased question — what did the workload
 * deliver while healthy, during the outage, and after repair? — so the
 * report buckets application-level deliveries into named phases of the
 * simulated timeline and pairs the per-phase goodput with the fault
 * counters the run recorded (reroutes, link drops, TCP retransmits,
 * aborted vs. recovered flows).
 *
 * Everything in the report is derived from simulated time and integer
 * counters, so a report's fingerprint() is a deterministic function of
 * the run: sequential and sharded-parallel executions of the same
 * seeded scenario must produce equal fingerprints, which is exactly how
 * the fault tests assert bit-identity.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.hh"
#include "core/time.hh"

namespace diablo {
namespace analysis {

/** Phased goodput + fault-counter summary of one faulted run. */
class AvailabilityReport {
  public:
    /**
     * Add a phase covering simulated [begin, end).  Phases may not
     * overlap if per-phase goodput is to partition deliveries, but the
     * report does not enforce that — tests sometimes want nested
     * windows.
     */
    void definePhase(const std::string &name, SimTime begin, SimTime end);

    /** Record @p bytes of application-level delivery at time @p at. */
    void recordDelivery(SimTime at, uint64_t bytes);

    /** Attach a named scalar counter (reroutes, retransmits, ...). */
    void setCounter(const std::string &name, uint64_t value);

    /**
     * Attach a named latency distribution as a fixed-memory quantile
     * sketch (copied).  The sketch's own deterministic fingerprint is
     * folded into this report's fingerprint(), so seq-vs-par identity
     * assertions cover the latency tail, not just scalar counters; the
     * phase table prints a percentile summary per attached sketch.
     */
    void attachLatencySketch(const std::string &name,
                             const QuantileSketch &sketch);

    size_t numPhases() const { return phases_.size(); }
    const std::string &phaseName(size_t i) const
    {
        return phases_[i].name;
    }

    /** Bytes delivered inside phase @p i's window. */
    uint64_t phaseBytes(size_t i) const { return phases_[i].bytes; }

    /** Application goodput over phase @p i's window, in Mbit/s. */
    double phaseGoodputMbps(size_t i) const;

    /** Value of counter @p name (0 when never set). */
    uint64_t counter(const std::string &name) const;

    /**
     * Deterministic digest of the whole report — phase definitions,
     * per-phase byte totals, delivery count, and every counter — for
     * asserting bit-identical sequential vs. parallel runs.
     */
    uint64_t fingerprint() const;

    /** Render the phase table and counters. */
    std::string str() const;

  private:
    struct Phase {
        std::string name;
        SimTime begin;
        SimTime end;
        uint64_t bytes = 0;
        uint64_t deliveries = 0;
    };

    struct NamedCounter {
        std::string name;
        uint64_t value = 0;
    };

    struct NamedSketch {
        std::string name;
        QuantileSketch sketch;
    };

    std::vector<Phase> phases_;
    std::vector<NamedCounter> counters_; ///< insertion-ordered
    std::vector<NamedSketch> sketches_;  ///< insertion-ordered
    uint64_t total_bytes_ = 0;
    uint64_t total_deliveries_ = 0;
};

} // namespace analysis
} // namespace diablo

#endif // DIABLO_ANALYSIS_AVAILABILITY_HH_
