#ifndef DIABLO_ANALYSIS_JSON_WRITER_HH_
#define DIABLO_ANALYSIS_JSON_WRITER_HH_

/**
 * @file
 * Minimal streaming JSON emitter for machine-readable run artifacts.
 *
 * The experiment tools (diablo_run --json, diablo_sweep, the telemetry
 * probe's JSONL stream) all emit JSON through this one writer so the
 * escaping, number formatting and nesting bookkeeping live in exactly
 * one place.  The writer is strictly streaming — values are formatted
 * into a growing string, nothing is buffered per node — which is what
 * lets the 32k-node artifact path stay allocation-light.
 *
 * Shape errors (closing an object that is not open, a bare value where
 * a key is required) are programming errors in the emitting tool and
 * fatal immediately, so a malformed artifact can never be written.
 */

#include <cstdint>
#include <string>

namespace diablo {
namespace analysis {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Crash-consistent file replacement: write @p content (plus a trailing
 * newline) to a temporary file *in the same directory* as @p path,
 * fsync it, then rename() it over @p path.  A reader therefore only
 * ever observes the old file, the new file, or (for a fresh path)
 * nothing — never a truncated document that looks complete.  The rename
 * is what makes `diablo_sweep --resume` sound: an artifact that exists
 * at its final name was written whole.  Fatal on any I/O failure, after
 * unlinking the temporary.
 */
void atomicWriteFile(const std::string &path, const std::string &content);

/**
 * Nesting-aware JSON builder.  Keys are only legal inside objects,
 * bare values only inside arrays (or as the single root value), and
 * str() is only legal once every container is closed.
 */
class JsonWriter {
  public:
    /** @p pretty adds newlines + two-space indentation. */
    explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Open a named child container (inside an object). */
    JsonWriter &beginObject(const std::string &key);
    JsonWriter &beginArray(const std::string &key);

    JsonWriter &field(const std::string &key, const std::string &v);
    JsonWriter &field(const std::string &key, const char *v);
    JsonWriter &field(const std::string &key, int64_t v);
    JsonWriter &field(const std::string &key, uint64_t v);
    JsonWriter &field(const std::string &key, int v);
    JsonWriter &field(const std::string &key, unsigned v);
    JsonWriter &field(const std::string &key, double v);
    JsonWriter &field(const std::string &key, bool v);
    /** Emit a uint64 as a fixed-width hex string ("0x%016llx"):
     *  fingerprints round-trip textually without 53-bit JSON-number
     *  precision loss. */
    JsonWriter &fieldHex(const std::string &key, uint64_t v);

    /** Array elements. */
    JsonWriter &value(const std::string &v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(double v);

    /** Finished document; fatal while a container is still open. */
    const std::string &str() const;

    /**
     * Write str() (plus a trailing newline) to @p path atomically (see
     * atomicWriteFile); fatal on I/O failure.
     */
    void writeFile(const std::string &path) const;

  private:
    enum class Ctx : uint8_t { Object, Array };

    void beforeValue(bool keyed);
    void key(const std::string &k);
    void indent();
    void open(Ctx c, char ch);
    void close(Ctx c, char ch);

    std::string out_;
    /** Open-container stack (small; depth is bounded by the schema). */
    std::string stack_;        ///< 'o' / 'a' per open container
    bool first_in_ctx_ = true; ///< no comma before the next value
    bool root_written_ = false;
    bool pretty_;
};

} // namespace analysis
} // namespace diablo

#endif // DIABLO_ANALYSIS_JSON_WRITER_HH_
