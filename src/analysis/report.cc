#include "analysis/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "core/log.hh"

namespace diablo {
namespace analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("Table: row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(const char *fmt, ...)
{
    char buf[128];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

std::string
Table::str() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string out;
        for (size_t c = 0; c < row.size(); ++c) {
            out += "| ";
            out += row[c];
            out.append(width[c] - row[c].size() + 1, ' ');
        }
        out += "|\n";
        return out;
    };
    std::string sep = "+";
    for (size_t c = 0; c < headers_.size(); ++c) {
        sep.append(width[c] + 2, '-');
        sep += "+";
    }
    sep += "\n";

    std::string out = sep + renderRow(headers_) + sep;
    for (const auto &row : rows_) {
        out += renderRow(row);
    }
    out += sep;
    return out;
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

void
printCdf(const std::string &label,
         const std::vector<SampleSet::CdfPoint> &cdf, size_t max_points)
{
    std::printf("CDF %s (%zu distinct points)\n", label.c_str(),
                cdf.size());
    if (cdf.empty()) {
        return;
    }
    const size_t stride = std::max<size_t>(1, cdf.size() / max_points);
    for (size_t i = 0; i < cdf.size(); i += stride) {
        std::printf("  %12.1f  %.5f\n", cdf[i].x, cdf[i].cum);
    }
    if ((cdf.size() - 1) % stride != 0) {
        std::printf("  %12.1f  %.5f\n", cdf.back().x, cdf.back().cum);
    }
}

void
printPmf(const std::string &label,
         const std::vector<SampleSet::PmfBin> &pmf)
{
    std::printf("PMF %s\n", label.c_str());
    for (const auto &b : pmf) {
        if (b.mass > 0) {
            std::printf("  [%10.1f, %10.1f)  %.5f\n", b.lo, b.hi, b.mass);
        }
    }
}

void
asciiPlot(const std::string &title, const std::vector<Series> &series,
          int width, int height, bool log_x)
{
    std::printf("%s\n", title.c_str());
    double xmin = 1e300, xmax = -1e300, ymin = 0.0, ymax = -1e300;
    for (const auto &s : series) {
        for (auto [x, y] : s.points) {
            double xv = log_x ? std::log10(std::max(x, 1e-12)) : x;
            xmin = std::min(xmin, xv);
            xmax = std::max(xmax, xv);
            ymax = std::max(ymax, y);
        }
    }
    if (ymax <= ymin || xmax <= xmin) {
        std::printf("  (insufficient data to plot)\n");
        return;
    }
    std::vector<std::string> grid(static_cast<size_t>(height),
                                  std::string(static_cast<size_t>(width),
                                              ' '));
    const char *marks = "*o+x#@&%";
    for (size_t si = 0; si < series.size(); ++si) {
        for (auto [x, y] : series[si].points) {
            double xv = log_x ? std::log10(std::max(x, 1e-12)) : x;
            int col = static_cast<int>((xv - xmin) / (xmax - xmin) *
                                       (width - 1));
            int row = static_cast<int>((y - ymin) / (ymax - ymin) *
                                       (height - 1));
            row = height - 1 - std::clamp(row, 0, height - 1);
            col = std::clamp(col, 0, width - 1);
            grid[static_cast<size_t>(row)][static_cast<size_t>(col)] =
                marks[si % 8];
        }
    }
    for (int r = 0; r < height; ++r) {
        double yv = ymin + (ymax - ymin) *
                               (height - 1 - r) / (height - 1);
        std::printf("%10.1f |%s\n", yv, grid[static_cast<size_t>(r)].c_str());
    }
    std::printf("%10s +%s\n", "", std::string(static_cast<size_t>(width),
                                              '-').c_str());
    if (log_x) {
        std::printf("%10s  10^%.1f .. 10^%.1f\n", "", xmin, xmax);
    } else {
        std::printf("%10s  %.1f .. %.1f\n", "", xmin, xmax);
    }
    for (size_t si = 0; si < series.size(); ++si) {
        std::printf("  '%c' = %s\n", marks[si % 8],
                    series[si].name.c_str());
    }
}

std::string
latencySummary(const SampleSet &s)
{
    return strprintf(
        "n=%zu p50=%.0f p90=%.0f p95=%.0f p99=%.0f p99.9=%.0f max=%.0f "
        "mean=%.0f (us)",
        s.count(), s.percentile(50), s.percentile(90), s.percentile(95),
        s.percentile(99), s.percentile(99.9), s.max(), s.mean());
}

std::string
latencySummary(const LatencyStat &s)
{
    if (s.mode() == LatencyStat::Mode::Raw) {
        return latencySummary(static_cast<const SampleSet &>(s));
    }
    return strprintf(
        "n=%zu p50=%.0f p90=%.0f p95=%.0f p99=%.0f p99.9=%.0f max=%.0f "
        "mean=%.0f (us, sketched, rel err %.1f%%)",
        s.count(), s.percentile(50), s.percentile(90), s.percentile(95),
        s.percentile(99), s.percentile(99.9), s.max(), s.mean(),
        100.0 * s.sketch().relativeError());
}

} // namespace analysis
} // namespace diablo
