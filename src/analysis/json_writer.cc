#include "analysis/json_writer.hh"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/log.hh"

namespace diablo {
namespace analysis {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    if (!pretty_) {
        return;
    }
    out_ += '\n';
    out_.append(stack_.size() * 2, ' ');
}

void
JsonWriter::beforeValue(bool keyed)
{
    if (stack_.empty()) {
        if (root_written_) {
            fatal("JsonWriter: second root value");
        }
        if (keyed) {
            fatal("JsonWriter: key outside any object");
        }
        root_written_ = true;
        return;
    }
    const bool in_object = stack_.back() == 'o';
    if (in_object != keyed) {
        fatal("JsonWriter: %s", in_object
                                    ? "bare value inside an object"
                                    : "keyed value inside an array");
    }
    if (!first_in_ctx_) {
        out_ += ',';
    }
    first_in_ctx_ = false;
    indent();
}

void
JsonWriter::key(const std::string &k)
{
    beforeValue(true);
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += pretty_ ? "\": " : "\":";
}

void
JsonWriter::open(Ctx c, char ch)
{
    out_ += ch;
    stack_ += c == Ctx::Object ? 'o' : 'a';
    first_in_ctx_ = true;
}

void
JsonWriter::close(Ctx c, char ch)
{
    const char want = c == Ctx::Object ? 'o' : 'a';
    if (stack_.empty() || stack_.back() != want) {
        fatal("JsonWriter: mismatched close of %s",
              c == Ctx::Object ? "object" : "array");
    }
    const bool was_empty = first_in_ctx_;
    stack_.pop_back();
    if (!was_empty) {
        indent();
    }
    out_ += ch;
    first_in_ctx_ = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue(false);
    open(Ctx::Object, '{');
    return *this;
}

JsonWriter &
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    open(Ctx::Object, '{');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    close(Ctx::Object, '}');
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue(false);
    open(Ctx::Array, '[');
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    open(Ctx::Array, '[');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    close(Ctx::Array, ']');
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const std::string &v)
{
    key(k);
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const char *v)
{
    return field(k, std::string(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, int64_t v)
{
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, uint64_t v)
{
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, int v)
{
    return field(k, static_cast<int64_t>(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, unsigned v)
{
    return field(k, static_cast<uint64_t>(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, double v)
{
    key(k);
    char buf[64];
    // %.17g round-trips any finite double; JSON has no inf/nan, so
    // clamp those to null rather than emit an invalid token.
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) {
        out_ += "null";
        return *this;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, bool v)
{
    key(k);
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::fieldHex(const std::string &k, uint64_t v)
{
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\"0x%016" PRIx64 "\"", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue(false);
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue(false);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue(false);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue(false);
    if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) {
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    if (!stack_.empty()) {
        fatal("JsonWriter: str() with %zu container(s) still open",
              stack_.size());
    }
    return out_;
}

void
atomicWriteFile(const std::string &path, const std::string &content)
{
    // The temporary must live in the target's directory: rename() is
    // only atomic within one filesystem, and the whole point is that a
    // crash at any instant leaves either the old file or the new one.
    const std::string tmp =
        path + strprintf(".%d.tmp", static_cast<int>(getpid()));
    FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        fatal("atomicWriteFile: cannot open '%s' for writing: %s",
              tmp.c_str(), std::strerror(errno));
    }
    const bool wrote =
        std::fwrite(content.data(), 1, content.size(), f) ==
            content.size() &&
        std::fputc('\n', f) != EOF && std::fflush(f) == 0 &&
        fsync(fileno(f)) == 0;
    if (!wrote || std::fclose(f) != 0) {
        if (!wrote) { // the ||'s short circuit left the stream open
            std::fclose(f);
        }
        unlink(tmp.c_str());
        fatal("atomicWriteFile: short write to '%s': %s", tmp.c_str(),
              std::strerror(errno));
    }
    if (rename(tmp.c_str(), path.c_str()) != 0) {
        unlink(tmp.c_str());
        fatal("atomicWriteFile: rename '%s' -> '%s': %s", tmp.c_str(),
              path.c_str(), std::strerror(errno));
    }
}

void
JsonWriter::writeFile(const std::string &path) const
{
    atomicWriteFile(path, str());
}

} // namespace analysis
} // namespace diablo
