#ifndef DIABLO_ANALYSIS_SURVEY_HH_
#define DIABLO_ANALYSIS_SURVEY_HH_

/**
 * @file
 * The paper's SIGCOMM 2008-2013 datacenter-networking survey (Figure 2
 * and Table 1).
 *
 * The paper reports aggregate statistics — a median physical testbed of
 * 16 servers and 6 switches across the surveyed papers, and a workload
 * split of 16 microbenchmark / 3 trace / 2 application papers — but not
 * the underlying list.  The dataset here is reconstructed to be
 * consistent with every aggregate the paper states (and with the sizes
 * of the well-known systems in its bibliography); the bench reproduces
 * the figure/table from it.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace diablo {
namespace analysis {

/** Workload class used in a surveyed paper's evaluation. */
enum class SurveyWorkload { Microbenchmark, Trace, Application };

/** One surveyed SIGCOMM paper's physical testbed. */
struct SurveyEntry {
    std::string name;     ///< system/paper identifier
    int year;
    uint32_t servers;     ///< physical testbed servers (VMs counted)
    uint32_t switches;    ///< maximum switches (optimistic, per paper)
    SurveyWorkload workload;
};

/** The reconstructed survey dataset. */
const std::vector<SurveyEntry> &sigcommSurvey();

/** Median helper over an extracted field. */
double medianOf(std::vector<double> values);

} // namespace analysis
} // namespace diablo

#endif // DIABLO_ANALYSIS_SURVEY_HH_
