#ifndef DIABLO_ANALYSIS_REPORT_HH_
#define DIABLO_ANALYSIS_REPORT_HH_

/**
 * @file
 * Rendering helpers for the benchmark harnesses: fixed-width tables,
 * CDF/PMF series dumps, and ASCII plots, so every bench binary prints
 * the same rows/series the paper's tables and figures report.
 */

#include <string>
#include <vector>

#include "core/stats.hh"

namespace diablo {
namespace analysis {

/** Fixed-width text table with a header row. */
class Table {
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; each cell already formatted. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: printf-style single cell. */
    static std::string cell(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));

    /** Render with column alignment. */
    std::string str() const;

    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Print a CDF as "x cum" pairs, decimated to at most @p max_points
 * (always keeping the first and last), suitable for replotting.
 */
void printCdf(const std::string &label,
              const std::vector<SampleSet::CdfPoint> &cdf,
              size_t max_points = 40);

/** Print a log-binned PMF as "lo hi mass" rows. */
void printPmf(const std::string &label,
              const std::vector<SampleSet::PmfBin> &pmf);

/**
 * ASCII scatter/line plot of one or more series on a log-x axis.
 * Each series is a vector of (x, y); y is linear.
 */
struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
};

void asciiPlot(const std::string &title, const std::vector<Series> &series,
               int width = 72, int height = 20, bool log_x = false);

/** Standard percentile summary line for a latency sample set. */
std::string latencySummary(const SampleSet &s);

/**
 * Same summary line for a LatencyStat in either mode: raw stats print
 * exact percentiles, sketched stats print the sketch's quantized
 * percentiles plus the configured relative-error bound.
 */
std::string latencySummary(const LatencyStat &s);

} // namespace analysis
} // namespace diablo

#endif // DIABLO_ANALYSIS_REPORT_HH_
