#include "analysis/survey.hh"

#include <algorithm>

namespace diablo {
namespace analysis {

const std::vector<SurveyEntry> &
sigcommSurvey()
{
    using W = SurveyWorkload;
    // 21 papers: 16 microbenchmark, 3 trace, 2 application (Table 1);
    // medians: 16 servers, 6 switches (Figure 2 discussion).
    static const std::vector<SurveyEntry> entries = {
        {"policy-aware switching", 2008, 4, 3, W::Microbenchmark},
        {"DCell-style testbed", 2008, 20, 5, W::Microbenchmark},
        {"VL2", 2009, 80, 10, W::Trace},
        {"BCube", 2009, 16, 8, W::Microbenchmark},
        {"PortLand", 2009, 20, 20, W::Microbenchmark},
        {"fine-grained TCP RTO", 2009, 16, 1, W::Microbenchmark},
        {"ElasticTree-style", 2010, 10, 5, W::Trace},
        {"c-Through", 2010, 16, 4, W::Microbenchmark},
        {"Hedera-style", 2010, 20, 14, W::Microbenchmark},
        {"DCTCP-style", 2010, 45, 6, W::Application},
        {"Orchestra", 2011, 100, 25, W::Microbenchmark},
        {"MPTCP-DC", 2011, 24, 9, W::Microbenchmark},
        {"RAMCloud recovery", 2011, 60, 5, W::Application},
        {"OpenFlow control plane", 2011, 2, 2, W::Microbenchmark},
        {"DeTail-style", 2012, 16, 9, W::Microbenchmark},
        {"PDQ/D3-style", 2012, 12, 1, W::Microbenchmark},
        {"HULL-style", 2012, 10, 6, W::Microbenchmark},
        {"Jellyfish-style", 2012, 8, 20, W::Microbenchmark},
        {"pFabric-style", 2013, 3, 1, W::Microbenchmark},
        {"zUpdate-style", 2013, 14, 22, W::Trace},
        {"EyeQ-style", 2013, 16, 6, W::Microbenchmark},
    };
    return entries;
}

double
medianOf(std::vector<double> values)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    if (n % 2 == 1) {
        return values[n / 2];
    }
    return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

} // namespace analysis
} // namespace diablo
