#include "analysis/artifact.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/json_writer.hh"
#include "core/log.hh"

namespace diablo {
namespace analysis {

namespace {

uint64_t
doubleBits(double d)
{
    uint64_t u = 0;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/** FNV-1a over a string, for folding names into the chain. */
uint64_t
strHash(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h = (h ^ c) * 0x100000001b3ULL;
    }
    return h;
}

} // namespace

LatencyDigest
LatencyDigest::of(const SampleSet &s)
{
    LatencyDigest d;
    d.count = s.count();
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h = (h ^ ((v >> (i * 8)) & 0xff)) * 0x100000001b3ULL;
        }
    };
    mix(d.count);
    for (double x : s.raw()) {
        mix(doubleBits(x));
    }
    d.fingerprint = h;
    if (d.count == 0) {
        return d;
    }
    d.mean = s.mean();
    d.min = s.min();
    d.max = s.max();
    d.p50 = s.percentile(50);
    d.p90 = s.percentile(90);
    d.p95 = s.percentile(95);
    d.p99 = s.percentile(99);
    return d;
}

LatencyDigest
LatencyDigest::of(const LatencyStat &s)
{
    LatencyDigest d;
    d.count = s.count();
    d.sketched = s.sketched();
    d.fingerprint = s.fingerprint();
    if (d.count == 0) {
        return d;
    }
    d.mean = s.mean();
    d.min = s.min();
    d.max = s.max();
    d.p50 = s.percentile(50);
    d.p90 = s.percentile(90);
    d.p95 = s.percentile(95);
    d.p99 = s.percentile(99);
    if (d.sketched) {
        d.relative_error = s.sketch().relativeError();
    }
    return d;
}

uint64_t
RunArtifact::fingerprint() const
{
    // Chain in declaration order with the same non-commutative mix the
    // seq≡par tests pin fold order with; any reordering or value change
    // in a deterministic field changes the digest.
    uint64_t fp = QuantileSketch::chainFingerprint(0, strHash(workload));
    fp = QuantileSketch::chainFingerprint(fp, nodes);
    fp = QuantileSketch::chainFingerprint(fp, doubleBits(elapsed_us));
    fp = QuantileSketch::chainFingerprint(fp, doubleBits(goodput_mbps));
    fp = QuantileSketch::chainFingerprint(fp, requests_completed);
    for (const auto &[name, d] : latencies) {
        fp = QuantileSketch::chainFingerprint(fp, strHash(name));
        fp = QuantileSketch::chainFingerprint(fp, d.fingerprint);
    }
    for (const CounterGroup &g : groups) {
        if (!g.deterministic) {
            continue;
        }
        fp = QuantileSketch::chainFingerprint(fp, strHash(g.name));
        for (const auto &[name, v] : g.counters) {
            fp = QuantileSketch::chainFingerprint(fp, strHash(name));
            fp = QuantileSketch::chainFingerprint(fp, v);
        }
    }
    // Pool makes/returns are event-driven and engine-independent; the
    // recycle/heap split and high water are wall-clock artifacts, and
    // per-partition event counts differ single-vs-sharded — excluded.
    for (const PartitionRow &p : partition_rows) {
        fp = QuantileSketch::chainFingerprint(fp, p.pool_makes);
        fp = QuantileSketch::chainFingerprint(fp, p.pool_returns);
    }
    return fp;
}

std::string
RunArtifact::toJson() const
{
    JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.field("schema", kSchemaVersion);
    w.field("workload", workload);
    w.field("status", status);
    if (!interrupt_cause.empty()) {
        w.field("interrupt_cause", interrupt_cause);
    }
    w.beginObject("engine");
    w.field("name", engine);
    w.field("threads_requested", threads_requested);
    w.field("partitions", partitions);
    w.field("workers", workers);
    if (cores != 0) {
        w.field("cores", cores);
        w.field("oversubscribed", oversubscribed);
    }
    if (!worker_cpus.empty()) {
        w.beginArray("worker_cpus");
        for (int cpu : worker_cpus) {
            w.value(static_cast<int64_t>(cpu));
        }
        w.endArray();
    }
    w.field("executed_events", executed_events);
    w.field("quanta", quanta);
    w.endObject();

    w.beginObject("results");
    w.field("nodes", nodes);
    w.field("elapsed_us", elapsed_us);
    w.field("goodput_mbps", goodput_mbps);
    w.field("requests_completed", requests_completed);
    w.endObject();

    w.beginObject("latencies");
    for (const auto &[name, d] : latencies) {
        w.beginObject(name);
        w.field("count", d.count);
        w.field("mean_us", d.mean);
        w.field("min_us", d.min);
        w.field("max_us", d.max);
        w.field("p50_us", d.p50);
        w.field("p90_us", d.p90);
        w.field("p95_us", d.p95);
        w.field("p99_us", d.p99);
        w.field("sketched", d.sketched);
        if (d.sketched) {
            w.field("relative_error", d.relative_error);
        }
        w.fieldHex("fingerprint", d.fingerprint);
        w.endObject();
    }
    w.endObject();

    w.beginObject("counters");
    for (const CounterGroup &g : groups) {
        w.beginObject(g.name);
        for (const auto &[name, v] : g.counters) {
            w.field(name, v);
        }
        w.endObject();
    }
    w.endObject();

    w.beginArray("partitions");
    for (const PartitionRow &p : partition_rows) {
        w.beginObject();
        w.field("events", p.events);
        w.field("pool_makes", p.pool_makes);
        w.field("pool_recycles", p.pool_recycles);
        w.field("pool_heap_allocs", p.pool_heap_allocs);
        w.field("pool_returns", p.pool_returns);
        w.field("pool_high_water", p.pool_high_water);
        w.endObject();
    }
    w.endArray();

    if (has_mem) {
        w.beginObject("mem");
        w.field("peak_rss_mb", peak_rss_mb);
        w.field("materialized_nodes", materialized_nodes);
        w.field("lazy_servers", lazy_servers);
        w.field("arena_bytes_used", arena_bytes_used);
        w.field("arena_bytes_reserved", arena_bytes_reserved);
        w.endObject();
    }

    if (!telemetry_path.empty()) {
        w.beginObject("telemetry");
        w.field("path", telemetry_path);
        w.field("period_us", telemetry_period_us);
        w.field("samples", telemetry_samples);
        w.endObject();
    }

    w.fieldHex("fingerprint", fingerprint());

    w.beginObject("config");
    for (const std::string &k : config.keys()) {
        w.field(k, config.getString(k, ""));
    }
    w.endObject();

    w.endObject();
    return w.str();
}

void
RunArtifact::writeJson(const std::string &path) const
{
    atomicWriteFile(path, toJson());
}

RunArtifact::Validation
RunArtifact::validate(const std::string &path)
{
    Validation v;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        v.error = strprintf("cannot read '%s': %s", path.c_str(),
                            std::strerror(errno));
        return v;
    }
    std::string doc;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) != 0) {
        doc.append(buf, n);
    }
    std::fclose(f);

    // Whole-document check: our pretty writer always produces
    // "{...}\n".  A partial write (possible only for debris predating
    // atomic writes, or a foreign writer) fails here.
    size_t end = doc.find_last_not_of(" \t\r\n");
    if (doc.empty() || doc[0] != '{' || end == std::string::npos ||
        doc[end] != '}') {
        v.error = strprintf("'%s' is not a complete JSON object "
                            "(truncated write?)", path.c_str());
        return v;
    }

    auto stringField = [&doc](const char *key) -> std::string {
        const std::string pat = std::string("\"") + key + "\": \"";
        const size_t p = doc.find(pat);
        if (p == std::string::npos) {
            return "";
        }
        const size_t start = p + pat.size();
        const size_t q = doc.find('"', start);
        return q == std::string::npos ? "" : doc.substr(start, q - start);
    };

    const std::string schema_pat = "\"schema\": ";
    const size_t sp = doc.find(schema_pat);
    if (sp == std::string::npos) {
        v.error = strprintf("'%s' has no schema field", path.c_str());
        return v;
    }
    const long schema =
        std::strtol(doc.c_str() + sp + schema_pat.size(), nullptr, 10);
    if (schema != kSchemaVersion) {
        v.error = strprintf("'%s' has schema %ld, expected %d",
                            path.c_str(), schema, kSchemaVersion);
        return v;
    }

    // Artifacts predating the status field were only ever written on
    // run completion, so absence means "ok".
    v.status = stringField("status");
    if (v.status.empty()) {
        v.status = "ok";
    }

    // The run fingerprint is the only one at top-level indentation.
    const std::string fpat = "\n  \"fingerprint\": \"";
    const size_t fp = doc.find(fpat);
    if (fp != std::string::npos) {
        const size_t start = fp + fpat.size();
        const size_t q = doc.find('"', start);
        if (q != std::string::npos) {
            v.fingerprint = doc.substr(start, q - start);
        }
    }
    if (v.fingerprint.empty()) {
        v.error = strprintf("'%s' has no run fingerprint", path.c_str());
        return v;
    }
    if (v.status != "ok") {
        v.error = strprintf("'%s' is a partial artifact (status '%s')",
                            path.c_str(), v.status.c_str());
        return v;
    }
    v.ok = true;
    return v;
}

} // namespace analysis
} // namespace diablo
