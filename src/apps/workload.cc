#include "apps/workload.hh"

#include <algorithm>
#include <cmath>

namespace diablo {
namespace apps {

EtcWorkloadParams
EtcWorkloadParams::fromConfig(const Config &cfg, const std::string &prefix)
{
    EtcWorkloadParams p;
    p.get_ratio = cfg.getDouble(prefix + "get_ratio", p.get_ratio);
    p.key_mu = cfg.getDouble(prefix + "key_mu", p.key_mu);
    p.key_sigma = cfg.getDouble(prefix + "key_sigma", p.key_sigma);
    p.key_min = static_cast<uint32_t>(
        cfg.getUint(prefix + "key_min", p.key_min));
    p.key_max = static_cast<uint32_t>(
        cfg.getUint(prefix + "key_max", p.key_max));
    p.value_gp_scale =
        cfg.getDouble(prefix + "value_gp_scale", p.value_gp_scale);
    p.value_gp_shape =
        cfg.getDouble(prefix + "value_gp_shape", p.value_gp_shape);
    p.tiny_value_fraction = cfg.getDouble(prefix + "tiny_value_fraction",
                                          p.tiny_value_fraction);
    p.value_min = static_cast<uint32_t>(
        cfg.getUint(prefix + "value_min", p.value_min));
    p.value_max = static_cast<uint32_t>(
        cfg.getUint(prefix + "value_max", p.value_max));
    p.keys_per_server =
        cfg.getUint(prefix + "keys_per_server", p.keys_per_server);
    p.zipf_skew = cfg.getDouble(prefix + "zipf_skew", p.zipf_skew);
    return p;
}

EtcWorkload::EtcWorkload(const EtcWorkloadParams &params, Rng rng)
    : params_(params), rng_(rng),
      zipf_(params.keys_per_server, params.zipf_skew)
{
}

uint32_t
EtcWorkload::valueSizeFor(uint64_t server_id, uint64_t key_id) const
{
    // Deterministic per (server, key): a real store returns the same
    // value size every time a key is read.
    Rng r(0x5EED0000u ^ (server_id * 0x9E3779B97F4A7C15ULL) ^
          (key_id * 0xC2B2AE3D27D4EB4FULL));
    if (r.uniform() < params_.tiny_value_fraction) {
        return static_cast<uint32_t>(r.uniformInt(params_.value_min, 10));
    }
    double v = r.generalizedPareto(0.0, params_.value_gp_scale,
                                   params_.value_gp_shape);
    auto bytes = static_cast<uint32_t>(v);
    return std::clamp(bytes, params_.value_min, params_.value_max);
}

GeneratedRequest
EtcWorkload::next(uint64_t server_id)
{
    GeneratedRequest g;
    g.is_get = rng_.bernoulli(params_.get_ratio);
    g.key_id = zipf_.sample(rng_);
    double k = rng_.lognormal(params_.key_mu, params_.key_sigma);
    g.key_bytes = std::clamp(static_cast<uint32_t>(k), params_.key_min,
                             params_.key_max);
    g.value_bytes = valueSizeFor(server_id, g.key_id);
    return g;
}

} // namespace apps
} // namespace diablo
