#include "apps/mc_experiment.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace apps {

McExperiment::McExperiment(Simulator &sim,
                           const McExperimentParams &params)
    : sim_(sim), params_(params)
{
    cluster_ = std::make_unique<sim::Cluster>(sim, params_.cluster);
    const uint32_t total = cluster_->size();
    if (params_.num_servers >= total) {
        fatal("McExperiment: %u servers need at least %u nodes",
              params_.num_servers, params_.num_servers + 1);
    }

    // Spread server instances evenly across racks (paper: "distributed
    // 128 memcached servers evenly across all 64 racks").
    const uint32_t spr = params_.cluster.topo.servers_per_rack;
    const uint32_t racks = total / spr;
    server_nodes_.reserve(params_.num_servers);
    for (uint32_t i = 0; i < params_.num_servers; ++i) {
        const uint32_t rack = i % racks;
        const uint32_t idx = i / racks;
        if (idx >= spr) {
            fatal("McExperiment: too many servers per rack");
        }
        server_nodes_.push_back(rack * spr + idx);
    }
    std::sort(server_nodes_.begin(), server_nodes_.end());
}

McExperiment::~McExperiment() = default;

void
McExperiment::run()
{
    for (net::NodeId s : server_nodes_) {
        installMemcachedServer(*cluster_, s, params_.server);
    }

    const uint32_t total = cluster_->size();
    std::vector<bool> is_server(total, false);
    for (net::NodeId s : server_nodes_) {
        is_server[s] = true;
    }
    for (uint32_t n = 0; n < total; ++n) {
        if (is_server[n]) {
            continue;
        }
        auto stats = std::make_shared<McClientStats>();
        client_stats_.push_back(stats);
        installMemcachedClient(*cluster_, n, server_nodes_,
                               params_.client, stats);
    }

    const SimTime start = sim_.now();
    auto all_done = [this] {
        for (const auto &s : client_stats_) {
            if (!s->done) {
                return false;
            }
        }
        return true;
    };
    // Servers and daemons run forever; stop once every client finished.
    while (!all_done()) {
        if (sim_.idle()) {
            panic("McExperiment: deadlock — clients not done, no events");
        }
        sim_.executeNext();
    }
    result_.elapsed = sim_.now() - start;
    result_.clients = static_cast<uint32_t>(client_stats_.size());
    result_.servers = static_cast<uint32_t>(server_nodes_.size());
    for (const auto &s : client_stats_) {
        result_.latency_us.merge(s->latency_us);
        result_.first_request_us.merge(s->first_request_us);
        for (int h = 0; h < 3; ++h) {
            result_.latency_us_by_hop[h].merge(s->latency_us_by_hop[h]);
        }
        result_.udp_timeouts += s->udp_timeouts;
        result_.udp_retries += s->udp_retries;
        result_.requests_completed += s->requests_completed;
    }
}

} // namespace apps
} // namespace diablo
