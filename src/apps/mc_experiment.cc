#include "apps/mc_experiment.hh"

#include <algorithm>

#include "core/log.hh"
#include "sim/telemetry.hh"

namespace diablo {
namespace apps {

McExperiment::McExperiment(Simulator &sim,
                           const McExperimentParams &params)
    : sim_(&sim), params_(params)
{
    cluster_ = std::make_unique<sim::Cluster>(sim, params_.cluster);
    placeServers();
}

McExperiment::McExperiment(fame::PartitionSet &ps,
                           const McExperimentParams &params)
    : ps_(&ps), params_(params)
{
    cluster_ = std::make_unique<sim::Cluster>(ps, params_.cluster);
    placeServers();
}

void
McExperiment::placeServers()
{
    const uint32_t total = cluster_->size();
    if (params_.num_servers >= total) {
        fatal("McExperiment: %u servers need at least %u nodes",
              params_.num_servers, params_.num_servers + 1);
    }

    // Spread server instances evenly across racks (paper: "distributed
    // 128 memcached servers evenly across all 64 racks").
    const uint32_t spr = params_.cluster.topo.servers_per_rack;
    const uint32_t racks = total / spr;
    server_nodes_.reserve(params_.num_servers);
    for (uint32_t i = 0; i < params_.num_servers; ++i) {
        const uint32_t rack = i % racks;
        const uint32_t idx = i / racks;
        if (idx >= spr) {
            fatal("McExperiment: too many servers per rack");
        }
        server_nodes_.push_back(rack * spr + idx);
    }
    std::sort(server_nodes_.begin(), server_nodes_.end());
}

McExperiment::~McExperiment() = default;

McExperiment::LiveStats
McExperiment::liveStats() const
{
    LiveStats ls;
    LatencyStat acc;
    if (params_.sketch_stats) {
        acc.enableSketch();
    }
    for (const auto &s : client_stats_) {
        ls.requests_completed += s->requests_completed;
        acc.merge(s->latency_us);
    }
    if (acc.count() != 0) {
        ls.p99_us = acc.percentile(99);
    }
    return ls;
}

void
McExperiment::run(bool parallel)
{
    if (parallel && ps_ == nullptr) {
        fatal("McExperiment: run(parallel) needs the sharded "
              "(PartitionSet) build");
    }
    for (net::NodeId s : server_nodes_) {
        installMemcachedServer(*cluster_, s, params_.server);
    }

    const uint32_t total = cluster_->size();
    std::vector<bool> is_server(total, false);
    for (net::NodeId s : server_nodes_) {
        is_server[s] = true;
    }

    // Pick client nodes: every non-server node (the paper's harness),
    // or — when num_clients caps the set — the same round-robin rack
    // spread the servers use, skipping server slots.  Node order is
    // preserved either way so the result fold below is deterministic.
    std::vector<net::NodeId> client_nodes;
    if (params_.num_clients == 0) {
        client_nodes.reserve(total - server_nodes_.size());
        for (uint32_t n = 0; n < total; ++n) {
            if (!is_server[n]) {
                client_nodes.push_back(n);
            }
        }
    } else {
        if (params_.num_clients > total - server_nodes_.size()) {
            fatal("McExperiment: %u clients need %zu non-server nodes, "
                  "cluster has %zu",
                  params_.num_clients,
                  static_cast<size_t>(params_.num_clients),
                  total - server_nodes_.size());
        }
        const uint32_t spr = params_.cluster.topo.servers_per_rack;
        const uint32_t racks = total / spr;
        client_nodes.reserve(params_.num_clients);
        for (uint32_t i = 0; client_nodes.size() < params_.num_clients;
             ++i) {
            const uint32_t rack = i % racks;
            const uint32_t idx = i / racks;
            if (idx >= spr) {
                fatal("McExperiment: too many clients per rack");
            }
            const net::NodeId n = rack * spr + idx;
            if (!is_server[n]) {
                client_nodes.push_back(n);
            }
        }
        std::sort(client_nodes.begin(), client_nodes.end());
    }

    if (params_.sketch_stats) {
        for (LatencyStat *ls :
             {&result_.latency_us, &result_.first_request_us,
              &result_.latency_us_by_hop[0],
              &result_.latency_us_by_hop[1],
              &result_.latency_us_by_hop[2]}) {
            ls->enableSketch();
        }
    }
    for (net::NodeId n : client_nodes) {
        auto stats = std::make_shared<McClientStats>();
        if (params_.sketch_stats) {
            stats->latency_us.enableSketch();
            stats->first_request_us.enableSketch();
            for (int h = 0; h < 3; ++h) {
                stats->latency_us_by_hop[h].enableSketch();
            }
        }
        client_stats_.push_back(stats);
        installMemcachedClient(*cluster_, n, server_nodes_,
                               params_.client, stats);
    }

    auto all_done = [this] {
        for (const auto &s : client_stats_) {
            if (!s->done) {
                return false;
            }
        }
        return true;
    };
    // Servers and daemons run forever; stop once every client finished.
    if (ps_ == nullptr) {
        if (probe_ != nullptr) {
            // No done predicate: this loop stops on its own, and any
            // pending probe event is simply never executed.
            probe_->installPeriodic();
        }
        const SimTime start = sim_->now();
        uint64_t events_between_pulses = 0;
        while (!all_done()) {
            // Pulse every few thousand events: cheap enough to leave on
            // (one counter increment per event) yet responsive enough
            // that a SIGTERM finalizes within milliseconds of wall
            // clock.
            if (pulse_ && (events_between_pulses++ & 0xfff) == 0 &&
                pulse_()) {
                aborted_ = true;
                break;
            }
            if (sim_->idle()) {
                panic("McExperiment: deadlock — clients not done, "
                      "no events");
            }
            sim_->executeNext();
        }
        result_.elapsed = sim_->now() - start;
    } else {
        // The PartitionSet runs to a bound, not to a predicate, so
        // drive it in windows and poll completion between them.  The
        // window only quantizes the reported elapsed time; simulated
        // behaviour is identical for any window size.
        constexpr SimTime kWindow = SimTime::ms(100);
        constexpr SimTime kCap = SimTime::sec(600);
        const SimTime start = ps_->partition(0).now();
        SimTime until = start;
        uint64_t last_events = ps_->totalExecutedEvents();
        while (!all_done()) {
            if (pulse_ && pulse_()) {
                aborted_ = true;
                break;
            }
            if (until - start >= kCap) {
                panic("McExperiment: clients not done after %s of "
                      "simulated time", kCap.str().c_str());
            }
            until = until + kWindow;
            auto step = [&](SimTime t) {
                if (parallel) {
                    ps_->runParallel(t);
                } else {
                    ps_->runSequential(t);
                }
            };
            if (probe_ != nullptr) {
                probe_->driveTo(until, step);
            } else {
                step(until);
            }
            const uint64_t events = ps_->totalExecutedEvents();
            if (events == last_events && !all_done()) {
                panic("McExperiment: deadlock — clients not done, "
                      "no events");
            }
            last_events = events;
        }
        result_.elapsed = ps_->partition(0).now() - start;
    }
    result_.clients = static_cast<uint32_t>(client_stats_.size());
    result_.servers = static_cast<uint32_t>(server_nodes_.size());
    for (const auto &s : client_stats_) {
        result_.latency_us.merge(s->latency_us);
        result_.first_request_us.merge(s->first_request_us);
        for (int h = 0; h < 3; ++h) {
            result_.latency_us_by_hop[h].merge(s->latency_us_by_hop[h]);
        }
        result_.udp_timeouts += s->udp_timeouts;
        result_.udp_retries += s->udp_retries;
        result_.requests_completed += s->requests_completed;
    }
}

} // namespace apps
} // namespace diablo
