#ifndef DIABLO_APPS_BACKGROUND_NOISE_HH_
#define DIABLO_APPS_BACKGROUND_NOISE_HH_

/**
 * @file
 * Background-daemon interference model.
 *
 * The paper notes that its simulated 120-node cluster "is a more ideal
 * environment with less software services running in the background.
 * Therefore, there are fewer requests falling into the tail compared to
 * a real system."  This optional model injects that missing reality: a
 * periodic daemon (log flusher, monitoring agent, kswapd) that grabs the
 * CPU for a burst at random intervals, lengthening whatever request had
 * the bad luck of sharing the core.  Off by default, exactly like the
 * paper's simulations.
 */

#include "sim/cluster.hh"

namespace diablo {
namespace apps {

/** Interference knobs. */
struct NoiseParams {
    /** Mean exponential gap between daemon wakeups. */
    SimTime interval_mean = SimTime::ms(100);
    /** Minimum cycles burned per wakeup. */
    uint64_t burst_cycles = 400000; ///< 100 us at 4 GHz
    /**
     * Bursts are Pareto-distributed (burst_cycles * Pareto(1, alpha)):
     * most wakeups are short, but occasional log flushes / cron jobs
     * monopolize the core for milliseconds — the orders-of-magnitude
     * stragglers real shared clusters exhibit.
     */
    double burst_pareto_alpha = 1.3;
    /** Cap on a single burst. */
    uint64_t burst_max_cycles = 40000000; ///< 10 ms at 4 GHz
};

/** Install one background daemon on @p node. */
void installBackgroundNoise(sim::Cluster &cluster, net::NodeId node,
                            const NoiseParams &params);

/** Install the daemon on every node of the cluster. */
void installBackgroundNoiseEverywhere(sim::Cluster &cluster,
                                      const NoiseParams &params);

} // namespace apps
} // namespace diablo

#endif // DIABLO_APPS_BACKGROUND_NOISE_HH_
