#ifndef DIABLO_APPS_MEMCACHED_HH_
#define DIABLO_APPS_MEMCACHED_HH_

/**
 * @file
 * Behavioural model of memcached 1.4.15 / 1.4.17 and a Facebook-ETC
 * closed-loop client (paper §4.2).
 *
 * Server: a listener/dispatcher thread plus N worker threads, each
 * running an epoll event loop over its share of connections (memcached's
 * libevent threads), or — in UDP mode — all workers receiving from the
 * shared UDP socket, as memcached 1.4.x does.  The modeled difference
 * between 1.4.15 and 1.4.17 is the accept path: 1.4.17 uses accept4(),
 * eliminating one fcntl syscall round trip per new TCP connection ([22],
 * paper §4.2 "Impact of application implementation").
 *
 * Client: closed loop; each request picks a uniformly random server,
 * draws ETC-shaped key/value sizes, and measures the full user-level
 * round trip.  UDP requests are retried on a timeout, like real
 * memcached clients; latencies of retried requests include the stall,
 * which is exactly how production long tails look.
 */

#include <memory>
#include <vector>

#include "apps/workload.hh"
#include "core/stats.hh"
#include "sim/cluster.hh"

namespace diablo {
namespace apps {

/** memcached request riding on packets. */
struct McRequest : net::AppData {
    bool is_get = true;
    uint64_t req_id = 0;
    uint64_t key_id = 0;
    uint32_t key_bytes = 0;
    uint32_t value_bytes = 0; ///< size to store (SET) / expected (GET)
    net::NodeId client = net::kInvalidNode;
    uint16_t reply_port = 0;
};

/** memcached response. */
struct McResponse : net::AppData {
    uint64_t req_id = 0;
    bool hit = true;
};

/** Server-side parameters. */
struct McServerParams {
    /** 1415 or 1417; selects the accept path (accept4 from 1.4.17). */
    int version = 1417;
    uint32_t worker_threads = 4;
    bool udp = false;
    uint16_t port = 11211;

    // Fixed-CPI service cost model.
    uint64_t request_base_cycles = 9000;  ///< parse + hash + dispatch
    double value_cycles_per_byte = 0.25;  ///< item assembly/copy

    bool usesAccept4() const { return version >= 1417; }
};

/** Client-side parameters. */
struct McClientParams {
    uint32_t requests = 300;       ///< paper: 30,000
    bool udp = false;
    uint16_t port = 11211;
    /** Mean exponential think time between requests.  The default puts
     *  the oversubscribed inter-array trunks at roughly 60% load in the
     *  paper's 2,000-node topology: servers stay under 50% CPU and no
     *  buffer-overrun retransmissions occur, but aggregation-layer
     *  queueing bursts produce the long tail. */
    SimTime think_mean = SimTime::microseconds(1500);
    /** Clients come up uniformly over this window. */
    SimTime start_window = SimTime::ms(100);
    /** UDP retry timeout and cap (client-level reliability).  250 ms is
     *  a typical memcached client poll timeout — note it exceeds TCP's
     *  200 ms minimum RTO, which is what lets TCP edge out UDP once
     *  drops appear at scale (Figure 13's reversal). */
    SimTime udp_retry_timeout = SimTime::ms(250);
    uint32_t udp_max_retries = 3;
    /** Request wire overhead beyond the key (protocol framing). */
    uint32_t request_overhead_bytes = 30;
    /** Response overhead beyond the value. */
    uint32_t response_overhead_bytes = 24;
    /** Client-side bookkeeping cost per request. */
    uint64_t client_cycles = 4000;
    /** TCP: build the whole connection pool before the measured phase
     *  (production behaviour).  When false, connections are opened
     *  lazily on first use so connection setup — including the
     *  accept/accept4 server path — lands inside measured request
     *  latencies (used by the Figure 15 version study). */
    bool preconnect = true;

    EtcWorkloadParams workload;
};

/** Per-client measurements (aggregate across clients in the harness).
 *  The latency fields are LatencyStats: raw SampleSets by default, or
 *  fixed-memory quantile sketches after enableSketch() — the harness
 *  switches every client at paper scale so folding 32k clients stays
 *  O(clients * bins) instead of O(total samples * log). */
struct McClientStats {
    bool done = false;
    LatencyStat latency_us;              ///< all requests
    LatencyStat latency_us_by_hop[3];    ///< Local / OneHop / TwoHop
    /** First request on each lazily-opened TCP connection: the requests
     *  whose latency contains the server's accept/accept4 path. */
    LatencyStat first_request_us;
    uint64_t udp_timeouts = 0;           ///< requests lost after retries
    uint64_t udp_retries = 0;
    uint64_t requests_completed = 0;
};

/** Install a memcached server instance on @p node. */
void installMemcachedServer(sim::Cluster &cluster, net::NodeId node,
                            const McServerParams &params);

/**
 * Install a closed-loop client on @p node targeting @p servers.
 * @p stats must outlive the run.
 */
void installMemcachedClient(sim::Cluster &cluster, net::NodeId node,
                            std::vector<net::NodeId> servers,
                            const McClientParams &params,
                            std::shared_ptr<McClientStats> stats);

} // namespace apps
} // namespace diablo

#endif // DIABLO_APPS_MEMCACHED_HH_
