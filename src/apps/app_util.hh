#ifndef DIABLO_APPS_APP_UTIL_HH_
#define DIABLO_APPS_APP_UTIL_HH_

/**
 * @file
 * Small shared helpers for application models.
 */

#include "core/task.hh"
#include "os/kernel.hh"

namespace diablo {
namespace apps {

/**
 * Create a TCP socket and connect to (dst, port), retrying refused
 * connections with a backoff — what production clients do when racing a
 * service that is still binding its listener at startup.
 *
 * Returns the connected fd, or a negative errno after @p max_attempts.
 */
inline Task<long>
connectWithRetry(os::Kernel &k, os::Thread &t, net::NodeId dst,
                 uint16_t port, uint32_t max_attempts = 30,
                 SimTime backoff = SimTime::ms(1))
{
    long rc = os::err::kConnRefused;
    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        long fd = co_await k.sysSocket(t, net::Proto::Tcp);
        rc = co_await k.sysConnect(t, static_cast<int>(fd), dst, port);
        if (rc == 0) {
            co_return fd;
        }
        co_await k.sysClose(t, static_cast<int>(fd));
        co_await k.sim().sleep(backoff);
    }
    co_return rc;
}

} // namespace apps
} // namespace diablo

#endif // DIABLO_APPS_APP_UTIL_HH_
