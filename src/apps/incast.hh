#ifndef DIABLO_APPS_INCAST_HH_
#define DIABLO_APPS_INCAST_HH_

/**
 * @file
 * TCP Incast benchmark (paper §4.1).
 *
 * The many-to-one pattern of scale-out storage: one client requests a
 * fixed-size block from each of N servers over TCP; all servers respond
 * at once through the client's ToR port, overrunning shallow switch
 * buffers, and application goodput collapses once TCP retransmission
 * timeouts (200 ms min RTO) begin to dominate.  Matches the R2D2-style
 * test program the paper used [3][60].
 *
 * Two client service styles are modeled, because Figure 6(b) shows they
 * change the result:
 *  - pthread: one blocking client thread per server connection;
 *  - epoll:   one thread multiplexing all connections through epoll.
 */

#include <memory>
#include <vector>

#include "core/stats.hh"
#include "sim/cluster.hh"

namespace diablo {
namespace apps {

/** Incast run parameters. */
struct IncastParams {
    uint64_t block_bytes = 256 * 1024; ///< per-server block per iteration
    uint32_t iterations = 40;
    /** Untimed initial iterations (connection/ssthresh warm-up). */
    uint32_t warmup_iterations = 2;
    bool use_epoll = false;
    uint16_t port = 5001;
    uint32_t request_bytes = 64;
};

/** Measured outcome. */
struct IncastResult {
    bool done = false;
    uint64_t total_bytes = 0;
    SimTime elapsed;                 ///< measured transfer phase only
    SampleSet iteration_us;          ///< per-iteration completion times

    /** Application-level goodput over the measured phase, Mbps. */
    double goodputMbps() const
    {
        if (elapsed.isZero()) {
            return 0.0;
        }
        return static_cast<double>(total_bytes) * 8.0 /
               elapsed.asSeconds() / 1e6;
    }
};

/**
 * Installs the incast servers and client onto cluster nodes.  The
 * result object must outlive the simulation run.
 */
class IncastApp {
  public:
    IncastApp(sim::Cluster &cluster, const IncastParams &params,
              net::NodeId client, std::vector<net::NodeId> servers);

    /** Spawn all processes; run the simulator afterwards. */
    void install();

    const IncastResult &result() const { return *result_; }

  private:
    sim::Cluster &cluster_;
    IncastParams params_;
    net::NodeId client_;
    std::vector<net::NodeId> servers_;
    std::shared_ptr<IncastResult> result_;
};

} // namespace apps
} // namespace diablo

#endif // DIABLO_APPS_INCAST_HH_
