#include "apps/memcached.hh"

#include "apps/app_util.hh"
#include "core/log.hh"

namespace diablo {
namespace apps {

namespace {

constexpr uint32_t kResponseOverheadBytes = 24;

uint64_t
serviceCycles(const McServerParams &p, const McRequest &req)
{
    return p.request_base_cycles +
           static_cast<uint64_t>(req.value_bytes *
                                 p.value_cycles_per_byte);
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

struct ServerShared {
    explicit ServerShared(Simulator &sim) : ready_wq(sim) {}

    std::vector<long> worker_epfd;
    uint32_t ready = 0;
    os::WaitQueue ready_wq;
};

/** Handle every complete request in @p msgs on stream @p fd. */
Task<>
handleTcpRequests(os::Kernel &k, os::Thread &t, const McServerParams &p,
                  int fd, std::vector<os::RecvedMessage> msgs)
{
    for (const auto &m : msgs) {
        auto req = std::dynamic_pointer_cast<const McRequest>(m.msg);
        if (!req) {
            continue;
        }
        co_await t.compute(serviceCycles(p, *req));
        auto resp = std::make_shared<McResponse>();
        resp->req_id = req->req_id;
        const uint64_t resp_bytes =
            kResponseOverheadBytes + (req->is_get ? req->value_bytes : 0);
        co_await k.sysSend(t, fd, resp_bytes, resp);
    }
}

/** One libevent-style worker: epoll loop over its connections. */
Task<>
mcTcpWorker(os::Kernel &k, std::shared_ptr<ServerShared> sh, uint32_t idx,
            McServerParams p)
{
    os::Thread &t = k.createThread(strprintf("mc-w%u", idx));
    long ep = co_await k.sysEpollCreate(t);
    sh->worker_epfd[idx] = ep;
    ++sh->ready;
    sh->ready_wq.wakeOne();

    std::vector<os::EpollEvent> events;
    while (true) {
        long r = co_await k.sysEpollWait(t, static_cast<int>(ep), &events,
                                         64);
        if (r <= 0) {
            continue;
        }
        for (const auto &e : events) {
            std::vector<os::RecvedMessage> msgs;
            long n = co_await k.sysRecv(t, e.fd, 1 << 20, &msgs);
            if (n <= 0) {
                continue; // EOF handling: connection stays closed
            }
            co_await handleTcpRequests(k, t, p, e.fd, std::move(msgs));
        }
    }
}

/** Dispatcher: accepts and hands connections to workers round-robin. */
Task<>
mcTcpDispatcher(os::Kernel &k, std::shared_ptr<ServerShared> sh,
                McServerParams p)
{
    os::Thread &t = k.createThread("mc-main");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), p.port);
    co_await k.sysListen(t, static_cast<int>(lfd), 1024);

    while (sh->ready < p.worker_threads) {
        co_await sh->ready_wq.wait();
    }

    uint32_t next = 0;
    while (true) {
        long fd = co_await k.sysAccept(t, static_cast<int>(lfd),
                                       p.usesAccept4());
        if (fd < 0) {
            co_return;
        }
        co_await k.sysEpollCtlAdd(
            t, static_cast<int>(sh->worker_epfd[next]),
            static_cast<int>(fd));
        next = (next + 1) % p.worker_threads;
    }
}

/** UDP worker: all workers share the server socket, as in 1.4.x. */
Task<>
mcUdpWorker(os::Kernel &k, int fd, uint32_t idx, McServerParams p)
{
    os::Thread &t = k.createThread(strprintf("mc-u%u", idx));
    while (true) {
        os::RecvedMessage m;
        long n = co_await k.sysRecvFrom(t, fd, &m);
        if (n < 0) {
            co_return;
        }
        auto req = std::dynamic_pointer_cast<const McRequest>(m.msg);
        if (!req) {
            continue;
        }
        co_await t.compute(serviceCycles(p, *req));
        auto resp = std::make_shared<McResponse>();
        resp->req_id = req->req_id;
        const uint64_t resp_bytes =
            kResponseOverheadBytes + (req->is_get ? req->value_bytes : 0);
        co_await k.sysSendTo(t, fd, m.from, m.from_port, resp_bytes, resp);
    }
}

Task<>
mcUdpMain(os::Kernel &k, McServerParams p)
{
    os::Thread &t = k.createThread("mc-umain");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), p.port);
    for (uint32_t i = 0; i < p.worker_threads; ++i) {
        k.spawnProcess(mcUdpWorker(k, static_cast<int>(fd), i, p));
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

struct ClientCtx {
    sim::Cluster *cluster;
    net::NodeId me;
    std::vector<net::NodeId> servers;
    McClientParams params;
    std::shared_ptr<McClientStats> stats;
    Rng rng;
    std::unique_ptr<EtcWorkload> workload;
};

std::shared_ptr<McRequest>
buildRequest(ClientCtx &ctx, net::NodeId server, uint64_t req_id,
             uint16_t reply_port)
{
    GeneratedRequest g = ctx.workload->next(server);
    auto req = std::make_shared<McRequest>();
    req->is_get = g.is_get;
    req->req_id = req_id;
    req->key_id = g.key_id;
    req->key_bytes = g.key_bytes;
    req->value_bytes = g.value_bytes;
    req->client = ctx.me;
    req->reply_port = reply_port;
    return req;
}

uint64_t
requestWireBytes(const McClientParams &p, const McRequest &req)
{
    // SETs carry the value; GETs only the key.
    return p.request_overhead_bytes + req.key_bytes +
           (req.is_get ? 0 : req.value_bytes);
}

void
recordLatency(ClientCtx &ctx, net::NodeId server, SimTime elapsed)
{
    const double us = elapsed.asMicros();
    ctx.stats->latency_us.record(us);
    const auto hop = static_cast<size_t>(
        ctx.cluster->network().hopClass(ctx.me, server));
    ctx.stats->latency_us_by_hop[hop].record(us);
    ++ctx.stats->requests_completed;
}

Task<>
mcTcpClient(std::shared_ptr<ClientCtx> ctx)
{
    os::Kernel &k = ctx->cluster->kernel(ctx->me);
    os::Thread &t = k.createThread("mc-cli");
    std::unordered_map<net::NodeId, int> fds;

    // Production memcached clients keep a persistent connection pool to
    // the whole server fleet; build it before the measured request
    // phase.  Starts are staggered across the start window and each
    // client walks the fleet in its own random order, so thousands of
    // clients do not synchronize a SYN storm into the trunk links.
    co_await k.sim().sleep(SimTime::microseconds(ctx->rng.uniform(
        0.0, ctx->params.start_window.asMicros())));
    if (ctx->params.preconnect) {
        std::vector<net::NodeId> order = ctx->servers;
        for (size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1],
                      order[ctx->rng.uniformInt(0, i - 1)]);
        }
        for (net::NodeId server : order) {
            long fd = co_await connectWithRetry(k, t, server,
                                                ctx->params.port);
            if (fd < 0) {
                panic("mc client %u: connect to %u failed", ctx->me,
                      server);
            }
            fds.emplace(server, static_cast<int>(fd));
        }
    }

    for (uint32_t i = 0; i < ctx->params.requests; ++i) {
        const net::NodeId server = ctx->servers[ctx->rng.uniformInt(
            0, ctx->servers.size() - 1)];
        auto fit = fds.find(server);
        const bool fresh_connection = fit == fds.end();
        if (fresh_connection) {
            long nfd = co_await connectWithRetry(k, t, server,
                                                 ctx->params.port);
            if (nfd < 0) {
                panic("mc client %u: connect to %u failed", ctx->me,
                      server);
            }
            fit = fds.emplace(server, static_cast<int>(nfd)).first;
        }
        const int fd = fit->second;

        auto req = buildRequest(*ctx, server, i, 0);
        co_await t.compute(ctx->params.client_cycles);
        const SimTime start = k.sim().now();
        co_await k.sysSend(t, fd, requestWireBytes(ctx->params, *req),
                           req);

        // Closed loop on a dedicated connection: the next response
        // message is ours.
        bool got_resp = false;
        while (!got_resp) {
            std::vector<os::RecvedMessage> msgs;
            long n = co_await k.sysRecv(t, fd, 1 << 20, &msgs);
            if (n <= 0) {
                panic("mc client %u: connection to %u died", ctx->me,
                      server);
            }
            for (const auto &m : msgs) {
                auto resp =
                    std::dynamic_pointer_cast<const McResponse>(m.msg);
                if (resp && resp->req_id == req->req_id) {
                    got_resp = true;
                }
            }
        }
        recordLatency(*ctx, server, k.sim().now() - start);
        if (fresh_connection) {
            ctx->stats->first_request_us.record(
                (k.sim().now() - start).asMicros());
        }
        co_await k.sim().sleep(SimTime::seconds(ctx->rng.exponential(
            ctx->params.think_mean.asSeconds())));
    }
    ctx->stats->done = true;
}

Task<>
mcUdpClient(std::shared_ptr<ClientCtx> ctx)
{
    os::Kernel &k = ctx->cluster->kernel(ctx->me);
    os::Thread &t = k.createThread("mc-cli");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);

    // Clients come up over a window, not in lockstep.
    co_await k.sim().sleep(SimTime::microseconds(ctx->rng.uniform(
        0.0, ctx->params.start_window.asMicros())));

    for (uint32_t i = 0; i < ctx->params.requests; ++i) {
        const net::NodeId server = ctx->servers[ctx->rng.uniformInt(
            0, ctx->servers.size() - 1)];
        auto req = buildRequest(*ctx, server, i, 0);
        co_await t.compute(ctx->params.client_cycles);
        const SimTime start = k.sim().now();

        bool answered = false;
        for (uint32_t attempt = 0;
             attempt <= ctx->params.udp_max_retries && !answered;
             ++attempt) {
            if (attempt > 0) {
                ++ctx->stats->udp_retries;
            }
            co_await k.sysSendTo(t, static_cast<int>(fd), server,
                                 ctx->params.port,
                                 requestWireBytes(ctx->params, *req),
                                 req);
            // Wait for our response until the retry timer fires.
            const SimTime deadline =
                k.sim().now() + ctx->params.udp_retry_timeout;
            while (!answered) {
                const SimTime left = deadline - k.sim().now();
                if (left <= SimTime()) {
                    break;
                }
                os::RecvedMessage m;
                long n = co_await k.sysRecvFrom(t, static_cast<int>(fd),
                                                &m, left);
                if (n == os::err::kTimedOut) {
                    break;
                }
                auto resp =
                    std::dynamic_pointer_cast<const McResponse>(m.msg);
                if (resp && resp->req_id == req->req_id) {
                    answered = true; // stale duplicates are discarded
                }
            }
        }
        if (answered) {
            recordLatency(*ctx, server, k.sim().now() - start);
        } else {
            ++ctx->stats->udp_timeouts;
        }
        co_await k.sim().sleep(SimTime::seconds(ctx->rng.exponential(
            ctx->params.think_mean.asSeconds())));
    }
    ctx->stats->done = true;
}

} // namespace

void
installMemcachedServer(sim::Cluster &cluster, net::NodeId node,
                       const McServerParams &params)
{
    os::Kernel &k = cluster.kernel(node);
    if (params.udp) {
        k.spawnProcess(mcUdpMain(k, params));
        return;
    }
    // The server's rack simulator, not cluster.sim(): the latter is
    // fatal on a sharded build, which TCP servers must support too.
    auto sh = std::make_shared<ServerShared>(k.sim());
    sh->worker_epfd.resize(params.worker_threads, -1);
    for (uint32_t i = 0; i < params.worker_threads; ++i) {
        k.spawnProcess(mcTcpWorker(k, sh, i, params));
    }
    k.spawnProcess(mcTcpDispatcher(k, sh, params));
}

void
installMemcachedClient(sim::Cluster &cluster, net::NodeId node,
                       std::vector<net::NodeId> servers,
                       const McClientParams &params,
                       std::shared_ptr<McClientStats> stats)
{
    if (servers.empty()) {
        fatal("memcached client: no servers given");
    }
    auto ctx = std::make_shared<ClientCtx>(ClientCtx{
        &cluster,
        node,
        std::move(servers),
        params,
        std::move(stats),
        cluster.rng().fork(node).fork("mc-client"),
        std::make_unique<EtcWorkload>(
            params.workload, cluster.rng().fork(node).fork("mc-workload")),
    });

    if (params.udp) {
        cluster.kernel(node).spawnProcess(mcUdpClient(std::move(ctx)));
    } else {
        cluster.kernel(node).spawnProcess(mcTcpClient(std::move(ctx)));
    }
}

} // namespace apps
} // namespace diablo
