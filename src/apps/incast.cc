#include "apps/incast.hh"

#include "apps/app_util.hh"
#include "core/log.hh"

namespace diablo {
namespace apps {

namespace {

/** Client-side coordination between the main task and its workers. */
struct ClientShared {
    explicit ClientShared(Simulator &sim)
        : ready_wq(sim), start_wq(sim), done_wq(sim) {}

    os::WaitQueue ready_wq;
    os::WaitQueue start_wq;
    os::WaitQueue done_wq;
    uint32_t ready = 0;
    uint32_t pending = 0;
    bool stop = false;
};

/** One incast server: accept a single connection, then serve blocks. */
Task<>
incastServer(os::Kernel &k, IncastParams p)
{
    os::Thread &t = k.createThread("incast-srv");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), p.port);
    co_await k.sysListen(t, static_cast<int>(lfd), 16);
    long fd = co_await k.sysAccept(t, static_cast<int>(lfd), true);
    if (fd < 0) {
        co_return;
    }
    while (true) {
        uint64_t got = 0;
        while (got < p.request_bytes) {
            long n = co_await k.sysRecv(t, static_cast<int>(fd),
                                        p.request_bytes - got, nullptr);
            if (n <= 0) {
                co_return; // client closed
            }
            got += static_cast<uint64_t>(n);
        }
        // Parse the request and prepare the block (SRU).
        co_await t.compute(3000);
        co_await k.sysSend(t, static_cast<int>(fd), p.block_bytes,
                           nullptr);
    }
}

/** pthread-style worker: one blocking thread per server connection. */
Task<>
incastWorker(os::Kernel &k, std::shared_ptr<ClientShared> sh,
             net::NodeId server, IncastParams p)
{
    os::Thread &t = k.createThread("incast-w");
    long fd = co_await connectWithRetry(k, t, server, p.port);
    if (fd < 0) {
        panic("incast worker: connect to node %u failed", server);
    }
    ++sh->ready;
    sh->ready_wq.wakeOne();

    while (true) {
        co_await sh->start_wq.wait();
        if (sh->stop) {
            co_return;
        }
        co_await k.sysSend(t, static_cast<int>(fd), p.request_bytes,
                           nullptr);
        uint64_t got = 0;
        while (got < p.block_bytes) {
            long n = co_await k.sysRecv(t, static_cast<int>(fd),
                                        p.block_bytes - got, nullptr);
            if (n <= 0) {
                co_return;
            }
            got += static_cast<uint64_t>(n);
        }
        if (--sh->pending == 0) {
            sh->done_wq.wakeOne();
        }
    }
}

/** Blocking-threads client main: barrier per iteration. */
Task<>
incastMainPthread(sim::Cluster *cluster, net::NodeId client,
                  std::vector<net::NodeId> servers, IncastParams p,
                  std::shared_ptr<IncastResult> res)
{
    os::Kernel &k = cluster->kernel(client);
    auto sh = std::make_shared<ClientShared>(k.sim());
    const uint32_t n = static_cast<uint32_t>(servers.size());

    for (net::NodeId s : servers) {
        k.spawnProcess(incastWorker(k, sh, s, p));
    }
    while (sh->ready < n) {
        co_await sh->ready_wq.wait();
    }

    for (uint32_t w = 0; w < p.warmup_iterations; ++w) {
        sh->pending = n;
        sh->start_wq.wakeAll();
        while (sh->pending > 0) {
            co_await sh->done_wq.wait();
        }
    }

    const SimTime start = k.sim().now();
    for (uint32_t iter = 0; iter < p.iterations; ++iter) {
        const SimTime it_start = k.sim().now();
        sh->pending = n;
        sh->start_wq.wakeAll();
        while (sh->pending > 0) {
            co_await sh->done_wq.wait();
        }
        res->iteration_us.record((k.sim().now() - it_start).asMicros());
    }
    res->elapsed = k.sim().now() - start;
    res->total_bytes =
        static_cast<uint64_t>(n) * p.block_bytes * p.iterations;
    res->done = true;
    sh->stop = true;
    sh->start_wq.wakeAll();
}

/** epoll client: one thread multiplexing every server connection. */
Task<>
incastMainEpoll(sim::Cluster *cluster, net::NodeId client,
                std::vector<net::NodeId> servers, IncastParams p,
                std::shared_ptr<IncastResult> res)
{
    os::Kernel &k = cluster->kernel(client);
    os::Thread &t = k.createThread("incast-ep");
    const uint32_t n = static_cast<uint32_t>(servers.size());

    std::vector<int> fds;
    for (net::NodeId s : servers) {
        long fd = co_await connectWithRetry(k, t, s, p.port);
        if (fd < 0) {
            panic("incast epoll client: connect to node %u failed", s);
        }
        fds.push_back(static_cast<int>(fd));
    }
    long ep = co_await k.sysEpollCreate(t);
    for (int fd : fds) {
        co_await k.sysEpollCtlAdd(t, static_cast<int>(ep), fd);
    }

    std::vector<os::EpollEvent> events;
    SimTime start;
    for (uint32_t iter = 0; iter < p.warmup_iterations + p.iterations;
         ++iter) {
        if (iter == p.warmup_iterations) {
            start = k.sim().now();
        }
        const SimTime it_start = k.sim().now();
        for (int fd : fds) {
            co_await k.sysSend(t, fd, p.request_bytes, nullptr);
        }
        uint64_t remaining = static_cast<uint64_t>(n) * p.block_bytes;
        while (remaining > 0) {
            long r = co_await k.sysEpollWait(t, static_cast<int>(ep),
                                             &events, 64);
            if (r <= 0) {
                continue;
            }
            for (const auto &e : events) {
                long got = co_await k.sysRecv(t, e.fd, remaining,
                                              nullptr);
                if (got > 0) {
                    remaining -= static_cast<uint64_t>(got);
                }
            }
        }
        if (iter >= p.warmup_iterations) {
            res->iteration_us.record(
                (k.sim().now() - it_start).asMicros());
        }
    }
    res->elapsed = k.sim().now() - start;
    res->total_bytes =
        static_cast<uint64_t>(n) * p.block_bytes * p.iterations;
    res->done = true;
}

} // namespace

IncastApp::IncastApp(sim::Cluster &cluster, const IncastParams &params,
                     net::NodeId client, std::vector<net::NodeId> servers)
    : cluster_(cluster), params_(params), client_(client),
      servers_(std::move(servers)),
      result_(std::make_shared<IncastResult>())
{
    if (servers_.empty()) {
        fatal("IncastApp: needs at least one server");
    }
}

void
IncastApp::install()
{
    for (net::NodeId s : servers_) {
        cluster_.kernel(s).spawnProcess(
            incastServer(cluster_.kernel(s), params_));
    }
    if (params_.use_epoll) {
        cluster_.kernel(client_).spawnProcess(incastMainEpoll(
            &cluster_, client_, servers_, params_, result_));
    } else {
        cluster_.kernel(client_).spawnProcess(incastMainPthread(
            &cluster_, client_, servers_, params_, result_));
    }
}

} // namespace apps
} // namespace diablo
