#ifndef DIABLO_APPS_WORKLOAD_HH_
#define DIABLO_APPS_WORKLOAD_HH_

/**
 * @file
 * Memcached workload generator modeled on published Facebook live-traffic
 * statistics (Atikoglu et al., SIGMETRICS'12 [23]).
 *
 * The paper §4.2: "Simple microbenchmark tools like memslap do not
 * attempt to reproduce the statistical characteristics of real traffic.
 * To provide a more realistic workload, we built our own client based on
 * recently published Facebook live traffic statistics.  At Facebook,
 * memcached servers are partitioned based on the concept of pools.  We
 * focused on one of the pools that is the most representative" — the ETC
 * pool.  This generator reproduces ETC's published shape:
 *
 *  - key sizes: log-normal-like, mostly 20-45 bytes, clipped to [16,250];
 *  - value sizes: generalized Pareto (location 0, scale 214.48, shape
 *    0.348) with a spike of tiny values, clipped to [2, 8192] so a
 *    response fits common UDP deployments;
 *  - GET:SET ratio approximately 30:1;
 *  - key popularity: Zipf over each server's keyspace;
 *  - value size is a deterministic function of (server, key), as it
 *    would be for a real store.
 */

#include <cstdint>

#include "core/config.hh"
#include "core/random.hh"

namespace diablo {
namespace apps {

/** One generated request descriptor. */
struct GeneratedRequest {
    bool is_get = true;
    uint64_t key_id = 0;
    uint32_t key_bytes = 0;
    uint32_t value_bytes = 0;
};

/** Parameters of the ETC-pool statistical model. */
struct EtcWorkloadParams {
    double get_ratio = 30.0 / 31.0;

    // Key size: lognormal(mu, sigma) clipped.
    double key_mu = 3.55;      ///< e^3.55 ~ 35 bytes
    double key_sigma = 0.35;
    uint32_t key_min = 16;
    uint32_t key_max = 250;

    // Value size: generalized Pareto (Atikoglu et al., ETC).
    double value_gp_scale = 214.476;
    double value_gp_shape = 0.348238;
    /** Fraction of tiny (2-10 byte) values (the ETC small-value spike). */
    double tiny_value_fraction = 0.08;
    uint32_t value_min = 2;
    uint32_t value_max = 8192;

    // Popularity.
    uint64_t keys_per_server = 20000;
    double zipf_skew = 0.99;

    static EtcWorkloadParams fromConfig(const Config &cfg,
                                        const std::string &prefix);
};

/** Draws ETC-shaped requests; deterministic given the stream seed. */
class EtcWorkload {
  public:
    EtcWorkload(const EtcWorkloadParams &params, Rng rng);

    /** Generate the next request aimed at @p server_id's keyspace. */
    GeneratedRequest next(uint64_t server_id);

    /** Deterministic stored-value size for (server, key). */
    uint32_t valueSizeFor(uint64_t server_id, uint64_t key_id) const;

    const EtcWorkloadParams &params() const { return params_; }

  private:
    EtcWorkloadParams params_;
    Rng rng_;
    ZipfSampler zipf_;
};

} // namespace apps
} // namespace diablo

#endif // DIABLO_APPS_WORKLOAD_HH_
