#include "apps/background_noise.hh"

#include <algorithm>

namespace diablo {
namespace apps {

namespace {

Task<>
noiseDaemon(os::Kernel &k, NoiseParams p, Rng rng)
{
    os::Thread &t = k.createThread("noised");
    while (true) {
        co_await k.sim().sleep(SimTime::seconds(
            rng.exponential(p.interval_mean.asSeconds())));
        const double scale = rng.pareto(1.0, p.burst_pareto_alpha);
        const auto burst = static_cast<uint64_t>(
            std::min(static_cast<double>(p.burst_max_cycles),
                     static_cast<double>(p.burst_cycles) * scale));
        co_await t.compute(burst);
    }
}

} // namespace

void
installBackgroundNoise(sim::Cluster &cluster, net::NodeId node,
                       const NoiseParams &params)
{
    cluster.kernel(node).spawnProcess(noiseDaemon(
        cluster.kernel(node), params,
        cluster.rng().fork(node).fork("noise")));
}

void
installBackgroundNoiseEverywhere(sim::Cluster &cluster,
                                 const NoiseParams &params)
{
    for (uint32_t n = 0; n < cluster.size(); ++n) {
        installBackgroundNoise(cluster, n, params);
    }
}

} // namespace apps
} // namespace diablo
