#ifndef DIABLO_APPS_MC_EXPERIMENT_HH_
#define DIABLO_APPS_MC_EXPERIMENT_HH_

/**
 * @file
 * The paper's memcached experiment harness (Figure 7).
 *
 * Builds a cluster, distributes memcached server instances evenly across
 * all racks "to minimize potential hot spots in the network", uses every
 * remaining node as a closed-loop client sending requests to randomly
 * selected servers, runs to completion, and aggregates client latency
 * distributions (overall and per hop class).
 */

#include <functional>
#include <memory>
#include <vector>

#include "apps/memcached.hh"
#include "sim/cluster.hh"

namespace diablo {
namespace sim {
class TelemetryProbe;
} // namespace sim
namespace apps {

/** Full experiment description. */
struct McExperimentParams {
    sim::ClusterParams cluster = sim::ClusterParams::gige1us();
    uint32_t num_servers = 128;
    /**
     * Client count: 0 (the default) installs a client on every
     * non-server node — the paper's harness.  A non-zero value caps
     * the active clients, spread round-robin across racks just like
     * the servers; remaining nodes stay idle (and, on a lazy cluster,
     * unmaterialized — this is what lets a 32,000-node array run in
     * paper-scale memory with a representative traffic subset).
     */
    uint32_t num_clients = 0;
    /**
     * Record client latencies into fixed-memory quantile sketches
     * instead of raw SampleSets (LatencyStat::enableSketch on every
     * client stat and on the aggregated result).  Percentiles then
     * carry the sketch's ~1.6% relative error; raw() and cdf() become
     * unavailable on the results.
     */
    bool sketch_stats = false;
    McServerParams server;
    McClientParams client;
};

/** Aggregated measurements across all clients. */
struct McExperimentResult {
    LatencyStat latency_us;
    LatencyStat latency_us_by_hop[3];
    LatencyStat first_request_us;
    uint64_t udp_timeouts = 0;
    uint64_t udp_retries = 0;
    uint64_t requests_completed = 0;
    SimTime elapsed;
    uint32_t clients = 0;
    uint32_t servers = 0;
};

/** Owns the cluster and all app state for one memcached run. */
class McExperiment {
  public:
    McExperiment(Simulator &sim, const McExperimentParams &params);

    /**
     * Sharded build: the cluster is partitioned rack/switch-wise over
     * @p ps (which must have sim::Cluster::partitionsRequired(
     * params.cluster) partitions and outlive the experiment).  run()
     * then drives the PartitionSet in bounded windows — sequentially
     * or, with run(true), on the parallel engine; both produce
     * bit-identical statistics.
     */
    McExperiment(fame::PartitionSet &ps, const McExperimentParams &params);

    ~McExperiment();

    /**
     * Install apps and run the simulation until every client is done.
     * @p parallel selects runParallel over runSequential for a sharded
     * experiment; it is ignored (and must be false) single-sim.
     */
    void run(bool parallel = false);

    const McExperimentResult &result() const { return result_; }
    sim::Cluster &cluster() { return *cluster_; }
    const std::vector<net::NodeId> &serverNodes() const
    {
        return server_nodes_;
    }

    /**
     * Live fold of per-client progress, for in-run telemetry probes:
     * requests completed so far plus the p99-so-far over every
     * client's latency stat.  Only read between engine windows (or
     * from an event on the single engine), where no worker is running.
     */
    struct LiveStats {
        uint64_t requests_completed = 0;
        double p99_us = 0.0;
    };
    LiveStats liveStats() const;

    /**
     * Attach an in-run telemetry probe (must outlive run()): a
     * single-engine run installs its periodic sampling event; a
     * windowed (sharded) run stops at each sample instant inside the
     * unchanged outer windows.  Either way the simulated results and
     * the window-quantized elapsed time are bit-identical with the
     * probe attached or not.
     */
    void attachTelemetry(sim::TelemetryProbe *probe) { probe_ = probe; }

    /**
     * Periodic run-loop hook for unattended operation, called at safe
     * points where no engine worker is running: every outer window on
     * a sharded run, every few thousand events single-sim.  Return
     * true to abort the run early — run() then folds whatever the
     * clients measured so far into result() and returns, with
     * aborted() set.  diablo_run uses this to honor SIGINT/SIGTERM
     * (finalizing a partial artifact) and to pump its watchdog's
     * progress counter; the hook must only read model state, so an
     * un-tripped pulse never changes simulated results.
     */
    void setPulse(std::function<bool()> pulse)
    {
        pulse_ = std::move(pulse);
    }

    /** True when a pulse hook stopped the run before every client
     *  finished; result() then holds the partial fold. */
    bool aborted() const { return aborted_; }

  private:
    /** Pick the experiment's server nodes (shared ctor tail). */
    void placeServers();

    Simulator *sim_ = nullptr;         ///< non-null iff single-sim
    fame::PartitionSet *ps_ = nullptr; ///< non-null iff sharded
    sim::TelemetryProbe *probe_ = nullptr; ///< optional, not owned
    std::function<bool()> pulse_;      ///< optional abort/progress hook
    bool aborted_ = false;
    McExperimentParams params_;
    std::unique_ptr<sim::Cluster> cluster_;
    std::vector<net::NodeId> server_nodes_;
    std::vector<std::shared_ptr<McClientStats>> client_stats_;
    McExperimentResult result_;
};

} // namespace apps
} // namespace diablo

#endif // DIABLO_APPS_MC_EXPERIMENT_HH_
