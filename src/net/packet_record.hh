#ifndef DIABLO_NET_PACKET_RECORD_HH_
#define DIABLO_NET_PACKET_RECORD_HH_

/**
 * @file
 * POD wire image of a Packet for crossing a process boundary.
 *
 * A ChannelLink whose destination partition lives in another process
 * cannot post a delivery closure — closures do not survive a process
 * boundary — so it flattens the packet into this trivially-copyable
 * record, the transport carries the bytes, and the receiving process
 * materializes an identical replica from its local pool for the same
 * origin partition (ghost accounting: see PacketPool).
 *
 * The record covers exactly the fields the simulated datapath reads
 * downstream of a trunk link.  Two Packet members do not cross:
 *
 *  - `app` (typed application metadata): a shared_ptr into the sending
 *    process's heap.  Serialization fatals on a non-null app — the
 *    multiprocess engine supports workloads that keep trunk packets
 *    metadata-free (incast does; memcached does not and is rejected by
 *    the launcher).
 *  - pool linkage: rebuilt on the receiving side from origin_part.
 *
 * Route spill (routes deeper than SourceRoute::kInlineHops) is fatal
 * for the same reason the spill itself warns: no shipped topology can
 * produce one, and silently truncating a route would misdeliver.
 */

#include <cstdint>
#include <type_traits>

#include "net/packet.hh"

namespace diablo {
namespace net {

/** Flattened Packet; field-for-field with Packet, fixed layout. */
struct PacketRecord {
    static constexpr uint32_t kHeapOrigin = 0xFFFFFFFF;

    uint64_t id = 0;
    uint64_t tcp_seq = 0;
    uint64_t tcp_ack = 0;
    uint64_t tcp_window = 0;
    uint64_t dgram_id = 0;
    uint64_t dgram_bytes = 0;
    int64_t created_ps = 0;
    int64_t first_bit_ps = 0;
    int64_t last_bit_ps = 0;
    uint32_t origin_part = kHeapOrigin; ///< packet's birth partition
    uint32_t payload_bytes = 0;
    uint32_t hop_count = 0;
    uint32_t flow_src = 0;
    uint32_t flow_dst = 0;
    uint16_t flow_sport = 0;
    uint16_t flow_dport = 0;
    uint16_t frag_idx = 0;
    uint16_t frag_count = 1;
    uint16_t route_hops = 0;
    uint16_t route_next = 0;
    uint16_t route_ports[SourceRoute::kInlineHops] = {};
    uint8_t proto = 0;
    uint8_t tcp_flags = 0;
    uint8_t pad[2] = {};
};

static_assert(std::is_trivially_copyable_v<PacketRecord>,
              "PacketRecord must be safe to memcpy across a transport");

/**
 * Flatten @p p into @p out.  Fatal on the non-serializable cases
 * documented above (app metadata, route spill, an untagged pool).
 */
void serializePacket(const Packet &p, PacketRecord *out);

/**
 * Rebuild a packet from @p rec.  @p origin_pool is this process's pool
 * for rec.origin_part (an uncounted ghost make), or null for a heap
 * packet (rec.origin_part == kHeapOrigin).
 */
PacketPtr materializePacket(const PacketRecord &rec,
                            PacketPool *origin_pool);

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_PACKET_RECORD_HH_
