#ifndef DIABLO_NET_LINK_HH_
#define DIABLO_NET_LINK_HH_

/**
 * @file
 * Point-to-point unidirectional link model.
 *
 * A Link is the target-side physical channel between a NIC and a switch
 * port or between two switch ports (the host-side analog in DIABLO is the
 * time-shared multi-gigabit serial transceiver; that is modeled in
 * src/fame).  The link charges serialization time at its configured
 * bandwidth plus a fixed propagation delay, and delivers the packet to the
 * attached sink at last-bit arrival.
 *
 * The link does NOT queue: callers (NIC TX engines, switch egress ports)
 * own their queues so that buffer management policies are modeled where
 * they live in the real hardware.  Callers check busy()/nextFreeTime() and
 * use the tx-done callback to drain.
 *
 * Fault model: a link can be administratively *down* (transmits are
 * dropped and counted, never a panic — degradation is the contract) or
 * *degraded* (a brownout: seeded Bernoulli frame loss plus extra
 * delivery latency).  Both states only affect packets transmitted while
 * the state holds; deliveries already in flight are untouched, so state
 * changes are safe at any simulated instant, including across
 * partition boundaries (a downed ChannelLink simply posts nothing).
 */

#include <functional>
#include <string>

#include "core/random.hh"
#include "core/ring_buffer.hh"
#include "core/simulator.hh"
#include "core/stats.hh"
#include "core/units.hh"
#include "net/packet.hh"

namespace diablo {
namespace net {

/** Unidirectional serializing channel with propagation delay. */
class Link {
  public:
    /**
     * @param sim        owning simulation partition
     * @param name       for tracing
     * @param bw         line rate
     * @param prop       propagation (cable) delay
     */
    Link(Simulator &sim, std::string name, Bandwidth bw, SimTime prop);

    virtual ~Link() = default;

    /** Attach the receiving endpoint; must be called before transmit. */
    void connectTo(PacketSink &sink) { sink_ = &sink; }

    /** Invoked when the transmitter becomes free again. */
    void setTxDoneCallback(std::function<void()> cb)
    {
        tx_done_ = std::move(cb);
    }

    bool busy() const { return sim_.now() < free_at_; }

    /** Time at which the transmitter can accept the next packet. */
    SimTime nextFreeTime() const { return free_at_; }

    /**
     * Begin transmitting @p p now.  Panics if the transmitter is busy or
     * no sink is attached.  Returns the serialization-complete time.
     * Sets the packet's first_bit/last_bit times (arrival side), which
     * cut-through switch models use.
     */
    SimTime transmit(PacketPtr p);

    Bandwidth bandwidth() const { return bw_; }
    SimTime propagationDelay() const { return prop_; }
    const std::string &name() const { return name_; }

    uint64_t packetsSent() const { return packets_.value(); }
    uint64_t bytesSent() const { return wire_bytes_.value(); }

    // ---- fault surface -------------------------------------------------

    bool isUp() const { return up_; }

    /**
     * Administratively raise or lower the link.  A transmit on a downed
     * link is accounted in downDrops() and completes immediately: the
     * tx-done callback still fires (at the current instant), so egress
     * queues upstream drain into counted drops instead of wedging on a
     * transmitter that never frees.  Deliveries already in flight still
     * arrive — only the cable is cut, not causality.
     */
    void setUp(bool up);

    /**
     * Enter brownout: every frame transmitted while degraded is lost
     * with probability @p loss_prob (drawn from a private stream forked
     * from @p seed, so two links given the same seed still diverge by
     * name), and surviving frames see @p extra_latency added on top of
     * propagation.  Extra latency only ever pushes deliveries later, so
     * a degraded ChannelLink can never violate its channel's
     * min-latency contract.
     */
    void setDegraded(double loss_prob, SimTime extra_latency, uint64_t seed);

    /** Leave brownout; subsequent frames are clean again. */
    void clearDegraded();

    bool degraded() const { return degraded_; }

    /** Frames dropped because the link was down at transmit time. */
    uint64_t downDrops() const { return down_drops_.value(); }

    /** Frames lost to brownout while degraded. */
    uint64_t degradeDrops() const { return degrade_drops_.value(); }

    /** Fraction of elapsed sim time the transmitter was busy. */
    double utilization() const;

    // ---- delivery coalescing -------------------------------------------

    /**
     * Enable/disable delivery-train coalescing (default: enabled).
     * Per-packet delivery *times* are identical either way — only how
     * deliveries map onto engine events changes — so disabling exists
     * for the equivalence test and for isolating the mechanism in
     * benchmarks.
     */
    void setDeliveryCoalescing(bool on) { coalesce_ = on; }
    bool deliveryCoalescing() const { return coalesce_; }

    /**
     * Deliveries that rode an already-armed train instead of paying
     * for their own queue slot + packet-owning closure (back-to-back
     * egress bursts — the incast/TCP-window common case).
     */
    uint64_t deliveriesCoalesced() const { return coalesced_.value(); }

    /** Walker arms: trains started (1 event outstanding per train). */
    uint64_t deliveryTrains() const { return trains_.value(); }

  protected:
    /**
     * Schedule the handoff of @p p to the attached sink at absolute
     * time @p when.  The default implementation stays inside the
     * transmitter's own simulation partition; ChannelLink overrides it
     * to carry the delivery across a partition boundary.  Transmit-side
     * bookkeeping (serialization occupancy, tx-done) never crosses.
     */
    virtual void scheduleDelivery(SimTime when, PacketPtr p);

    /** Hand @p p to the sink; runs in the delivering partition. */
    void deliverToSink(PacketPtr p) { sink_->receive(std::move(p)); }

  private:
    /**
     * One entry of the pending delivery train.  Entries are strictly
     * monotone in `when` (each frame serializes after the previous one,
     * so arrival times strictly increase); a non-monotone push — only
     * possible when clearDegraded() removes the brownout's extra
     * latency under deliveries still in flight — bypasses the train
     * with a legacy standalone event instead of reordering it.
     */
    struct PendingDelivery {
        SimTime when;
        PacketPtr pkt;
    };

    /** Deliver every due train entry, then re-arm at the next head. */
    void walkDeliveries();

    /** Pre-coalescing path: one packet-owning event per delivery. */
    void scheduleStandalone(SimTime when, PacketPtr p);

    Simulator &sim_;
    std::string name_;
    Bandwidth bw_;
    SimTime prop_;
    PacketSink *sink_ = nullptr;
    std::function<void()> tx_done_;
    SimTime free_at_;
    SimTime busy_time_;
    Counter packets_;
    Counter wire_bytes_;

    bool up_ = true;
    bool degraded_ = false;
    double degrade_loss_ = 0.0;
    SimTime degrade_extra_;
    // Placeholder state only: setDegraded() reseeds (fork by link name)
    // before any draw is taken.
    Rng degrade_rng_{0x11A8D1AB70ULL};
    Counter down_drops_;
    Counter degrade_drops_;

    bool coalesce_ = true;
    bool walker_armed_ = false;
    RingBuffer<PendingDelivery> pending_;
    Counter coalesced_;
    Counter trains_;
};

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_LINK_HH_
