#include "net/link.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace net {

Link::Link(Simulator &sim, std::string name, Bandwidth bw, SimTime prop)
    : sim_(sim), name_(std::move(name)), bw_(bw), prop_(prop)
{
    if (bw.isZero()) {
        fatal("Link %s: zero bandwidth", name_.c_str());
    }
}

SimTime
Link::transmit(PacketPtr p)
{
    if (busy()) {
        panic("Link %s: transmit while busy", name_.c_str());
    }
    if (sink_ == nullptr) {
        panic("Link %s: no sink attached", name_.c_str());
    }

    if (!up_) {
        // Degradation is the contract: a downed link accounts the drop
        // and releases the transmitter immediately so upstream egress
        // queues drain (into further counted drops) rather than wedge.
        down_drops_.inc();
        if (tx_done_) {
            sim_.schedule(SimTime(), [this] {
                if (tx_done_) {
                    tx_done_();
                }
            });
        }
        return sim_.now();
    }

    const SimTime ser = bw_.transferTime(p->wireBytes());
    const SimTime tx_done = sim_.now() + ser;
    const SimTime arrive_first = sim_.now() + prop_;
    const SimTime arrive_last = tx_done + prop_;

    free_at_ = tx_done;
    busy_time_ += ser;
    packets_.inc();
    wire_bytes_.inc(p->wireBytes());

    p->first_bit = arrive_first;
    p->last_bit = arrive_last;

    // Full-delivery sinks get the packet at last-bit arrival; cut-through
    // sinks once the forwarding header (64 B) has arrived.
    SimTime deliver_at = arrive_last;
    if (sink_->wantsEarlyDelivery()) {
        SimTime header_time = bw_.transferTime(
            eth::kCutThroughHeaderBytes + eth::kPreambleBytes);
        deliver_at = std::min(arrive_first + header_time, arrive_last);
    }

    // Brownout: the frame occupies the transmitter either way, but may
    // be lost on the wire, and survivors arrive late.  Only delaying or
    // dropping keeps ChannelLink's min-latency contract intact.
    bool lost = false;
    if (degraded_) {
        deliver_at += degrade_extra_;
        if (degrade_rng_.bernoulli(degrade_loss_)) {
            degrade_drops_.inc();
            lost = true;
        }
    }
    if (!lost) {
        scheduleDelivery(deliver_at, std::move(p));
    }

    // Notify the transmitter owner when the line frees up.
    if (tx_done_) {
        sim_.scheduleAt(tx_done, [this] {
            if (tx_done_) {
                tx_done_();
            }
        });
    }
    return tx_done;
}

void
Link::setUp(bool up)
{
    up_ = up;
}

void
Link::setDegraded(double loss_prob, SimTime extra_latency, uint64_t seed)
{
    if (loss_prob < 0.0 || loss_prob > 1.0) {
        fatal("Link %s: degrade loss probability %f out of [0,1]",
              name_.c_str(), loss_prob);
    }
    if (extra_latency < SimTime()) {
        fatal("Link %s: negative degrade latency", name_.c_str());
    }
    degraded_ = true;
    degrade_loss_ = loss_prob;
    degrade_extra_ = extra_latency;
    degrade_rng_ = Rng(seed).fork(name_).fork("link-degrade");
}

void
Link::clearDegraded()
{
    degraded_ = false;
    degrade_loss_ = 0.0;
    degrade_extra_ = SimTime();
}

void
Link::scheduleStandalone(SimTime when, PacketPtr p)
{
    // The event owns the packet: a run can stop at its horizon with
    // deliveries still queued, and those must be reclaimed with the
    // queue, not leaked.
    sim_.scheduleAt(when, [this, p = std::move(p)]() mutable {
        deliverToSink(std::move(p));
    });
}

void
Link::scheduleDelivery(SimTime when, PacketPtr p)
{
    if (!coalesce_) {
        scheduleStandalone(when, std::move(p));
        return;
    }
    if (!pending_.empty() && when < pending_.back().when) {
        // clearDegraded() under in-flight deliveries is the only way
        // arrivals go non-monotone; keep the train sorted by sending
        // the early packet through its own event.
        scheduleStandalone(when, std::move(p));
        return;
    }
    pending_.push_back(PendingDelivery{when, std::move(p)});
    if (walker_armed_) {
        // Rode the outstanding walker: no queue slot, no packet-owning
        // closure, no per-delivery schedule.
        coalesced_.inc();
        return;
    }
    walker_armed_ = true;
    trains_.inc();
    sim_.scheduleAt(when, [this] { walkDeliveries(); });
}

void
Link::walkDeliveries()
{
    // Deliver everything due.  Entry times strictly increase, so this
    // is normally exactly one packet — the win is structural: at most
    // one delivery event is outstanding per link (instead of one per
    // in-flight packet), its closure is a trivially-destructible
    // [this], and packets wait in the link's own ring rather than
    // moving through event-queue slots.  Per-packet delivery times are
    // preserved exactly: the walker re-arms at the next head's `when`.
    const SimTime now = sim_.now();
    while (!pending_.empty() && pending_.front().when <= now) {
        PacketPtr p = std::move(pending_.front().pkt);
        pending_.pop_front();
        // A sink may reenter scheduleDelivery (cascaded forwarding);
        // the entry is popped first so the train stays consistent.
        deliverToSink(std::move(p));
    }
    if (!pending_.empty()) {
        sim_.scheduleAt(pending_.front().when, [this] {
            walkDeliveries();
        });
    } else {
        walker_armed_ = false;
    }
}

double
Link::utilization() const
{
    if (sim_.now().isZero()) {
        return 0.0;
    }
    return busy_time_.asSeconds() / sim_.now().asSeconds();
}

} // namespace net
} // namespace diablo
