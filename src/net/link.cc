#include "net/link.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace net {

Link::Link(Simulator &sim, std::string name, Bandwidth bw, SimTime prop)
    : sim_(sim), name_(std::move(name)), bw_(bw), prop_(prop)
{
    if (bw.isZero()) {
        fatal("Link %s: zero bandwidth", name_.c_str());
    }
}

SimTime
Link::transmit(PacketPtr p)
{
    if (busy()) {
        panic("Link %s: transmit while busy", name_.c_str());
    }
    if (sink_ == nullptr) {
        panic("Link %s: no sink attached", name_.c_str());
    }

    const SimTime ser = bw_.transferTime(p->wireBytes());
    const SimTime tx_done = sim_.now() + ser;
    const SimTime arrive_first = sim_.now() + prop_;
    const SimTime arrive_last = tx_done + prop_;

    free_at_ = tx_done;
    busy_time_ += ser;
    packets_.inc();
    wire_bytes_.inc(p->wireBytes());

    p->first_bit = arrive_first;
    p->last_bit = arrive_last;

    // Full-delivery sinks get the packet at last-bit arrival; cut-through
    // sinks once the forwarding header (64 B) has arrived.
    SimTime deliver_at = arrive_last;
    if (sink_->wantsEarlyDelivery()) {
        SimTime header_time = bw_.transferTime(
            eth::kCutThroughHeaderBytes + eth::kPreambleBytes);
        deliver_at = std::min(arrive_first + header_time, arrive_last);
    }
    scheduleDelivery(deliver_at, std::move(p));

    // Notify the transmitter owner when the line frees up.
    if (tx_done_) {
        sim_.scheduleAt(tx_done, [this] {
            if (tx_done_) {
                tx_done_();
            }
        });
    }
    return tx_done;
}

void
Link::scheduleDelivery(SimTime when, PacketPtr p)
{
    Packet *raw = p.release();
    sim_.scheduleAt(when, [this, raw] {
        deliverToSink(PacketPtr(raw));
    });
}

double
Link::utilization() const
{
    if (sim_.now().isZero()) {
        return 0.0;
    }
    return busy_time_.asSeconds() / sim_.now().asSeconds();
}

} // namespace net
} // namespace diablo
