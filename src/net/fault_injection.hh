#ifndef DIABLO_NET_FAULT_INJECTION_HH_
#define DIABLO_NET_FAULT_INJECTION_HH_

/**
 * @file
 * Fault injection for links: deterministic packet loss, either by
 * explicit packet index or by seeded Bernoulli trials.
 *
 * DIABLO is "fully parameterizable and fully instrumented, and supports
 * repeatable deterministic experiments" — fault injection follows the
 * same rule: a drop schedule is a pure function of the seed and the
 * arrival sequence, so loss-recovery tests are exactly reproducible.
 */

#include <functional>
#include <set>

#include "core/random.hh"
#include "core/stats.hh"
#include "net/packet.hh"

namespace diablo {
namespace net {

/**
 * A sink wrapper that drops selected packets before forwarding.
 * Interpose between a Link and its real destination:
 *
 *   LossySink lossy(nic);
 *   lossy.dropArrivals({3, 4});   // drop the 4th and 5th arrivals
 *   link.connectTo(lossy);
 */
class LossySink : public PacketSink {
  public:
    explicit LossySink(PacketSink &inner) : inner_(inner) {}

    /** Drop packets by 0-based arrival index. */
    void
    dropArrivals(std::set<uint64_t> indices)
    {
        drop_indices_ = std::move(indices);
    }

    /**
     * Drop each arrival independently with probability @p p, drawn from
     * a private stream forked from @p seed.  Taking a seed (not a
     * generator) means two sinks can never share or duplicate a stream:
     * each owns its draws, and distinct seeds give independent loss
     * patterns.
     */
    void
    dropRandomly(double p, uint64_t seed)
    {
        drop_prob_ = p;
        rng_ = Rng(seed).fork("lossy-sink");
    }

    /** Drop arrivals for which @p pred returns true. */
    void
    dropIf(std::function<bool(const Packet &)> pred)
    {
        pred_ = std::move(pred);
    }

    void
    receive(PacketPtr p) override
    {
        const uint64_t idx = arrivals_.value();
        arrivals_.inc();
        // Cause precedence: explicit index, then random, then predicate;
        // each drop is attributed to exactly one cause counter.
        if (drop_indices_.count(idx) > 0) {
            dropped_by_index_.inc();
            return;
        }
        if (drop_prob_ > 0 && rng_.bernoulli(drop_prob_)) {
            dropped_randomly_.inc();
            return;
        }
        if (pred_ && pred_(*p)) {
            dropped_by_predicate_.inc();
            return;
        }
        inner_.receive(std::move(p));
    }

    bool
    wantsEarlyDelivery() const override
    {
        return inner_.wantsEarlyDelivery();
    }

    uint64_t arrivals() const { return arrivals_.value(); }

    /** Per-cause drop counts. */
    uint64_t droppedByIndex() const { return dropped_by_index_.value(); }
    uint64_t droppedRandomly() const { return dropped_randomly_.value(); }
    uint64_t droppedByPredicate() const
    {
        return dropped_by_predicate_.value();
    }

    /** Total across all causes. */
    uint64_t
    dropped() const
    {
        return droppedByIndex() + droppedRandomly() + droppedByPredicate();
    }

  private:
    PacketSink &inner_;
    std::set<uint64_t> drop_indices_;
    double drop_prob_ = 0.0;
    // Placeholder state only: dropRandomly() reseeds before any draw.
    Rng rng_{0x11A8D1AB71ULL};
    std::function<bool(const Packet &)> pred_;
    Counter arrivals_;
    Counter dropped_by_index_;
    Counter dropped_randomly_;
    Counter dropped_by_predicate_;
};

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_FAULT_INJECTION_HH_
