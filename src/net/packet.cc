#include "net/packet.hh"

#include <atomic>

#include "core/log.hh"
#include "core/simulator.hh"

namespace diablo {
namespace net {

namespace {

uint64_t
freshPacketId()
{
    static std::atomic<uint64_t> next_id{1};
    return next_id.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Return a recycled packet to its factory-fresh state.  Every field a
 * sender could have set must be reset here — a stale tcp/frag/app field
 * leaking into a reused packet is a silent cross-flow corruption (the
 * pool tests cover exactly this).  pool/pool_next are the pool's own
 * bookkeeping and are managed by make()/recycle().
 */
void
resetPacket(Packet &p)
{
    p.flow = FlowKey{};
    p.tcp = TcpFields{};
    p.payload_bytes = 0;
    p.dgram_id = 0;
    p.dgram_bytes = 0;
    p.frag_idx = 0;
    p.frag_count = 1;
    p.route.clear();
    p.created = SimTime();
    p.first_bit = SimTime();
    p.last_bit = SimTime();
    p.hop_count = 0;
}

} // namespace

const char *
protoName(Proto p)
{
    switch (p) {
      case Proto::Udp: return "UDP";
      case Proto::Tcp: return "TCP";
    }
    return "?";
}

void
sourceRouteOverrun(uint64_t pkt_id, size_t next, size_t hops)
{
    panic("SourceRoute: hop %zu past the end of a %zu-hop route "
          "(packet #%llu)",
          next, hops, static_cast<unsigned long long>(pkt_id));
}

std::string
SourceRoute::str() const
{
    std::string out = "[";
    for (size_t i = 0; i < hops_; ++i) {
        if (i) {
            out += ",";
        }
        if (i == next_) {
            out += "*";
        }
        out += std::to_string(port(i));
    }
    out += "]";
    return out;
}

std::string
FlowKey::str() const
{
    return strprintf("%s %u:%u->%u:%u", protoName(proto), src, sport, dst,
                     dport);
}

uint32_t
Packet::transportHeaderBytes() const
{
    return flow.proto == Proto::Tcp ? ip::kTcpHeaderBytes
                                    : ip::kUdpHeaderBytes;
}

uint32_t
Packet::l3Bytes() const
{
    return payload_bytes + transportHeaderBytes() + ip::kIpv4HeaderBytes +
           route.headerBytes();
}

std::string
Packet::str() const
{
    return strprintf("pkt#%llu %s payload=%uB l3=%uB",
                     static_cast<unsigned long long>(id),
                     flow.str().c_str(), payload_bytes, l3Bytes());
}

// ---------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------

void
PacketDeleter::operator()(Packet *p) const
{
    if (p->pool != nullptr) {
        p->pool->recycle(p);
    } else {
        delete p;
    }
}

PacketPool::~PacketPool()
{
    Packet *p = free_head_.load(std::memory_order_acquire);
    while (p != nullptr) {
        Packet *next = p->pool_next;
        delete p;
        p = next;
    }
}

PacketPtr
PacketPool::make()
{
    ++makes_;
    const uint64_t live = makes_ - returns_.load(std::memory_order_relaxed);
    if (live > high_water_) {
        high_water_ = live;
    }

    // Single-consumer Treiber pop: producers only ever push new heads,
    // so head->pool_next is stable while head is reachable (no ABA).
    Packet *head = free_head_.load(std::memory_order_acquire);
    while (head != nullptr &&
           !free_head_.compare_exchange_weak(head, head->pool_next,
                                             std::memory_order_acquire,
                                             std::memory_order_acquire)) {
    }
    if (head == nullptr) {
        ++heap_allocs_;
        head = new Packet();
        head->pool = this;
    }
    head->pool_next = nullptr;
    head->id = freshPacketId();
    return PacketPtr(head);
}

void
PacketPool::pushFree(Packet *p)
{
    // Reset eagerly (not at reuse) so held resources — the app
    // shared_ptr above all — release at the packet's natural death, and
    // a parked freelist never pins application message descriptors.
    resetPacket(*p);
    p->app.reset();
    p->id = 0;
    Packet *head = free_head_.load(std::memory_order_relaxed);
    do {
        p->pool_next = head;
    } while (!free_head_.compare_exchange_weak(head, p,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
}

void
PacketPool::recycle(Packet *p)
{
    returns_.fetch_add(1, std::memory_order_relaxed);
    pushFree(p);
}

PacketPtr
PacketPool::makeGhost()
{
    // Uncounted make (see the header's ghost-accounting note): same
    // freelist pop as make(), but no makes_/high-water/heap bookkeeping
    // and no fresh id — the caller rewrites every field from the wire
    // record, id included.
    Packet *head = free_head_.load(std::memory_order_acquire);
    while (head != nullptr &&
           !free_head_.compare_exchange_weak(head, head->pool_next,
                                             std::memory_order_acquire,
                                             std::memory_order_acquire)) {
    }
    if (head == nullptr) {
        head = new Packet();
        head->pool = this;
    }
    head->pool_next = nullptr;
    return PacketPtr(head);
}

void
PacketPool::recycleGhost(Packet *p)
{
    pushFree(p);
}

void
releaseGhost(PacketPtr p)
{
    Packet *raw = p.release();
    if (raw->pool != nullptr) {
        raw->pool->recycleGhost(raw);
    } else {
        delete raw;
    }
}

PacketPtr
makePacket()
{
    auto *p = new Packet();
    p->id = freshPacketId();
    return PacketPtr(p);
}

PacketPool &
packetPoolOf(Simulator &sim)
{
    auto *pool = static_cast<PacketPool *>(sim.attachment());
    if (pool == nullptr) {
        pool = new PacketPool();
        sim.setAttachment(pool, [](void *raw) {
            delete static_cast<PacketPool *>(raw);
        });
    }
    return *pool;
}

PacketPool *
packetPoolIfAttached(Simulator &sim)
{
    return static_cast<PacketPool *>(sim.attachment());
}

PacketPtr
makePacket(Simulator &sim)
{
    return packetPoolOf(sim).make();
}

} // namespace net
} // namespace diablo
