#include "net/packet.hh"

#include <atomic>

#include "core/log.hh"

namespace diablo {
namespace net {

const char *
protoName(Proto p)
{
    switch (p) {
      case Proto::Udp: return "UDP";
      case Proto::Tcp: return "TCP";
    }
    return "?";
}

std::string
SourceRoute::str() const
{
    std::string out = "[";
    for (size_t i = 0; i < ports_.size(); ++i) {
        if (i) {
            out += ",";
        }
        if (i == next_) {
            out += "*";
        }
        out += std::to_string(ports_[i]);
    }
    out += "]";
    return out;
}

std::string
FlowKey::str() const
{
    return strprintf("%s %u:%u->%u:%u", protoName(proto), src, sport, dst,
                     dport);
}

uint32_t
Packet::transportHeaderBytes() const
{
    return flow.proto == Proto::Tcp ? ip::kTcpHeaderBytes
                                    : ip::kUdpHeaderBytes;
}

uint32_t
Packet::l3Bytes() const
{
    return payload_bytes + transportHeaderBytes() + ip::kIpv4HeaderBytes +
           route.headerBytes();
}

std::string
Packet::str() const
{
    return strprintf("pkt#%llu %s payload=%uB l3=%uB",
                     static_cast<unsigned long long>(id),
                     flow.str().c_str(), payload_bytes, l3Bytes());
}

PacketPtr
makePacket()
{
    static std::atomic<uint64_t> next_id{1};
    auto p = std::make_unique<Packet>();
    p->id = next_id.fetch_add(1, std::memory_order_relaxed);
    return p;
}

} // namespace net
} // namespace diablo
