#ifndef DIABLO_NET_CHANNEL_LINK_HH_
#define DIABLO_NET_CHANNEL_LINK_HH_

/**
 * @file
 * A Link whose receive side lives in a different simulation partition.
 *
 * DIABLO carries rack-to-switch traffic between FPGAs over time-shared
 * multi-gigabit serial transceivers, synchronized at fine granularity
 * (§3.2).  ChannelLink is that boundary in software: the transmit side
 * (serialization occupancy, tx-done callbacks, byte counters) runs in
 * the source partition exactly like a plain Link, but the delivery
 * event is posted through a caller-supplied remote-post hook — in
 * practice a fame::PartitionSet::Channel — so the packet surfaces in
 * the destination partition's event queue at the correct simulated
 * time.
 *
 * The hook is deliberately a plain callable rather than a
 * PartitionSet::Channel pointer: net/ stays independent of the fame
 * engine, and tests can substitute an in-process recorder.
 *
 * Lookahead: a ChannelLink can never deliver earlier than
 * minDeliveryLatency(bw, prop) after transmit() — the propagation delay
 * plus the serialization time of the cut-through forwarding header
 * (which lower-bounds full-frame serialization too, since every frame
 * is at least the 64-byte Ethernet minimum).  Wiring code advertises
 * exactly this bound as the channel's min_latency, making it the
 * conservative-parallel engine's synchronization quantum.
 */

#include <functional>

#include "core/event.hh"
#include "net/link.hh"

namespace diablo {
namespace net {

struct PacketRecord;

/** Cross-partition link: local transmitter, remote delivery. */
class ChannelLink : public Link {
  public:
    /** Posts @p fn into the destination partition at time @p when. */
    using RemotePost = std::function<void(SimTime when, EventFn fn)>;

    /** Posts a flattened packet toward a foreign process's partition. */
    using RecordPost =
        std::function<void(SimTime when, const PacketRecord &rec)>;

    /**
     * @param src_sim  partition owning the transmitter
     * @param name     for tracing and channel diagnostics
     * @param bw       line rate
     * @param prop     propagation (cable) delay
     * @param post     remote-post hook (a PartitionSet::Channel's post)
     */
    ChannelLink(Simulator &src_sim, std::string name, Bandwidth bw,
                SimTime prop, RemotePost post);

    /**
     * Conservative lower bound on transmit-to-delivery latency of any
     * packet on a link with line rate @p bw and propagation @p prop:
     * the safe cross-partition lookahead for a channel carrying this
     * link's deliveries.
     */
    static SimTime minDeliveryLatency(Bandwidth bw, SimTime prop);

    /**
     * Arm the cross-process path.  While @p remote (owned by the fame
     * channel, stable for the link's lifetime) reads true, deliveries
     * are flattened to PacketRecords and handed to @p post instead of
     * being posted as closures; while it reads false the in-process
     * closure path runs unchanged.  Uncoupled runs never call this, so
     * their hot path keeps a single null check.
     */
    void enableRecordPath(const bool *remote, RecordPost post);

    /**
     * Receiving-process entry point: deliver a packet materialized
     * from a wire record to this link's sink, exactly as the closure
     * path would have.  Called by the cluster wiring's channel decoder
     * in the process owning the destination partition.
     */
    void receiveRecord(PacketPtr p) { deliverToSink(std::move(p)); }

  protected:
    void scheduleDelivery(SimTime when, PacketPtr p) override;

  private:
    RemotePost post_;
    const bool *record_remote_ = nullptr;
    RecordPost record_post_;
};

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_CHANNEL_LINK_HH_
