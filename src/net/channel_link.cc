#include "net/channel_link.hh"

#include "core/log.hh"
#include "core/units.hh"
#include "net/packet_record.hh"

namespace diablo {
namespace net {

ChannelLink::ChannelLink(Simulator &src_sim, std::string name,
                         Bandwidth bw, SimTime prop, RemotePost post)
    : Link(src_sim, std::move(name), bw, prop), post_(std::move(post))
{
    if (!post_) {
        fatal("ChannelLink %s: no remote-post hook", this->name().c_str());
    }
    if (prop <= SimTime()) {
        // With zero propagation a minimum-size frame's delivery time
        // still bounds the lookahead, but a real cable keeps the
        // quantum from collapsing to the header serialization time;
        // cross-partition cables always have one.
        fatal("ChannelLink %s: propagation delay must be positive "
              "(it is part of the conservative lookahead)",
              this->name().c_str());
    }
}

SimTime
ChannelLink::minDeliveryLatency(Bandwidth bw, SimTime prop)
{
    // Earliest possible handoff is a cut-through sink's header-arrival
    // delivery: first bit at prop, plus the 64-byte forwarding header
    // (and preamble) at line rate.  Full-delivery sinks wait for the
    // whole frame, which is at least the 64-byte Ethernet minimum plus
    // framing, so this bound holds for them as well.
    return prop + bw.transferTime(eth::kCutThroughHeaderBytes +
                                  eth::kPreambleBytes);
}

void
ChannelLink::enableRecordPath(const bool *remote, RecordPost post)
{
    if (remote == nullptr || !post) {
        fatal("ChannelLink %s: enableRecordPath with no flag or hook",
              name().c_str());
    }
    record_remote_ = remote;
    record_post_ = std::move(post);
}

void
ChannelLink::scheduleDelivery(SimTime when, PacketPtr p)
{
    if (record_remote_ != nullptr && *record_remote_) {
        // Destination partition owned by a peer process: flatten the
        // packet, retire the local copy uncounted (its replica will be
        // counted at its real death over there), and let the wiring
        // layer buffer the record for the next window flush.
        PacketRecord rec;
        serializePacket(*p, &rec);
        releaseGhost(std::move(p));
        record_post_(when, rec);
        return;
    }
    // The posted event runs in the destination partition; it only
    // touches the sink (destination-side state) and the packet it
    // carries, never the transmit-side bookkeeping.  The event owns the
    // packet so frames still in flight when a run stops are reclaimed
    // with the destination queue.
    auto deliver = [this, p = std::move(p)]() mutable {
        deliverToSink(std::move(p));
    };
    // This closure is constructed once per cross-partition packet on
    // the trunk hot path; it must ride the EventFn small-buffer path
    // end to end (post -> channel buffer -> destination queue slot).
    static_assert(EventFn::inlineable<decltype(deliver)>(),
                  "ChannelLink delivery closure outgrew the EventFn "
                  "inline buffer (per-message heap allocation)");
    post_(when, EventFn(std::move(deliver)));
}

} // namespace net
} // namespace diablo
