#include "net/packet_record.hh"

#include "core/log.hh"

namespace diablo {
namespace net {

void
serializePacket(const Packet &p, PacketRecord *out)
{
    if (p.app != nullptr) {
        fatal("serializePacket: %s carries application metadata, which "
              "cannot cross a process boundary (workload unsupported by "
              "the multiprocess engine)",
              p.str().c_str());
    }
    if (p.route.hops() > SourceRoute::kInlineHops) {
        fatal("serializePacket: %s has a %zu-hop spilled route (wire "
              "format carries %zu)",
              p.str().c_str(), p.route.hops(), SourceRoute::kInlineHops);
    }
    if (p.pool != nullptr) {
        const int64_t tag = p.pool->tag();
        if (tag < 0) {
            fatal("serializePacket: %s comes from an untagged pool; "
                  "coupled wiring must tag every partition pool",
                  p.str().c_str());
        }
        out->origin_part = static_cast<uint32_t>(tag);
    } else {
        out->origin_part = PacketRecord::kHeapOrigin;
    }
    out->id = p.id;
    out->tcp_seq = p.tcp.seq;
    out->tcp_ack = p.tcp.ack;
    out->tcp_window = p.tcp.window;
    out->tcp_flags = p.tcp.flags;
    out->dgram_id = p.dgram_id;
    out->dgram_bytes = p.dgram_bytes;
    out->frag_idx = p.frag_idx;
    out->frag_count = p.frag_count;
    out->created_ps = p.created.toPs();
    out->first_bit_ps = p.first_bit.toPs();
    out->last_bit_ps = p.last_bit.toPs();
    out->payload_bytes = p.payload_bytes;
    out->hop_count = p.hop_count;
    out->flow_src = p.flow.src;
    out->flow_dst = p.flow.dst;
    out->flow_sport = p.flow.sport;
    out->flow_dport = p.flow.dport;
    out->proto = static_cast<uint8_t>(p.flow.proto);
    out->route_hops = static_cast<uint16_t>(p.route.hops());
    out->route_next = static_cast<uint16_t>(p.route.nextIndex());
    for (size_t i = 0; i < p.route.hops(); ++i) {
        out->route_ports[i] = p.route.portAt(i);
    }
}

PacketPtr
materializePacket(const PacketRecord &rec, PacketPool *origin_pool)
{
    if ((rec.origin_part == PacketRecord::kHeapOrigin) !=
        (origin_pool == nullptr)) {
        fatal("materializePacket: origin partition %u but %s pool",
              rec.origin_part, origin_pool ? "a" : "no");
    }
    if (rec.route_hops > SourceRoute::kInlineHops ||
        rec.route_next > rec.route_hops) {
        fatal("materializePacket: malformed route (hops %u, next %u)",
              rec.route_hops, rec.route_next);
    }
    PacketPtr p =
        origin_pool ? origin_pool->makeGhost() : PacketPtr(new Packet());
    p->id = rec.id;
    p->flow.src = rec.flow_src;
    p->flow.dst = rec.flow_dst;
    p->flow.sport = rec.flow_sport;
    p->flow.dport = rec.flow_dport;
    p->flow.proto = static_cast<Proto>(rec.proto);
    p->tcp.seq = rec.tcp_seq;
    p->tcp.ack = rec.tcp_ack;
    p->tcp.window = rec.tcp_window;
    p->tcp.flags = rec.tcp_flags;
    p->payload_bytes = rec.payload_bytes;
    p->dgram_id = rec.dgram_id;
    p->dgram_bytes = rec.dgram_bytes;
    p->frag_idx = rec.frag_idx;
    p->frag_count = rec.frag_count;
    for (uint16_t i = 0; i < rec.route_hops; ++i) {
        p->route.append(rec.route_ports[i]);
    }
    for (uint16_t i = 0; i < rec.route_next; ++i) {
        p->route.advance(rec.id);
    }
    p->created = SimTime::ps(rec.created_ps);
    p->first_bit = SimTime::ps(rec.first_bit_ps);
    p->last_bit = SimTime::ps(rec.last_bit_ps);
    p->hop_count = rec.hop_count;
    return p;
}

} // namespace net
} // namespace diablo
