#ifndef DIABLO_NET_ADDR_HH_
#define DIABLO_NET_ADDR_HH_

/**
 * @file
 * Addressing types for the simulated WSC network.
 *
 * Servers are identified by a dense NodeId.  Following the paper (§3.3,
 * "Use simplified source routing"), packets carry a precomputed source
 * route — the sequence of output-port indices at each switch hop — rather
 * than being looked up in per-switch flow tables, since WSC topologies are
 * static and routes can be preconfigured.
 */

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace diablo {
namespace net {

/** Dense identifier of a simulated server. */
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFF;

/** Transport protocol carried by a packet. */
enum class Proto : uint8_t { Udp, Tcp };

const char *protoName(Proto p);

/** Diagnostic for a hop()/advance() past the end of a route; the packet
 *  id (0 when unknown) names the offender.  Defined in packet.cc. */
[[noreturn]] void sourceRouteOverrun(uint64_t pkt_id, size_t next,
                                     size_t hops);

/**
 * Source route: output-port index to take at each successive switch.
 *
 * hop() returns the port for the current switch; advance() is called by
 * each switch's functional model as the packet leaves it.
 *
 * Storage is an inline fixed array sized for the deepest route any
 * supported topology emits (a cross-array Clos path is 5 hops:
 * rack -> array -> DC -> array -> rack); building one therefore touches
 * no allocator on the per-packet path.  Deeper routes — experimental
 * topologies only — spill to a heap vector transparently, and
 * topo::ClosNetwork static_asserts its diameter against kInlineHops so
 * the spill can never be hit silently by the shipped fabric.
 */
class SourceRoute {
  public:
    /** Inline hop capacity; >= the 5-hop max Clos diameter with room
     *  for deeper experimental fabrics before the spill engages. */
    static constexpr size_t kInlineHops = 8;

    SourceRoute() = default;

    SourceRoute(std::initializer_list<uint16_t> ports)
    {
        for (uint16_t p : ports) {
            append(p);
        }
    }

    explicit SourceRoute(const std::vector<uint16_t> &ports)
    {
        for (uint16_t p : ports) {
            append(p);
        }
    }

    void
    append(uint16_t port)
    {
        if (hops_ < kInlineHops) {
            inline_[hops_] = port;
        } else {
            spill_.push_back(port);
        }
        ++hops_;
    }

    bool exhausted() const { return next_ >= hops_; }
    size_t remaining() const { return hops_ - next_; }
    size_t hops() const { return hops_; }

    /**
     * Output port at the current switch.  @p pkt_id (the packet's id,
     * when the caller has one) names the offender if the route is
     * already exhausted — which previously read past the storage
     * silently.
     */
    uint16_t
    hop(uint64_t pkt_id = 0) const
    {
        if (next_ >= hops_) {
            sourceRouteOverrun(pkt_id, next_, hops_);
        }
        return port(next_);
    }

    void
    advance(uint64_t pkt_id = 0)
    {
        if (next_ >= hops_) {
            sourceRouteOverrun(pkt_id, next_, hops_);
        }
        ++next_;
    }

    /** Reset to an empty, un-advanced route (pool recycling). */
    void
    clear()
    {
        hops_ = 0;
        next_ = 0;
        if (!spill_.empty()) {
            spill_.clear();
        }
    }

    /** Bytes this route header occupies on the wire (1 byte per hop). */
    uint32_t headerBytes() const { return static_cast<uint32_t>(hops_); }

    /** Port at absolute hop @p i (serialization; @p i < hops()). */
    uint16_t portAt(size_t i) const { return port(i); }

    /** Hops already advanced past (serialization). */
    size_t nextIndex() const { return next_; }

    std::string str() const;

  private:
    uint16_t
    port(size_t i) const
    {
        return i < kInlineHops ? inline_[i] : spill_[i - kInlineHops];
    }

    uint16_t inline_[kInlineHops] = {};
    uint16_t hops_ = 0;
    uint16_t next_ = 0;
    std::vector<uint16_t> spill_; ///< hops beyond kInlineHops (rare)
};

/** Connection/flow identity: (src, sport, dst, dport, proto). */
struct FlowKey {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    uint16_t sport = 0;
    uint16_t dport = 0;
    Proto proto = Proto::Udp;

    bool operator==(const FlowKey &) const = default;

    /** The reverse direction of this flow. */
    FlowKey
    reversed() const
    {
        return FlowKey{dst, src, dport, sport, proto};
    }

    std::string str() const;
};

struct FlowKeyHash {
    size_t
    operator()(const FlowKey &k) const
    {
        uint64_t h = k.src;
        h = h * 0x100000001B3ULL ^ k.dst;
        h = h * 0x100000001B3ULL ^ k.sport;
        h = h * 0x100000001B3ULL ^ k.dport;
        h = h * 0x100000001B3ULL ^ static_cast<uint8_t>(k.proto);
        return static_cast<size_t>(h ^ (h >> 32));
    }
};

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_ADDR_HH_
