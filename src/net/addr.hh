#ifndef DIABLO_NET_ADDR_HH_
#define DIABLO_NET_ADDR_HH_

/**
 * @file
 * Addressing types for the simulated WSC network.
 *
 * Servers are identified by a dense NodeId.  Following the paper (§3.3,
 * "Use simplified source routing"), packets carry a precomputed source
 * route — the sequence of output-port indices at each switch hop — rather
 * than being looked up in per-switch flow tables, since WSC topologies are
 * static and routes can be preconfigured.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace diablo {
namespace net {

/** Dense identifier of a simulated server. */
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFF;

/** Transport protocol carried by a packet. */
enum class Proto : uint8_t { Udp, Tcp };

const char *protoName(Proto p);

/**
 * Source route: output-port index to take at each successive switch.
 *
 * hop() returns the port for the current switch; advance() is called by
 * each switch's functional model as the packet leaves it.
 */
class SourceRoute {
  public:
    SourceRoute() = default;
    explicit SourceRoute(std::vector<uint16_t> ports)
        : ports_(std::move(ports)) {}

    void append(uint16_t port) { ports_.push_back(port); }

    bool exhausted() const { return next_ >= ports_.size(); }
    size_t remaining() const { return ports_.size() - next_; }
    size_t hops() const { return ports_.size(); }

    uint16_t
    hop() const
    {
        return ports_[next_];
    }

    void advance() { ++next_; }

    /** Bytes this route header occupies on the wire (1 byte per hop). */
    uint32_t headerBytes() const
    {
        return static_cast<uint32_t>(ports_.size());
    }

    std::string str() const;

  private:
    std::vector<uint16_t> ports_;
    size_t next_ = 0;
};

/** Connection/flow identity: (src, sport, dst, dport, proto). */
struct FlowKey {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    uint16_t sport = 0;
    uint16_t dport = 0;
    Proto proto = Proto::Udp;

    bool operator==(const FlowKey &) const = default;

    /** The reverse direction of this flow. */
    FlowKey
    reversed() const
    {
        return FlowKey{dst, src, dport, sport, proto};
    }

    std::string str() const;
};

struct FlowKeyHash {
    size_t
    operator()(const FlowKey &k) const
    {
        uint64_t h = k.src;
        h = h * 0x100000001B3ULL ^ k.dst;
        h = h * 0x100000001B3ULL ^ k.sport;
        h = h * 0x100000001B3ULL ^ k.dport;
        h = h * 0x100000001B3ULL ^ static_cast<uint8_t>(k.proto);
        return static_cast<size_t>(h ^ (h >> 32));
    }
};

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_ADDR_HH_
