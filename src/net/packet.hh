#ifndef DIABLO_NET_PACKET_HH_
#define DIABLO_NET_PACKET_HH_

/**
 * @file
 * The simulated network packet.
 *
 * DIABLO models "the movement of every byte in every packet"; in software
 * we carry exact byte *counts* for every protocol layer (application
 * payload, transport header, IP header, Ethernet framing including
 * preamble/FCS/IFG and minimum-frame padding) so all serialization,
 * buffering, and goodput numbers are byte-accurate, while application
 * message *content* rides along as a typed metadata pointer rather than a
 * literal byte image.
 */

#include <cstdint>
#include <memory>
#include <string>

#include "core/time.hh"
#include "core/units.hh"
#include "net/addr.hh"

namespace diablo {
namespace net {

/** TCP header flags. */
namespace tcp_flags {
inline constexpr uint8_t kSyn = 1 << 0;
inline constexpr uint8_t kAck = 1 << 1;
inline constexpr uint8_t kFin = 1 << 2;
inline constexpr uint8_t kRst = 1 << 3;
} // namespace tcp_flags

/**
 * TCP-specific header fields (valid when proto == Proto::Tcp).
 * Sequence numbers are modeled as unwrapped 64-bit stream offsets; the
 * on-wire header size is still accounted as the standard 20 bytes.
 */
struct TcpFields {
    uint64_t seq = 0;       ///< first payload byte's stream offset
    uint64_t ack = 0;       ///< cumulative acknowledgment
    uint8_t flags = 0;      ///< tcp_flags combination
    uint64_t window = 0;    ///< advertised receive window, bytes

    bool has(uint8_t f) const { return (flags & f) != 0; }
};

/** Opaque application message metadata attached to a packet. */
struct AppData {
    virtual ~AppData() = default;
};

/**
 * A simulated packet.  Owned uniquely; moves through NIC, links and
 * switches by transfer of the unique_ptr.
 */
struct Packet {
    uint64_t id = 0;            ///< globally unique, for tracing

    FlowKey flow;               ///< 5-tuple
    TcpFields tcp;              ///< valid iff flow.proto == Tcp
    uint32_t payload_bytes = 0; ///< application-layer payload length

    // --- UDP/IP fragmentation (valid iff flow.proto == Udp) ---
    uint64_t dgram_id = 0;      ///< datagram this fragment belongs to
    uint64_t dgram_bytes = 0;   ///< total datagram payload size
    uint16_t frag_idx = 0;
    uint16_t frag_count = 1;

    SourceRoute route;          ///< switch output ports, per the paper

    /** Typed application message (request/response descriptors). */
    std::shared_ptr<const AppData> app;

    SimTime created;            ///< time the sender NIC started DMA
    SimTime first_bit;          ///< link delivery bookkeeping (see Link)
    SimTime last_bit;

    uint32_t hop_count = 0;     ///< switches traversed so far

    /** Transport header size for this packet's protocol. */
    uint32_t transportHeaderBytes() const;

    /** Layer-3 datagram size: payload + transport + IP + route header. */
    uint32_t l3Bytes() const;

    /** Total wire occupancy including Ethernet framing and IFG. */
    uint32_t wireBytes() const { return eth::wireBytes(l3Bytes()); }

    std::string str() const;
};

using PacketPtr = std::unique_ptr<Packet>;

/** Create a packet with a fresh globally unique id. */
PacketPtr makePacket();

/** Destination for packets: NIC RX, switch ingress ports, sinks. */
class PacketSink {
  public:
    virtual ~PacketSink() = default;

    /**
     * Deliver a packet.  For full-delivery sinks (the default; NICs)
     * this is called at last-bit arrival.  Early-delivery sinks
     * (cut-through switch ingress) are called once the header has
     * arrived; the packet's last_bit field still records when its final
     * bit will arrive, which egress logic must respect.
     */
    virtual void receive(PacketPtr p) = 0;

    /** Return true to receive packets at header arrival (cut-through). */
    virtual bool wantsEarlyDelivery() const { return false; }
};

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_PACKET_HH_
