#ifndef DIABLO_NET_PACKET_HH_
#define DIABLO_NET_PACKET_HH_

/**
 * @file
 * The simulated network packet.
 *
 * DIABLO models "the movement of every byte in every packet"; in software
 * we carry exact byte *counts* for every protocol layer (application
 * payload, transport header, IP header, Ethernet framing including
 * preamble/FCS/IFG and minimum-frame padding) so all serialization,
 * buffering, and goodput numbers are byte-accurate, while application
 * message *content* rides along as a typed metadata pointer rather than a
 * literal byte image.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/time.hh"
#include "core/units.hh"
#include "net/addr.hh"

namespace diablo {

class Simulator;

namespace net {

class PacketPool;

/** TCP header flags. */
namespace tcp_flags {
inline constexpr uint8_t kSyn = 1 << 0;
inline constexpr uint8_t kAck = 1 << 1;
inline constexpr uint8_t kFin = 1 << 2;
inline constexpr uint8_t kRst = 1 << 3;
} // namespace tcp_flags

/**
 * TCP-specific header fields (valid when proto == Proto::Tcp).
 * Sequence numbers are modeled as unwrapped 64-bit stream offsets; the
 * on-wire header size is still accounted as the standard 20 bytes.
 */
struct TcpFields {
    uint64_t seq = 0;       ///< first payload byte's stream offset
    uint64_t ack = 0;       ///< cumulative acknowledgment
    uint8_t flags = 0;      ///< tcp_flags combination
    uint64_t window = 0;    ///< advertised receive window, bytes

    bool has(uint8_t f) const { return (flags & f) != 0; }
};

/** Opaque application message metadata attached to a packet. */
struct AppData {
    virtual ~AppData() = default;
};

/**
 * A simulated packet.  Owned uniquely; moves through NIC, links and
 * switches by transfer of the unique_ptr.
 */
struct Packet {
    uint64_t id = 0;            ///< globally unique, for tracing

    FlowKey flow;               ///< 5-tuple
    TcpFields tcp;              ///< valid iff flow.proto == Tcp
    uint32_t payload_bytes = 0; ///< application-layer payload length

    // --- UDP/IP fragmentation (valid iff flow.proto == Udp) ---
    uint64_t dgram_id = 0;      ///< datagram this fragment belongs to
    uint64_t dgram_bytes = 0;   ///< total datagram payload size
    uint16_t frag_idx = 0;
    uint16_t frag_count = 1;

    SourceRoute route;          ///< switch output ports, per the paper

    /** Typed application message (request/response descriptors). */
    std::shared_ptr<const AppData> app;

    SimTime created;            ///< time the sender NIC started DMA
    SimTime first_bit;          ///< link delivery bookkeeping (see Link)
    SimTime last_bit;

    uint32_t hop_count = 0;     ///< switches traversed so far

    /**
     * Origin pool (null for plain heap packets) and its intrusive
     * freelist link.  Set once by PacketPool::make() and never by model
     * code; the custom PacketPtr deleter routes the packet home.
     */
    PacketPool *pool = nullptr;
    Packet *pool_next = nullptr;

    /** Transport header size for this packet's protocol. */
    uint32_t transportHeaderBytes() const;

    /** Layer-3 datagram size: payload + transport + IP + route header. */
    uint32_t l3Bytes() const;

    /** Total wire occupancy including Ethernet framing and IFG. */
    uint32_t wireBytes() const { return eth::wireBytes(l3Bytes()); }

    std::string str() const;
};

/**
 * PacketPtr deleter: pooled packets recycle to their origin pool,
 * plain ones are heap-freed.  Stateless and default-constructible, so
 * PacketPtr stays pointer-sized, remains constructible from a raw
 * Packet* (release()/reacquire patterns in the kernel keep working),
 * and closures capturing a PacketPtr stay within the EventFn
 * small-buffer budget.
 */
struct PacketDeleter {
    void operator()(Packet *p) const;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/**
 * Per-partition recycling freelist behind makePacket(Simulator&).
 *
 * The software analog of DIABLO's fixed BRAM packet rings (§4.2): after
 * warm-up the NIC -> link -> switch -> kernel traversal reuses warm
 * Packet slabs with zero malloc/free.  A packet always recycles to the
 * pool that created it — pools are owned by one partition (make() is
 * called only from its events) but a packet may die in another (e.g. a
 * drop at a remote switch), so the freelist is a Treiber stack with
 * thread-safe multi-producer push and single-consumer pop.  ABA cannot
 * occur: only the owning partition pops, so a node's next link is
 * stable while it is reachable.  The inter-quantum barriers of the
 * parallel engine provide the happens-before between a remote recycle
 * and a later pop.
 */
class PacketPool {
  public:
    PacketPool() = default;
    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;
    ~PacketPool();

    /** A fully reset packet with a fresh globally unique id. */
    PacketPtr make();

    // --- stats (exported per partition) ---------------------------------

    /** Packets handed out (pool hits + heap allocations). */
    uint64_t makes() const { return makes_; }

    /** make() calls served from the freelist (no allocator). */
    uint64_t recycles() const { return makes_ - heap_allocs_; }

    /**
     * make() calls that fell through to the heap.  Steady state is
     * zero; in a parallel run the split between recycles and heap
     * allocs depends on wall-clock interleaving (a remote recycle may
     * land after the next make), so only makes()/returns() are
     * deterministic across engines.
     */
    uint64_t heapAllocs() const { return heap_allocs_; }

    /** Packets returned (from any thread) over the pool's lifetime. */
    uint64_t returns() const
    {
        return returns_.load(std::memory_order_relaxed);
    }

    /** Maximum packets simultaneously live, sampled at make(). */
    uint64_t highWater() const { return high_water_; }

    // --- cross-process ghost accounting ---------------------------------
    //
    // A packet crossing a process boundary exists twice for an instant:
    // the sender's copy dies at serialization and the receiver
    // materializes a replica from its local pool for the same partition.
    // Neither side's pool counters may see those synthetic transitions —
    // the sender's copy was counted at make() and the replica's death
    // will be counted at its real recycle — so the per-partition
    // makes/returns summed across all processes equal the single-process
    // totals exactly (the fingerprint folds them).  makeGhost/
    // recycleGhost are those uncounted twins of make()/recycle().

    /**
     * Dense partition index this pool belongs to, stamped by the
     * cluster wiring in coupled mode so serialization can name a
     * packet's origin partition; -1 (the default) means untagged.
     */
    void setTag(int64_t tag) { tag_ = tag; }
    int64_t tag() const { return tag_; }

    /** Reuse (or allocate) a packet without counting a make. */
    PacketPtr makeGhost();

    /** Return a packet without counting; pairs with makeGhost. */
    void recycleGhost(Packet *p);

  private:
    friend struct PacketDeleter;

    /** Thread-safe push of a dead packet onto the freelist. */
    void recycle(Packet *p);

    /** Reset @p p and push it onto the freelist (no counting). */
    void pushFree(Packet *p);

    std::atomic<Packet *> free_head_{nullptr};
    uint64_t makes_ = 0;
    uint64_t heap_allocs_ = 0;
    uint64_t high_water_ = 0;
    std::atomic<uint64_t> returns_{0};
    int64_t tag_ = -1;
};

/**
 * Destroy the sender-side copy of a packet that just crossed a process
 * boundary: an uncounted return to its pool (or heap free).  The normal
 * PacketPtr deleter would count a return the receiving process's
 * replica will count again at its real death.
 */
void releaseGhost(PacketPtr p);

/** Create a plain heap packet with a fresh globally unique id. */
PacketPtr makePacket();

/**
 * Create a packet from @p sim's partition-local pool (created on first
 * use, attached to the Simulator, destroyed with it).  This is the
 * datapath entry point: every steady-state packet build goes through
 * here so traversal is allocation-free after warm-up.
 */
PacketPtr makePacket(Simulator &sim);

/** The partition pool of @p sim, creating it on first use. */
PacketPool &packetPoolOf(Simulator &sim);

/** The partition pool of @p sim, or null if none was created yet. */
PacketPool *packetPoolIfAttached(Simulator &sim);

/** Destination for packets: NIC RX, switch ingress ports, sinks. */
class PacketSink {
  public:
    virtual ~PacketSink() = default;

    /**
     * Deliver a packet.  For full-delivery sinks (the default; NICs)
     * this is called at last-bit arrival.  Early-delivery sinks
     * (cut-through switch ingress) are called once the header has
     * arrived; the packet's last_bit field still records when its final
     * bit will arrive, which egress logic must respect.
     */
    virtual void receive(PacketPtr p) = 0;

    /** Return true to receive packets at header arrival (cut-through). */
    virtual bool wantsEarlyDelivery() const { return false; }
};

} // namespace net
} // namespace diablo

#endif // DIABLO_NET_PACKET_HH_
