#include "nic/nic_model.hh"

#include "core/log.hh"

namespace diablo {
namespace nic {

NicParams
NicParams::fromConfig(const Config &cfg, const std::string &prefix)
{
    NicParams p;
    p.tx_ring_entries = static_cast<uint32_t>(
        cfg.getUint(prefix + "tx_ring_entries", p.tx_ring_entries));
    p.rx_ring_entries = static_cast<uint32_t>(
        cfg.getUint(prefix + "rx_ring_entries", p.rx_ring_entries));
    p.zero_copy = cfg.getBool(prefix + "zero_copy", p.zero_copy);
    p.dma_latency = SimTime::nanoseconds(
        cfg.getDouble(prefix + "dma_latency_ns", p.dma_latency.asNanos()));
    p.rx_itr = SimTime::microseconds(
        cfg.getDouble(prefix + "rx_itr_us", p.rx_itr.asMicros()));
    return p;
}

NicModel::NicModel(Simulator &sim, std::string name, const NicParams &params)
    : sim_(sim), name_(std::move(name)), params_(params)
{
    // Reserve the full descriptor-ring depth up front: the rings never
    // allocate again, matching the fixed host-memory rings they model.
    tx_ring_.reserve(params_.tx_ring_entries);
    rx_ring_.reserve(params_.rx_ring_entries);
}

void
NicModel::attachTxLink(net::Link &link)
{
    tx_link_ = &link;
    link.setTxDoneCallback([this] {
        txPump();
        if (kernel_ != nullptr) {
            kernel_->txRingSpace(); // TX-completion: refill from qdisc
        }
    });
}

void
NicModel::attachKernel(os::Kernel &kernel)
{
    kernel_ = &kernel;
    kernel.attachNic(*this);
}

// ---------------------------------------------------------------------
// TX path
// ---------------------------------------------------------------------

void
NicModel::txEnqueue(net::PacketPtr p)
{
    if (txRingFull()) {
        // The driver contract is to check txRingFull() first (the
        // kernel's qdisc pump does); a racing enqueue is accounted as
        // a counted drop — degradation, not a panic — mirroring what
        // posting past the hardware tail pointer would do to the frame.
        tx_ring_drops_.inc();
        return;
    }
    tx_ring_.push_back(std::move(p));
    txPump();
}

void
NicModel::txPump()
{
    if (tx_link_ == nullptr) {
        panic("NIC %s: no TX link attached", name_.c_str());
    }
    if (tx_ring_.empty() || tx_link_->busy()) {
        return;
    }
    tx_packets_.inc();
    tx_link_->transmit(std::move(tx_ring_.front()));
    tx_ring_.pop_front();
}

// ---------------------------------------------------------------------
// RX path
// ---------------------------------------------------------------------

void
NicModel::receive(net::PacketPtr p)
{
    // DMA into the RX ring after the host-transfer latency.  The event
    // owns the packet so in-flight DMAs are reclaimed with the queue if
    // the run stops first.
    sim_.schedule(params_.dma_latency, [this, p = std::move(p)]() mutable {
        if (rx_ring_.size() >= params_.rx_ring_entries) {
            rx_ring_drops_.inc(); // overrun: host too slow to drain
            return;
        }
        rx_packets_.inc();
        rx_ring_.push_back(std::move(p));
        maybeRaiseIrq();
    });
}

void
NicModel::maybeRaiseIrq()
{
    if (!irq_enabled_ || rx_ring_.empty() || kernel_ == nullptr) {
        return;
    }
    const SimTime now = sim_.now();
    const SimTime earliest = last_irq_ < SimTime()
                                 ? now
                                 : last_irq_ + params_.rx_itr;
    if (earliest <= now) {
        last_irq_ = now;
        irqs_.inc();
        kernel_->rxInterrupt();
        return;
    }
    if (!irq_scheduled_) {
        irq_scheduled_ = true;
        sim_.scheduleAt(earliest, [this] {
            irq_scheduled_ = false;
            maybeRaiseIrq();
        });
    }
}

net::PacketPtr
NicModel::rxDequeue()
{
    if (rx_ring_.empty()) {
        return nullptr;
    }
    net::PacketPtr p = std::move(rx_ring_.front());
    rx_ring_.pop_front();
    return p;
}

void
NicModel::rxInterruptsEnable(bool on)
{
    irq_enabled_ = on;
    if (on) {
        maybeRaiseIrq(); // packets that arrived while polling was active
    }
}

} // namespace nic
} // namespace diablo
