#ifndef DIABLO_NIC_NIC_MODEL_HH_
#define DIABLO_NIC_NIC_MODEL_HH_

/**
 * @file
 * Abstracted Ethernet NIC model.
 *
 * The DIABLO NIC "models an abstracted Ethernet device, whose internal
 * architecture resembles that of the Intel 8254x Gigabit Ethernet
 * controller" (§3.3): ring-based packet buffers with scatter/gather DMA
 * in host memory, RX/TX interrupt mitigation, and a NAPI polling driver.
 * This class is that device: the kernel model is its driver.
 *
 *  - TX: the kernel enqueues into a bounded TX descriptor ring; the NIC
 *    drains it onto the attached link at line rate and raises TX
 *    completions (modeled as the kernel's qdisc pump callback).
 *  - RX: arriving packets DMA into a bounded RX ring after a fixed DMA
 *    latency; overflow is dropped (no flow control).  Interrupts follow
 *    an e1000-style throttle (ITR): at most one interrupt per mitigation
 *    interval, and none while the kernel has them masked for NAPI
 *    polling.
 *  - Zero-copy: scatter/gather DMA lets the kernel skip the user-space
 *    copy on TX (checksum offload is emulated by charging no CPU, as in
 *    the paper).
 */

#include <string>

#include "core/config.hh"
#include "core/ring_buffer.hh"
#include "core/simulator.hh"
#include "core/stats.hh"
#include "net/link.hh"
#include "net/packet.hh"
#include "os/kernel.hh"

namespace diablo {
namespace nic {

/** Runtime-configurable NIC parameters. */
struct NicParams {
    uint32_t tx_ring_entries = 256;
    uint32_t rx_ring_entries = 256;
    bool zero_copy = true;

    /** PCIe/DMA latency before a received frame is visible to the host. */
    SimTime dma_latency = SimTime::ns(600);

    /**
     * Interrupt mitigation: minimum spacing between RX interrupts
     * (e1000 InterruptThrottleRate ~= 1 / this).  Zero = immediate.
     */
    SimTime rx_itr = SimTime();

    static NicParams fromConfig(const Config &cfg,
                                const std::string &prefix);
};

/** Intel 8254x-style NIC; PacketSink on the wire side, NicDevice to the
 *  kernel. */
class NicModel : public os::NicDevice, public net::PacketSink {
  public:
    NicModel(Simulator &sim, std::string name, const NicParams &params);

    /** Wire the NIC's transmitter to @p link (takes its tx-done hook). */
    void attachTxLink(net::Link &link);

    /** Bind to the owning kernel (also registers as the kernel's NIC). */
    void attachKernel(os::Kernel &kernel);

    // --- NicDevice (driver-facing) ---
    bool txRingFull() const override
    {
        return tx_ring_.size() >= params_.tx_ring_entries;
    }
    void txEnqueue(net::PacketPtr p) override;
    net::PacketPtr rxDequeue() override;
    size_t rxPending() const override { return rx_ring_.size(); }
    void rxInterruptsEnable(bool on) override;
    bool zeroCopy() const override { return params_.zero_copy; }

    // --- PacketSink (wire-facing) ---
    void receive(net::PacketPtr p) override;

    const NicParams &params() const { return params_; }
    uint64_t rxRingDrops() const { return rx_ring_drops_.value(); }
    /** Packets dropped because the TX descriptor ring was full. */
    uint64_t txRingDrops() const { return tx_ring_drops_.value(); }
    uint64_t rxPackets() const { return rx_packets_.value(); }
    uint64_t txPackets() const { return tx_packets_.value(); }
    uint64_t interruptsRaised() const { return irqs_.value(); }

  private:
    void txPump();
    void maybeRaiseIrq();

    Simulator &sim_;
    std::string name_;
    NicParams params_;
    net::Link *tx_link_ = nullptr;
    os::Kernel *kernel_ = nullptr;

    /**
     * Descriptor rings: fixed-capacity circular buffers reserved at the
     * modeled 8254x ring depth — the hardware analog (a ring in host
     * memory never grows), and allocation-free after construction.
     */
    RingBuffer<net::PacketPtr> tx_ring_;
    RingBuffer<net::PacketPtr> rx_ring_;

    bool irq_enabled_ = true;
    bool irq_scheduled_ = false;
    SimTime last_irq_ = SimTime::fromPs(-1);

    Counter rx_ring_drops_;
    Counter tx_ring_drops_;
    Counter rx_packets_;
    Counter tx_packets_;
    Counter irqs_;
};

} // namespace nic
} // namespace diablo

#endif // DIABLO_NIC_NIC_MODEL_HH_
