#include "isa/interpreter.hh"

#include "core/log.hh"

namespace diablo {
namespace isa {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Sll: return "sll";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::Mul: return "mul";
      case Op::Addi: return "addi";
      case Op::Andi: return "andi";
      case Op::Ori: return "ori";
      case Op::Xori: return "xori";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Lui: return "lui";
      case Op::Ld: return "ld";
      case Op::St: return "st";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Jal: return "jal";
      case Op::Jr: return "jr";
      case Op::Ecall: return "ecall";
      case Op::Halt: return "halt";
    }
    return "?";
}

std::string
Instr::str() const
{
    return strprintf("%s rd=%u rs1=%u rs2=%u imm=%d", opName(op), rd, rs1,
                     rs2, imm);
}

InstrClass
classify(Op op)
{
    switch (op) {
      case Op::Ld:
      case Op::St:
        return InstrClass::Mem;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Jal:
      case Op::Jr:
        return InstrClass::Branch;
      case Op::Ecall:
      case Op::Halt:
        return InstrClass::Trap;
      default:
        return InstrClass::Alu;
    }
}

uint32_t
TargetMemory::load(uint32_t byte_addr) const
{
    const uint32_t w = byte_addr / 4;
    if (w >= words_.size()) {
        panic("dSPARC: load from 0x%x beyond memory (%zu bytes)",
              byte_addr, sizeBytes());
    }
    return words_[w];
}

void
TargetMemory::store(uint32_t byte_addr, uint32_t value)
{
    const uint32_t w = byte_addr / 4;
    if (w >= words_.size()) {
        panic("dSPARC: store to 0x%x beyond memory (%zu bytes)",
              byte_addr, sizeBytes());
    }
    words_[w] = value;
}

Instr
step(CpuState &s, const Program &program, TargetMemory &mem)
{
    if (s.halted) {
        return Instr{Op::Halt};
    }
    if (s.pc >= program.size()) {
        panic("dSPARC: pc %u beyond program of %zu instructions", s.pc,
              program.size());
    }
    const Instr ins = program[s.pc];
    uint32_t next_pc = s.pc + 1;
    const uint32_t a = s.reg(ins.rs1);
    const uint32_t b = s.reg(ins.rs2);
    const auto imm = static_cast<uint32_t>(ins.imm);

    switch (ins.op) {
      case Op::Nop:
        break;
      case Op::Add: s.setReg(ins.rd, a + b); break;
      case Op::Sub: s.setReg(ins.rd, a - b); break;
      case Op::And: s.setReg(ins.rd, a & b); break;
      case Op::Or:  s.setReg(ins.rd, a | b); break;
      case Op::Xor: s.setReg(ins.rd, a ^ b); break;
      case Op::Sll: s.setReg(ins.rd, a << (b & 31)); break;
      case Op::Srl: s.setReg(ins.rd, a >> (b & 31)); break;
      case Op::Sra:
        s.setReg(ins.rd, static_cast<uint32_t>(
                             static_cast<int32_t>(a) >>
                             static_cast<int32_t>(b & 31)));
        break;
      case Op::Mul: s.setReg(ins.rd, a * b); break;
      case Op::Addi: s.setReg(ins.rd, a + imm); break;
      case Op::Andi: s.setReg(ins.rd, a & imm); break;
      case Op::Ori:  s.setReg(ins.rd, a | imm); break;
      case Op::Xori: s.setReg(ins.rd, a ^ imm); break;
      case Op::Slli: s.setReg(ins.rd, a << (imm & 31)); break;
      case Op::Srli: s.setReg(ins.rd, a >> (imm & 31)); break;
      case Op::Lui:  s.setReg(ins.rd, imm << 16); break;
      case Op::Ld:   s.setReg(ins.rd, mem.load(a + imm)); break;
      case Op::St:   mem.store(a + imm, b); break;
      case Op::Beq:
        if (a == b) {
            next_pc = static_cast<uint32_t>(ins.imm);
        }
        break;
      case Op::Bne:
        if (a != b) {
            next_pc = static_cast<uint32_t>(ins.imm);
        }
        break;
      case Op::Blt:
        if (static_cast<int32_t>(a) < static_cast<int32_t>(b)) {
            next_pc = static_cast<uint32_t>(ins.imm);
        }
        break;
      case Op::Bge:
        if (static_cast<int32_t>(a) >= static_cast<int32_t>(b)) {
            next_pc = static_cast<uint32_t>(ins.imm);
        }
        break;
      case Op::Jal:
        s.setReg(ins.rd, s.pc + 1);
        next_pc = static_cast<uint32_t>(ins.imm);
        break;
      case Op::Jr:
        next_pc = a;
        break;
      case Op::Ecall: {
        const uint32_t svc = s.reg(1);
        const uint32_t arg = s.reg(2);
        switch (svc) {
          case service::kPutChar:
            s.console.push_back(static_cast<char>(arg));
            break;
          case service::kPutInt:
            s.console += std::to_string(static_cast<int32_t>(arg));
            break;
          case service::kGetCycle:
            s.setReg(2, static_cast<uint32_t>(s.target_cycle));
            break;
          case service::kExit:
            s.exit_code = static_cast<int32_t>(arg);
            s.halted = true;
            break;
          default:
            panic("dSPARC: unknown ecall service %u", svc);
        }
        break;
      }
      case Op::Halt:
        s.halted = true;
        break;
    }

    s.pc = next_pc;
    ++s.instret;
    return ins;
}

void
runToHalt(CpuState &state, const Program &program, TargetMemory &mem,
          uint64_t max_instrs)
{
    while (!state.halted && state.instret < max_instrs) {
        step(state, program, mem);
    }
    if (!state.halted) {
        panic("dSPARC: program did not halt within %llu instructions",
              static_cast<unsigned long long>(max_instrs));
    }
}

} // namespace isa
} // namespace diablo
