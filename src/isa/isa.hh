#ifndef DIABLO_ISA_ISA_HH_
#define DIABLO_ISA_ISA_HH_

/**
 * @file
 * dSPARC: a compact SPARC-v8-flavoured RISC target ISA.
 *
 * DIABLO's server model is built on RAMP Gold, "a cycle-level full-system
 * FAME-7 architecture simulator supporting the full 32-bit SPARC v8 ISA"
 * (§3.3).  Booting a full SPARC Linux is outside this reproduction's
 * scope (see DESIGN.md); instead dSPARC provides a small working
 * instance of the same modeling methodology: a *functional* interpreter
 * strictly separated from a runtime-configurable fixed-CPI *timing*
 * model, executed by a host-multithreaded pipeline that interleaves many
 * target contexts — exactly RAMP Gold's FAME-7 structure — which the
 * tests and benchmarks use to validate the FAME host-performance model.
 *
 * ISA summary: 32 x 32-bit registers (r0 wired to zero), word-addressed
 * loads/stores, ALU reg/imm forms, compare-and-branch, jal/jr, and a
 * trap instruction for console/exit services.
 */

#include <cstdint>
#include <string>

namespace diablo {
namespace isa {

/** Register count; r0 reads as zero. */
inline constexpr uint32_t kNumRegs = 32;

/** Operation codes. */
enum class Op : uint8_t {
    Nop,
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul,
    Addi, Andi, Ori, Xori, Slli, Srli,
    Lui,        ///< rd = imm << 16
    Ld,         ///< rd = mem32[rs1 + imm]
    St,         ///< mem32[rs1 + imm] = rs2
    Beq, Bne, Blt, Bge,  ///< pc-relative, compare rs1, rs2
    Jal,        ///< rd = pc + 1; pc = imm (absolute instruction index)
    Jr,         ///< pc = rs1
    Ecall,      ///< service trap: service id in r1, argument in r2
    Halt,
};

const char *opName(Op op);

/** One decoded instruction. */
struct Instr {
    Op op = Op::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;

    std::string str() const;
};

/** Ecall service ids (in r1). */
namespace service {
inline constexpr uint32_t kPutChar = 1;   ///< r2 = character
inline constexpr uint32_t kPutInt = 2;    ///< r2 = integer
inline constexpr uint32_t kGetCycle = 3;  ///< r2 <- target cycle count
inline constexpr uint32_t kExit = 10;     ///< r2 = exit code
} // namespace service

/** Instruction classes for the configurable fixed-CPI timing model. */
enum class InstrClass : uint8_t { Alu, Mem, Branch, Trap };

InstrClass classify(Op op);

} // namespace isa
} // namespace diablo

#endif // DIABLO_ISA_ISA_HH_
