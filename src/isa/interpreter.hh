#ifndef DIABLO_ISA_INTERPRETER_HH_
#define DIABLO_ISA_INTERPRETER_HH_

/**
 * @file
 * dSPARC functional model: architectural state plus a pure step
 * function.  No timing lives here — the FAME split puts that in
 * isa/pipeline.hh — so the same functional model can run under any
 * timing model, just as DIABLO "can change the timing without altering
 * the router's functional model".
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace diablo {
namespace isa {

/** Architectural state of one target hardware thread. */
struct CpuState {
    uint32_t regs[kNumRegs] = {};
    uint32_t pc = 0;            ///< instruction index, not byte address
    bool halted = false;
    int32_t exit_code = 0;
    std::string console;        ///< ecall putchar/putint output
    uint64_t instret = 0;       ///< instructions retired
    uint64_t target_cycle = 0;  ///< advanced by the timing model

    uint32_t reg(uint32_t i) const { return i == 0 ? 0 : regs[i]; }

    void
    setReg(uint32_t i, uint32_t v)
    {
        if (i != 0) {
            regs[i] = v;
        }
    }
};

/** Word-addressable target memory (one per simulated server). */
class TargetMemory {
  public:
    explicit TargetMemory(size_t words) : words_(words, 0) {}

    uint32_t load(uint32_t byte_addr) const;
    void store(uint32_t byte_addr, uint32_t value);
    size_t sizeBytes() const { return words_.size() * 4; }

  private:
    std::vector<uint32_t> words_;
};

/** A loaded program. */
using Program = std::vector<Instr>;

/**
 * Execute exactly one instruction of @p state against @p program and
 * @p mem.  Returns the executed instruction (for the timing model to
 * classify).  Panics on ill-formed programs (pc out of range).
 */
Instr step(CpuState &state, const Program &program, TargetMemory &mem);

/** Convenience: run functionally until halt or @p max_instrs. */
void runToHalt(CpuState &state, const Program &program, TargetMemory &mem,
               uint64_t max_instrs = 10000000);

} // namespace isa
} // namespace diablo

#endif // DIABLO_ISA_INTERPRETER_HH_
