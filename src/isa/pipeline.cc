#include "isa/pipeline.hh"

#include "core/log.hh"

namespace diablo {
namespace isa {

HostPipeline::HostPipeline(uint32_t threads, size_t mem_words,
                           const TimingModel &timing,
                           const PipelineParams &params)
    : timing_(timing), params_(params)
{
    if (threads == 0) {
        fatal("HostPipeline: need at least one thread");
    }
    ctx_.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
        ctx_.emplace_back(mem_words);
        ctx_.back().state.halted = true; // until a program is loaded
    }
}

void
HostPipeline::load(uint32_t thread, const Program &program)
{
    Context &c = ctx_.at(thread);
    c.state = CpuState{};
    c.program = program;
    c.stall = 0;
}

bool
HostPipeline::allHalted() const
{
    for (const auto &c : ctx_) {
        if (!c.state.halted) {
            return false;
        }
    }
    return true;
}

uint64_t
HostPipeline::instructionsRetired() const
{
    uint64_t n = 0;
    for (const auto &c : ctx_) {
        n += c.state.instret;
    }
    return n;
}

double
HostPipeline::utilization() const
{
    if (host_cycles_ == 0) {
        return 0.0;
    }
    return static_cast<double>(issue_slots_used_) /
           static_cast<double>(host_cycles_);
}

uint64_t
HostPipeline::run(uint64_t host_cycles)
{
    const uint32_t n = static_cast<uint32_t>(ctx_.size());
    uint64_t consumed = 0;
    while (consumed < host_cycles) {
        if (allHalted()) {
            break;
        }
        // Pick the round-robin-next thread that is runnable *entering*
        // this host cycle; every other stalled thread retires one host
        // cycle of its stall.
        int32_t chosen = -1;
        for (uint32_t k = 0; k < n && chosen < 0; ++k) {
            const uint32_t idx = (next_thread_ + k) % n;
            const Context &c = ctx_[idx];
            if (!c.state.halted && c.stall == 0) {
                chosen = static_cast<int32_t>(idx);
            }
        }
        for (uint32_t i = 0; i < n; ++i) {
            Context &c = ctx_[i];
            if (!c.state.halted && c.stall > 0 &&
                static_cast<int32_t>(i) != chosen) {
                --c.stall;
            }
        }
        if (chosen >= 0) {
            Context &c = ctx_[static_cast<size_t>(chosen)];
            const Instr ins = step(c.state, c.program, c.mem);
            c.state.target_cycle += timing_.cyclesFor(classify(ins.op));
            if (classify(ins.op) == InstrClass::Mem) {
                c.stall = params_.host_mem_stall_cycles;
            }
            ++issue_slots_used_;
            next_thread_ = (static_cast<uint32_t>(chosen) + 1) % n;
        }
        ++host_cycles_;
        ++consumed;
    }
    return consumed;
}

uint64_t
HostPipeline::runToCompletion(uint64_t max_host_cycles)
{
    uint64_t consumed = 0;
    while (!allHalted()) {
        if (consumed >= max_host_cycles) {
            panic("HostPipeline: exceeded %llu host cycles",
                  static_cast<unsigned long long>(max_host_cycles));
        }
        consumed += run(std::min<uint64_t>(4096, max_host_cycles -
                                                     consumed));
    }
    return consumed;
}

} // namespace isa
} // namespace diablo
