#ifndef DIABLO_ISA_PIPELINE_HH_
#define DIABLO_ISA_PIPELINE_HH_

/**
 * @file
 * Host-multithreaded FAME-7 pipeline: the RAMP Gold execution structure.
 *
 * One host pipeline interleaves T target hardware threads round-robin,
 * issuing (at most) one target instruction per host cycle.  Each target
 * instruction advances its thread's *target* clock by the fixed-CPI
 * timing model's cycles for that instruction class.  Host-side stalls
 * (e.g. host DRAM misses on target memory accesses) consume host cycles
 * without advancing any thread — exactly the utilization/hiding
 * trade-off the paper's §3.1 "Host Multithreading" describes, and the
 * source of the slowdown figures in §5.
 */

#include <cstdint>
#include <vector>

#include "isa/interpreter.hh"

namespace diablo {
namespace isa {

/** Runtime-configurable fixed-CPI timing model. */
struct TimingModel {
    uint32_t alu_cycles = 1;
    uint32_t mem_cycles = 1;
    uint32_t branch_cycles = 1;
    uint32_t trap_cycles = 1;

    uint32_t
    cyclesFor(InstrClass c) const
    {
        switch (c) {
          case InstrClass::Alu:    return alu_cycles;
          case InstrClass::Mem:    return mem_cycles;
          case InstrClass::Branch: return branch_cycles;
          case InstrClass::Trap:   return trap_cycles;
        }
        return 1;
    }
};

/** Host-model parameters. */
struct PipelineParams {
    /** Host-cycle penalty modelling a host DRAM access on target
     *  loads/stores (hidden by multithreading when other threads are
     *  runnable). */
    uint32_t host_mem_stall_cycles = 8;
};

/** One host pipeline simulating up to T target threads. */
class HostPipeline {
  public:
    /**
     * @param threads   target contexts sharing this pipeline
     * @param mem_words target memory words per context (private
     *                  partitions, as on the Rack FPGA's DRAM)
     */
    HostPipeline(uint32_t threads, size_t mem_words,
                 const TimingModel &timing,
                 const PipelineParams &params = {});

    /** Load a program into a thread's context (resets its state). */
    void load(uint32_t thread, const Program &program);

    CpuState &state(uint32_t thread) { return ctx_[thread].state; }
    TargetMemory &memory(uint32_t thread) { return ctx_[thread].mem; }

    /**
     * Advance the host by up to @p host_cycles; returns host cycles
     * actually consumed (less if every thread halted first).
     */
    uint64_t run(uint64_t host_cycles);

    /** Run until every thread halts; returns host cycles consumed. */
    uint64_t runToCompletion(uint64_t max_host_cycles = 1ULL << 40);

    bool allHalted() const;

    uint64_t hostCycles() const { return host_cycles_; }
    uint64_t instructionsRetired() const;

    /** Host-pipeline utilization: issue slots that retired a target
     *  instruction / total host cycles. */
    double utilization() const;

  private:
    struct Context {
        CpuState state;
        Program program;
        TargetMemory mem;
        /** Host cycles this thread still owes before its next issue. */
        uint32_t stall = 0;

        explicit Context(size_t mem_words) : mem(mem_words) {}
    };

    TimingModel timing_;
    PipelineParams params_;
    std::vector<Context> ctx_;
    uint32_t next_thread_ = 0;
    uint64_t host_cycles_ = 0;
    uint64_t issue_slots_used_ = 0;
};

} // namespace isa
} // namespace diablo

#endif // DIABLO_ISA_PIPELINE_HH_
