#ifndef DIABLO_ISA_ASSEMBLER_HH_
#define DIABLO_ISA_ASSEMBLER_HH_

/**
 * @file
 * Two-pass in-memory assembler for dSPARC.
 *
 * Syntax (one instruction per line, '#' comments, "label:" definitions):
 *
 *   loop:
 *     addi r3, r3, 1        # r3++
 *     ld   r4, 8(r2)        # r4 = mem[r2 + 8]
 *     st   r4, 0(r2)
 *     blt  r3, r5, loop
 *     jal  r31, func        # call
 *     jr   r31              # return
 *     lui  r6, 0x1234
 *     ecall
 *     halt
 *
 * Branch/jal targets may be labels or absolute instruction indices.
 */

#include <string>

#include "isa/interpreter.hh"

namespace diablo {
namespace isa {

/**
 * Assemble @p source into a Program.  Calls fatal() with file/line
 * context on syntax errors, since a broken program is a user error.
 */
Program assemble(const std::string &source);

} // namespace isa
} // namespace diablo

#endif // DIABLO_ISA_ASSEMBLER_HH_
