#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "core/log.hh"

namespace diablo {
namespace isa {

namespace {

struct Token {
    std::string text;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == '#') {
            break;
        }
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
            c == '(' || c == ')') {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
            if (c == '(' || c == ')') {
                out.push_back(std::string(1, c));
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty()) {
        out.push_back(cur);
    }
    return out;
}

uint8_t
parseReg(const std::string &t, int lineno)
{
    if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R')) {
        fatal("dSPARC asm line %d: expected register, got '%s'", lineno,
              t.c_str());
    }
    char *end = nullptr;
    long v = std::strtol(t.c_str() + 1, &end, 10);
    if (*end != '\0' || v < 0 || v >= static_cast<long>(kNumRegs)) {
        fatal("dSPARC asm line %d: bad register '%s'", lineno, t.c_str());
    }
    return static_cast<uint8_t>(v);
}

std::optional<int32_t>
parseInt(const std::string &t)
{
    char *end = nullptr;
    long v = std::strtol(t.c_str(), &end, 0);
    if (end == t.c_str() || *end != '\0') {
        return std::nullopt;
    }
    return static_cast<int32_t>(v);
}

struct PendingLabel {
    size_t instr_index;
    std::string label;
    int lineno;
};

const std::map<std::string, Op> kThreeReg = {
    {"add", Op::Add}, {"sub", Op::Sub}, {"and", Op::And},
    {"or", Op::Or},   {"xor", Op::Xor}, {"sll", Op::Sll},
    {"srl", Op::Srl}, {"sra", Op::Sra}, {"mul", Op::Mul},
};

const std::map<std::string, Op> kRegRegImm = {
    {"addi", Op::Addi}, {"andi", Op::Andi}, {"ori", Op::Ori},
    {"xori", Op::Xori}, {"slli", Op::Slli}, {"srli", Op::Srli},
};

const std::map<std::string, Op> kBranch = {
    {"beq", Op::Beq}, {"bne", Op::Bne}, {"blt", Op::Blt},
    {"bge", Op::Bge},
};

} // namespace

Program
assemble(const std::string &source)
{
    Program prog;
    std::map<std::string, uint32_t> labels;
    std::vector<PendingLabel> fixups;

    std::istringstream in(source);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto toks = tokenize(line);
        if (toks.empty()) {
            continue;
        }
        // Labels (possibly several) prefix the instruction.
        size_t i = 0;
        while (i < toks.size() && toks[i].back() == ':') {
            std::string name = toks[i].substr(0, toks[i].size() - 1);
            if (labels.count(name)) {
                fatal("dSPARC asm line %d: duplicate label '%s'", lineno,
                      name.c_str());
            }
            labels[name] = static_cast<uint32_t>(prog.size());
            ++i;
        }
        if (i >= toks.size()) {
            continue;
        }
        const std::string op = toks[i];
        auto rest = std::vector<std::string>(toks.begin() +
                                                 static_cast<long>(i) + 1,
                                             toks.end());
        Instr ins;

        auto needArgs = [&](size_t n) {
            if (rest.size() != n) {
                fatal("dSPARC asm line %d: '%s' expects %zu operands, got "
                      "%zu", lineno, op.c_str(), n, rest.size());
            }
        };
        auto targetOperand = [&](const std::string &t) {
            if (auto v = parseInt(t)) {
                ins.imm = *v;
            } else {
                fixups.push_back({prog.size(), t, lineno});
            }
        };

        if (op == "nop") {
            needArgs(0);
            ins.op = Op::Nop;
        } else if (op == "halt") {
            needArgs(0);
            ins.op = Op::Halt;
        } else if (op == "ecall") {
            needArgs(0);
            ins.op = Op::Ecall;
        } else if (auto it = kThreeReg.find(op); it != kThreeReg.end()) {
            needArgs(3);
            ins.op = it->second;
            ins.rd = parseReg(rest[0], lineno);
            ins.rs1 = parseReg(rest[1], lineno);
            ins.rs2 = parseReg(rest[2], lineno);
        } else if (auto it2 = kRegRegImm.find(op);
                   it2 != kRegRegImm.end()) {
            needArgs(3);
            ins.op = it2->second;
            ins.rd = parseReg(rest[0], lineno);
            ins.rs1 = parseReg(rest[1], lineno);
            auto v = parseInt(rest[2]);
            if (!v) {
                fatal("dSPARC asm line %d: bad immediate '%s'", lineno,
                      rest[2].c_str());
            }
            ins.imm = *v;
        } else if (op == "lui") {
            needArgs(2);
            ins.op = Op::Lui;
            ins.rd = parseReg(rest[0], lineno);
            auto v = parseInt(rest[1]);
            if (!v) {
                fatal("dSPARC asm line %d: bad immediate '%s'", lineno,
                      rest[1].c_str());
            }
            ins.imm = *v;
        } else if (op == "ld" || op == "st") {
            // ld rd, imm(rs1)   /  st rs2, imm(rs1)
            // tokenized as: reg imm ( reg )
            if (rest.size() != 5 || rest[2] != "(" || rest[4] != ")") {
                fatal("dSPARC asm line %d: expected '%s rX, imm(rY)'",
                      lineno, op.c_str());
            }
            auto v = parseInt(rest[1]);
            if (!v) {
                fatal("dSPARC asm line %d: bad displacement '%s'", lineno,
                      rest[1].c_str());
            }
            ins.imm = *v;
            if (op == "ld") {
                ins.op = Op::Ld;
                ins.rd = parseReg(rest[0], lineno);
                ins.rs1 = parseReg(rest[3], lineno);
            } else {
                ins.op = Op::St;
                ins.rs2 = parseReg(rest[0], lineno);
                ins.rs1 = parseReg(rest[3], lineno);
            }
        } else if (auto it3 = kBranch.find(op); it3 != kBranch.end()) {
            needArgs(3);
            ins.op = it3->second;
            ins.rs1 = parseReg(rest[0], lineno);
            ins.rs2 = parseReg(rest[1], lineno);
            targetOperand(rest[2]);
        } else if (op == "jal") {
            needArgs(2);
            ins.op = Op::Jal;
            ins.rd = parseReg(rest[0], lineno);
            targetOperand(rest[1]);
        } else if (op == "jr") {
            needArgs(1);
            ins.op = Op::Jr;
            ins.rs1 = parseReg(rest[0], lineno);
        } else {
            fatal("dSPARC asm line %d: unknown mnemonic '%s'", lineno,
                  op.c_str());
        }
        prog.push_back(ins);
    }

    for (const auto &fx : fixups) {
        auto it = labels.find(fx.label);
        if (it == labels.end()) {
            fatal("dSPARC asm line %d: undefined label '%s'", fx.lineno,
                  fx.label.c_str());
        }
        prog[fx.instr_index].imm = static_cast<int32_t>(it->second);
    }
    return prog;
}

} // namespace isa
} // namespace diablo
