#ifndef DIABLO_TOPO_CLOS_HH_
#define DIABLO_TOPO_CLOS_HH_

/**
 * @file
 * Three-level Clos WSC network builder (paper Figures 1 and 7).
 *
 * Racks of servers hang off Top-of-Rack switches; each ToR has one
 * uplink to its array switch (31-to-1 over-subscription in the paper's
 * memcached topology); each array switch has one uplink to the
 * datacenter switch (16-to-1).  Source routes are computed statically
 * from the topology, matching the paper's simplified source routing.
 *
 * Degenerate configurations are first-class: a single rack builds just
 * a ToR (the paper's 16-node validation cluster), a single array builds
 * two levels without a datacenter switch (the 500-node setup).
 *
 * Fault-aware ECMP: with uplink_planes > 1 the array level is
 * replicated into parallel planes — each ToR gets one uplink per plane
 * and each array position becomes uplink_planes independent switches —
 * and route() hashes each (src, dst) flow onto a plane, skipping planes
 * whose trunks or switches are administratively down.  Liveness is
 * tracked in per-rack-partition FabricView replicas that are only ever
 * written by events scheduled into every partition at the same
 * simulated instant, so sequential and sharded-parallel runs make
 * identical routing decisions (faults are events, never wall-clock).
 * When no plane is live the flow keeps its hash-preferred plane and the
 * downed link accounts the drops — the fabric degrades, never panics.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "net/link.hh"
#include "switchm/switch.hh"

namespace diablo {
namespace topo {

/** Which switch microarchitecture model to instantiate. */
enum class SwitchModelKind {
    Voq,         ///< the paper's abstract VOQ model
    OutputQueue, ///< ns2-like drop-tail baseline
};

/** Topology shape and per-level switch parameters. */
struct ClosParams {
    uint32_t servers_per_rack = 31;
    uint32_t racks_per_array = 16;
    uint32_t num_arrays = 4;

    /**
     * Parallel array-switch planes (ECMP width).  1 reproduces the
     * paper's single-uplink topology; >1 gives every ToR one uplink per
     * plane so flows can reroute around a dead trunk or array switch.
     * Ignored for single-rack topologies (no array level).
     */
    uint32_t uplink_planes = 1;

    SwitchModelKind switch_model = SwitchModelKind::Voq;

    /** Per-level switch parameters (num_ports fields are overwritten). */
    switchm::SwitchParams rack_sw;
    switchm::SwitchParams array_sw;
    switchm::SwitchParams dc_sw;

    /** Server-to-ToR cable propagation delay. */
    SimTime host_link_prop = SimTime::ns(200);
    /** Switch-to-switch cable propagation delay. */
    SimTime trunk_link_prop = SimTime::ns(500);

    /** Host NIC line rate (usually equals rack_sw.port_bw). */
    Bandwidth host_bw = Bandwidth::gbps(1);

    uint32_t totalServers() const
    {
        return servers_per_rack * racks_per_array * num_arrays;
    }

    static ClosParams fromConfig(const Config &cfg,
                                 const std::string &prefix);
};

/** Hop classification used by the paper's Figure 10. */
enum class HopClass {
    Local,  ///< same rack: one ToR
    OneHop, ///< same array: ToR - array - ToR
    TwoHop, ///< cross array: ToR - array - DC - array - ToR
};

const char *hopClassName(HopClass h);

/**
 * Hooks for building a ClosNetwork across simulation partitions — the
 * paper's Rack-FPGA/Switch-FPGA mapping.  Each rack's ToR switch and
 * server-facing links live in that rack's partition; the array and
 * datacenter switch levels live in a dedicated switch partition; the
 * ToR<->array trunks are the only links whose endpoints straddle a
 * partition boundary, so only they are created through
 * make_cross_link (typically returning a net::ChannelLink).
 */
struct ClosPartitionHooks {
    /** Simulator owning global rack @p rack's ToR and server links. */
    std::function<Simulator &(uint32_t rack)> rack_sim;

    /** Simulator owning the array and datacenter switch levels. */
    Simulator *switch_sim = nullptr;

    /**
     * Create the trunk between rack @p rack's ToR and its array switch.
     * @p up is true for the ToR->array direction (transmitter in the
     * rack partition), false for array->ToR (transmitter in the switch
     * partition).  The returned link's delivery must cross into the
     * opposite partition.
     */
    std::function<std::unique_ptr<net::Link>(
        uint32_t rack, bool up, const std::string &name, Bandwidth bw,
        SimTime prop)>
        make_cross_link;
};

/**
 * The built network: switches and trunk links, plus per-server
 * attachment points and route computation.
 */
class ClosNetwork {
  public:
    /** Single-partition build: every model element on @p sim. */
    ClosNetwork(Simulator &sim, const ClosParams &params);

    /**
     * Partitioned build: model elements are placed per @p hooks, with
     * ToR<->array trunks emitted through hooks.make_cross_link instead
     * of as direct intra-partition net::Links.  All hooks fields are
     * required.  @p hooks' callables are retained for the network's
     * lifetime (attachServerSink places links lazily).
     */
    ClosNetwork(const ClosPartitionHooks &hooks, const ClosParams &params);

    const ClosParams &params() const { return params_; }
    uint32_t totalServers() const { return params_.totalServers(); }

    /** Ingress sink a server's NIC TX link must connect to. */
    net::PacketSink &serverIngress(net::NodeId node);

    /**
     * Attach the server-facing egress: packets for @p node will be
     * delivered to @p nic_sink over a dedicated ToR-to-server link.
     */
    void attachServerSink(net::NodeId node, net::PacketSink &nic_sink);

    /**
     * Install @p hook to be called — from the owning rack's partition,
     * inside the delivering event — when a packet reaches a ToR's
     * server-facing port whose sink was never attached.  The hook is
     * expected to materialize the server and call attachServerSink();
     * forwarding then proceeds normally.  This is how idle lazy nodes
     * come to life on first delivered packet.
     */
    void setServerAttachHook(std::function<void(net::NodeId)> hook);

    /** Static source route from @p src to @p dst. */
    net::SourceRoute route(net::NodeId src, net::NodeId dst) const;

    HopClass hopClass(net::NodeId src, net::NodeId dst) const;

    // --- layout helpers ---
    uint32_t rackOf(net::NodeId node) const;   ///< global rack index
    uint32_t arrayOf(net::NodeId node) const;
    uint32_t indexInRack(net::NodeId node) const;
    uint32_t numRacks() const
    {
        return params_.racks_per_array * params_.num_arrays;
    }
    uint32_t planes() const { return params_.uplink_planes; }
    bool hasArrayLevel() const { return !array_switches_.empty(); }

    // --- fault surface ---
    // Every mutation is *scheduled* through the owning simulators'
    // event queues, never applied synchronously: routing-view updates
    // are replicated into every rack partition at the same instant and
    // physical link state changes run in the partition that owns each
    // link, so sequential and sharded-parallel runs order them
    // identically.  Call before the run starts (or from an event) with
    // @p at >= the current time of every partition.

    /** Cut (or restore) both directions of rack @p rack's plane-@p
     *  plane trunk at time @p at; flows rehash off (or back onto) the
     *  plane at the same instant fabric-wide. */
    void scheduleTrunkState(SimTime at, uint32_t rack, uint32_t plane,
                            bool up);

    /** Brownout both trunk directions: seeded Bernoulli loss plus extra
     *  latency.  Routing still uses the plane (a browned-out trunk is
     *  degraded, not dead); TCP absorbs the loss. */
    void scheduleTrunkDegrade(SimTime at, uint32_t rack, uint32_t plane,
                              double loss_prob, SimTime extra_latency,
                              uint64_t seed);

    /** End a brownout started by scheduleTrunkDegrade. */
    void scheduleTrunkRepair(SimTime at, uint32_t rack, uint32_t plane);

    /** Crash (or restart) array switch (@p array, @p plane): all its
     *  attached trunks drop, its queues drain into counted drops, and
     *  flows reroute to surviving planes. */
    void scheduleArraySwitchState(SimTime at, uint32_t array,
                                  uint32_t plane, bool up);

    /** ToR->array trunk for (rack, plane); fatal without array level. */
    net::Link &trunkUpLink(uint32_t rack, uint32_t plane);
    /** array->ToR trunk for (rack, plane). */
    net::Link &trunkDownLink(uint32_t rack, uint32_t plane);
    /** ToR->server link, null until attachServerSink(node) ran. */
    net::Link *serverLink(net::NodeId node);

    /** Plane the ECMP hash assigns (src, dst) with all planes live. */
    uint32_t preferredPlane(net::NodeId src, net::NodeId dst) const;

    /** Packets steered off their hash-preferred plane by a fault. */
    uint64_t rerouteCount() const;

    /** Frames dropped fabric-wide because a link was down. */
    uint64_t totalLinkDownDrops() const;
    /** Frames lost fabric-wide to link brownouts. */
    uint64_t totalLinkDegradeDrops() const;
    /** Deliveries that rode an already-armed train event (fabric links). */
    uint64_t totalDeliveriesCoalesced() const;
    /** Train walker events armed across all fabric links. */
    uint64_t totalDeliveryTrains() const;

    // --- introspection / stats ---
    size_t numRackSwitches() const { return rack_switches_.size(); }
    size_t numArraySwitches() const { return array_switches_.size(); }
    bool hasDcSwitch() const { return dc_switch_ != nullptr; }

    switchm::Switch &rackSwitch(uint32_t i) { return *rack_switches_[i]; }
    switchm::Switch &arraySwitch(uint32_t i)
    {
        return *array_switches_[i];
    }
    switchm::Switch &dcSwitch() { return *dc_switch_; }

    /** Sum of dropped packets across every switch in the fabric. */
    uint64_t totalSwitchDrops() const;
    uint64_t totalForwarded() const;

  private:
    /**
     * Per-rack-partition replica of fabric liveness.  Each rack's
     * route() calls read only its own replica; replicas are written
     * only by events scheduleViewUpdate() places into every rack
     * partition at the same instant — no cross-partition sharing, no
     * races, identical decisions in sequential and parallel runs.
     */
    struct FabricView {
        std::vector<uint8_t> trunk_up; ///< [rack * planes + plane]
        std::vector<uint8_t> array_up; ///< [array * planes + plane]
        mutable uint64_t reroutes = 0; ///< counted by route()
    };

    std::unique_ptr<switchm::Switch> makeSwitch(
        Simulator &sim, const switchm::SwitchParams &base, uint32_t ports,
        const std::string &name);
    std::unique_ptr<net::Link> makeTrunk(uint32_t rack, bool up,
                                         const std::string &name,
                                         Bandwidth bw);
    void build();
    void checkNode(net::NodeId node) const;
    void checkTrunk(uint32_t rack, uint32_t plane) const;

    /** Apply @p fn to every rack's view replica at time @p at. */
    void scheduleViewUpdate(SimTime at,
                            const std::function<void(FabricView &)> &fn);

    size_t trunkIdx(uint32_t rack, uint32_t plane) const
    {
        return static_cast<size_t>(rack) * params_.uplink_planes + plane;
    }

    ClosPartitionHooks hooks_;
    ClosParams params_;
    std::function<void(net::NodeId)> server_attach_hook_;

    std::vector<std::unique_ptr<switchm::Switch>> rack_switches_;
    /** Array switches, indexed [array * planes + plane]. */
    std::vector<std::unique_ptr<switchm::Switch>> array_switches_;
    std::unique_ptr<switchm::Switch> dc_switch_;
    std::vector<std::unique_ptr<net::Link>> tor_up_links_;   ///< [rack*P+p]
    std::vector<std::unique_ptr<net::Link>> arr_down_links_; ///< [rack*P+p]
    std::vector<std::unique_ptr<net::Link>> arr_up_links_;   ///< [a*P+p]
    std::vector<std::unique_ptr<net::Link>> dc_down_links_;  ///< [a*P+p]
    std::vector<std::unique_ptr<net::Link>> server_links_;
    std::vector<FabricView> views_; ///< one per rack partition
};

} // namespace topo
} // namespace diablo

#endif // DIABLO_TOPO_CLOS_HH_
