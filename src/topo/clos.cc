#include "topo/clos.hh"

#include "core/log.hh"
#include "switchm/output_queue_switch.hh"
#include "switchm/voq_switch.hh"

namespace diablo {
namespace topo {

ClosParams
ClosParams::fromConfig(const Config &cfg, const std::string &prefix)
{
    ClosParams p;
    p.servers_per_rack = static_cast<uint32_t>(
        cfg.getUint(prefix + "servers_per_rack", p.servers_per_rack));
    p.racks_per_array = static_cast<uint32_t>(
        cfg.getUint(prefix + "racks_per_array", p.racks_per_array));
    p.num_arrays = static_cast<uint32_t>(
        cfg.getUint(prefix + "num_arrays", p.num_arrays));
    const std::string model =
        cfg.getString(prefix + "switch_model", "voq");
    if (model == "voq") {
        p.switch_model = SwitchModelKind::Voq;
    } else if (model == "output_queue" || model == "oq") {
        p.switch_model = SwitchModelKind::OutputQueue;
    } else {
        fatal("unknown switch model '%s'", model.c_str());
    }
    p.rack_sw = switchm::SwitchParams::fromConfig(cfg, prefix + "rack.",
                                                  p.rack_sw);
    p.array_sw = switchm::SwitchParams::fromConfig(cfg, prefix + "array.",
                                                   p.array_sw);
    p.dc_sw = switchm::SwitchParams::fromConfig(cfg, prefix + "dc.",
                                                p.dc_sw);
    p.host_link_prop = SimTime::nanoseconds(cfg.getDouble(
        prefix + "host_link_prop_ns", p.host_link_prop.asNanos()));
    p.trunk_link_prop = SimTime::nanoseconds(cfg.getDouble(
        prefix + "trunk_link_prop_ns", p.trunk_link_prop.asNanos()));
    p.host_bw = Bandwidth::bps(
        cfg.getDouble(prefix + "host_gbps", p.host_bw.asGbps()) * 1e9);
    return p;
}

const char *
hopClassName(HopClass h)
{
    switch (h) {
      case HopClass::Local:  return "local";
      case HopClass::OneHop: return "1-hop";
      case HopClass::TwoHop: return "2-hop";
    }
    return "?";
}

namespace {

/** Hooks that place everything on one simulator with plain links. */
ClosPartitionHooks
singleSimHooks(Simulator &sim)
{
    ClosPartitionHooks h;
    h.rack_sim = [&sim](uint32_t) -> Simulator & { return sim; };
    h.switch_sim = &sim;
    h.make_cross_link = [&sim](uint32_t, bool, const std::string &name,
                               Bandwidth bw, SimTime prop) {
        return std::make_unique<net::Link>(sim, name, bw, prop);
    };
    return h;
}

} // namespace

ClosNetwork::ClosNetwork(Simulator &sim, const ClosParams &params)
    : ClosNetwork(singleSimHooks(sim), params)
{
}

ClosNetwork::ClosNetwork(const ClosPartitionHooks &hooks,
                         const ClosParams &params)
    : hooks_(hooks), params_(params)
{
    if (!hooks_.rack_sim || hooks_.switch_sim == nullptr ||
        !hooks_.make_cross_link) {
        fatal("ClosNetwork: partition hooks must provide rack_sim, "
              "switch_sim, and make_cross_link");
    }
    build();
}

void
ClosNetwork::build()
{
    const uint32_t S = params_.servers_per_rack;
    const uint32_t R = params_.racks_per_array;
    const uint32_t A = params_.num_arrays;
    if (S == 0 || R == 0 || A == 0) {
        fatal("ClosNetwork: all dimensions must be positive");
    }
    const bool has_array_level = R > 1 || A > 1;
    const bool has_dc_level = A > 1;

    // Rack switches: S server ports (+1 uplink when an array level
    // exists).  Each ToR lives in its rack's partition.
    const uint32_t tor_ports = S + (has_array_level ? 1 : 0);
    const uint32_t num_racks = R * A;
    for (uint32_t r = 0; r < num_racks; ++r) {
        rack_switches_.push_back(makeSwitch(
            hooks_.rack_sim(r), params_.rack_sw, tor_ports,
            "tor" + std::to_string(r)));
    }
    server_links_.resize(static_cast<size_t>(num_racks) * S);

    if (has_array_level) {
        // Array switches: R downlinks (+1 uplink when a DC level exists).
        const uint32_t arr_ports = R + (has_dc_level ? 1 : 0);
        for (uint32_t a = 0; a < A; ++a) {
            array_switches_.push_back(makeSwitch(
                *hooks_.switch_sim, params_.array_sw, arr_ports,
                "arr" + std::to_string(a)));
        }
        // ToR <-> array trunks: the only links that straddle the
        // rack/switch partition boundary, so both directions go
        // through the cross-link hook.
        for (uint32_t a = 0; a < A; ++a) {
            for (uint32_t r = 0; r < R; ++r) {
                const uint32_t rack = a * R + r;
                switchm::Switch &tor = *rack_switches_[rack];
                switchm::Switch &arr = *array_switches_[a];
                // Up: ToR port S -> array ingress r.
                auto up = makeTrunk(rack, true,
                                    strprintf("tor%u.up", rack),
                                    params_.rack_sw.port_bw);
                up->connectTo(arr.inPort(r));
                tor.attachOutLink(S, *up);
                trunk_links_.push_back(std::move(up));
                // Down: array egress r -> ToR ingress S.
                auto down = makeTrunk(rack, false,
                                      strprintf("arr%u.down%u", a, r),
                                      params_.array_sw.port_bw);
                down->connectTo(tor.inPort(S));
                arr.attachOutLink(r, *down);
                trunk_links_.push_back(std::move(down));
            }
        }
    }

    if (has_dc_level) {
        // The array<->DC trunks never leave the switch partition.
        Simulator &ssim = *hooks_.switch_sim;
        dc_switch_ = makeSwitch(ssim, params_.dc_sw, A, "dc");
        for (uint32_t a = 0; a < A; ++a) {
            switchm::Switch &arr = *array_switches_[a];
            auto up = std::make_unique<net::Link>(
                ssim, strprintf("arr%u.up", a), params_.array_sw.port_bw,
                params_.trunk_link_prop);
            up->connectTo(dc_switch_->inPort(a));
            arr.attachOutLink(R, *up);
            trunk_links_.push_back(std::move(up));

            auto down = std::make_unique<net::Link>(
                ssim, strprintf("dc.down%u", a), params_.dc_sw.port_bw,
                params_.trunk_link_prop);
            down->connectTo(arr.inPort(R));
            dc_switch_->attachOutLink(a, *down);
            trunk_links_.push_back(std::move(down));
        }
    }
}

std::unique_ptr<net::Link>
ClosNetwork::makeTrunk(uint32_t rack, bool up, const std::string &name,
                       Bandwidth bw)
{
    return hooks_.make_cross_link(rack, up, name, bw,
                                  params_.trunk_link_prop);
}

std::unique_ptr<switchm::Switch>
ClosNetwork::makeSwitch(Simulator &sim, const switchm::SwitchParams &base,
                        uint32_t ports, const std::string &name)
{
    switchm::SwitchParams p = base;
    p.num_ports = ports;
    p.name = name;
    switch (params_.switch_model) {
      case SwitchModelKind::Voq:
        return std::make_unique<switchm::VoqSwitch>(sim, p);
      case SwitchModelKind::OutputQueue:
        return std::make_unique<switchm::OutputQueueSwitch>(sim, p);
    }
    panic("unreachable switch model kind");
}

void
ClosNetwork::checkNode(net::NodeId node) const
{
    if (node >= totalServers()) {
        panic("node id %u out of range (%u servers)", node,
              totalServers());
    }
}

uint32_t
ClosNetwork::rackOf(net::NodeId node) const
{
    return node / params_.servers_per_rack;
}

uint32_t
ClosNetwork::arrayOf(net::NodeId node) const
{
    return rackOf(node) / params_.racks_per_array;
}

uint32_t
ClosNetwork::indexInRack(net::NodeId node) const
{
    return node % params_.servers_per_rack;
}

net::PacketSink &
ClosNetwork::serverIngress(net::NodeId node)
{
    checkNode(node);
    return rack_switches_[rackOf(node)]->inPort(indexInRack(node));
}

void
ClosNetwork::attachServerSink(net::NodeId node, net::PacketSink &nic_sink)
{
    checkNode(node);
    // ToR-to-server link: both endpoints live in the rack's partition.
    auto link = std::make_unique<net::Link>(
        hooks_.rack_sim(rackOf(node)),
        strprintf("tor%u.srv%u", rackOf(node), indexInRack(node)),
        params_.rack_sw.port_bw, params_.host_link_prop);
    link->connectTo(nic_sink);
    rack_switches_[rackOf(node)]->attachOutLink(indexInRack(node), *link);
    server_links_[node] = std::move(link);
}

net::SourceRoute
ClosNetwork::route(net::NodeId src, net::NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    if (src == dst) {
        panic("route to self (loopback bypasses the fabric)");
    }
    const uint32_t S = params_.servers_per_rack;
    const uint32_t R = params_.racks_per_array;
    const auto dst_idx = static_cast<uint16_t>(indexInRack(dst));
    const auto dst_rack_local =
        static_cast<uint16_t>(rackOf(dst) % R);

    if (rackOf(src) == rackOf(dst)) {
        return net::SourceRoute({dst_idx});
    }
    if (arrayOf(src) == arrayOf(dst)) {
        return net::SourceRoute({static_cast<uint16_t>(S),
                                 dst_rack_local, dst_idx});
    }
    return net::SourceRoute({static_cast<uint16_t>(S),
                             static_cast<uint16_t>(R),
                             static_cast<uint16_t>(arrayOf(dst)),
                             dst_rack_local, dst_idx});
}

HopClass
ClosNetwork::hopClass(net::NodeId src, net::NodeId dst) const
{
    if (rackOf(src) == rackOf(dst)) {
        return HopClass::Local;
    }
    if (arrayOf(src) == arrayOf(dst)) {
        return HopClass::OneHop;
    }
    return HopClass::TwoHop;
}

uint64_t
ClosNetwork::totalSwitchDrops() const
{
    uint64_t n = 0;
    for (const auto &s : rack_switches_) {
        n += s->stats().dropped_pkts;
    }
    for (const auto &s : array_switches_) {
        n += s->stats().dropped_pkts;
    }
    if (dc_switch_) {
        n += dc_switch_->stats().dropped_pkts;
    }
    return n;
}

uint64_t
ClosNetwork::totalForwarded() const
{
    uint64_t n = 0;
    for (const auto &s : rack_switches_) {
        n += s->stats().forwarded_pkts;
    }
    for (const auto &s : array_switches_) {
        n += s->stats().forwarded_pkts;
    }
    if (dc_switch_) {
        n += dc_switch_->stats().forwarded_pkts;
    }
    return n;
}

} // namespace topo
} // namespace diablo
