#include "topo/clos.hh"

#include "core/log.hh"
#include "switchm/output_queue_switch.hh"
#include "switchm/voq_switch.hh"

namespace diablo {
namespace topo {

ClosParams
ClosParams::fromConfig(const Config &cfg, const std::string &prefix)
{
    ClosParams p;
    p.servers_per_rack = static_cast<uint32_t>(
        cfg.getUint(prefix + "servers_per_rack", p.servers_per_rack));
    p.racks_per_array = static_cast<uint32_t>(
        cfg.getUint(prefix + "racks_per_array", p.racks_per_array));
    p.num_arrays = static_cast<uint32_t>(
        cfg.getUint(prefix + "num_arrays", p.num_arrays));
    p.uplink_planes = static_cast<uint32_t>(
        cfg.getUint(prefix + "uplink_planes", p.uplink_planes));
    const std::string model =
        cfg.getString(prefix + "switch_model", "voq");
    if (model == "voq") {
        p.switch_model = SwitchModelKind::Voq;
    } else if (model == "output_queue" || model == "oq") {
        p.switch_model = SwitchModelKind::OutputQueue;
    } else {
        fatal("unknown switch model '%s'", model.c_str());
    }
    p.rack_sw = switchm::SwitchParams::fromConfig(cfg, prefix + "rack.",
                                                  p.rack_sw);
    p.array_sw = switchm::SwitchParams::fromConfig(cfg, prefix + "array.",
                                                   p.array_sw);
    p.dc_sw = switchm::SwitchParams::fromConfig(cfg, prefix + "dc.",
                                                p.dc_sw);
    p.host_link_prop = SimTime::nanoseconds(cfg.getDouble(
        prefix + "host_link_prop_ns", p.host_link_prop.asNanos()));
    p.trunk_link_prop = SimTime::nanoseconds(cfg.getDouble(
        prefix + "trunk_link_prop_ns", p.trunk_link_prop.asNanos()));
    p.host_bw = Bandwidth::bps(
        cfg.getDouble(prefix + "host_gbps", p.host_bw.asGbps()) * 1e9);
    return p;
}

const char *
hopClassName(HopClass h)
{
    switch (h) {
      case HopClass::Local:  return "local";
      case HopClass::OneHop: return "1-hop";
      case HopClass::TwoHop: return "2-hop";
    }
    return "?";
}

namespace {

/** Deterministic 64-bit mix for ECMP flow hashing (splitmix64 finalizer). */
uint64_t
ecmpMix(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Hooks that place everything on one simulator with plain links. */
ClosPartitionHooks
singleSimHooks(Simulator &sim)
{
    ClosPartitionHooks h;
    h.rack_sim = [&sim](uint32_t) -> Simulator & { return sim; };
    h.switch_sim = &sim;
    h.make_cross_link = [&sim](uint32_t, bool, const std::string &name,
                               Bandwidth bw, SimTime prop) {
        return std::make_unique<net::Link>(sim, name, bw, prop);
    };
    return h;
}

} // namespace

ClosNetwork::ClosNetwork(Simulator &sim, const ClosParams &params)
    : ClosNetwork(singleSimHooks(sim), params)
{
}

ClosNetwork::ClosNetwork(const ClosPartitionHooks &hooks,
                         const ClosParams &params)
    : hooks_(hooks), params_(params)
{
    if (!hooks_.rack_sim || hooks_.switch_sim == nullptr ||
        !hooks_.make_cross_link) {
        fatal("ClosNetwork: partition hooks must provide rack_sim, "
              "switch_sim, and make_cross_link");
    }
    build();
}

void
ClosNetwork::build()
{
    const uint32_t S = params_.servers_per_rack;
    const uint32_t R = params_.racks_per_array;
    const uint32_t A = params_.num_arrays;
    if (S == 0 || R == 0 || A == 0) {
        fatal("ClosNetwork: all dimensions must be positive");
    }
    if (params_.uplink_planes == 0) {
        fatal("ClosNetwork: uplink_planes must be positive");
    }
    const bool has_array_level = R > 1 || A > 1;
    const bool has_dc_level = A > 1;
    // A single-rack topology has no array level, hence no planes.
    if (!has_array_level) {
        params_.uplink_planes = 1;
    }
    const uint32_t P = params_.uplink_planes;

    // Rack switches: S server ports, plus one uplink per plane when an
    // array level exists.  Each ToR lives in its rack's partition.
    const uint32_t tor_ports = S + (has_array_level ? P : 0);
    const uint32_t num_racks = R * A;
    for (uint32_t r = 0; r < num_racks; ++r) {
        rack_switches_.push_back(makeSwitch(
            hooks_.rack_sim(r), params_.rack_sw, tor_ports,
            "tor" + std::to_string(r)));
    }
    server_links_.resize(static_cast<size_t>(num_racks) * S);

    if (has_array_level) {
        // Array switches: one per (array, plane), each with R downlinks
        // (+1 uplink when a DC level exists).
        const uint32_t arr_ports = R + (has_dc_level ? 1 : 0);
        for (uint32_t a = 0; a < A; ++a) {
            for (uint32_t p = 0; p < P; ++p) {
                array_switches_.push_back(makeSwitch(
                    *hooks_.switch_sim, params_.array_sw, arr_ports,
                    P > 1 ? strprintf("arr%u.%u", a, p)
                          : "arr" + std::to_string(a)));
            }
        }
        // ToR <-> array trunks: the only links that straddle the
        // rack/switch partition boundary, so both directions go
        // through the cross-link hook.  ToR port S+p is plane p.
        tor_up_links_.resize(static_cast<size_t>(num_racks) * P);
        arr_down_links_.resize(static_cast<size_t>(num_racks) * P);
        for (uint32_t a = 0; a < A; ++a) {
            for (uint32_t p = 0; p < P; ++p) {
                switchm::Switch &arr = *array_switches_[a * P + p];
                for (uint32_t r = 0; r < R; ++r) {
                    const uint32_t rack = a * R + r;
                    switchm::Switch &tor = *rack_switches_[rack];
                    // Up: ToR port S+p -> array(a, p) ingress r.
                    auto up = makeTrunk(
                        rack, true,
                        P > 1 ? strprintf("tor%u.up%u", rack, p)
                              : strprintf("tor%u.up", rack),
                        params_.rack_sw.port_bw);
                    up->connectTo(arr.inPort(r));
                    tor.attachOutLink(S + p, *up);
                    tor_up_links_[trunkIdx(rack, p)] = std::move(up);
                    // Down: array(a, p) egress r -> ToR ingress S+p.
                    auto down = makeTrunk(
                        rack, false,
                        P > 1 ? strprintf("arr%u.%u.down%u", a, p, r)
                              : strprintf("arr%u.down%u", a, r),
                        params_.array_sw.port_bw);
                    down->connectTo(tor.inPort(S + p));
                    arr.attachOutLink(r, *down);
                    arr_down_links_[trunkIdx(rack, p)] = std::move(down);
                }
            }
        }
    }

    if (has_dc_level) {
        // The array<->DC trunks never leave the switch partition; DC
        // port a*P+p faces array switch (a, p).
        Simulator &ssim = *hooks_.switch_sim;
        dc_switch_ = makeSwitch(ssim, params_.dc_sw, A * P, "dc");
        arr_up_links_.resize(static_cast<size_t>(A) * P);
        dc_down_links_.resize(static_cast<size_t>(A) * P);
        for (uint32_t a = 0; a < A; ++a) {
            for (uint32_t p = 0; p < P; ++p) {
                switchm::Switch &arr = *array_switches_[a * P + p];
                auto up = std::make_unique<net::Link>(
                    ssim,
                    P > 1 ? strprintf("arr%u.%u.up", a, p)
                          : strprintf("arr%u.up", a),
                    params_.array_sw.port_bw, params_.trunk_link_prop);
                up->connectTo(dc_switch_->inPort(a * P + p));
                arr.attachOutLink(R, *up);
                arr_up_links_[a * P + p] = std::move(up);

                auto down = std::make_unique<net::Link>(
                    ssim, strprintf("dc.down%u", a * P + p),
                    params_.dc_sw.port_bw, params_.trunk_link_prop);
                down->connectTo(arr.inPort(R));
                dc_switch_->attachOutLink(a * P + p, *down);
                dc_down_links_[a * P + p] = std::move(down);
            }
        }
    }

    // Everything starts healthy; one liveness replica per rack
    // partition (see FabricView).
    FabricView healthy;
    healthy.trunk_up.assign(static_cast<size_t>(num_racks) * P, 1);
    healthy.array_up.assign(static_cast<size_t>(A) * P, 1);
    views_.assign(num_racks, healthy);
}

std::unique_ptr<net::Link>
ClosNetwork::makeTrunk(uint32_t rack, bool up, const std::string &name,
                       Bandwidth bw)
{
    return hooks_.make_cross_link(rack, up, name, bw,
                                  params_.trunk_link_prop);
}

std::unique_ptr<switchm::Switch>
ClosNetwork::makeSwitch(Simulator &sim, const switchm::SwitchParams &base,
                        uint32_t ports, const std::string &name)
{
    switchm::SwitchParams p = base;
    p.num_ports = ports;
    p.name = name;
    switch (params_.switch_model) {
      case SwitchModelKind::Voq:
        return std::make_unique<switchm::VoqSwitch>(sim, p);
      case SwitchModelKind::OutputQueue:
        return std::make_unique<switchm::OutputQueueSwitch>(sim, p);
    }
    panic("unreachable switch model kind");
}

void
ClosNetwork::checkNode(net::NodeId node) const
{
    if (node >= totalServers()) {
        panic("node id %u out of range (%u servers)", node,
              totalServers());
    }
}

uint32_t
ClosNetwork::rackOf(net::NodeId node) const
{
    return node / params_.servers_per_rack;
}

uint32_t
ClosNetwork::arrayOf(net::NodeId node) const
{
    return rackOf(node) / params_.racks_per_array;
}

uint32_t
ClosNetwork::indexInRack(net::NodeId node) const
{
    return node % params_.servers_per_rack;
}

net::PacketSink &
ClosNetwork::serverIngress(net::NodeId node)
{
    checkNode(node);
    return rack_switches_[rackOf(node)]->inPort(indexInRack(node));
}

void
ClosNetwork::attachServerSink(net::NodeId node, net::PacketSink &nic_sink)
{
    checkNode(node);
    // ToR-to-server link: both endpoints live in the rack's partition.
    auto link = std::make_unique<net::Link>(
        hooks_.rack_sim(rackOf(node)),
        strprintf("tor%u.srv%u", rackOf(node), indexInRack(node)),
        params_.rack_sw.port_bw, params_.host_link_prop);
    link->connectTo(nic_sink);
    rack_switches_[rackOf(node)]->attachOutLink(indexInRack(node), *link);
    server_links_[node] = std::move(link);
}

void
ClosNetwork::setServerAttachHook(std::function<void(net::NodeId)> hook)
{
    server_attach_hook_ = std::move(hook);
    const uint32_t S = params_.servers_per_rack;
    for (uint32_t r = 0; r < numRacks(); ++r) {
        // Only the first S ToR ports face servers; trunk ports are
        // wired eagerly at build time, so an unattached one is still a
        // routing bug and falls through to the switch's panic.
        rack_switches_[r]->setUnattachedPortHook(
            [this, r, S](uint32_t port) {
                if (port < S && server_attach_hook_) {
                    server_attach_hook_(
                        static_cast<net::NodeId>(r) * S + port);
                }
            });
    }
}

void
ClosNetwork::checkTrunk(uint32_t rack, uint32_t plane) const
{
    if (!hasArrayLevel()) {
        fatal("ClosNetwork: no trunks in a single-rack topology");
    }
    if (rack >= numRacks() || plane >= params_.uplink_planes) {
        fatal("ClosNetwork: trunk (rack %u, plane %u) out of range "
              "(%u racks, %u planes)",
              rack, plane, numRacks(), params_.uplink_planes);
    }
}

net::Link &
ClosNetwork::trunkUpLink(uint32_t rack, uint32_t plane)
{
    checkTrunk(rack, plane);
    return *tor_up_links_[trunkIdx(rack, plane)];
}

net::Link &
ClosNetwork::trunkDownLink(uint32_t rack, uint32_t plane)
{
    checkTrunk(rack, plane);
    return *arr_down_links_[trunkIdx(rack, plane)];
}

net::Link *
ClosNetwork::serverLink(net::NodeId node)
{
    checkNode(node);
    return server_links_[node].get();
}

void
ClosNetwork::scheduleViewUpdate(SimTime at,
                                const std::function<void(FabricView &)> &fn)
{
    // Replicate the update into every rack partition at the same
    // instant: each replica is written only by its own partition's
    // event, so routing state never crosses a partition boundary.
    for (uint32_t r = 0; r < numRacks(); ++r) {
        FabricView *view = &views_[r];
        hooks_.rack_sim(r).scheduleAt(at, [view, fn] { fn(*view); });
    }
}

void
ClosNetwork::scheduleTrunkState(SimTime at, uint32_t rack, uint32_t plane,
                                bool up)
{
    checkTrunk(rack, plane);
    const uint32_t P = params_.uplink_planes;
    scheduleViewUpdate(at, [rack, plane, P, up](FabricView &v) {
        v.trunk_up[static_cast<size_t>(rack) * P + plane] = up ? 1 : 0;
    });
    // Physical state flips in each link's owning partition.
    net::Link *up_link = tor_up_links_[trunkIdx(rack, plane)].get();
    hooks_.rack_sim(rack).scheduleAt(at,
                                     [up_link, up] { up_link->setUp(up); });
    net::Link *down_link = arr_down_links_[trunkIdx(rack, plane)].get();
    hooks_.switch_sim->scheduleAt(
        at, [down_link, up] { down_link->setUp(up); });
}

void
ClosNetwork::scheduleTrunkDegrade(SimTime at, uint32_t rack,
                                  uint32_t plane, double loss_prob,
                                  SimTime extra_latency, uint64_t seed)
{
    checkTrunk(rack, plane);
    // A brownout is degraded, not dead: routing keeps using the plane,
    // so no view update — TCP absorbs the loss and latency.
    net::Link *up_link = tor_up_links_[trunkIdx(rack, plane)].get();
    hooks_.rack_sim(rack).scheduleAt(
        at, [up_link, loss_prob, extra_latency, seed] {
            up_link->setDegraded(loss_prob, extra_latency, seed);
        });
    net::Link *down_link = arr_down_links_[trunkIdx(rack, plane)].get();
    hooks_.switch_sim->scheduleAt(
        at, [down_link, loss_prob, extra_latency, seed] {
            down_link->setDegraded(loss_prob, extra_latency, seed);
        });
}

void
ClosNetwork::scheduleTrunkRepair(SimTime at, uint32_t rack, uint32_t plane)
{
    checkTrunk(rack, plane);
    net::Link *up_link = tor_up_links_[trunkIdx(rack, plane)].get();
    hooks_.rack_sim(rack).scheduleAt(at,
                                     [up_link] { up_link->clearDegraded(); });
    net::Link *down_link = arr_down_links_[trunkIdx(rack, plane)].get();
    hooks_.switch_sim->scheduleAt(
        at, [down_link] { down_link->clearDegraded(); });
}

void
ClosNetwork::scheduleArraySwitchState(SimTime at, uint32_t array,
                                      uint32_t plane, bool up)
{
    if (!hasArrayLevel()) {
        fatal("ClosNetwork: no array switches in a single-rack topology");
    }
    const uint32_t P = params_.uplink_planes;
    if (array >= params_.num_arrays || plane >= P) {
        fatal("ClosNetwork: array switch (%u, %u) out of range "
              "(%u arrays, %u planes)",
              array, plane, params_.num_arrays, P);
    }
    scheduleViewUpdate(at, [array, plane, P, up](FabricView &v) {
        v.array_up[static_cast<size_t>(array) * P + plane] = up ? 1 : 0;
    });
    // A crashed switch takes every attached trunk with it: links toward
    // it drop at their transmitters, its own egress links drain its
    // queued packets into counted drops.
    const uint32_t R = params_.racks_per_array;
    for (uint32_t r = 0; r < R; ++r) {
        const uint32_t rack = array * R + r;
        net::Link *up_link = tor_up_links_[trunkIdx(rack, plane)].get();
        hooks_.rack_sim(rack).scheduleAt(
            at, [up_link, up] { up_link->setUp(up); });
        net::Link *down_link = arr_down_links_[trunkIdx(rack, plane)].get();
        hooks_.switch_sim->scheduleAt(
            at, [down_link, up] { down_link->setUp(up); });
    }
    if (dc_switch_) {
        net::Link *dc_up = arr_up_links_[array * P + plane].get();
        net::Link *dc_down = dc_down_links_[array * P + plane].get();
        hooks_.switch_sim->scheduleAt(at, [dc_up, dc_down, up] {
            dc_up->setUp(up);
            dc_down->setUp(up);
        });
    }
}

uint64_t
ClosNetwork::rerouteCount() const
{
    uint64_t n = 0;
    for (const auto &v : views_) {
        n += v.reroutes;
    }
    return n;
}

namespace {

/** Flow hash: stable under plane liveness changes. */
uint64_t
flowHash(net::NodeId src, net::NodeId dst)
{
    return ecmpMix((static_cast<uint64_t>(src) << 32) |
                   (static_cast<uint64_t>(dst) + 1));
}

/**
 * ECMP plane choice: the hash-preferred plane if live, else the
 * hash-selected live plane (counted as a reroute), else — no live plane
 * at all — the preferred plane unchanged: the flow blackholes into a
 * downed link whose drop counters tell the story.
 */
template <typename LiveFn>
uint32_t
choosePlane(uint64_t h, uint32_t planes, LiveFn live, uint64_t &reroutes)
{
    const auto pref = static_cast<uint32_t>(h % planes);
    if (live(pref)) {
        return pref;
    }
    uint32_t n_live = 0;
    for (uint32_t p = 0; p < planes; ++p) {
        n_live += live(p) ? 1 : 0;
    }
    if (n_live == 0) {
        return pref;
    }
    uint32_t k = static_cast<uint32_t>(h % n_live);
    for (uint32_t p = 0; p < planes; ++p) {
        if (!live(p)) {
            continue;
        }
        if (k == 0) {
            ++reroutes;
            return p;
        }
        --k;
    }
    return pref; // unreachable
}

} // namespace

// The deepest Clos path is 5 hops (rack → array → DC → array → rack);
// every route() below must fit the inline hop array with no spill.
static_assert(net::SourceRoute::kInlineHops >= 5,
              "SourceRoute inline capacity below max Clos diameter");

net::SourceRoute
ClosNetwork::route(net::NodeId src, net::NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    if (src == dst) {
        panic("route to self (loopback bypasses the fabric)");
    }
    const uint32_t S = params_.servers_per_rack;
    const uint32_t R = params_.racks_per_array;
    const uint32_t P = params_.uplink_planes;
    const auto dst_idx = static_cast<uint16_t>(indexInRack(dst));
    const auto dst_rack_local =
        static_cast<uint16_t>(rackOf(dst) % R);

    if (rackOf(src) == rackOf(dst)) {
        return net::SourceRoute({dst_idx});
    }

    // Reads only the calling rack's liveness replica — safe and
    // identical across sequential/parallel execution.
    const uint32_t src_rack = rackOf(src);
    const uint32_t dst_rack = rackOf(dst);
    const uint32_t a_src = arrayOf(src);
    const uint32_t a_dst = arrayOf(dst);
    const FabricView &v = views_[src_rack];
    const uint64_t h = flowHash(src, dst);

    if (a_src == a_dst) {
        // One plane carries the whole ToR-array-ToR path.
        const uint32_t p = choosePlane(
            h, P,
            [&](uint32_t q) {
                return v.trunk_up[trunkIdx(src_rack, q)] &&
                       v.array_up[a_src * P + q] &&
                       v.trunk_up[trunkIdx(dst_rack, q)];
            },
            v.reroutes);
        return net::SourceRoute({static_cast<uint16_t>(S + p),
                                 dst_rack_local, dst_idx});
    }

    // Cross-array: ascent and descent planes chosen independently (the
    // DC level joins all planes), with decorrelated hashes.
    const uint32_t p_up = choosePlane(
        h, P,
        [&](uint32_t q) {
            return v.trunk_up[trunkIdx(src_rack, q)] &&
                   v.array_up[a_src * P + q];
        },
        v.reroutes);
    const uint32_t p_down = choosePlane(
        ecmpMix(h), P,
        [&](uint32_t q) {
            return v.array_up[a_dst * P + q] &&
                   v.trunk_up[trunkIdx(dst_rack, q)];
        },
        v.reroutes);
    return net::SourceRoute({static_cast<uint16_t>(S + p_up),
                             static_cast<uint16_t>(R),
                             static_cast<uint16_t>(a_dst * P + p_down),
                             dst_rack_local, dst_idx});
}

uint32_t
ClosNetwork::preferredPlane(net::NodeId src, net::NodeId dst) const
{
    return static_cast<uint32_t>(flowHash(src, dst) %
                                 params_.uplink_planes);
}

HopClass
ClosNetwork::hopClass(net::NodeId src, net::NodeId dst) const
{
    if (rackOf(src) == rackOf(dst)) {
        return HopClass::Local;
    }
    if (arrayOf(src) == arrayOf(dst)) {
        return HopClass::OneHop;
    }
    return HopClass::TwoHop;
}

uint64_t
ClosNetwork::totalSwitchDrops() const
{
    uint64_t n = 0;
    for (const auto &s : rack_switches_) {
        n += s->stats().dropped_pkts;
    }
    for (const auto &s : array_switches_) {
        n += s->stats().dropped_pkts;
    }
    if (dc_switch_) {
        n += dc_switch_->stats().dropped_pkts;
    }
    return n;
}

uint64_t
ClosNetwork::totalForwarded() const
{
    uint64_t n = 0;
    for (const auto &s : rack_switches_) {
        n += s->stats().forwarded_pkts;
    }
    for (const auto &s : array_switches_) {
        n += s->stats().forwarded_pkts;
    }
    if (dc_switch_) {
        n += dc_switch_->stats().forwarded_pkts;
    }
    return n;
}

namespace {

template <typename Fn>
uint64_t
sumLinks(const std::vector<std::unique_ptr<net::Link>> &links, Fn fn)
{
    uint64_t n = 0;
    for (const auto &l : links) {
        if (l) {
            n += fn(*l);
        }
    }
    return n;
}

} // namespace

uint64_t
ClosNetwork::totalLinkDownDrops() const
{
    auto drops = [](const net::Link &l) { return l.downDrops(); };
    return sumLinks(tor_up_links_, drops) + sumLinks(arr_down_links_, drops) +
           sumLinks(arr_up_links_, drops) + sumLinks(dc_down_links_, drops) +
           sumLinks(server_links_, drops);
}

uint64_t
ClosNetwork::totalLinkDegradeDrops() const
{
    auto drops = [](const net::Link &l) { return l.degradeDrops(); };
    return sumLinks(tor_up_links_, drops) + sumLinks(arr_down_links_, drops) +
           sumLinks(arr_up_links_, drops) + sumLinks(dc_down_links_, drops) +
           sumLinks(server_links_, drops);
}

uint64_t
ClosNetwork::totalDeliveriesCoalesced() const
{
    auto c = [](const net::Link &l) { return l.deliveriesCoalesced(); };
    return sumLinks(tor_up_links_, c) + sumLinks(arr_down_links_, c) +
           sumLinks(arr_up_links_, c) + sumLinks(dc_down_links_, c) +
           sumLinks(server_links_, c);
}

uint64_t
ClosNetwork::totalDeliveryTrains() const
{
    auto c = [](const net::Link &l) { return l.deliveryTrains(); };
    return sumLinks(tor_up_links_, c) + sumLinks(arr_down_links_, c) +
           sumLinks(arr_up_links_, c) + sumLinks(dc_down_links_, c) +
           sumLinks(server_links_, c);
}

} // namespace topo
} // namespace diablo
