#ifndef DIABLO_SIM_TELEMETRY_HH_
#define DIABLO_SIM_TELEMETRY_HH_

/**
 * @file
 * In-run streaming telemetry: watch a warehouse-scale run live instead
 * of waiting for the end-of-run report.
 *
 * A TelemetryProbe snapshots a running Cluster on the *simulated*
 * clock — every `period` of sim-time it appends one JSON line to a
 * JSONL stream: goodput over the interval, requests completed
 * (cumulative + delta), p99-so-far, the packet-pool ledger,
 * materialized-node delta, and engine progress.  Because sampling is
 * driven by simulated time and the probe only *reads* model state,
 * enabling it never perturbs simulated results: runs with telemetry on
 * and off are bit-identical (asserted by tests for both engines).
 *
 * Two attachment modes cover the two ways runs are driven:
 *
 *  - installPeriodic(): a self-rescheduling event on the cluster's
 *    single Simulator.  Single-engine only; the optional done()
 *    predicate stops rescheduling so `sim.run()` can still drain.
 *
 *  - poll(now): for window-driven engines (seq/par PartitionSet
 *    drivers), the host loop calls poll() at window boundaries —
 *    between quanta no worker is running, so cross-partition reads are
 *    race-free, and clampWindow() aligns window ends to sample
 *    instants so samples land exactly on the period grid.
 */

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "core/time.hh"

namespace diablo {
namespace sim {

class Cluster;

/** Streams periodic cluster snapshots to a JSONL file. */
class TelemetryProbe {
  public:
    /** App-level progress the driving harness knows and models don't. */
    struct AppStats {
        uint64_t requests_completed = 0;
        uint64_t bytes = 0;    ///< app payload bytes moved so far
        double p99_us = 0.0;   ///< p99-so-far of the app's latency stat
    };
    using Sampler = std::function<void(AppStats &)>;

    /**
     * Opens @p path for writing (fatal on failure).  @p period must be
     * positive.  The probe takes its first sample at the first
     * period boundary, not at time 0.
     */
    TelemetryProbe(Cluster &cluster, SimTime period, std::string path);
    ~TelemetryProbe();

    TelemetryProbe(const TelemetryProbe &) = delete;
    TelemetryProbe &operator=(const TelemetryProbe &) = delete;

    /** Provide app-level numbers; called once per sample. */
    void setSampler(Sampler s) { sampler_ = std::move(s); }

    /**
     * Single-engine mode: schedule a self-rescheduling sampling event
     * on the cluster's Simulator.  @p done (when set) is checked after
     * each sample and stops rescheduling, letting run() drain.
     */
    void installPeriodic(std::function<bool()> done = {});

    /**
     * Windowed mode: take any samples due at or before @p now.  Call
     * at window boundaries (no workers running).  Samples are stamped
     * with their nominal grid time, so a poll that covers several
     * periods emits several rows.
     */
    void poll(SimTime now);

    /**
     * Clamp a window end so the next sample instant is never jumped
     * over: returns min(until, next sample due time).
     */
    SimTime clampWindow(SimTime until) const;

    /**
     * Drive a windowed engine to exactly @p until while sampling on
     * the period grid: repeatedly advances to the next sample instant
     * (via @p run, which must advance the engine to its argument),
     * polls, and finishes at @p until.  The caller's window sequence
     * is unchanged — the same outer windows run with telemetry on or
     * off, which is what keeps window-quantized measurements (e.g. a
     * driver's elapsed time) bit-identical either way.
     */
    void driveTo(SimTime until, const std::function<void(SimTime)> &run);

    SimTime period() const { return period_; }
    uint64_t samplesWritten() const { return samples_; }
    const std::string &path() const { return path_; }

    /** Flush the stream (rows are also flushed per sample). */
    void flush();

  private:
    void sample(SimTime t);

    Cluster &cluster_;
    SimTime period_;
    SimTime next_due_;
    std::string path_;
    FILE *out_ = nullptr;
    Sampler sampler_;
    uint64_t samples_ = 0;

    // previous-sample state for the delta columns
    uint64_t last_requests_ = 0;
    uint64_t last_bytes_ = 0;
    uint64_t last_events_ = 0;
    uint64_t last_materialized_ = 0;
};

} // namespace sim
} // namespace diablo

#endif // DIABLO_SIM_TELEMETRY_HH_
