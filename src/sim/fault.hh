#ifndef DIABLO_SIM_FAULT_HH_
#define DIABLO_SIM_FAULT_HH_

/**
 * @file
 * Deterministic cluster-scale fault injection.
 *
 * A FaultPlan is a timeline of infrastructure faults — trunk cuts and
 * brownouts, array-switch crashes, server power failures — described
 * purely in simulated time.  A FaultController installs the plan into a
 * Cluster by scheduling every transition through the ordinary event
 * engines of the partitions that own the affected state, so a faulted
 * run is just another deterministic event schedule: sequential and
 * sharded-parallel executions of the same plan produce bit-identical
 * results, and re-running the same seed replays the same outage.
 *
 * Faults are events, never wall-clock: nothing in this subsystem reads
 * host time or mutates model state outside a scheduled event.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/time.hh"
#include "net/packet.hh"

namespace diablo {
namespace sim {

class Cluster;

/** What breaks (or heals). */
enum class FaultKind {
    TrunkDown,     ///< cut both directions of a (rack, plane) trunk
    TrunkUp,       ///< restore a cut trunk
    TrunkBrownout, ///< lossy/slow trunk: Bernoulli loss + extra latency
    TrunkRepair,   ///< end a brownout
    SwitchCrash,   ///< array switch (array, plane) dies with its trunks
    SwitchRestart, ///< restore a crashed array switch
    ServerCrash,   ///< power-fail a server (silent: sends nothing)
    ServerReboot,  ///< restore a crashed server with fresh state
};

const char *faultKindName(FaultKind k);

/** One timeline entry; which fields matter depends on kind. */
struct FaultEvent {
    SimTime at;
    FaultKind kind = FaultKind::TrunkDown;
    uint32_t rack = 0;      ///< trunk faults
    uint32_t plane = 0;     ///< trunk and switch faults
    uint32_t array = 0;     ///< switch faults
    net::NodeId node = 0;   ///< server faults
    double loss_prob = 0.0; ///< brownout loss probability
    SimTime extra_latency;  ///< brownout added one-way latency
};

/**
 * A deterministic, seed-stamped fault timeline.
 *
 * Build programmatically with the fluent adders, from a Config
 * (fault.0.kind=trunk_down fault.0.at_us=... ...), or from a plan file
 * of key=value lines.  The seed feeds brownout loss processes; two runs
 * of the same plan draw identical loss sequences.
 */
class FaultPlan {
  public:
    FaultPlan() = default;
    explicit FaultPlan(uint64_t seed) : seed_(seed) {}

    uint64_t seed() const { return seed_; }
    void setSeed(uint64_t s) { seed_ = s; }

    FaultPlan &trunkDown(SimTime at, uint32_t rack, uint32_t plane);
    FaultPlan &trunkUp(SimTime at, uint32_t rack, uint32_t plane);
    FaultPlan &trunkBrownout(SimTime at, uint32_t rack, uint32_t plane,
                             double loss_prob, SimTime extra_latency);
    FaultPlan &trunkRepair(SimTime at, uint32_t rack, uint32_t plane);
    FaultPlan &switchCrash(SimTime at, uint32_t array, uint32_t plane);
    FaultPlan &switchRestart(SimTime at, uint32_t array, uint32_t plane);
    FaultPlan &serverCrash(SimTime at, net::NodeId node);
    FaultPlan &serverReboot(SimTime at, net::NodeId node);

    const std::vector<FaultEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }
    size_t size() const { return events_.size(); }

    /**
     * Timeline union: append @p other's events after this plan's
     * (each event keeps its own simulated time; the scheduler orders
     * them).  With @p take_seed, @p other's seed replaces this plan's
     * — used when command-line fault.* keys override a --fault-plan
     * file's timeline.
     */
    FaultPlan &merge(const FaultPlan &other, bool take_seed = false);

    /**
     * Parse fault.<i>.* keys (i = 0, 1, ... until the first missing
     * fault.<i>.kind) plus an optional fault.seed.  Keys per event:
     * kind (trunk_down/trunk_up/trunk_brownout/trunk_repair/
     * switch_crash/switch_restart/server_crash/server_reboot), at_us,
     * and the kind's operands (rack, plane, array, node, loss,
     * extra_us).  Fatal on an unknown kind.
     */
    static FaultPlan fromConfig(const Config &cfg,
                                const std::string &prefix = "fault.");

    /**
     * Load a plan file: key=value assignment lines in the fromConfig
     * schema, '#' comments and blank lines ignored.  Fatal if the file
     * cannot be read or a line is malformed.
     */
    static FaultPlan fromFile(const std::string &path);

    /** Human-readable timeline (one event per line). */
    std::string str() const;

  private:
    std::vector<FaultEvent> events_;
    uint64_t seed_ = 20150314;
};

/**
 * Installs a FaultPlan into a Cluster.
 *
 * install() validates every event against the cluster's topology and
 * schedules the state transitions; call it once, before the run starts.
 * Trunk and switch faults go through ClosNetwork's fault surface (which
 * replicates routing-view updates into every rack partition at the same
 * instant); server faults schedule Kernel::crash()/reboot() plus the
 * server's access links in the server's own rack partition.
 */
class FaultController {
  public:
    FaultController(Cluster &cluster, FaultPlan plan);

    /**
     * Called (in the server's rack partition) right after a node
     * reboots — the place to respawn its serving processes.  Set before
     * install().
     */
    void onServerReboot(std::function<void(net::NodeId)> fn)
    {
        reboot_hook_ = std::move(fn);
    }

    /** Schedule every event in the plan; fatal on out-of-range refs. */
    void install();

    const FaultPlan &plan() const { return plan_; }
    bool installed() const { return installed_; }

  private:
    void installEvent(const FaultEvent &e, size_t idx);

    Cluster &cluster_;
    FaultPlan plan_;
    std::function<void(net::NodeId)> reboot_hook_;
    bool installed_ = false;
};

} // namespace sim
} // namespace diablo

#endif // DIABLO_SIM_FAULT_HH_
