#include "sim/cluster.hh"

#include "core/log.hh"

namespace diablo {
namespace sim {

namespace {

switchm::SwitchParams
shallowGigeSwitch()
{
    switchm::SwitchParams p;
    p.port_bw = Bandwidth::gbps(1);
    p.port_latency = SimTime::us(1);
    p.cut_through = true;
    p.buffer_policy = switchm::BufferPolicy::Partitioned;
    p.buffer_per_port_bytes = 4096; // Nortel 5500-class shallow buffer
    return p;
}

} // namespace

ClusterParams
ClusterParams::gige1us()
{
    ClusterParams p;
    p.topo.rack_sw = shallowGigeSwitch();
    // Aggregation-layer switches carry deep shared packet memory with
    // Broadcom-style dynamic thresholds (the paper models its buffers
    // "after the Cisco Nexus 5000 ... configurable parameters selected
    // according to a Broadcom switch design"); the paper's memcached
    // runs see queueing tails there but **no** buffer-overrun
    // retransmissions, which requires megabyte-class pools.
    p.topo.array_sw = shallowGigeSwitch();
    p.topo.array_sw.buffer_policy = switchm::BufferPolicy::SharedDynamic;
    p.topo.array_sw.buffer_total_bytes = 2 * 1024 * 1024;
    p.topo.array_sw.dynamic_alpha = 0.5;
    p.topo.dc_sw = p.topo.array_sw;
    p.topo.host_bw = Bandwidth::gbps(1);
    return p;
}

ClusterParams
ClusterParams::tengig100ns()
{
    ClusterParams p = gige1us();
    for (switchm::SwitchParams *sw :
         {&p.topo.rack_sw, &p.topo.array_sw, &p.topo.dc_sw}) {
        sw->port_bw = Bandwidth::gbps(10);
        sw->port_latency = SimTime::ns(100);
    }
    p.topo.host_bw = Bandwidth::gbps(10);
    return p;
}

void
ClusterParams::applyConfig(const Config &cfg)
{
    topo = topo::ClosParams::fromConfig(cfg, "topo.");
    cpu = os::CpuParams::fromConfig(cfg, "cpu.");
    if (cfg.has("kernel.version")) {
        kernel_profile = os::KernelProfile::byName(
            cfg.getString("kernel.version", kernel_profile.name));
    }
    kernel_profile.applyConfig(cfg, "kernel.");
    tcp = os::TcpParams::fromConfig(cfg, "tcp.");
    nic = nic::NicParams::fromConfig(cfg, "nic.");
    seed = cfg.getUint("seed", seed);
}

Cluster::Cluster(Simulator &sim, const ClusterParams &params)
    : sim_(sim), params_(params), rng_(params.seed)
{
    network_ = std::make_unique<topo::ClosNetwork>(sim, params_.topo);
    const uint32_t n = network_->totalServers();
    servers_.resize(n);

    for (uint32_t node = 0; node < n; ++node) {
        ServerNode &s = servers_[node];
        topo::ClosNetwork *net = network_.get();
        s.kernel = std::make_unique<os::Kernel>(
            sim, node, params_.cpu, params_.kernel_profile,
            [net, node](net::NodeId dst) { return net->route(node, dst); });
        s.kernel->setTcpParams(params_.tcp);

        s.nic = std::make_unique<nic::NicModel>(
            sim, strprintf("nic%u", node), params_.nic);
        s.nic->attachKernel(*s.kernel);

        s.uplink = std::make_unique<net::Link>(
            sim, strprintf("srv%u.up", node), params_.topo.host_bw,
            params_.topo.host_link_prop);
        s.uplink->connectTo(network_->serverIngress(node));
        s.nic->attachTxLink(*s.uplink);

        network_->attachServerSink(node, *s.nic);
    }
}

Cluster::~Cluster() = default;

uint64_t
Cluster::totalTcpRetransmits() const
{
    uint64_t n = 0;
    for (const auto &s : servers_) {
        n += s.kernel->stats().tcp_retransmits;
    }
    return n;
}

uint64_t
Cluster::totalTcpRtos() const
{
    uint64_t n = 0;
    for (const auto &s : servers_) {
        n += s.kernel->stats().tcp_rtos;
    }
    return n;
}

uint64_t
Cluster::totalUdpSocketDrops() const
{
    uint64_t n = 0;
    for (const auto &s : servers_) {
        n += s.kernel->stats().udp_rx_overflow_drops;
    }
    return n;
}

uint64_t
Cluster::totalNicRxDrops() const
{
    uint64_t n = 0;
    for (const auto &s : servers_) {
        n += s.nic->rxRingDrops();
    }
    return n;
}

} // namespace sim
} // namespace diablo
