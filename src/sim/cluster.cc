#include "sim/cluster.hh"

#include <cstring>

#include "core/log.hh"
#include "net/channel_link.hh"
#include "net/packet_record.hh"

namespace diablo {
namespace sim {

namespace {

switchm::SwitchParams
shallowGigeSwitch()
{
    switchm::SwitchParams p;
    p.port_bw = Bandwidth::gbps(1);
    p.port_latency = SimTime::us(1);
    p.cut_through = true;
    p.buffer_policy = switchm::BufferPolicy::Partitioned;
    p.buffer_per_port_bytes = 4096; // Nortel 5500-class shallow buffer
    return p;
}

} // namespace

ClusterParams
ClusterParams::gige1us()
{
    ClusterParams p;
    p.topo.rack_sw = shallowGigeSwitch();
    // Aggregation-layer switches carry deep shared packet memory with
    // Broadcom-style dynamic thresholds (the paper models its buffers
    // "after the Cisco Nexus 5000 ... configurable parameters selected
    // according to a Broadcom switch design"); the paper's memcached
    // runs see queueing tails there but **no** buffer-overrun
    // retransmissions, which requires megabyte-class pools.
    p.topo.array_sw = shallowGigeSwitch();
    p.topo.array_sw.buffer_policy = switchm::BufferPolicy::SharedDynamic;
    p.topo.array_sw.buffer_total_bytes = 2 * 1024 * 1024;
    p.topo.array_sw.dynamic_alpha = 0.5;
    p.topo.dc_sw = p.topo.array_sw;
    p.topo.host_bw = Bandwidth::gbps(1);
    return p;
}

ClusterParams
ClusterParams::tengig100ns()
{
    ClusterParams p = gige1us();
    for (switchm::SwitchParams *sw :
         {&p.topo.rack_sw, &p.topo.array_sw, &p.topo.dc_sw}) {
        sw->port_bw = Bandwidth::gbps(10);
        sw->port_latency = SimTime::ns(100);
    }
    p.topo.host_bw = Bandwidth::gbps(10);
    return p;
}

void
ClusterParams::applyConfig(const Config &cfg)
{
    topo = topo::ClosParams::fromConfig(cfg, "topo.");
    cpu = os::CpuParams::fromConfig(cfg, "cpu.");
    if (cfg.has("kernel.version")) {
        kernel_profile = os::KernelProfile::byName(
            cfg.getString("kernel.version", kernel_profile.name));
    }
    kernel_profile.applyConfig(cfg, "kernel.");
    tcp = os::TcpParams::fromConfig(cfg, "tcp.");
    nic = nic::NicParams::fromConfig(cfg, "nic.");
    seed = cfg.getUint("seed", seed);
    lazy_servers = cfg.getBool("sim.lazy_servers", lazy_servers);
}

/**
 * A materialized server: kernel + NIC + uplink constructed in place in
 * the rack partition's arena, fully wired by the constructor (the old
 * eager buildServers() loop, verbatim).  Construction schedules no
 * events and draws no randomness, so materializing mid-run — from the
 * ToR's delivery path — cannot perturb simulated behaviour.
 */
struct Cluster::ServerState {
    os::Kernel kernel;
    nic::NicModel nic;
    net::Link uplink; ///< NIC -> ToR

    ServerState(Simulator &rsim, net::NodeId node,
                const ClusterParams &params, topo::ClosNetwork *net)
        : kernel(rsim, node, params.cpu, params.kernel_profile,
                 [net, node](net::NodeId dst) {
                     return net->route(node, dst);
                 }),
          nic(rsim, strprintf("nic%u", node), params.nic),
          uplink(rsim, strprintf("srv%u.up", node), params.topo.host_bw,
                 params.topo.host_link_prop)
    {
        kernel.setTcpParams(params.tcp);
        nic.attachKernel(kernel);
        uplink.connectTo(net->serverIngress(node));
        nic.attachTxLink(uplink);
        net->attachServerSink(node, nic);

        // The multiplied-by-active-set struct budget (heap growth
        // behind these members is bounded separately: rings are sized
        // by NicParams, OS bookkeeping by the kernel.cc asserts).
        static_assert(sizeof(ServerState) <= 2048,
                      "ServerState grew past its per-node byte budget");
    }
};

size_t
Cluster::partitionsRequired(const ClusterParams &params)
{
    const uint32_t racks =
        params.topo.racks_per_array * params.topo.num_arrays;
    // A single-rack array is just a ToR: no aggregation levels, so no
    // switch partition (and no cross-partition channels at all).
    return racks + (racks > 1 ? 1 : 0);
}

Cluster::Cluster(Simulator &sim, const ClusterParams &params)
    : sim_(&sim), params_(params), rng_(params.seed)
{
    network_ = std::make_unique<topo::ClosNetwork>(sim, params_.topo);
    buildServers();
}

Cluster::Cluster(fame::PartitionSet &ps, const ClusterParams &params)
    : ps_(&ps), params_(params), rng_(params.seed)
{
    const uint32_t racks = numRacks();
    const size_t need = partitionsRequired(params_);
    if (ps.size() != need) {
        fatal("Cluster: sharded build of %u racks needs %zu partitions "
              "(one per rack%s), got %zu",
              racks, need, racks > 1 ? " + 1 for the switch levels" : "",
              ps.size());
    }

    // Rack r -> partition r; array/datacenter switches -> partition
    // `racks` (the Switch-FPGA analog).  The only cross-partition edges
    // are the ToR<->array trunks; each becomes a ChannelLink over its
    // own channel, with the channel's conservative lookahead set to the
    // trunk's minimum transmit-to-delivery latency (propagation +
    // forwarding-header serialization).  That minimum across all trunks
    // is the PartitionSet's synchronization quantum.
    topo::ClosPartitionHooks hooks;
    hooks.rack_sim = [&ps](uint32_t rack) -> Simulator & {
        return ps.partition(rack);
    };
    hooks.switch_sim = &ps.partition(racks > 1 ? racks : 0);
    hooks.make_cross_link =
        [this, &ps, racks](uint32_t rack, bool up, const std::string &name,
                           Bandwidth bw, SimTime prop)
        -> std::unique_ptr<net::Link> {
        const size_t switch_part = racks;
        const size_t src = up ? rack : switch_part;
        const size_t dst = up ? switch_part : rack;
        fame::PartitionSet::Channel &ch = ps.makeChannel(
            src, dst, net::ChannelLink::minDeliveryLatency(bw, prop),
            name);
        auto link = std::make_unique<net::ChannelLink>(
            ps.partition(src), name, bw, prop,
            [&ch](SimTime when, EventFn fn) {
                ch.post(when, std::move(fn));
            });
        trunks_.push_back(Trunk{&ch, link.get()});
        return link;
    };
    network_ = std::make_unique<topo::ClosNetwork>(hooks, params_.topo);
    buildServers();

    // Fusion balance hints for runParallel's partition->worker
    // placement: a rack partition's event rate scales with the servers
    // it hosts (kernel/NIC/uplink per server, plus its ToR); the
    // switch partition carries the aggregation levels, whose
    // forwarding load scales with total trunk fan-in.  Pure wall-clock
    // hints — results are identical for any placement.
    // Locality hint mirroring the paper's rack -> array -> datacenter
    // hierarchy: racks of one array exchange most of their traffic
    // through that array's switches, so group them onto one worker
    // when the balance allows (setPartitionGroup spills oversized
    // groups automatically).  The switch partition stays ungrouped.
    for (uint32_t r = 0; r < racks; ++r) {
        ps.setPartitionWeight(r, params_.topo.servers_per_rack + 1.0);
        ps.setPartitionGroup(
            r, static_cast<int64_t>(r / params_.topo.racks_per_array));
    }
    if (racks > 1) {
        ps.setPartitionWeight(
            racks, 1.0 + 0.5 * racks * params_.topo.uplink_planes);
    }
}

void
Cluster::enableProcessCoupling(const fame::PartitionSet::CoupledOptions &opts)
{
    if (ps_ == nullptr) {
        fatal("Cluster::enableProcessCoupling: cluster is not sharded "
              "over a PartitionSet");
    }
    // Tag every partition's pool with its dense index (creating pools
    // that don't exist yet) so a trunk-crossing packet can name its
    // origin partition on the wire and the receiving process can ghost
    // a replica from the matching local pool.
    for (size_t i = 0; i < ps_->size(); ++i) {
        net::packetPoolOf(ps_->partition(i)).setTag(
            static_cast<int64_t>(i));
    }
    for (Trunk &t : trunks_) {
        fame::PartitionSet::Channel &ch = *t.ch;
        net::ChannelLink *link = t.link;
        // Outbound: when the channel's destination partition is owned
        // by a peer process, flatten deliveries into PacketRecords and
        // buffer them on the channel for the next window flush.
        link->enableRecordPath(
            ch.remoteOutgoingFlag(),
            [this, &ch](SimTime when, const net::PacketRecord &rec) {
                ps_->postRecord(ch, when, &rec, sizeof(rec));
            });
        // Inbound: rebuild the packet (ghost-making from the origin
        // partition's local replica pool) and deliver it through the
        // same ChannelLink sink path the closure route uses, so queue
        // position and downstream behaviour are identical.
        ps_->setChannelDecoder(
            ch,
            [this, link](Simulator &, SimTime, const void *bytes,
                         uint32_t len) -> EventFn {
                if (len != sizeof(net::PacketRecord)) {
                    fatal("coupled trunk %s: %u-byte wire record "
                          "(expected %zu)",
                          link->name().c_str(), len,
                          sizeof(net::PacketRecord));
                }
                net::PacketRecord rec;
                std::memcpy(&rec, bytes, sizeof(rec));
                net::PacketPool *origin =
                    rec.origin_part == net::PacketRecord::kHeapOrigin
                        ? nullptr
                        : &net::packetPoolOf(
                              ps_->partition(rec.origin_part));
                net::PacketPtr p = net::materializePacket(rec, origin);
                auto deliver = [link, p = std::move(p)]() mutable {
                    link->receiveRecord(std::move(p));
                };
                static_assert(
                    EventFn::inlineable<decltype(deliver)>(),
                    "coupled trunk delivery closure outgrew the EventFn "
                    "inline buffer (per-message heap allocation)");
                return EventFn(std::move(deliver));
            });
    }
    ps_->enableCoupled(opts);
}

Simulator &
Cluster::sim()
{
    if (sim_ == nullptr) {
        fatal("Cluster::sim(): a sharded cluster has no single "
              "simulator; use kernel(node).sim() or drive the "
              "PartitionSet");
    }
    return *sim_;
}

Simulator &
Cluster::simForRack(uint32_t rack)
{
    return ps_ != nullptr ? ps_->partition(rack) : *sim_;
}

void
Cluster::buildServers()
{
    const uint32_t n = network_->totalServers();
    nodes_.assign(n, nullptr);

    // One arena per rack partition so parallel-run materializations
    // bump-allocate without synchronization; a non-sharded cluster runs
    // single-threaded and shares one arena.
    const size_t num_arenas = ps_ != nullptr ? numRacks() : 1;
    arenas_.resize(num_arenas);
    arena_nodes_.resize(num_arenas);

    // Second materialization trigger: the first packet the fabric tries
    // to deliver to an unattached ToR server port.  The hook runs inside
    // the delivering event on the rack's own partition, before any
    // forwarding state is touched, so the packet lands on a fully wired
    // NIC and the simulated outcome matches the eager build exactly.
    network_->setServerAttachHook(
        [this](net::NodeId node) { ensureServer(node); });

    if (!params_.lazy_servers) {
        for (uint32_t node = 0; node < n; ++node) {
            ensureServer(node);
        }
    }
}

Cluster::ServerState &
Cluster::ensureServer(net::NodeId node)
{
    if (node >= nodes_.size()) {
        fatal("Cluster: node %u out of range (cluster has %zu servers)",
              node, nodes_.size());
    }
    ServerState *s = nodes_[node];
    return s != nullptr ? *s : *materialize(node);
}

Cluster::ServerState *
Cluster::materialize(net::NodeId node)
{
    // Every per-server model element lives in the server's rack
    // partition; its NIC uplink terminates at the ToR, which is in the
    // same partition, so the uplink is an ordinary Link.  The arena,
    // the nodes_ slot, and the per-arena order log are all owned by
    // that same partition, so mid-run materializations from two racks
    // never share state.
    const uint32_t rack = node / params_.topo.servers_per_rack;
    const size_t arena = arenas_.size() == 1 ? 0 : rack;
    ServerState *s = arenas_[arena].make<ServerState>(
        simForRack(rack), node, params_, network_.get());
    nodes_[node] = s;
    arena_nodes_[arena].push_back(node);
    return s;
}

Cluster::~Cluster()
{
    // Arena memory is bump-allocated: the arena frees the slabs but
    // never runs destructors, so tear nodes down explicitly — within
    // each arena in reverse materialization order — while the network
    // they detach from is still alive.
    for (size_t a = arena_nodes_.size(); a-- > 0;) {
        std::vector<net::NodeId> &order = arena_nodes_[a];
        for (size_t i = order.size(); i-- > 0;) {
            nodes_[order[i]]->~ServerState();
            nodes_[order[i]] = nullptr;
        }
    }
}

os::Kernel &
Cluster::kernel(net::NodeId node)
{
    return ensureServer(node).kernel;
}

nic::NicModel &
Cluster::nic(net::NodeId node)
{
    return ensureServer(node).nic;
}

net::Link &
Cluster::uplink(net::NodeId node)
{
    return ensureServer(node).uplink;
}

size_t
Cluster::materializedServers() const
{
    size_t n = 0;
    for (const SlabArena &a : arenas_) {
        n += a.objects();
    }
    return n;
}

std::vector<Cluster::ArenaStats>
Cluster::arenaStats() const
{
    std::vector<ArenaStats> out;
    out.reserve(arenas_.size());
    for (const SlabArena &a : arenas_) {
        ArenaStats st;
        st.nodes = a.objects();
        st.bytes_used = a.bytesUsed();
        st.bytes_reserved = a.bytesReserved();
        out.push_back(st);
    }
    return out;
}

uint64_t
Cluster::totalTcpRetransmits() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->kernel.stats().tcp_retransmits;
    }
    return n;
}

uint64_t
Cluster::totalTcpRtos() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->kernel.stats().tcp_rtos;
    }
    return n;
}

uint64_t
Cluster::totalTcpAborts() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->kernel.stats().tcp_aborts;
    }
    return n;
}

uint64_t
Cluster::totalTcpRecovered() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->kernel.stats().tcp_recovered;
    }
    return n;
}

uint64_t
Cluster::totalCrashRxDiscards() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->kernel.stats().crash_rx_discards;
    }
    return n;
}

uint64_t
Cluster::totalUdpSocketDrops() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->kernel.stats().udp_rx_overflow_drops;
    }
    return n;
}

uint64_t
Cluster::totalNicRxDrops() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->nic.rxRingDrops();
    }
    return n;
}

uint64_t
Cluster::totalNicTxRingDrops() const
{
    uint64_t n = 0;
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->nic.txRingDrops();
    }
    return n;
}

std::vector<Cluster::PoolStats>
Cluster::poolStats() const
{
    auto snapshot = [](Simulator &sim) {
        PoolStats ps;
        if (const net::PacketPool *pool = net::packetPoolIfAttached(sim)) {
            ps.makes = pool->makes();
            ps.recycles = pool->recycles();
            ps.heap_allocs = pool->heapAllocs();
            ps.returns = pool->returns();
            ps.high_water = pool->highWater();
        }
        return ps;
    };
    std::vector<PoolStats> out;
    if (ps_ != nullptr) {
        out.reserve(ps_->size());
        for (size_t i = 0; i < ps_->size(); ++i) {
            out.push_back(snapshot(ps_->partition(i)));
        }
    } else {
        out.push_back(snapshot(*sim_));
    }
    return out;
}

uint64_t
Cluster::totalDeliveriesCoalesced() const
{
    uint64_t n = network_->totalDeliveriesCoalesced();
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->uplink.deliveriesCoalesced();
    }
    return n;
}

uint64_t
Cluster::totalDeliveryTrains() const
{
    uint64_t n = network_->totalDeliveryTrains();
    for (const ServerState *s : nodes_) {
        if (s == nullptr) {
            continue;
        }
        n += s->uplink.deliveryTrains();
    }
    return n;
}

} // namespace sim
} // namespace diablo
