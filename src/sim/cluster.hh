#ifndef DIABLO_SIM_CLUSTER_HH_
#define DIABLO_SIM_CLUSTER_HH_

/**
 * @file
 * The top-level public API: a fully wired simulated WSC array.
 *
 * A Cluster owns the Clos fabric plus, for every server, a kernel
 * (CPU/OS/TCP/UDP model) and a NIC, all parameterized at runtime like
 * DIABLO's FAME models.  Applications (src/apps) are installed on server
 * kernels and run as coroutines; statistics flow out through the models'
 * accessors.
 *
 * Typical use:
 * @code
 *   Simulator sim;
 *   sim::ClusterParams params = sim::ClusterParams::gige1us();
 *   params.topo.num_arrays = 1;
 *   sim::Cluster cluster(sim, params);
 *   cluster.kernel(0).spawnProcess(myServerApp(cluster.kernel(0)));
 *   sim.run();
 * @endcode
 *
 * Sharded use — the paper's Rack-FPGA/Switch-FPGA partitioning (§3.2):
 * each rack (servers, NICs, uplinks, ToR) maps to its own partition of
 * a fame::PartitionSet, the array/datacenter switch levels to one
 * additional switch partition, and the ToR<->array trunks become
 * net::ChannelLinks over PartitionSet channels whose lookahead is the
 * trunk propagation + header serialization time:
 * @code
 *   fame::PartitionSet ps(sim::Cluster::partitionsRequired(params));
 *   sim::Cluster cluster(ps, params);
 *   cluster.kernel(0).spawnProcess(myServerApp(cluster.kernel(0)));
 *   ps.runParallel(SimTime::sec(1));   // or runSequential: identical
 * @endcode
 */

#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/random.hh"
#include "core/simulator.hh"
#include "fame/partition.hh"
#include "nic/nic_model.hh"
#include "os/kernel.hh"
#include "topo/clos.hh"

namespace diablo {
namespace sim {

/** Everything needed to instantiate a cluster. */
struct ClusterParams {
    topo::ClosParams topo;
    os::CpuParams cpu;
    os::KernelProfile kernel_profile = os::KernelProfile::linux2639();
    os::TcpParams tcp;
    nic::NicParams nic;
    uint64_t seed = 20150314;

    /**
     * The paper's 1 Gbps configuration: 1 us port-to-port switch
     * latency, shallow 4 KB per-port buffers (Nortel 5500-like).
     */
    static ClusterParams gige1us();

    /**
     * The paper's upgraded interconnect: 10 Gbps, 100 ns port-to-port
     * latency, same shallow buffer configuration.
     */
    static ClusterParams tengig100ns();

    /** Apply dotted-key overrides (cpu., kernel., tcp., nic., topo.). */
    void applyConfig(const Config &cfg);
};

/** A wired WSC array: fabric + servers. */
class Cluster {
  public:
    /** Single-partition build: the whole array on one Simulator. */
    Cluster(Simulator &sim, const ClusterParams &params);

    /**
     * Sharded build over a conservative-parallel PartitionSet: rack r's
     * servers/NICs/ToR on partition r, the array and datacenter switch
     * levels on partition numRacks() (when those levels exist), with
     * cross-partition channels created for every ToR<->array trunk.
     * @p ps must have exactly partitionsRequired(params) partitions and
     * must outlive the Cluster.  Run with ps.runParallel() or
     * ps.runSequential(); both produce bit-identical statistics.
     *
     * The constructor also installs fusion weight hints
     * (PartitionSet::setPartitionWeight): rack partitions ∝ servers
     * per rack, the switch partition ∝ trunk fan-in, so
     * runParallel's partition->worker placement stays balanced when
     * racks outnumber host cores.  Tune afterwards if the workload is
     * known to be skewed; placement never changes simulated results.
     */
    Cluster(fame::PartitionSet &ps, const ClusterParams &params);

    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /**
     * Partitions a sharded build of @p params needs: one per rack plus
     * one for the aggregation switch levels (omitted for a single-rack
     * topology, which has no levels above its ToR).
     */
    static size_t partitionsRequired(const ClusterParams &params);

    /**
     * The single simulator of a non-sharded cluster.  Fatal on a
     * sharded cluster — there is no single engine; use
     * kernel(node).sim(), or drive the PartitionSet.
     */
    Simulator &sim();

    /** Non-null iff this cluster is sharded over a PartitionSet. */
    fame::PartitionSet *partitionSet() { return ps_; }
    bool sharded() const { return ps_ != nullptr; }

    uint32_t size() const { return network_->totalServers(); }
    uint32_t numRacks() const
    {
        return params_.topo.racks_per_array * params_.topo.num_arrays;
    }
    const ClusterParams &params() const { return params_; }

    os::Kernel &kernel(net::NodeId node) { return *servers_[node].kernel; }
    nic::NicModel &nic(net::NodeId node) { return *servers_[node].nic; }
    /** The server's NIC->ToR link (lives in the server's rack partition). */
    net::Link &uplink(net::NodeId node) { return *servers_[node].uplink; }
    topo::ClosNetwork &network() { return *network_; }

    /** Master random stream; fork per component/app. */
    Rng &rng() { return rng_; }

    // --- aggregate statistics across all servers ---
    uint64_t totalTcpRetransmits() const;
    uint64_t totalTcpRtos() const;
    uint64_t totalTcpAborts() const;
    uint64_t totalTcpRecovered() const;
    uint64_t totalCrashRxDiscards() const;
    uint64_t totalUdpSocketDrops() const;
    uint64_t totalNicRxDrops() const;
    /** Descriptor-ring-full drops across every NIC tx ring. */
    uint64_t totalNicTxRingDrops() const;

    /** Snapshot of one partition's packet pool counters. */
    struct PoolStats {
        uint64_t makes = 0;       ///< packets handed out by the pool
        uint64_t recycles = 0;    ///< makes served from the freelist
        uint64_t heap_allocs = 0; ///< makes that hit operator new
        uint64_t returns = 0;     ///< packets pushed back (any thread)
        uint64_t high_water = 0;  ///< max packets simultaneously live
    };

    /**
     * Per-partition pool counters, one entry per engine partition (a
     * single entry for a non-sharded cluster).  Partitions whose pool
     * was never touched report all-zero.  makes/returns are
     * event-driven and bit-identical seq vs par; heap_allocs,
     * recycles and high_water depend on recycle timing and are only
     * deterministic within one engine mode.
     */
    std::vector<PoolStats> poolStats() const;

    /** Link deliveries that rode an armed train (fabric + uplinks). */
    uint64_t totalDeliveriesCoalesced() const;
    /** Train walker events armed (fabric + uplinks). */
    uint64_t totalDeliveryTrains() const;

  private:
    struct ServerNode {
        std::unique_ptr<os::Kernel> kernel;
        std::unique_ptr<nic::NicModel> nic;
        std::unique_ptr<net::Link> uplink; ///< NIC -> ToR
    };

    /** Wire kernels/NICs/uplinks, each on its rack's simulator. */
    void buildServers();

    Simulator &simForRack(uint32_t rack);

    Simulator *sim_ = nullptr;       ///< non-null iff single-partition
    fame::PartitionSet *ps_ = nullptr; ///< non-null iff sharded
    ClusterParams params_;
    std::unique_ptr<topo::ClosNetwork> network_;
    std::vector<ServerNode> servers_;
    Rng rng_;
};

} // namespace sim
} // namespace diablo

#endif // DIABLO_SIM_CLUSTER_HH_
