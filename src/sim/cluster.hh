#ifndef DIABLO_SIM_CLUSTER_HH_
#define DIABLO_SIM_CLUSTER_HH_

/**
 * @file
 * The top-level public API: a fully wired simulated WSC array.
 *
 * A Cluster owns the Clos fabric plus, for every server, a kernel
 * (CPU/OS/TCP/UDP model) and a NIC, all parameterized at runtime like
 * DIABLO's FAME models.  Applications (src/apps) are installed on server
 * kernels and run as coroutines; statistics flow out through the models'
 * accessors.
 *
 * Typical use:
 * @code
 *   Simulator sim;
 *   sim::ClusterParams params = sim::ClusterParams::gige1us();
 *   params.topo.num_arrays = 1;
 *   sim::Cluster cluster(sim, params);
 *   cluster.kernel(0).spawnProcess(myServerApp(cluster.kernel(0)));
 *   sim.run();
 * @endcode
 *
 * Sharded use — the paper's Rack-FPGA/Switch-FPGA partitioning (§3.2):
 * each rack (servers, NICs, uplinks, ToR) maps to its own partition of
 * a fame::PartitionSet, the array/datacenter switch levels to one
 * additional switch partition, and the ToR<->array trunks become
 * net::ChannelLinks over PartitionSet channels whose lookahead is the
 * trunk propagation + header serialization time:
 * @code
 *   fame::PartitionSet ps(sim::Cluster::partitionsRequired(params));
 *   sim::Cluster cluster(ps, params);
 *   cluster.kernel(0).spawnProcess(myServerApp(cluster.kernel(0)));
 *   ps.runParallel(SimTime::sec(1));   // or runSequential: identical
 * @endcode
 */

#include <memory>
#include <vector>

#include "core/arena.hh"
#include "core/config.hh"
#include "core/random.hh"
#include "core/simulator.hh"
#include "fame/partition.hh"
#include "nic/nic_model.hh"
#include "os/kernel.hh"
#include "topo/clos.hh"

namespace diablo {
namespace net {
class ChannelLink;
} // namespace net
namespace sim {

/** Everything needed to instantiate a cluster. */
struct ClusterParams {
    topo::ClosParams topo;
    os::CpuParams cpu;
    os::KernelProfile kernel_profile = os::KernelProfile::linux2639();
    os::TcpParams tcp;
    nic::NicParams nic;
    uint64_t seed = 20150314;

    /**
     * Materialize a server's kernel/NIC/uplink lazily — on first app
     * attach (any kernel()/nic()/uplink() access) or on the first
     * packet delivered to its ToR port — instead of eagerly for every
     * node.  An idle warehouse node then costs one table entry instead
     * of a full TCP stack, which is what lets the paper's 32,000-node
     * array fit on one host.  Simulated results are identical either
     * way: materialization constructs state but schedules no events
     * and draws no randomness.  `sim.lazy_servers=false` restores the
     * eager build (the memory-diet ablation baseline).
     */
    bool lazy_servers = true;

    /**
     * The paper's 1 Gbps configuration: 1 us port-to-port switch
     * latency, shallow 4 KB per-port buffers (Nortel 5500-like).
     */
    static ClusterParams gige1us();

    /**
     * The paper's upgraded interconnect: 10 Gbps, 100 ns port-to-port
     * latency, same shallow buffer configuration.
     */
    static ClusterParams tengig100ns();

    /** Apply dotted-key overrides (cpu., kernel., tcp., nic., topo.). */
    void applyConfig(const Config &cfg);
};

/** A wired WSC array: fabric + servers. */
class Cluster {
  public:
    /** Single-partition build: the whole array on one Simulator. */
    Cluster(Simulator &sim, const ClusterParams &params);

    /**
     * Sharded build over a conservative-parallel PartitionSet: rack r's
     * servers/NICs/ToR on partition r, the array and datacenter switch
     * levels on partition numRacks() (when those levels exist), with
     * cross-partition channels created for every ToR<->array trunk.
     * @p ps must have exactly partitionsRequired(params) partitions and
     * must outlive the Cluster.  Run with ps.runParallel() or
     * ps.runSequential(); both produce bit-identical statistics.
     *
     * The constructor also installs fusion weight hints
     * (PartitionSet::setPartitionWeight): rack partitions ∝ servers
     * per rack, the switch partition ∝ trunk fan-in, so
     * runParallel's partition->worker placement stays balanced when
     * racks outnumber host cores.  Tune afterwards if the workload is
     * known to be skewed; placement never changes simulated results.
     */
    Cluster(fame::PartitionSet &ps, const ClusterParams &params);

    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /**
     * Partitions a sharded build of @p params needs: one per rack plus
     * one for the aggregation switch levels (omitted for a single-rack
     * topology, which has no levels above its ToR).
     */
    static size_t partitionsRequired(const ClusterParams &params);

    /**
     * The single simulator of a non-sharded cluster.  Fatal on a
     * sharded cluster — there is no single engine; use
     * kernel(node).sim(), or drive the PartitionSet.
     */
    Simulator &sim();

    /** Non-null iff this cluster is sharded over a PartitionSet. */
    fame::PartitionSet *partitionSet() { return ps_; }
    bool sharded() const { return ps_ != nullptr; }

    /**
     * Arm the multiprocess (coupled) engine on a sharded cluster: tag
     * every partition's packet pool with its dense index, switch each
     * ToR<->array trunk to the PacketRecord wire path for destinations
     * owned by peer processes, install the matching record decoder,
     * and hand @p opts to PartitionSet::enableCoupled.  Every process
     * of the group builds the identical cluster, calls this with its
     * own rank/transport set (complementary owner maps), then drives
     * its PartitionSet with runCoupled().  Call once, before the first
     * run, on a sharded cluster only (fatal otherwise).
     */
    void enableProcessCoupling(const fame::PartitionSet::CoupledOptions &opts);

    uint32_t size() const { return network_->totalServers(); }
    uint32_t numRacks() const
    {
        return params_.topo.racks_per_array * params_.topo.num_arrays;
    }
    const ClusterParams &params() const { return params_; }

    /**
     * Per-server model accessors.  On a lazy cluster these materialize
     * the node on first touch (the "first app attach" trigger); the
     * other trigger — first delivered packet — fires from inside the
     * ToR's forwarding path via the unattached-port hook.
     */
    os::Kernel &kernel(net::NodeId node);
    nic::NicModel &nic(net::NodeId node);
    /** The server's NIC->ToR link (lives in the server's rack partition). */
    net::Link &uplink(net::NodeId node);
    topo::ClosNetwork &network() { return *network_; }

    /** Servers whose kernel/NIC/uplink exist (== size() when eager). */
    size_t materializedServers() const;

    /** One arena's ledger (arenas are per rack partition when sharded). */
    struct ArenaStats {
        uint64_t nodes = 0;          ///< materialized servers
        uint64_t bytes_used = 0;     ///< bump-allocated object bytes
        uint64_t bytes_reserved = 0; ///< slab bytes owned
    };

    /** Per-arena node-state ledgers, for the --mem-report tooling. */
    std::vector<ArenaStats> arenaStats() const;

    /** Master random stream; fork per component/app. */
    Rng &rng() { return rng_; }

    // --- aggregate statistics across all servers ---
    uint64_t totalTcpRetransmits() const;
    uint64_t totalTcpRtos() const;
    uint64_t totalTcpAborts() const;
    uint64_t totalTcpRecovered() const;
    uint64_t totalCrashRxDiscards() const;
    uint64_t totalUdpSocketDrops() const;
    uint64_t totalNicRxDrops() const;
    /** Descriptor-ring-full drops across every NIC tx ring. */
    uint64_t totalNicTxRingDrops() const;

    /** Snapshot of one partition's packet pool counters. */
    struct PoolStats {
        uint64_t makes = 0;       ///< packets handed out by the pool
        uint64_t recycles = 0;    ///< makes served from the freelist
        uint64_t heap_allocs = 0; ///< makes that hit operator new
        uint64_t returns = 0;     ///< packets pushed back (any thread)
        uint64_t high_water = 0;  ///< max packets simultaneously live
    };

    /**
     * Per-partition pool counters, one entry per engine partition (a
     * single entry for a non-sharded cluster).  Partitions whose pool
     * was never touched report all-zero.  makes/returns are
     * event-driven and bit-identical seq vs par; heap_allocs,
     * recycles and high_water depend on recycle timing and are only
     * deterministic within one engine mode.
     */
    std::vector<PoolStats> poolStats() const;

    /** Link deliveries that rode an armed train (fabric + uplinks). */
    uint64_t totalDeliveriesCoalesced() const;
    /** Train walker events armed (fabric + uplinks). */
    uint64_t totalDeliveryTrains() const;

  private:
    /**
     * A materialized server's kernel + NIC + uplink, placed contiguously
     * in its rack partition's slab arena (definition in cluster.cc).
     */
    struct ServerState;

    /** Shared ctor tail: node table, arenas, hook, eager fill. */
    void buildServers();

    /** Materialize-if-needed; the only path that creates ServerState. */
    ServerState &ensureServer(net::NodeId node);
    ServerState *materialize(net::NodeId node);

    Simulator &simForRack(uint32_t rack);

    Simulator *sim_ = nullptr;       ///< non-null iff single-partition
    fame::PartitionSet *ps_ = nullptr; ///< non-null iff sharded
    ClusterParams params_;
    std::unique_ptr<topo::ClosNetwork> network_;

    /**
     * Node table: one pointer per server, null until materialized.
     * Sized at build; slots are only ever written by the owning rack
     * partition (or the main thread outside a run), so parallel-run
     * materializations never touch the same slot from two threads.
     */
    std::vector<ServerState *> nodes_;

    /**
     * Every cross-partition trunk of a sharded build: the fame channel
     * and the ChannelLink riding it, recorded at wiring time so
     * enableProcessCoupling can retrofit the record path without
     * re-deriving the topology.
     */
    struct Trunk {
        fame::PartitionSet::Channel *ch;
        net::ChannelLink *link;
    };
    std::vector<Trunk> trunks_;

    /** One arena per rack partition (a single one when not sharded). */
    std::vector<SlabArena> arenas_;
    /** Per-arena materialization order, for reverse-order teardown. */
    std::vector<std::vector<net::NodeId>> arena_nodes_;

    Rng rng_;
};

} // namespace sim
} // namespace diablo

#endif // DIABLO_SIM_CLUSTER_HH_
