#ifndef DIABLO_SIM_WATCHDOG_HH_
#define DIABLO_SIM_WATCHDOG_HH_

/**
 * @file
 * Wall-clock run watchdog for unattended operation.
 *
 * A multi-hour campaign can wedge in ways the simulated world never
 * sees: a livelocked engine quantum, a model bug that stops scheduling
 * events, an NFS stall under an artifact write.  The Watchdog is a
 * detached observer thread with two tripwires:
 *
 *  - **deadline** (`run.deadline=<s>`): hard wall-clock budget for the
 *    whole run;
 *  - **stall** (`run.stall=<s>`): no *simulation progress* for that
 *    long.  Progress is whatever monotone counter the run loop
 *    publishes via noteProgress() at its safe points (engine window
 *    boundaries, periodic events) — the watchdog never reads engine
 *    state itself, so arming it cannot perturb the run or race with
 *    workers.  A run wedged *inside* a quantum stops publishing, which
 *    is exactly the stall signature.
 *
 * On trip the watchdog invokes the diagnostic callback (which may dump
 * best-effort engine state: sim time, per-partition next-event minima,
 * pool ledgers), requests a cooperative interrupt (so the driver
 * finalizes a partial artifact, same path as SIGTERM), and then — if
 * the process is still alive after a grace period — hard-exits with
 * core::kExitWatchdog, because a watchdog that can itself be wedged by
 * the hang it detects is no watchdog at all.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

namespace diablo {
namespace sim {

/** Wall-clock deadline + progress-stall monitor (one per run). */
class Watchdog {
  public:
    struct Params {
        double deadline_s = 0.0; ///< whole-run budget; 0 disables
        double stall_s = 0.0;    ///< no-progress window; 0 disables
        double poll_s = 0.25;    ///< tripwire check period
        double grace_s = 5.0;    ///< trip -> hard-exit budget
        /** Skip the hard _Exit after grace (unit tests only). */
        bool hard_exit = true;

        bool enabled() const { return deadline_s > 0 || stall_s > 0; }
    };

    /** Best-effort state dump, invoked once on the watchdog thread at
     *  trip time.  Keep it signal-handler-grade defensive: the engine
     *  may be mid-quantum. */
    using Diagnostic = std::function<void(const char *reason)>;

    Watchdog(Params p, Diagnostic diag);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Start monitoring (no-op when neither tripwire is configured). */
    void arm();

    /**
     * Stop monitoring (normal completion).  Joins the thread; after
     * disarm() returns no diagnostic can fire.  Safe to call twice and
     * from the destructor.
     */
    void disarm();

    /**
     * Publish the run's progress counter (any monotone value: quanta,
     * executed events, their sum).  Called from the run loop's safe
     * points; a frozen value for longer than stall_s trips the
     * watchdog.
     */
    void
    noteProgress(uint64_t counter)
    {
        progress_.store(counter, std::memory_order_relaxed);
    }

    bool tripped() const
    {
        return tripped_.load(std::memory_order_relaxed);
    }

    /** "deadline" | "stall" | "" (not tripped). */
    const char *reason() const
    {
        return reason_.load(std::memory_order_relaxed);
    }

  private:
    void threadMain();

    Params params_;
    Diagnostic diag_;
    std::thread thread_;
    std::atomic<uint64_t> progress_{0};
    std::atomic<bool> stop_{false};
    std::atomic<bool> tripped_{false};
    std::atomic<const char *> reason_{""};
};

} // namespace sim
} // namespace diablo

#endif // DIABLO_SIM_WATCHDOG_HH_
