#include "sim/telemetry.hh"

#include "analysis/json_writer.hh"
#include "core/log.hh"
#include "sim/cluster.hh"

namespace diablo {
namespace sim {

TelemetryProbe::TelemetryProbe(Cluster &cluster, SimTime period,
                               std::string path)
    : cluster_(cluster), period_(period), next_due_(period),
      path_(std::move(path))
{
    if (!(SimTime() < period_)) {
        fatal("TelemetryProbe: period must be positive");
    }
    out_ = std::fopen(path_.c_str(), "w");
    if (out_ == nullptr) {
        fatal("TelemetryProbe: cannot open '%s' for writing",
              path_.c_str());
    }
}

TelemetryProbe::~TelemetryProbe()
{
    if (out_ != nullptr) {
        std::fclose(out_);
    }
}

void
TelemetryProbe::flush()
{
    if (out_ != nullptr) {
        std::fflush(out_);
    }
}

void
TelemetryProbe::installPeriodic(std::function<bool()> done)
{
    Simulator &sim = cluster_.sim(); // fatal on a sharded cluster
    // Self-rescheduling closure; owns nothing but the done predicate.
    struct Tick {
        TelemetryProbe *probe;
        std::function<bool()> done;

        void
        operator()()
        {
            Simulator &s = probe->cluster_.sim();
            probe->sample(s.now());
            probe->next_due_ = probe->next_due_ + probe->period_;
            if (done && done()) {
                return;
            }
            s.schedule(probe->period_, Tick{probe, done});
        }
    };
    sim.schedule(next_due_ - sim.now(), Tick{this, std::move(done)});
}

void
TelemetryProbe::poll(SimTime now)
{
    while (next_due_ <= now) {
        sample(next_due_);
        next_due_ = next_due_ + period_;
    }
}

SimTime
TelemetryProbe::clampWindow(SimTime until) const
{
    return next_due_ < until ? next_due_ : until;
}

void
TelemetryProbe::driveTo(SimTime until,
                        const std::function<void(SimTime)> &run)
{
    for (;;) {
        const SimTime sub = clampWindow(until);
        run(sub);
        poll(sub);
        if (!(sub < until)) {
            return;
        }
    }
}

void
TelemetryProbe::sample(SimTime t)
{
    AppStats app;
    if (sampler_) {
        sampler_(app);
    }

    uint64_t events = 0;
    fame::PartitionSet *ps = cluster_.partitionSet();
    if (ps != nullptr) {
        events = ps->totalExecutedEvents();
    } else {
        events = cluster_.sim().executedEvents();
    }

    uint64_t pool_makes = 0, pool_returns = 0;
    for (const Cluster::PoolStats &p : cluster_.poolStats()) {
        pool_makes += p.makes;
        pool_returns += p.returns;
    }
    const uint64_t materialized = cluster_.materializedServers();

    const double interval_s = period_.asSeconds();
    const uint64_t d_bytes = app.bytes - last_bytes_;
    const double goodput =
        interval_s > 0.0
            ? static_cast<double>(d_bytes) * 8.0 / interval_s / 1e6
            : 0.0;

    analysis::JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("sample", samples_);
    w.field("t_us", t.asMicros());
    w.field("requests_completed", app.requests_completed);
    w.field("d_requests", app.requests_completed - last_requests_);
    w.field("bytes", app.bytes);
    w.field("goodput_mbps", goodput);
    w.field("p99_us", app.p99_us);
    w.field("events", events);
    w.field("d_events", events - last_events_);
    w.field("pool_makes", pool_makes);
    w.field("pool_returns", pool_returns);
    w.field("materialized", materialized);
    w.field("d_materialized", materialized - last_materialized_);
    w.endObject();

    const std::string &row = w.str();
    if (std::fwrite(row.data(), 1, row.size(), out_) != row.size() ||
        std::fputc('\n', out_) == EOF) {
        fatal("TelemetryProbe: short write to '%s'", path_.c_str());
    }
    std::fflush(out_); // live stream: rows must be visible mid-run

    ++samples_;
    last_requests_ = app.requests_completed;
    last_bytes_ = app.bytes;
    last_events_ = events;
    last_materialized_ = materialized;
}

} // namespace sim
} // namespace diablo
