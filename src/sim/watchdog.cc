#include "sim/watchdog.hh"

#include <cstdio>
#include <cstdlib>

#include <chrono>

#include "core/interrupt.hh"

namespace diablo {
namespace sim {

namespace {

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Watchdog::Watchdog(Params p, Diagnostic diag)
    : params_(p), diag_(std::move(diag))
{
}

Watchdog::~Watchdog()
{
    disarm();
}

void
Watchdog::arm()
{
    if (!params_.enabled() || thread_.joinable()) {
        return;
    }
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { threadMain(); });
}

void
Watchdog::disarm()
{
    if (!thread_.joinable()) {
        return;
    }
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
}

void
Watchdog::threadMain()
{
    const double start = monotonicSeconds();
    uint64_t last_progress = progress_.load(std::memory_order_relaxed);
    double last_change = start;

    const auto poll =
        std::chrono::duration<double>(params_.poll_s > 0 ? params_.poll_s
                                                         : 0.25);
    const char *trip = nullptr;
    while (trip == nullptr) {
        std::this_thread::sleep_for(poll);
        if (stop_.load(std::memory_order_relaxed)) {
            return; // normal completion won the race
        }
        const double now = monotonicSeconds();
        const uint64_t p = progress_.load(std::memory_order_relaxed);
        if (p != last_progress) {
            last_progress = p;
            last_change = now;
        }
        if (params_.deadline_s > 0 &&
            now - start >= params_.deadline_s) {
            trip = "deadline";
        } else if (params_.stall_s > 0 &&
                   now - last_change >= params_.stall_s) {
            trip = "stall";
        }
    }

    tripped_.store(true, std::memory_order_relaxed);
    reason_.store(trip, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "watchdog: %s tripped after %.1f s wall clock "
                 "(deadline=%.1fs stall=%.1fs progress=%llu)\n",
                 trip, monotonicSeconds() - start, params_.deadline_s,
                 params_.stall_s,
                 static_cast<unsigned long long>(last_progress));
    if (diag_) {
        diag_(trip);
    }
    std::fflush(stderr);
    core::requestInterrupt(trip[0] == 'd'
                               ? core::kCauseWatchdogDeadline
                               : core::kCauseWatchdogStall);

    // Give the cooperative path one grace period to finalize the
    // partial artifact; a run wedged inside a quantum will never reach
    // its interrupt poll, so after that the watchdog is the exit path.
    const double grace_end = monotonicSeconds() + params_.grace_s;
    while (monotonicSeconds() < grace_end) {
        std::this_thread::sleep_for(poll);
        if (stop_.load(std::memory_order_relaxed)) {
            return; // the run finalized and disarmed us
        }
    }
    if (params_.hard_exit) {
        std::fprintf(stderr,
                     "watchdog: run did not finalize within %.1f s "
                     "grace, aborting\n", params_.grace_s);
        std::fflush(stderr);
        std::_Exit(core::kExitWatchdog);
    }
}

} // namespace sim
} // namespace diablo
