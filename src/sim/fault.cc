#include "sim/fault.hh"

#include <fstream>

#include "core/log.hh"
#include "sim/cluster.hh"

namespace diablo {
namespace sim {

namespace {

/** Deterministic per-event seed: plan seed mixed with the event index. */
uint64_t
eventSeed(uint64_t plan_seed, size_t idx)
{
    uint64_t x = plan_seed ^ (0x9E3779B97F4A7C15ULL * (idx + 1));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    return x;
}

SimTime
usToSimTime(double us)
{
    return SimTime::fromPs(static_cast<int64_t>(us * 1e6));
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
    case FaultKind::TrunkDown:
        return "trunk_down";
    case FaultKind::TrunkUp:
        return "trunk_up";
    case FaultKind::TrunkBrownout:
        return "trunk_brownout";
    case FaultKind::TrunkRepair:
        return "trunk_repair";
    case FaultKind::SwitchCrash:
        return "switch_crash";
    case FaultKind::SwitchRestart:
        return "switch_restart";
    case FaultKind::ServerCrash:
        return "server_crash";
    case FaultKind::ServerReboot:
        return "server_reboot";
    }
    return "?";
}

// ---------------------------------------------------------------------
// FaultPlan builders
// ---------------------------------------------------------------------

FaultPlan &
FaultPlan::trunkDown(SimTime at, uint32_t rack, uint32_t plane)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::TrunkDown;
    e.rack = rack;
    e.plane = plane;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::trunkUp(SimTime at, uint32_t rack, uint32_t plane)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::TrunkUp;
    e.rack = rack;
    e.plane = plane;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::trunkBrownout(SimTime at, uint32_t rack, uint32_t plane,
                         double loss_prob, SimTime extra_latency)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::TrunkBrownout;
    e.rack = rack;
    e.plane = plane;
    e.loss_prob = loss_prob;
    e.extra_latency = extra_latency;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::trunkRepair(SimTime at, uint32_t rack, uint32_t plane)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::TrunkRepair;
    e.rack = rack;
    e.plane = plane;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::switchCrash(SimTime at, uint32_t array, uint32_t plane)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::SwitchCrash;
    e.array = array;
    e.plane = plane;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::switchRestart(SimTime at, uint32_t array, uint32_t plane)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::SwitchRestart;
    e.array = array;
    e.plane = plane;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::serverCrash(SimTime at, net::NodeId node)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::ServerCrash;
    e.node = node;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::serverReboot(SimTime at, net::NodeId node)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::ServerReboot;
    e.node = node;
    events_.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::merge(const FaultPlan &other, bool take_seed)
{
    events_.insert(events_.end(), other.events_.begin(),
                   other.events_.end());
    if (take_seed) {
        seed_ = other.seed_;
    }
    return *this;
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

FaultPlan
FaultPlan::fromConfig(const Config &cfg, const std::string &prefix)
{
    FaultPlan plan;
    plan.seed_ = cfg.getUint(prefix + "seed", plan.seed_);

    for (size_t i = 0;; ++i) {
        const std::string p = prefix + std::to_string(i) + ".";
        if (!cfg.has(p + "kind")) {
            break;
        }
        const std::string kind = cfg.getString(p + "kind", "");
        const SimTime at = usToSimTime(cfg.getDouble(p + "at_us", 0.0));
        const uint32_t rack =
            static_cast<uint32_t>(cfg.getUint(p + "rack", 0));
        const uint32_t plane =
            static_cast<uint32_t>(cfg.getUint(p + "plane", 0));
        const uint32_t array =
            static_cast<uint32_t>(cfg.getUint(p + "array", 0));
        const net::NodeId node =
            static_cast<net::NodeId>(cfg.getUint(p + "node", 0));

        if (kind == "trunk_down") {
            plan.trunkDown(at, rack, plane);
        } else if (kind == "trunk_up") {
            plan.trunkUp(at, rack, plane);
        } else if (kind == "trunk_brownout") {
            plan.trunkBrownout(at, rack, plane,
                               cfg.getDouble(p + "loss", 0.01),
                               usToSimTime(
                                   cfg.getDouble(p + "extra_us", 0.0)));
        } else if (kind == "trunk_repair") {
            plan.trunkRepair(at, rack, plane);
        } else if (kind == "switch_crash") {
            plan.switchCrash(at, array, plane);
        } else if (kind == "switch_restart") {
            plan.switchRestart(at, array, plane);
        } else if (kind == "server_crash") {
            plan.serverCrash(at, node);
        } else if (kind == "server_reboot") {
            plan.serverReboot(at, node);
        } else {
            fatal("FaultPlan: unknown fault kind '%s' (%skind)",
                  kind.c_str(), p.c_str());
        }
    }
    return plan;
}

namespace {

std::string
trimmed(const std::string &s)
{
    const size_t first = s.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
        return "";
    }
    const size_t last = s.find_last_not_of(" \t\r\n");
    return s.substr(first, last - first + 1);
}

} // namespace

FaultPlan
FaultPlan::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        fatal("FaultPlan: cannot read plan file '%s'", path.c_str());
    }
    Config cfg;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        if (trimmed(line).empty()) {
            continue;
        }
        // Whitespace around '=' is allowed ("key = value"); Config keys
        // are exact strings, so trim both sides before storing.
        const size_t eq = line.find('=');
        const std::string key =
            eq == std::string::npos ? "" : trimmed(line.substr(0, eq));
        if (key.empty() ||
            !cfg.parseAssignment(key + "=" +
                                 trimmed(line.substr(eq + 1)))) {
            fatal("FaultPlan: %s:%zu: expected key=value, got '%s'",
                  path.c_str(), lineno, trimmed(line).c_str());
        }
    }
    return fromConfig(cfg, "fault.");
}

std::string
FaultPlan::str() const
{
    std::string out = strprintf("fault plan: %zu events, seed=%llu\n",
                                events_.size(),
                                static_cast<unsigned long long>(seed_));
    for (const FaultEvent &e : events_) {
        out += strprintf("  t=%9.3fms %-14s", e.at.toPs() / 1e9,
                         faultKindName(e.kind));
        switch (e.kind) {
        case FaultKind::TrunkDown:
        case FaultKind::TrunkUp:
        case FaultKind::TrunkRepair:
            out += strprintf(" rack=%u plane=%u", e.rack, e.plane);
            break;
        case FaultKind::TrunkBrownout:
            out += strprintf(" rack=%u plane=%u loss=%.3f extra=%.1fus",
                             e.rack, e.plane, e.loss_prob,
                             e.extra_latency.toPs() / 1e6);
            break;
        case FaultKind::SwitchCrash:
        case FaultKind::SwitchRestart:
            out += strprintf(" array=%u plane=%u", e.array, e.plane);
            break;
        case FaultKind::ServerCrash:
        case FaultKind::ServerReboot:
            out += strprintf(" node=%u", e.node);
            break;
        }
        out += "\n";
    }
    return out;
}

// ---------------------------------------------------------------------
// FaultController
// ---------------------------------------------------------------------

FaultController::FaultController(Cluster &cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan))
{
}

void
FaultController::install()
{
    if (installed_) {
        fatal("FaultController: install() called twice");
    }
    installed_ = true;
    for (size_t i = 0; i < plan_.events().size(); ++i) {
        installEvent(plan_.events()[i], i);
    }
}

void
FaultController::installEvent(const FaultEvent &e, size_t idx)
{
    topo::ClosNetwork &net = cluster_.network();

    switch (e.kind) {
    case FaultKind::TrunkDown:
    case FaultKind::TrunkUp:
    case FaultKind::TrunkBrownout:
    case FaultKind::TrunkRepair:
        if (!net.hasArrayLevel()) {
            fatal("FaultPlan event %zu: %s on a single-rack topology "
                  "(no trunks)", idx, faultKindName(e.kind));
        }
        if (e.rack >= net.numRacks() || e.plane >= net.planes()) {
            fatal("FaultPlan event %zu: trunk (rack=%u, plane=%u) out of "
                  "range (%u racks, %u planes)",
                  idx, e.rack, e.plane, net.numRacks(), net.planes());
        }
        break;
    case FaultKind::SwitchCrash:
    case FaultKind::SwitchRestart:
        if (!net.hasArrayLevel()) {
            fatal("FaultPlan event %zu: %s on a single-rack topology "
                  "(no array switches)", idx, faultKindName(e.kind));
        }
        if (e.array >= net.params().num_arrays ||
            e.plane >= net.planes()) {
            fatal("FaultPlan event %zu: array switch (array=%u, "
                  "plane=%u) out of range (%u arrays, %u planes)",
                  idx, e.array, e.plane, net.params().num_arrays,
                  net.planes());
        }
        break;
    case FaultKind::ServerCrash:
    case FaultKind::ServerReboot:
        if (e.node >= cluster_.size()) {
            fatal("FaultPlan event %zu: node %u out of range (%u servers)",
                  idx, e.node, cluster_.size());
        }
        break;
    }

    switch (e.kind) {
    case FaultKind::TrunkDown:
        net.scheduleTrunkState(e.at, e.rack, e.plane, false);
        break;
    case FaultKind::TrunkUp:
        net.scheduleTrunkState(e.at, e.rack, e.plane, true);
        break;
    case FaultKind::TrunkBrownout:
        net.scheduleTrunkDegrade(e.at, e.rack, e.plane, e.loss_prob,
                                 e.extra_latency,
                                 eventSeed(plan_.seed(), idx));
        break;
    case FaultKind::TrunkRepair:
        net.scheduleTrunkRepair(e.at, e.rack, e.plane);
        break;
    case FaultKind::SwitchCrash:
        net.scheduleArraySwitchState(e.at, e.array, e.plane, false);
        break;
    case FaultKind::SwitchRestart:
        net.scheduleArraySwitchState(e.at, e.array, e.plane, true);
        break;
    case FaultKind::ServerCrash: {
        // Everything a server crash touches — its kernel, its NIC
        // uplink, the ToR's server-facing link — lives in the server's
        // rack partition, so one event covers it all.
        os::Kernel &k = cluster_.kernel(e.node);
        const net::NodeId node = e.node;
        k.sim().scheduleAt(e.at, [this, &k, node] {
            k.crash();
            cluster_.uplink(node).setUp(false);
            if (net::Link *dl = cluster_.network().serverLink(node)) {
                dl->setUp(false);
            }
        });
        break;
    }
    case FaultKind::ServerReboot: {
        os::Kernel &k = cluster_.kernel(e.node);
        const net::NodeId node = e.node;
        k.sim().scheduleAt(e.at, [this, &k, node] {
            cluster_.uplink(node).setUp(true);
            if (net::Link *dl = cluster_.network().serverLink(node)) {
                dl->setUp(true);
            }
            k.reboot();
            if (reboot_hook_) {
                reboot_hook_(node);
            }
        });
        break;
    }
    }
}

} // namespace sim
} // namespace diablo
