#ifndef DIABLO_OS_SOCKET_HH_
#define DIABLO_OS_SOCKET_HH_

/**
 * @file
 * Socket objects: the kernel-side endpoints of the standard socket API.
 *
 * Applications exchange *messages* carried on byte-accurate packets.
 * Stream (TCP) sockets deliver bytes in order with application message
 * descriptors attached to their final byte; datagram (UDP) sockets
 * deliver whole datagrams and drop on receive-buffer overflow, exactly
 * the failure mode that matters for memcached-over-UDP at scale.
 */

#include <cstdint>
#include <deque>
#include <memory>

#include "net/packet.hh"
#include "os/wait_queue.hh"

namespace diablo {
namespace os {

class TcpConnection;
class EpollInstance;

/** One received application message (UDP datagram or TCP-framed). */
struct RecvedMessage {
    std::shared_ptr<const net::AppData> msg;
    uint64_t bytes = 0;
    net::NodeId from = net::kInvalidNode;
    uint16_t from_port = 0;
};

/** Common errno-style results (negative, as the syscalls return them). */
namespace err {
inline constexpr long kAgain = -11;        ///< EAGAIN
inline constexpr long kBadF = -9;          ///< EBADF
inline constexpr long kIO = -5;            ///< EIO (host crashed)
inline constexpr long kConnRefused = -111; ///< ECONNREFUSED
inline constexpr long kConnReset = -104;   ///< ECONNRESET
inline constexpr long kInUse = -98;        ///< EADDRINUSE
inline constexpr long kInval = -22;        ///< EINVAL
inline constexpr long kNotConn = -107;     ///< ENOTCONN
inline constexpr long kTimedOut = -110;    ///< ETIMEDOUT
} // namespace err

/** Kernel socket object. */
class Socket {
  public:
    Socket(Simulator &sim, int fd, net::Proto proto)
        : fd(fd), proto(proto), readers(sim), writers(sim) {}

    int fd;
    net::Proto proto;
    uint16_t local_port = 0;
    bool bound = false;
    bool closed = false;

    // --- TCP state ---
    /** Established connection (non-listening TCP sockets). */
    TcpConnection *conn = nullptr;
    bool listening = false;
    uint32_t backlog_max = 0;
    /** Fully established connections waiting for accept(). */
    std::deque<TcpConnection *> accept_queue;

    // --- UDP state ---
    std::deque<RecvedMessage> dgram_rx;
    uint64_t dgram_rx_bytes = 0;
    uint64_t dgram_rx_capacity = 212992; ///< net.core.rmem_default
    uint64_t dgram_drops = 0;

    /** Tasks blocked in recv/accept. */
    WaitQueue readers;
    /** Tasks blocked for TCP send-buffer space or connect completion. */
    WaitQueue writers;

    /** Epoll instance watching this fd (at most one). */
    EpollInstance *epoll = nullptr;

    /** Level-triggered read readiness. */
    bool readReady() const;
};

} // namespace os
} // namespace diablo

#endif // DIABLO_OS_SOCKET_HH_
