#include "os/socket.hh"

#include "os/tcp.hh"

namespace diablo {
namespace os {

bool
Socket::readReady() const
{
    if (listening) {
        return !accept_queue.empty();
    }
    if (proto == net::Proto::Udp) {
        return !dgram_rx.empty();
    }
    if (conn != nullptr) {
        return conn->available() > 0 || conn->atEof() ||
               conn->state() == TcpConnection::State::Closed;
    }
    return false;
}

} // namespace os
} // namespace diablo
