#include "os/kernel_profile.hh"

#include "core/log.hh"

namespace diablo {
namespace os {

KernelProfile
KernelProfile::linux2639()
{
    // Defaults in the struct definition are the 2.6.39.3 calibration.
    KernelProfile p;
    p.name = "linux-2.6.39.3";
    // 2.6.39 predates the memcached accept4 path the paper studies; the
    // syscall exists but memcached 1.4.15 does not use it, so the flag
    // here describes what the *application* can rely on.  The per-version
    // application models consult their own flag as well.
    p.has_accept4 = true;
    return p;
}

KernelProfile
KernelProfile::linux357()
{
    KernelProfile p;
    p.name = "linux-3.5.7";
    // The paper: "the better kernel scheduler and more efficient
    // networking stack also helps to alleviate the latency long-tail".
    p.timeslice_cycles = 3000000;        // finer-grained rotation
    p.context_switch_cycles = 1700;
    p.wakeup_cycles = 800;
    p.syscall_entry_cycles = 300;
    p.syscall_exit_cycles = 200;
    // The paper measured "significant improvements in terms of request
    // responsiveness" on 3.5.7 — average memcached latency almost
    // halved — so the newer stack's per-packet costs are calibrated
    // roughly 45% below 2.6.39.3.
    p.tcp_tx_per_packet_cycles = 18000;
    p.tcp_rx_per_packet_cycles = 2700;
    p.tcp_ack_tx_cycles = 1500;
    p.tcp_ack_rx_cycles = 1300;
    p.udp_tx_per_packet_cycles = 14000;
    p.udp_rx_per_packet_cycles = 2200;
    p.copy_cycles_per_byte = 2.0;
    p.irq_entry_cycles = 1500;
    p.softirq_dispatch_cycles = 1000;
    p.epoll_wait_base_cycles = 700;
    p.epoll_wait_per_event_cycles = 110;
    return p;
}

KernelProfile
KernelProfile::byName(const std::string &name)
{
    if (name == "2.6.39.3" || name == "linux-2.6.39.3" || name == "2.6.39") {
        return linux2639();
    }
    if (name == "3.5.7" || name == "linux-3.5.7") {
        return linux357();
    }
    fatal("unknown kernel profile '%s'", name.c_str());
}

void
KernelProfile::applyConfig(const Config &cfg, const std::string &prefix)
{
    name = cfg.getString(prefix + "name", name);
    hz = static_cast<uint32_t>(cfg.getUint(prefix + "hz", hz));
    timeslice_cycles =
        cfg.getUint(prefix + "timeslice_cycles", timeslice_cycles);
    context_switch_cycles = cfg.getUint(prefix + "context_switch_cycles",
                                        context_switch_cycles);
    wakeup_cycles = cfg.getUint(prefix + "wakeup_cycles", wakeup_cycles);
    syscall_entry_cycles = cfg.getUint(prefix + "syscall_entry_cycles",
                                       syscall_entry_cycles);
    syscall_exit_cycles = cfg.getUint(prefix + "syscall_exit_cycles",
                                      syscall_exit_cycles);
    socket_create_cycles = cfg.getUint(prefix + "socket_create_cycles",
                                       socket_create_cycles);
    connect_cycles = cfg.getUint(prefix + "connect_cycles", connect_cycles);
    accept_cycles = cfg.getUint(prefix + "accept_cycles", accept_cycles);
    accept_extra_fcntl_cycles =
        cfg.getUint(prefix + "accept_extra_fcntl_cycles",
                    accept_extra_fcntl_cycles);
    has_accept4 = cfg.getBool(prefix + "has_accept4", has_accept4);
    tcp_tx_per_packet_cycles =
        cfg.getUint(prefix + "tcp_tx_per_packet_cycles",
                    tcp_tx_per_packet_cycles);
    tcp_rx_per_packet_cycles =
        cfg.getUint(prefix + "tcp_rx_per_packet_cycles",
                    tcp_rx_per_packet_cycles);
    tcp_ack_tx_cycles =
        cfg.getUint(prefix + "tcp_ack_tx_cycles", tcp_ack_tx_cycles);
    tcp_ack_rx_cycles =
        cfg.getUint(prefix + "tcp_ack_rx_cycles", tcp_ack_rx_cycles);
    udp_tx_per_packet_cycles =
        cfg.getUint(prefix + "udp_tx_per_packet_cycles",
                    udp_tx_per_packet_cycles);
    udp_rx_per_packet_cycles =
        cfg.getUint(prefix + "udp_rx_per_packet_cycles",
                    udp_rx_per_packet_cycles);
    copy_cycles_per_byte = cfg.getDouble(prefix + "copy_cycles_per_byte",
                                         copy_cycles_per_byte);
    irq_entry_cycles =
        cfg.getUint(prefix + "irq_entry_cycles", irq_entry_cycles);
    softirq_dispatch_cycles =
        cfg.getUint(prefix + "softirq_dispatch_cycles",
                    softirq_dispatch_cycles);
    napi_budget = static_cast<uint32_t>(
        cfg.getUint(prefix + "napi_budget", napi_budget));
    epoll_create_cycles =
        cfg.getUint(prefix + "epoll_create_cycles", epoll_create_cycles);
    epoll_ctl_cycles =
        cfg.getUint(prefix + "epoll_ctl_cycles", epoll_ctl_cycles);
    epoll_wait_base_cycles =
        cfg.getUint(prefix + "epoll_wait_base_cycles",
                    epoll_wait_base_cycles);
    epoll_wait_per_event_cycles =
        cfg.getUint(prefix + "epoll_wait_per_event_cycles",
                    epoll_wait_per_event_cycles);
}

} // namespace os
} // namespace diablo
