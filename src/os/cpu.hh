#ifndef DIABLO_OS_CPU_HH_
#define DIABLO_OS_CPU_HH_

/**
 * @file
 * Fixed-CPI server CPU with a preemptive priority scheduler.
 *
 * The paper's server timing model is deliberately simple: "a simplified
 * runtime-configurable fixed-CPI timing model, where all instructions
 * take a fixed number of cycles" — the goal is to run the full software
 * stack with an approximate performance bound, not to model
 * microarchitecture (§3.3).  This class is that model: work is expressed
 * in cycles; wall-clock time is cycles * CPI / frequency.
 *
 * Scheduling mirrors the structure of a Linux server: hardware IRQs
 * preempt softirqs preempt kernel threads preempt user threads; user
 * threads round-robin with a kernel-profile timeslice and pay a
 * context-switch penalty when the thread running on a core changes.
 *
 * The paper's prototype "only simulated fixed-CPI single-CPU servers";
 * a multi-core timing model was "planned for DIABLO-2" (§5).  This
 * implementation provides it: CpuParams::cores > 1 schedules the same
 * work queues across multiple identical cores (an SMP run queue).
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hh"
#include "core/ring_buffer.hh"
#include "core/simulator.hh"

namespace diablo {
namespace os {

/** Scheduling class; lower value = higher priority, preempts higher. */
enum class SchedClass : uint8_t {
    Irq = 0,
    SoftIrq = 1,
    Kernel = 2,
    User = 3,
};

inline constexpr size_t kNumSchedClasses = 4;

/** Physical CPU parameters. */
struct CpuParams {
    double freq_ghz = 4.0;
    double cpi = 1.0;
    /** Cores sharing one run queue (DIABLO-2 extension; default 1). */
    uint32_t cores = 1;

    static CpuParams fromConfig(const Config &cfg,
                                const std::string &prefix);
};

/** Fixed-CPI CPU resource with one or more cores. */
class Cpu {
  public:
    /**
     * Completion callback.  An InlineFunction, not std::function: the
     * kernel's per-packet softirq submissions capture `this` plus a raw
     * packet pointer and a budget — past std::function's 16-byte SBO,
     * which would heap-allocate once per received packet.  The 40-byte
     * inline budget absorbs every capture in the tree.
     */
    using CompletionFn = InlineFunction;

    /**
     * @param timeslice_cycles  user-class round-robin quantum
     * @param context_switch_cycles  charged when the user thread running
     *                               on a core changes
     */
    Cpu(Simulator &sim, const CpuParams &params, uint64_t timeslice_cycles,
        uint64_t context_switch_cycles);

    /**
     * Submit @p cycles of work in class @p cls.  @p thread_tag
     * identifies the user thread for context-switch accounting (use 0
     * for kernel work).  @p done fires when the work has fully executed.
     */
    void submit(SchedClass cls, uint64_t cycles, uint64_t thread_tag,
                CompletionFn done);

    /** Duration of one (CPI-adjusted) cycle. */
    SimTime cycleTime() const { return SimTime::fromPs(ps_per_cycle_); }

    SimTime
    cyclesToTime(uint64_t cycles) const
    {
        return SimTime::fromPs(static_cast<int64_t>(cycles) *
                               ps_per_cycle_);
    }

    /** Cycles elapsed in a duration (floor). */
    uint64_t
    timeToCycles(SimTime t) const
    {
        return static_cast<uint64_t>(t.toPs() / ps_per_cycle_);
    }

    /** True when every core is occupied. */
    bool busy() const;

    /** Runnable (queued, not running) work items in a class. */
    size_t queuedIn(SchedClass cls) const
    {
        return q_[static_cast<size_t>(cls)].size();
    }

    uint64_t contextSwitches() const { return ctx_switches_; }
    SimTime busyTime(SchedClass cls) const
    {
        return busy_[static_cast<size_t>(cls)];
    }
    SimTime totalBusyTime() const;

    /** Busy fraction across all cores. */
    double utilization() const;

    const CpuParams &params() const { return params_; }
    uint32_t cores() const { return static_cast<uint32_t>(slots_.size()); }

    /** Retune scheduler constants (e.g. after a kernel profile change). */
    void
    setSchedulerCosts(uint64_t timeslice_cycles,
                      uint64_t context_switch_cycles)
    {
        timeslice_cycles_ = timeslice_cycles;
        context_switch_cycles_ = context_switch_cycles;
    }

  private:
    struct Work {
        SchedClass cls = SchedClass::User;
        uint64_t remaining = 0;
        uint64_t tag = 0;
        CompletionFn done;
        uint64_t slice_used = 0;
    };

    /** One core's execution slot. */
    struct Slot {
        std::optional<Work> current;
        SimTime run_started;
        EventId run_event;
        uint64_t last_user_tag = 0;
    };

    void dispatch();
    void preemptSlot(size_t core);
    void onRunEnd(size_t core, uint64_t run_cycles);
    /** Core to preempt for @p cls, or -1 if none is lower priority. */
    int victimFor(SchedClass cls) const;

    Simulator &sim_;
    CpuParams params_;
    int64_t ps_per_cycle_;
    uint64_t timeslice_cycles_;
    uint64_t context_switch_cycles_;

    RingBuffer<Work> q_[kNumSchedClasses];
    std::vector<Slot> slots_;

    uint64_t ctx_switches_ = 0;
    SimTime busy_[kNumSchedClasses];
};

} // namespace os
} // namespace diablo

#endif // DIABLO_OS_CPU_HH_
