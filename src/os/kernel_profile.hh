#ifndef DIABLO_OS_KERNEL_PROFILE_HH_
#define DIABLO_OS_KERNEL_PROFILE_HH_

/**
 * @file
 * Kernel behaviour/cost profiles.
 *
 * DIABLO boots real Linux 2.6.39.3 and 3.5.7 kernels on its simulated
 * SPARC servers and shows (Figure 14) that the kernel version has a
 * first-order effect on request latency.  Our software substitution models
 * the kernel as an explicit cost/behaviour profile: every syscall, stack
 * crossing, interrupt and scheduler decision charges fixed-CPI cycles
 * taken from the active profile.  Two calibrated profiles ship with the
 * library; every field is runtime-overridable through Config, so new
 * "kernel versions" are a parameter file, not a code change.
 *
 * The 3.5.7 profile reflects the paper's observations: a more efficient
 * networking stack and a better scheduler (shorter timeslice rotation,
 * cheaper context switches, better softirq batching), which "almost
 * halves" average memcached request latency at 2,000 nodes.
 */

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "core/time.hh"

namespace diablo {
namespace os {

/** Cycle costs and behavioural constants of one kernel version. */
struct KernelProfile {
    std::string name = "linux-2.6.39.3";

    // --- timers / scheduler ---
    uint32_t hz = 250;                    ///< timer tick rate
    uint64_t timeslice_cycles = 6000000;  ///< ~1.5 ms at 4 GHz
    uint64_t context_switch_cycles = 2400;
    uint64_t wakeup_cycles = 1200;        ///< enqueue + preemption check

    // --- syscall layer ---
    uint64_t syscall_entry_cycles = 350;  ///< user->kernel crossing
    uint64_t syscall_exit_cycles = 250;

    // --- socket API ---
    uint64_t socket_create_cycles = 2500;
    uint64_t connect_cycles = 4000;
    uint64_t accept_cycles = 3500;
    /**
     * Extra syscall work when accept4() is NOT available: a separate
     * fcntl(F_SETFL, O_NONBLOCK) round trip per new connection
     * (memcached < 1.4.17 on kernels without accept4 support).
     */
    uint64_t accept_extra_fcntl_cycles = 1300;
    bool has_accept4 = true;

    // --- data path ---
    // Per-packet stack costs are calibrated against the paper's measured
    // CPU-bound anchors on its fixed-CPI SPARC-class servers (§4.1,
    // Figure 6b): a 4 GHz server's TCP send path sustains ~1.1 Gbps per
    // flow (so aggregate crosses a 10 Gbps link at ~9 senders, the
    // paper's collapse onset) and a 2 GHz client's receive path tops out
    // near 1.8-2 Gbps.
    uint64_t tcp_tx_per_packet_cycles = 41000;
    uint64_t tcp_rx_per_packet_cycles = 5500;
    /** Pure control segments (ACK/SYN/FIN, no payload) are far cheaper. */
    uint64_t tcp_ack_tx_cycles = 3000;
    uint64_t tcp_ack_rx_cycles = 2600;
    uint64_t udp_tx_per_packet_cycles = 34000;
    uint64_t udp_rx_per_packet_cycles = 4500;
    /** Copy cost user<->kernel, cycles per byte (skipped by zero-copy). */
    double copy_cycles_per_byte = 4.0;

    // --- interrupts / NAPI ---
    uint64_t irq_entry_cycles = 1800;
    uint64_t softirq_dispatch_cycles = 1400;
    uint32_t napi_budget = 64;            ///< packets per softirq poll

    // --- epoll ---
    uint64_t epoll_create_cycles = 2000;
    uint64_t epoll_ctl_cycles = 900;
    uint64_t epoll_wait_base_cycles = 900;
    uint64_t epoll_wait_per_event_cycles = 150;

    // --- timer wheel ---
    SimTime tickPeriod() const { return SimTime::seconds(1.0 / hz); }

    /** Stock profile for Linux 2.6.39.3 (the paper's older kernel). */
    static KernelProfile linux2639();

    /** Stock profile for Linux 3.5.7 (the paper's newer kernel). */
    static KernelProfile linux357();

    /** Look up a stock profile by name ("2.6.39.3" or "3.5.7"). */
    static KernelProfile byName(const std::string &name);

    /** Apply Config overrides under @p prefix (e.g. "kernel."). */
    void applyConfig(const Config &cfg, const std::string &prefix);
};

} // namespace os
} // namespace diablo

#endif // DIABLO_OS_KERNEL_PROFILE_HH_
