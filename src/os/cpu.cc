#include "os/cpu.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace os {

CpuParams
CpuParams::fromConfig(const Config &cfg, const std::string &prefix)
{
    CpuParams p;
    p.freq_ghz = cfg.getDouble(prefix + "freq_ghz", p.freq_ghz);
    p.cpi = cfg.getDouble(prefix + "cpi", p.cpi);
    p.cores = static_cast<uint32_t>(cfg.getUint(prefix + "cores",
                                                p.cores));
    return p;
}

Cpu::Cpu(Simulator &sim, const CpuParams &params, uint64_t timeslice_cycles,
         uint64_t context_switch_cycles)
    : sim_(sim), params_(params),
      timeslice_cycles_(timeslice_cycles),
      context_switch_cycles_(context_switch_cycles)
{
    if (params.freq_ghz <= 0 || params.cpi <= 0) {
        fatal("Cpu: frequency and CPI must be positive");
    }
    if (params.cores == 0) {
        fatal("Cpu: need at least one core");
    }
    ps_per_cycle_ = static_cast<int64_t>(
        1000.0 / params.freq_ghz * params.cpi + 0.5);
    if (ps_per_cycle_ <= 0) {
        fatal("Cpu: frequency too high for picosecond resolution");
    }
    slots_.resize(params.cores);
}

bool
Cpu::busy() const
{
    for (const auto &s : slots_) {
        if (!s.current) {
            return false;
        }
    }
    return true;
}

SimTime
Cpu::totalBusyTime() const
{
    SimTime t;
    for (const auto &b : busy_) {
        t += b;
    }
    return t;
}

double
Cpu::utilization() const
{
    if (sim_.now().isZero()) {
        return 0.0;
    }
    return totalBusyTime().asSeconds() /
           (sim_.now().asSeconds() * static_cast<double>(slots_.size()));
}

int
Cpu::victimFor(SchedClass cls) const
{
    // Preempt the running work with the numerically largest class
    // (lowest priority), ties broken by the highest core index, but
    // only if it is strictly lower priority than @p cls.
    int victim = -1;
    SchedClass worst = cls;
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].current) {
            continue;
        }
        const SchedClass running = slots_[i].current->cls;
        if (running > worst) {
            worst = running;
            victim = static_cast<int>(i);
        } else if (victim >= 0 && running == worst &&
                   worst > cls) {
            victim = static_cast<int>(i); // tie: later core
        }
    }
    return victim;
}

void
Cpu::submit(SchedClass cls, uint64_t cycles, uint64_t thread_tag,
            CompletionFn done)
{
    if (cycles == 0) {
        cycles = 1; // every crossing costs at least a cycle
    }
    Work w;
    w.cls = cls;
    w.remaining = cycles;
    w.tag = thread_tag;
    w.done = std::move(done);
    q_[static_cast<size_t>(cls)].push_back(std::move(w));

    if (busy()) {
        const int victim = victimFor(cls);
        if (victim >= 0) {
            preemptSlot(static_cast<size_t>(victim));
        }
    }
    dispatch();
}

void
Cpu::preemptSlot(size_t core)
{
    Slot &slot = slots_[core];
    const SimTime elapsed = sim_.now() - slot.run_started;
    const uint64_t consumed = timeToCycles(elapsed);
    Work w = std::move(*slot.current);
    slot.current.reset();
    sim_.cancel(slot.run_event);

    busy_[static_cast<size_t>(w.cls)] += elapsed;
    w.remaining -= std::min(consumed, w.remaining);
    if (w.remaining == 0) {
        w.remaining = 1; // completion event was cancelled; finish later
    }
    w.slice_used += consumed;
    // Preempted work resumes ahead of its queue peers.
    q_[static_cast<size_t>(w.cls)].push_front(std::move(w));
}

void
Cpu::dispatch()
{
    for (size_t core = 0; core < slots_.size(); ++core) {
        Slot &slot = slots_[core];
        if (slot.current) {
            continue;
        }
        // Highest-priority pending work, if any.
        size_t cls = 0;
        while (cls < kNumSchedClasses && q_[cls].empty()) {
            ++cls;
        }
        if (cls == kNumSchedClasses) {
            return; // nothing left to place
        }
        slot.current = std::move(q_[cls].front());
        q_[cls].pop_front();
        Work &w = *slot.current;

        if (w.cls == SchedClass::User && w.tag != slot.last_user_tag) {
            if (slot.last_user_tag != 0) {
                ++ctx_switches_;
                w.remaining += context_switch_cycles_;
            }
            slot.last_user_tag = w.tag;
        }

        uint64_t run_cycles = w.remaining;
        if (w.cls == SchedClass::User) {
            if (timeslice_cycles_ > w.slice_used) {
                run_cycles = std::min(run_cycles,
                                      timeslice_cycles_ - w.slice_used);
            } else {
                w.slice_used = 0; // fresh slice after rotation
                run_cycles = std::min(run_cycles, timeslice_cycles_);
            }
        }

        slot.run_started = sim_.now();
        slot.run_event = sim_.schedule(
            cyclesToTime(run_cycles), [this, core, run_cycles] {
            onRunEnd(core, run_cycles);
        });
    }
}

void
Cpu::onRunEnd(size_t core, uint64_t run_cycles)
{
    Slot &slot = slots_[core];
    Work w = std::move(*slot.current);
    slot.current.reset();

    busy_[static_cast<size_t>(w.cls)] += cyclesToTime(run_cycles);
    w.remaining -= std::min(run_cycles, w.remaining);
    w.slice_used += run_cycles;

    if (w.remaining > 0) {
        // Timeslice expired: rotate behind peers (or continue if alone).
        w.slice_used = 0;
        q_[static_cast<size_t>(w.cls)].push_back(std::move(w));
        dispatch();
        return;
    }

    CompletionFn done = std::move(w.done);
    dispatch();
    if (done) {
        done();
    }
}

} // namespace os
} // namespace diablo
