#include "os/kernel.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace os {

// Per-node byte budgets for the paper-scale memory diet: a 32k-node
// warehouse instantiates one Kernel (and its Socket/connection tables)
// per *materialized* server, so struct growth multiplies by the active
// set.  These asserts catch a member addition that silently regresses
// bytes/node; raise them deliberately, with a BENCH_scale.json rerun.
static_assert(sizeof(Kernel) <= 1280,
              "os::Kernel grew past its per-node byte budget");
static_assert(sizeof(Socket) <= 512,
              "os::Socket grew past its per-connection byte budget");

namespace {

/** Largest UDP payload per fragment on a standard-MTU Ethernet. */
constexpr uint64_t kUdpFragPayload = 1472;

/** Kernel skb truesize overhead charged per buffered datagram. */
constexpr uint64_t kDatagramOverheadBytes = 512;

/** Loopback delivery delay (no NIC involved). */
const SimTime kLoopbackDelay = SimTime::us(10);

} // namespace

Kernel::Kernel(Simulator &sim, net::NodeId node,
               const CpuParams &cpu_params, const KernelProfile &profile,
               std::function<net::SourceRoute(net::NodeId)> route_lookup)
    : sim_(sim), node_(node), profile_(profile),
      route_lookup_(std::move(route_lookup))
{
    cpu_ = std::make_unique<Cpu>(sim, cpu_params,
                                 profile_.timeslice_cycles,
                                 profile_.context_switch_cycles);
}

Kernel::~Kernel()
{
    // Destroy suspended process frames before anything they reference.
    processes_.clear();
}

void
Kernel::spawnProcess(Task<> body)
{
    processes_.push_back(std::move(body));
    Task<> *t = &processes_.back(); // deque: stable address
    sim_.schedule(SimTime(), [t] {
        t->resume();
        t->checkRootException();
    }, event_prio::kWakeup);
}

Thread &
Kernel::createThread(const std::string &name)
{
    threads_.push_back(std::make_unique<Thread>(*this, *cpu_,
                                                next_thread_id_++, name));
    return *threads_.back();
}

Socket *
Kernel::socketFor(int fd)
{
    auto it = sockets_.find(fd);
    return it == sockets_.end() ? nullptr : it->second.get();
}

int
Kernel::allocFd()
{
    return next_fd_++;
}

uint16_t
Kernel::allocEphemeralPort()
{
    for (int tries = 0; tries < 65536; ++tries) {
        uint16_t p = next_ephemeral_;
        next_ephemeral_ = next_ephemeral_ >= 60999 ? 32768
                                                   : next_ephemeral_ + 1;
        if (udp_bound_.find(p) == udp_bound_.end()) {
            return p;
        }
    }
    panic("node %u: out of ephemeral ports", node_);
}

Task<long>
Kernel::chargeSyscall(Thread &t, uint64_t body_cycles)
{
    ++stats_.syscalls;
    co_await t.kcompute(profile_.syscall_entry_cycles + body_cycles +
                        profile_.syscall_exit_cycles);
    co_return 0;
}

// ---------------------------------------------------------------------
// Socket syscalls
// ---------------------------------------------------------------------

Task<long>
Kernel::sysSocket(Thread &t, net::Proto proto)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, profile_.socket_create_cycles);
    int fd = allocFd();
    sockets_[fd] = std::make_unique<Socket>(sim_, fd, proto);
    co_return fd;
}

Task<long>
Kernel::sysBind(Thread &t, int fd, uint16_t port)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, 800);
    Socket *s = socketFor(fd);
    if (s == nullptr) {
        co_return err::kBadF;
    }
    if (s->proto == net::Proto::Udp) {
        if (udp_bound_.count(port)) {
            co_return err::kInUse;
        }
        udp_bound_[port] = s;
    } else {
        if (tcp_listen_.count(port)) {
            co_return err::kInUse;
        }
    }
    s->local_port = port;
    s->bound = true;
    co_return 0;
}

Task<long>
Kernel::sysListen(Thread &t, int fd, uint32_t backlog)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, 1200);
    Socket *s = socketFor(fd);
    if (s == nullptr || s->proto != net::Proto::Tcp || !s->bound) {
        co_return err::kInval;
    }
    if (tcp_listen_.count(s->local_port)) {
        co_return err::kInUse;
    }
    s->listening = true;
    s->backlog_max = backlog;
    tcp_listen_[s->local_port] = s;
    co_return 0;
}

Task<long>
Kernel::sysConnect(Thread &t, int fd, net::NodeId dst, uint16_t dport)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, profile_.connect_cycles);
    Socket *s = socketFor(fd);
    if (s == nullptr || s->proto != net::Proto::Tcp || s->conn) {
        co_return err::kInval;
    }
    s->local_port = allocEphemeralPort();
    net::FlowKey flow{node_, dst, s->local_port, dport, net::Proto::Tcp};
    auto conn = std::make_unique<TcpConnection>(*this, *s, flow,
                                                tcp_params_);
    TcpConnection *c = conn.get();
    conns_[flow] = std::move(conn);
    c->startConnect();

    while (c->state() != TcpConnection::State::Established) {
        if (c->connectFailed() ||
            c->state() == TcpConnection::State::Closed) {
            // SYN-retry exhaustion (or a local crash) reports its
            // errno; a peer's RST stays ECONNREFUSED.
            co_return c->aborted() ? c->abortError() : err::kConnRefused;
        }
        co_await s->writers.wait();
    }
    uint64_t charge = drainTxCharge();
    if (charge) {
        co_await t.kcompute(charge);
    }
    co_return 0;
}

Task<long>
Kernel::sysAccept(Thread &t, int fd, bool use_accept4)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, 300); // entry / fast path to the wait
    Socket *s = socketFor(fd);
    if (s == nullptr || !s->listening) {
        co_return err::kInval;
    }
    while (s->accept_queue.empty()) {
        co_await s->readers.wait();
        if (crashed_) {
            co_return err::kIO;
        }
        if (s->closed) {
            co_return err::kBadF;
        }
    }
    TcpConnection *c = s->accept_queue.front();
    s->accept_queue.pop_front();

    // The accept body runs once a connection is handed over, so it sits
    // on the request critical path.
    uint64_t cost = profile_.accept_cycles;
    if (!use_accept4) {
        // Pre-accept4 servers issue a separate fcntl(O_NONBLOCK) per
        // accepted connection (the memcached 1.4.15 vs 1.4.17 delta).
        cost += profile_.accept_extra_fcntl_cycles +
                profile_.syscall_entry_cycles + profile_.syscall_exit_cycles;
    }
    co_await t.kcompute(cost);

    // Promote the embryonic socket to a real fd.
    Socket *cs = &c->socket();
    cs->fd = allocFd();
    for (auto it = embryonic_sockets_.begin();
         it != embryonic_sockets_.end(); ++it) {
        if (it->get() == cs) {
            sockets_[cs->fd] = std::move(*it);
            embryonic_sockets_.erase(it);
            break;
        }
    }
    co_return cs->fd;
}

Task<long>
Kernel::sysSend(Thread &t, int fd, uint64_t bytes,
                std::shared_ptr<const net::AppData> msg)
{
    if (crashed_) {
        co_return err::kIO;
    }
    Socket *s = socketFor(fd);
    if (s == nullptr || s->conn == nullptr) {
        co_return err::kNotConn;
    }
    uint64_t copy_cycles;
    if (nic_ != nullptr && nic_->zeroCopy()) {
        // Scatter/gather DMA: pin pages instead of copying.
        copy_cycles = 200 + bytes / 256;
    } else {
        copy_cycles = static_cast<uint64_t>(
            static_cast<double>(bytes) * profile_.copy_cycles_per_byte);
    }
    co_await chargeSyscall(t, copy_cycles);

    uint64_t remaining = bytes;
    while (remaining > 0) {
        TcpConnection *c = s->conn;
        if (c == nullptr || c->state() == TcpConnection::State::Closed) {
            co_return (c != nullptr && c->aborted()) ? c->abortError()
                                                     : err::kConnReset;
        }
        uint64_t acc = c->enqueueSend(remaining, msg);
        remaining -= acc;
        uint64_t charge = drainTxCharge();
        if (charge) {
            co_await t.kcompute(charge);
        }
        if (remaining > 0 && acc == 0) {
            co_await s->writers.wait();
        }
    }
    co_return static_cast<long>(bytes);
}

Task<long>
Kernel::sysRecv(Thread &t, int fd, uint64_t max_bytes,
                std::vector<RecvedMessage> *msgs, SimTime timeout)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, 400);
    Socket *s = socketFor(fd);
    if (s == nullptr || s->conn == nullptr) {
        co_return err::kNotConn;
    }
    TcpConnection *c = s->conn;
    while (c->available() == 0) {
        if (c->aborted()) {
            // Timeout-driven abort (dead peer) surfaces its errno; an
            // orderly FIN or RST still reads as EOF below.
            co_return c->abortError();
        }
        if (c->atEof() || c->state() == TcpConnection::State::Closed) {
            co_return 0; // EOF
        }
        long r = co_await s->readers.wait(timeout);
        if (r == kWaitTimedOut) {
            co_return err::kTimedOut;
        }
        if (crashed_) {
            co_return err::kIO;
        }
        if (s->conn == nullptr) {
            co_return err::kConnReset;
        }
    }
    uint64_t n = c->consume(max_bytes, msgs);
    uint64_t charge = static_cast<uint64_t>(
        static_cast<double>(n) * profile_.copy_cycles_per_byte);
    charge += drainTxCharge(); // window-update ACK
    co_await t.kcompute(charge);
    co_return static_cast<long>(n);
}

Task<long>
Kernel::sysSendTo(Thread &t, int fd, net::NodeId dst, uint16_t dport,
                  uint64_t bytes, std::shared_ptr<const net::AppData> msg)
{
    if (crashed_) {
        co_return err::kIO;
    }
    Socket *s = socketFor(fd);
    if (s == nullptr || s->proto != net::Proto::Udp) {
        co_return err::kInval;
    }
    if (!s->bound) {
        // Auto-bind so replies can be delivered.
        s->local_port = allocEphemeralPort();
        udp_bound_[s->local_port] = s;
        s->bound = true;
    }

    const uint64_t nfrags = std::max<uint64_t>(
        1, (bytes + kUdpFragPayload - 1) / kUdpFragPayload);
    uint64_t copy_cycles = static_cast<uint64_t>(
        static_cast<double>(bytes) * profile_.copy_cycles_per_byte);
    co_await chargeSyscall(t, copy_cycles);

    const uint64_t dgram_id = next_dgram_id_++;
    uint64_t off = 0;
    for (uint64_t i = 0; i < nfrags; ++i) {
        auto p = allocPacket();
        p->flow = net::FlowKey{node_, dst, s->local_port, dport,
                               net::Proto::Udp};
        const uint64_t chunk = std::min(kUdpFragPayload, bytes - off);
        p->payload_bytes = static_cast<uint32_t>(chunk);
        p->dgram_id = dgram_id;
        p->dgram_bytes = bytes;
        p->frag_idx = static_cast<uint16_t>(i);
        p->frag_count = static_cast<uint16_t>(nfrags);
        if (i == nfrags - 1) {
            p->app = msg;
        }
        off += chunk;
        stackTransmit(std::move(p));
    }
    uint64_t charge = drainTxCharge();
    if (charge) {
        co_await t.kcompute(charge);
    }
    co_return static_cast<long>(bytes);
}

Task<long>
Kernel::sysRecvFrom(Thread &t, int fd, RecvedMessage *out, SimTime timeout)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, 400);
    Socket *s = socketFor(fd);
    if (s == nullptr || s->proto != net::Proto::Udp) {
        co_return err::kInval;
    }
    while (s->dgram_rx.empty()) {
        long r = co_await s->readers.wait(timeout);
        if (r == kWaitTimedOut) {
            co_return err::kTimedOut;
        }
        if (crashed_) {
            co_return err::kIO;
        }
        if (s->closed) {
            co_return err::kBadF;
        }
    }
    RecvedMessage m = std::move(s->dgram_rx.front());
    s->dgram_rx.pop_front();
    s->dgram_rx_bytes -= m.bytes + kDatagramOverheadBytes;
    const uint64_t bytes = m.bytes;
    uint64_t copy = static_cast<uint64_t>(
        static_cast<double>(bytes) * profile_.copy_cycles_per_byte);
    co_await t.kcompute(copy);
    if (out) {
        *out = std::move(m);
    }
    co_return static_cast<long>(bytes);
}

// ---------------------------------------------------------------------
// epoll
// ---------------------------------------------------------------------

Task<long>
Kernel::sysEpollCreate(Thread &t)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, profile_.epoll_create_cycles);
    int fd = allocFd();
    epolls_[fd] = std::make_unique<EpollInstance>(sim_, fd);
    co_return fd;
}

Task<long>
Kernel::sysEpollCtlAdd(Thread &t, int epfd, int fd)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, profile_.epoll_ctl_cycles);
    auto it = epolls_.find(epfd);
    Socket *s = socketFor(fd);
    if (it == epolls_.end() || s == nullptr) {
        co_return err::kBadF;
    }
    EpollInstance *ep = it->second.get();
    ep->watched.insert(fd);
    s->epoll = ep;
    if (s->readReady()) {
        ep->ready.insert(fd);
        ep->waiters.wakeOne();
    }
    co_return 0;
}

Task<long>
Kernel::sysEpollWait(Thread &t, int epfd, std::vector<EpollEvent> *events,
                     uint32_t max_events, SimTime timeout)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, profile_.epoll_wait_base_cycles);
    auto it = epolls_.find(epfd);
    if (it == epolls_.end()) {
        co_return err::kBadF;
    }
    EpollInstance *ep = it->second.get();
    events->clear();

    while (true) {
        // Level-triggered: re-validate readiness on every scan.
        for (auto rit = ep->ready.begin();
             rit != ep->ready.end() && events->size() < max_events;) {
            Socket *s = socketFor(*rit);
            if (s != nullptr && s->readReady()) {
                events->push_back(EpollEvent{*rit});
                ++rit;
            } else {
                rit = ep->ready.erase(rit);
            }
        }
        if (!events->empty()) {
            break;
        }
        long r = co_await ep->waiters.wait(timeout);
        if (r == kWaitTimedOut) {
            co_return 0;
        }
        if (crashed_) {
            co_return err::kIO;
        }
    }
    co_await t.kcompute(profile_.epoll_wait_per_event_cycles *
                        events->size());
    co_return static_cast<long>(events->size());
}

Task<long>
Kernel::sysClose(Thread &t, int fd)
{
    if (crashed_) {
        co_return err::kIO;
    }
    co_await chargeSyscall(t, 1500);

    auto eit = epolls_.find(fd);
    if (eit != epolls_.end()) {
        EpollInstance *ep = eit->second.get();
        for (auto &[sfd, sock] : sockets_) {
            if (sock->epoll == ep) {
                sock->epoll = nullptr;
            }
        }
        epolls_.erase(eit);
        co_return 0;
    }

    Socket *s = socketFor(fd);
    if (s == nullptr) {
        co_return err::kBadF;
    }
    s->closed = true;
    if (s->epoll != nullptr) {
        s->epoll->watched.erase(fd);
        s->epoll->ready.erase(fd);
        s->epoll = nullptr;
    }
    if (s->proto == net::Proto::Udp) {
        if (s->bound) {
            udp_bound_.erase(s->local_port);
        }
    } else if (s->listening) {
        tcp_listen_.erase(s->local_port);
        for (TcpConnection *c : s->accept_queue) {
            c->detachSocket();
            c->appClose();
        }
        s->accept_queue.clear();
    } else if (s->conn != nullptr) {
        TcpConnection *c = s->conn;
        s->conn = nullptr;
        c->detachSocket();
        c->appClose();
        uint64_t charge = drainTxCharge();
        if (charge) {
            co_await t.kcompute(charge);
        }
    }
    s->readers.wakeAll(err::kBadF);
    s->writers.wakeAll(err::kBadF);
    sockets_.erase(fd);
    co_return 0;
}

// ---------------------------------------------------------------------
// Stack-internal services
// ---------------------------------------------------------------------

net::PacketPtr
Kernel::allocPacket()
{
    return net::makePacket(sim_);
}

void
Kernel::stackTransmit(net::PacketPtr p)
{
    if (crashed_) {
        return; // a dead host sends nothing
    }
    p->created = sim_.now();
    if (p->flow.proto == net::Proto::Tcp) {
        pending_tx_charge_cycles_ +=
            p->payload_bytes > 0 ? profile_.tcp_tx_per_packet_cycles
                                 : profile_.tcp_ack_tx_cycles;
    } else {
        pending_tx_charge_cycles_ += profile_.udp_tx_per_packet_cycles;
    }

    if (p->flow.dst == node_) {
        // Loopback: no NIC, no route.
        net::Packet *raw = p.release();
        sim_.schedule(kLoopbackDelay, [this, raw] {
            processRxPacket(net::PacketPtr(raw));
        });
        return;
    }

    p->route = route_lookup_(p->flow.dst);
    if (qdisc_.size() >= qdisc_limit_pkts_) {
        ++stats_.qdisc_drops;
        return;
    }
    qdisc_.push_back(std::move(p));
    qdiscPump();
}

uint64_t
Kernel::drainTxCharge()
{
    uint64_t c = pending_tx_charge_cycles_;
    pending_tx_charge_cycles_ = 0;
    return c;
}

void
Kernel::qdiscPump()
{
    if (nic_ == nullptr) {
        panic("node %u: traffic without a NIC attached", node_);
    }
    if (tx_release_pending_ || qdisc_.empty() || nic_->txRingFull()) {
        return; // a pending release or TX completion re-kicks us
    }
    // The transmit stack runs on the fixed-CPI core: a packet reaches
    // the NIC only after its per-packet stack processing time, and
    // packets are processed one at a time (CPU-paced wire bursts).
    const net::PacketPtr &head = qdisc_.front();
    uint64_t cost;
    if (head->flow.proto == net::Proto::Tcp) {
        cost = head->payload_bytes > 0
                   ? profile_.tcp_tx_per_packet_cycles
                   : profile_.tcp_ack_tx_cycles;
    } else {
        cost = profile_.udp_tx_per_packet_cycles;
    }
    const SimTime release = std::max(sim_.now(), tx_stack_free_) +
                            cpu_->cyclesToTime(cost);
    tx_stack_free_ = release;
    tx_release_pending_ = true;
    sim_.scheduleAt(release, [this] {
        tx_release_pending_ = false;
        if (!qdisc_.empty() && !nic_->txRingFull()) {
            ++stats_.tx_packets;
            nic_->txEnqueue(std::move(qdisc_.front()));
            qdisc_.pop_front();
        }
        qdiscPump();
    });
}

void
Kernel::txRingSpace()
{
    qdiscPump();
}

EventId
Kernel::addTimer(SimTime delay, EventFn fn)
{
    // Classic kernel timers fire on the next jiffy boundary at or after
    // the requested expiry — RTO quantization at HZ granularity.  Each
    // server's jiffy clock has its own phase (machines do not boot
    // simultaneously), which matters at scale: phase-aligned ticks would
    // synchronize RTO retransmissions across servers into artificial
    // loss storms.
    const SimTime tick = profile_.tickPeriod();
    const int64_t phase =
        static_cast<int64_t>((node_ * 0x9E3779B97F4A7C15ULL) %
                             static_cast<uint64_t>(tick.toPs()));
    const int64_t fire_ps = sim_.now().toPs() + delay.toPs();
    int64_t quantized =
        (fire_ps - phase + tick.toPs() - 1) / tick.toPs() * tick.toPs() +
        phase;
    if (quantized < fire_ps) {
        quantized += tick.toPs();
    }
    return sim_.scheduleAt(SimTime::fromPs(quantized),
                           [this, fn = std::move(fn)] {
        fn();
        // Timer handlers (e.g. RTO retransmits) run in interrupt
        // context; charge any stack work they generated as softirq.
        uint64_t charge = drainTxCharge();
        if (charge) {
            cpu_->submit(SchedClass::SoftIrq, charge, 0, {});
        }
    }, event_prio::kTimer);
}

EventId
Kernel::addHrTimer(SimTime delay, EventFn fn)
{
    return sim_.schedule(delay, [this, fn = std::move(fn)] {
        fn();
        uint64_t charge = drainTxCharge();
        if (charge) {
            cpu_->submit(SchedClass::SoftIrq, charge, 0, {});
        }
    }, event_prio::kTimer);
}

// ---------------------------------------------------------------------
// Receive path (IRQ -> NAPI softirq -> protocol demux)
// ---------------------------------------------------------------------

void
Kernel::rxInterrupt()
{
    if (crashed_) {
        // The wire still delivers to a dead host; the packets just die
        // on arrival (nobody polls the ring).
        discardRxRing();
        return;
    }
    if (nic_ != nullptr) {
        nic_->rxInterruptsEnable(false); // NAPI: mask until poll finishes
    }
    cpu_->submit(SchedClass::Irq, profile_.irq_entry_cycles, 0,
                 [this] { scheduleSoftirq(); });
}

void
Kernel::scheduleSoftirq()
{
    if (softirq_scheduled_) {
        return;
    }
    softirq_scheduled_ = true;
    cpu_->submit(SchedClass::SoftIrq, profile_.softirq_dispatch_cycles, 0,
                 [this] {
        softirq_scheduled_ = false;
        ++stats_.softirq_rounds;
        processNextRx(profile_.napi_budget);
    });
}

void
Kernel::processNextRx(uint32_t budget)
{
    if (nic_ == nullptr) {
        return;
    }
    if (crashed_) {
        // A softirq round already in flight when the host died.
        discardRxRing();
        return;
    }
    if (budget == 0 || nic_->rxPending() == 0) {
        if (nic_->rxPending() > 0) {
            scheduleSoftirq(); // budget exhausted: re-poll
        } else {
            nic_->rxInterruptsEnable(true);
        }
        return;
    }
    net::PacketPtr p = nic_->rxDequeue();
    uint64_t cost;
    if (p->flow.proto == net::Proto::Tcp) {
        cost = p->payload_bytes > 0 ? profile_.tcp_rx_per_packet_cycles
                                    : profile_.tcp_ack_rx_cycles;
    } else {
        cost = profile_.udp_rx_per_packet_cycles;
    }
    net::Packet *raw = p.release();
    cpu_->submit(SchedClass::SoftIrq, cost, 0, [this, raw, budget] {
        processRxPacket(net::PacketPtr(raw));
        uint64_t extra = drainTxCharge(); // ACKs and triggered sends
        if (extra > 0) {
            cpu_->submit(SchedClass::SoftIrq, extra, 0, [this, budget] {
                processNextRx(budget - 1);
            });
        } else {
            processNextRx(budget - 1);
        }
    });
}

void
Kernel::processRxPacket(net::PacketPtr p)
{
    if (crashed_) {
        ++stats_.crash_rx_discards;
        return;
    }
    ++stats_.rx_packets;
    if (p->flow.proto == net::Proto::Udp) {
        deliverUdp(std::move(p));
        return;
    }

    // TCP demux: connections are keyed by their local-perspective flow.
    const net::FlowKey key = p->flow.reversed();
    auto it = conns_.find(key);
    if (it != conns_.end()) {
        it->second->onSegment(std::move(p));
        return;
    }

    if (p->tcp.has(net::tcp_flags::kSyn) &&
        !p->tcp.has(net::tcp_flags::kAck)) {
        Socket *ls = listeningSocket(p->flow.dport);
        if (ls != nullptr) {
            auto es = std::make_unique<Socket>(sim_, -1, net::Proto::Tcp);
            es->local_port = p->flow.dport;
            auto conn = std::make_unique<TcpConnection>(*this, *es, key,
                                                        tcp_params_);
            TcpConnection *c = conn.get();
            embryonic_sockets_.push_back(std::move(es));
            conns_[key] = std::move(conn);
            c->startPassive(p->tcp.seq, p->tcp.window);
            return;
        }
    }
    sendRst(*p);
}

Socket *
Kernel::boundUdpSocket(uint16_t port)
{
    auto it = udp_bound_.find(port);
    return it == udp_bound_.end() ? nullptr : it->second;
}

Socket *
Kernel::listeningSocket(uint16_t port)
{
    auto it = tcp_listen_.find(port);
    return it == tcp_listen_.end() ? nullptr : it->second;
}

void
Kernel::deliverUdp(net::PacketPtr p)
{
    Socket *s = boundUdpSocket(p->flow.dport);
    if (s == nullptr) {
        return; // ICMP port-unreachable not modeled
    }

    RecvedMessage m;
    if (p->frag_count > 1) {
        const uint64_t key = (static_cast<uint64_t>(p->flow.src) << 40) ^
                             p->dgram_id;
        Reassembly &r = reassembly_[key];
        if (r.frags_seen == 0) {
            r.first_seen = sim_.now();
        } else if (sim_.now() - r.first_seen > SimTime::sec(30)) {
            // Stale partial datagram: Linux ip_frag timeout.
            r = Reassembly{};
            r.first_seen = sim_.now();
        }
        r.frag_count = p->frag_count;
        ++r.frags_seen;
        r.bytes = p->dgram_bytes;
        r.from = p->flow.src;
        r.from_port = p->flow.sport;
        if (p->app) {
            r.msg = p->app;
        }
        if (r.frags_seen < r.frag_count) {
            return;
        }
        m.msg = r.msg;
        m.bytes = r.bytes;
        m.from = r.from;
        m.from_port = r.from_port;
        reassembly_.erase(key);
    } else {
        m.msg = p->app;
        m.bytes = p->dgram_bytes ? p->dgram_bytes : p->payload_bytes;
        m.from = p->flow.src;
        m.from_port = p->flow.sport;
    }

    const uint64_t charge = m.bytes + kDatagramOverheadBytes;
    if (s->dgram_rx_bytes + charge > s->dgram_rx_capacity) {
        ++s->dgram_drops;
        ++stats_.udp_rx_overflow_drops;
        return;
    }
    s->dgram_rx_bytes += charge;
    s->dgram_rx.push_back(std::move(m));
    socketReadable(*s);
}

void
Kernel::sendRst(const net::Packet &to)
{
    if (to.tcp.has(net::tcp_flags::kRst)) {
        return; // never answer a RST with a RST
    }
    auto p = allocPacket();
    p->flow = to.flow.reversed();
    p->tcp.flags = net::tcp_flags::kRst;
    stackTransmit(std::move(p));
}

// ---------------------------------------------------------------------
// Wakeups
// ---------------------------------------------------------------------

void
Kernel::socketReadable(Socket &s)
{
    s.readers.wakeOne();
    if (s.epoll != nullptr && s.fd >= 0) {
        s.epoll->ready.insert(s.fd);
        s.epoll->waiters.wakeOne();
    }
}

void
Kernel::socketWritable(Socket &s)
{
    s.writers.wakeOne();
}

void
Kernel::onPassiveEstablished(TcpConnection &conn)
{
    Socket *ls = listeningSocket(conn.flow().sport);
    if (ls == nullptr || ls->accept_queue.size() >= ls->backlog_max) {
        // Listener gone or backlog overflow: reset the peer.
        auto p = allocPacket();
        p->flow = conn.flow();
        p->tcp.flags = net::tcp_flags::kRst;
        stackTransmit(std::move(p));
        destroyConnection(conn); // reclaims the embryonic socket too
        return;
    }
    ls->accept_queue.push_back(&conn);
    socketReadable(*ls);
}

void
Kernel::destroyConnection(TcpConnection &conn)
{
    // Destruction is deferred to a zero-delay event so a connection is
    // never deleted inside its own onSegment/onAck call chain.
    const net::FlowKey key = conn.flow();
    Socket *cs = conn.detached() ? nullptr : &conn.socket();
    sim_.schedule(SimTime(), [this, key, cs] {
        auto it = conns_.find(key);
        if (it == conns_.end()) {
            return;
        }
        if (cs != nullptr) {
            cs->conn = nullptr;
            // Reclaim the embryonic socket if it was never accepted.
            for (auto eit = embryonic_sockets_.begin();
                 eit != embryonic_sockets_.end(); ++eit) {
                if (eit->get() == cs) {
                    embryonic_sockets_.erase(eit);
                    break;
                }
            }
        }
        conns_.erase(it);
    });
}

// ---------------------------------------------------------------------
// Faults: server crash / reboot
// ---------------------------------------------------------------------

void
Kernel::discardRxRing()
{
    if (nic_ == nullptr) {
        return;
    }
    while (net::PacketPtr p = nic_->rxDequeue()) {
        ++stats_.crash_rx_discards;
    }
    nic_->rxInterruptsEnable(true);
}

void
Kernel::crash()
{
    if (crashed_) {
        return;
    }
    crashed_ = true;

    // Silent teardown: state goes Closed and timers die, but nothing is
    // sent — peers learn of the death only through their own RTO abort
    // timers (or an RST once this host reboots).
    for (auto &[key, conn] : conns_) {
        conn->crashTeardown();
    }

    // Wake every blocked syscall.  Frames are never destroyed here: a
    // suspended frame is registered on wait queues and CPU completion
    // events, so destroying it would dangle.  Woken coroutines observe
    // crashed_ (or their connection's abort errno) and return EIO.
    for (auto &[fd, s] : sockets_) {
        s->readers.wakeAll(err::kIO);
        s->writers.wakeAll(err::kIO);
    }
    for (auto &[fd, ep] : epolls_) {
        ep->waiters.wakeAll(err::kIO);
    }

    // Queued TX work and partial datagrams die with the host.
    qdisc_.clear();
    pending_tx_charge_cycles_ = 0;
    reassembly_.clear();

    // Packets the NIC already buffered are lost.
    discardRxRing();
}

void
Kernel::reboot()
{
    if (!crashed_) {
        return;
    }

    // Retire the old tables into graveyards rather than freeing them:
    // zombie coroutine frames suspended at crash time may still hold
    // raw pointers into these objects across a co_await.  They stay
    // alive until the kernel itself is destroyed (which clears
    // processes_ — and with it every frame — first).
    for (auto &[key, conn] : conns_) {
        dead_conns_.push_back(std::move(conn));
    }
    conns_.clear();
    for (auto &[fd, s] : sockets_) {
        dead_sockets_.push_back(std::move(s));
    }
    sockets_.clear();
    for (auto &s : embryonic_sockets_) {
        dead_sockets_.push_back(std::move(s));
    }
    embryonic_sockets_.clear();
    for (auto &[fd, ep] : epolls_) {
        dead_epolls_.push_back(std::move(ep));
    }
    epolls_.clear();
    udp_bound_.clear();
    tcp_listen_.clear();

    // Reap root processes that ran to completion (applications that
    // observed EIO and returned).  Safe: the only outstanding pointers
    // to Task objects are the zero-delay spawn events, which have long
    // fired by the time a scheduled reboot runs.
    for (auto it = processes_.begin(); it != processes_.end();) {
        if (it->done()) {
            it->checkRootException();
            it = processes_.erase(it);
        } else {
            ++it;
        }
    }

    crashed_ = false;
    discardRxRing(); // anything that arrived during the outage is gone
}

} // namespace os
} // namespace diablo
