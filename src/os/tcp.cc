#include "os/tcp.hh"

#include <algorithm>

#include "core/log.hh"
#include "os/kernel.hh"

namespace diablo {
namespace os {

using net::tcp_flags::kAck;
using net::tcp_flags::kFin;
using net::tcp_flags::kRst;
using net::tcp_flags::kSyn;

TcpParams
TcpParams::fromConfig(const Config &cfg, const std::string &prefix)
{
    TcpParams p;
    p.mss = static_cast<uint32_t>(cfg.getUint(prefix + "mss", p.mss));
    p.send_buf_bytes =
        cfg.getUint(prefix + "send_buf_bytes", p.send_buf_bytes);
    p.recv_buf_bytes =
        cfg.getUint(prefix + "recv_buf_bytes", p.recv_buf_bytes);
    p.init_cwnd_segments = static_cast<uint32_t>(
        cfg.getUint(prefix + "init_cwnd_segments", p.init_cwnd_segments));
    p.min_rto = SimTime::microseconds(
        cfg.getDouble(prefix + "min_rto_us", p.min_rto.asMicros()));
    p.init_rto = SimTime::microseconds(
        cfg.getDouble(prefix + "init_rto_us", p.init_rto.asMicros()));
    p.max_rto = SimTime::microseconds(
        cfg.getDouble(prefix + "max_rto_us", p.max_rto.asMicros()));
    p.dupack_thresh = static_cast<uint32_t>(
        cfg.getUint(prefix + "dupack_thresh", p.dupack_thresh));
    p.delayed_ack = cfg.getBool(prefix + "delayed_ack", p.delayed_ack);
    p.delayed_ack_timeout = SimTime::microseconds(
        cfg.getDouble(prefix + "delayed_ack_timeout_us",
                      p.delayed_ack_timeout.asMicros()));
    p.max_retries = static_cast<uint32_t>(
        cfg.getUint(prefix + "max_retries", p.max_retries));
    p.max_syn_retries = static_cast<uint32_t>(
        cfg.getUint(prefix + "max_syn_retries", p.max_syn_retries));
    return p;
}

TcpConnection::TcpConnection(Kernel &kernel, Socket &sock,
                             const net::FlowKey &flow,
                             const TcpParams &params)
    : kernel_(kernel), sock_(&sock), flow_(flow), params_(params)
{
    cwnd_ = static_cast<uint64_t>(params_.init_cwnd_segments) * params_.mss;
    ssthresh_ = UINT64_MAX / 2;
    rto_ = params_.init_rto;
    sock.conn = this;
}

TcpConnection::~TcpConnection()
{
    cancelAllTimers();
}

void
TcpConnection::cancelAllTimers()
{
    cancelRtoTimer();
    if (delack_armed_) {
        kernel_.cancelTimer(delack_timer_);
        delack_armed_ = false;
    }
    if (persist_armed_) {
        kernel_.cancelTimer(persist_timer_);
        persist_armed_ = false;
    }
}

// ---------------------------------------------------------------------
// Segment construction
// ---------------------------------------------------------------------

void
TcpConnection::transmitSegment(uint64_t seq, uint32_t len, uint8_t flags,
                               bool retransmission)
{
    auto p = kernel_.allocPacket();
    p->flow = flow_;

    // The FIN occupies one virtual byte of sequence space at the stream
    // end; it never reaches the peer application.  Set the flag exactly
    // on segments whose range covers that byte.
    uint32_t payload = len;
    if (fin_sent_ || (flags & kFin)) {
        const uint64_t fin_byte = app_queued_end_;
        if (len > 0 && seq <= fin_byte && fin_byte < seq + len) {
            payload = static_cast<uint32_t>(fin_byte - seq);
            flags |= kFin;
        } else {
            flags &= static_cast<uint8_t>(~kFin);
        }
    }

    p->tcp.seq = seq;
    p->tcp.flags = flags;
    if (flags & kAck) {
        p->tcp.ack = rcv_nxt_;
        // Every ACK-bearing segment acknowledges all received data:
        // piggybacking supersedes any pending delayed ACK.
        unacked_segs_ = 0;
        if (delack_armed_) {
            kernel_.cancelTimer(delack_timer_);
            delack_armed_ = false;
        }
    }
    const uint64_t buffered = rcv_nxt_ - consumed_;
    p->tcp.window = params_.recv_buf_bytes > buffered
                        ? params_.recv_buf_bytes - buffered
                        : 0;
    p->payload_bytes = payload;

    if (payload > 0) {
        auto it = out_msgs_.find(seq + payload);
        if (it != out_msgs_.end()) {
            p->app = it->second;
        }
    }

    if (retransmission) {
        ++retransmits_;
        kernel_.noteTcpRetransmit();
    } else if (payload > 0 && !timed_pending_) {
        // Karn: time one non-retransmitted segment per RTT.
        timed_seq_ = seq + payload;
        timed_sent_at_ = kernel_.sim().now();
        timed_pending_ = true;
    }

    last_tx_time_ = kernel_.sim().now();
    kernel_.stackTransmit(std::move(p));
}

// ---------------------------------------------------------------------
// Connection establishment
// ---------------------------------------------------------------------

void
TcpConnection::startConnect()
{
    state_ = State::SynSent;
    syn_sent_at_ = kernel_.sim().now();
    transmitSegment(0, 0, kSyn, false);
    armRtoTimer();
}

void
TcpConnection::startPassive(uint64_t peer_isn, uint64_t peer_window)
{
    peer_isn_hs_ = peer_isn;
    peer_window_ = peer_window;
    state_ = State::SynRcvd;
    transmitSegment(0, 0, static_cast<uint8_t>(kSyn | kAck), false);
    armRtoTimer();
}

void
TcpConnection::enterEstablished()
{
    state_ = State::Established;
    backoff_ = 0;
    retry_attempts_ = 0;
    cancelRtoTimer();
}

// ---------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------

void
TcpConnection::onSegment(net::PacketPtr p)
{
    const net::TcpFields &t = p->tcp;

    if (t.has(kRst)) {
        if (state_ == State::SynSent) {
            connect_failed_ = true;
        }
        state_ = State::Closed;
        cancelRtoTimer();
        if (!peer_fin_) {
            // Reads drain buffered in-order data, then return EOF.
            have_fin_ = true;
            fin_data_end_ = rcv_nxt_;
            peer_fin_ = true;
        }
        notifyReadable();
        notifyWritable();
        return;
    }

    switch (state_) {
      case State::Closed:
        return;

      case State::SynSent:
        if (t.has(kSyn) && t.has(kAck)) {
            peer_window_ = t.window; // initial window from the SYN|ACK
            if (!syn_retransmitted_) {
                // Seed srtt/RTO from the handshake round trip.
                rttSample(kernel_.sim().now() - syn_sent_at_);
            }
            enterEstablished();
            sendAck(true);
            notifyWritable(); // connect() completes
            trySendData();
        }
        return;

      case State::SynRcvd:
        if (t.has(kSyn) && !t.has(kAck)) {
            // Retransmitted SYN: resend our SYN|ACK.
            transmitSegment(0, 0, static_cast<uint8_t>(kSyn | kAck), true);
            return;
        }
        if (t.has(kAck) || p->payload_bytes > 0) {
            enterEstablished();
            kernel_.onPassiveEstablished(*this);
            // Fall through to normal processing of this segment.
            break;
        }
        return;

      case State::Established:
      case State::FinWait:
      case State::CloseWait:
        if (t.has(kSyn) && t.has(kAck)) {
            // Duplicate SYN|ACK (our handshake ACK was lost).
            sendAck(true);
            return;
        }
        break;
    }

    if (t.has(kAck)) {
        onAck(t.ack, t.window);
    }
    if (p->payload_bytes > 0 || t.has(kFin)) {
        onData(*p);
    }
}

void
TcpConnection::onAck(uint64_t ack, uint64_t wnd)
{
    const bool window_changed = (wnd != peer_window_);
    peer_window_ = wnd;

    if (ack > snd_una_) {
        const uint64_t acked = ack - snd_una_;
        snd_una_ = ack;
        if (snd_nxt_ < snd_una_) {
            // A pre-rollback in-flight segment was acknowledged after an
            // RTO rolled snd_nxt back (go-back-N): fast-forward.
            snd_nxt_ = snd_una_;
        }
        out_msgs_.erase(out_msgs_.begin(), out_msgs_.upper_bound(ack));

        if (timed_pending_ && ack >= timed_seq_) {
            rttSample(kernel_.sim().now() - timed_sent_at_);
            timed_pending_ = false;
        }
        backoff_ = 0;
        retry_attempts_ = 0; // forward progress resets the abort clock

        if (in_fast_recovery_) {
            if (ack >= recover_) {
                in_fast_recovery_ = false;
                cwnd_ = ssthresh_;
                dupacks_ = 0;
            } else {
                // NewReno partial ACK: retransmit the next hole.
                uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(
                    params_.mss, snd_nxt_ - snd_una_));
                len = segmentLenAt(snd_una_, len);
                transmitSegment(snd_una_, len, kAck, true);
                cwnd_ = (cwnd_ > acked ? cwnd_ - acked : params_.mss) +
                        params_.mss;
            }
        } else {
            dupacks_ = 0;
            if (cwnd_ < ssthresh_) {
                cwnd_ += std::min<uint64_t>(acked, params_.mss);
            } else {
                cwnd_ += std::max<uint64_t>(
                    1, static_cast<uint64_t>(params_.mss) * params_.mss /
                           cwnd_);
            }
        }

        if (flightSize() == 0) {
            cancelRtoTimer();
        } else {
            armRtoTimer();
        }
        notifyWritable();
        trySendData();
        if (fin_sent_ && snd_una_ == snd_nxt_ && peer_fin_) {
            // Both directions closed and our FIN acknowledged.
            state_ = State::Closed;
            if (rto_count_ > 0) {
                // Suffered timeouts but still delivered everything and
                // closed cleanly: a recovered flow, not an aborted one.
                kernel_.noteTcpRecovered();
            }
            kernel_.destroyConnection(*this);
        }
        return;
    }

    if (ack == snd_una_ && flightSize() > 0 && !window_changed) {
        ++dupacks_;
        log::trace("%.3fus %s dupack #%u una=%llu flight=%llu",
                   kernel_.sim().now().asMicros(), flow_.str().c_str(),
                   dupacks_, static_cast<unsigned long long>(snd_una_),
                   static_cast<unsigned long long>(flightSize()));
        if (!in_fast_recovery_ && dupacks_ == params_.dupack_thresh) {
            ssthresh_ = std::max<uint64_t>(flightSize() / 2,
                                           2ULL * params_.mss);
            recover_ = snd_nxt_;
            in_fast_recovery_ = true;
            uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(
                params_.mss, snd_nxt_ - snd_una_));
            len = segmentLenAt(snd_una_, len);
            transmitSegment(snd_una_, len, kAck, true);
            cwnd_ = ssthresh_ + 3ULL * params_.mss;
            armRtoTimer();
        } else if (in_fast_recovery_) {
            cwnd_ += params_.mss;
            trySendData();
        }
        return;
    }

    if (window_changed) {
        trySendData();
    }
}

void
TcpConnection::onData(net::Packet &p)
{
    const uint64_t seq = p.tcp.seq;
    uint64_t len = p.payload_bytes;
    if (p.tcp.has(kFin)) {
        have_fin_ = true;
        fin_data_end_ = seq + p.payload_bytes;
        len += 1; // the FIN's virtual sequence byte
    }
    if (seq + len <= rcv_nxt_) {
        sendAck(true); // stale duplicate: contributes nothing new
        return;
    }
    // Register the riding message descriptor only for segments that
    // carry not-yet-consumed bytes; a late retransmission of an
    // already-delivered message must not resurrect it.
    if (p.app && p.payload_bytes > 0 &&
        seq + p.payload_bytes > consumed_) {
        in_msgs_[seq + p.payload_bytes] = p.app;
    }
    if (seq > rcv_nxt_) {
        auto [it, fresh] = ooo_.emplace(seq, len);
        if (!fresh) {
            it->second = std::max(it->second, len);
        }
        quickack_credits_ = 16; // loss episode: disable ACK delay
        sendAck(true); // duplicate ACK signals the hole
        return;
    }

    rcv_nxt_ = seq + len;
    for (auto it = ooo_.begin();
         it != ooo_.end() && it->first <= rcv_nxt_;) {
        rcv_nxt_ = std::max(rcv_nxt_, it->first + it->second);
        it = ooo_.erase(it);
    }
    if (have_fin_ && rcv_nxt_ >= fin_data_end_ + 1) {
        peer_fin_ = true;
        if (state_ == State::Established) {
            state_ = State::CloseWait;
        }
    }

    notifyReadable();

    ++unacked_segs_;
    bool force = !params_.delayed_ack || unacked_segs_ >= 2 ||
                 peer_fin_ || !ooo_.empty();
    if (quickack_credits_ > 0) {
        --quickack_credits_;
        force = true;
    }
    if (force) {
        sendAck(true);
    } else if (!delack_armed_) {
        delack_armed_ = true;
        delack_timer_ = kernel_.addHrTimer(params_.delayed_ack_timeout,
                                           [this] {
            delack_armed_ = false;
            sendAck(true);
        });
    }
}

// ---------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------

uint32_t
TcpConnection::segmentLenAt(uint64_t seq, uint32_t max_len) const
{
    // Never cross an application message boundary, so a descriptor can
    // ride on the segment carrying its final byte.
    auto it = out_msgs_.upper_bound(seq);
    if (it != out_msgs_.end() && it->first < seq + max_len) {
        return static_cast<uint32_t>(it->first - seq);
    }
    return max_len;
}

uint64_t
TcpConnection::effectiveWindow() const
{
    return std::min(cwnd_, peer_window_);
}

uint64_t
TcpConnection::sendBufferSpace() const
{
    const uint64_t used = app_queued_end_ - snd_una_;
    return used >= params_.send_buf_bytes
               ? 0
               : params_.send_buf_bytes - used;
}

uint64_t
TcpConnection::enqueueSend(uint64_t bytes,
                           std::shared_ptr<const net::AppData> msg)
{
    if (state_ == State::Closed || fin_queued_) {
        return 0;
    }
    const uint64_t accepted = std::min(bytes, sendBufferSpace());
    if (accepted == 0) {
        return 0;
    }
    // RFC 2861: after an idle period the cwnd no longer reflects network
    // state; restart from the initial window.
    if (flightSize() == 0 &&
        kernel_.sim().now() - last_tx_time_ > rto_) {
        cwnd_ = std::min<uint64_t>(
            cwnd_,
            static_cast<uint64_t>(params_.init_cwnd_segments) *
                params_.mss);
    }
    app_queued_end_ += accepted;
    if (msg && accepted == bytes) {
        out_msgs_[app_queued_end_] = std::move(msg);
    }
    trySendData();
    return accepted;
}

void
TcpConnection::trySendData()
{
    if (state_ != State::Established && state_ != State::CloseWait &&
        state_ != State::FinWait) {
        return;
    }

    while (true) {
        const uint64_t wnd = effectiveWindow();
        const uint64_t flight = flightSize();
        if (flight >= wnd) {
            break;
        }
        // snd_nxt may sit one past app_queued_end_ once the FIN's
        // virtual byte has been sent; there is no more data then.
        if (snd_nxt_ >= app_queued_end_) {
            break;
        }
        const uint64_t avail = app_queued_end_ - snd_nxt_;
        uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(
            {avail, params_.mss, wnd - flight}));
        len = segmentLenAt(snd_nxt_, len);
        if (len == 0) {
            break;
        }
        const bool retx = snd_nxt_ < retransmit_until_;
        transmitSegment(snd_nxt_, len, kAck, retx);
        snd_nxt_ += len;
    }

    // Zero-window probing: without it a lost window update deadlocks.
    if (effectiveWindow() == 0 && flightSize() == 0 &&
        app_queued_end_ > snd_nxt_ && !persist_armed_) {
        persist_armed_ = true;
        persist_timer_ = kernel_.addTimer(rto_, [this] {
            persist_armed_ = false;
            if (peer_window_ == 0 && app_queued_end_ > snd_nxt_) {
                uint32_t len = segmentLenAt(snd_nxt_, 1);
                transmitSegment(snd_nxt_, len, kAck, false);
                snd_nxt_ += len;
                armRtoTimer();
            }
            trySendData();
        });
    }

    if (fin_queued_ && snd_nxt_ == app_queued_end_) {
        // First transmission, or a go-back-N resend after rollback.
        transmitSegment(snd_nxt_, 1, static_cast<uint8_t>(kAck | kFin),
                        fin_sent_);
        snd_nxt_ += 1;
        if (!fin_sent_) {
            fin_sent_ = true;
            if (state_ == State::Established) {
                state_ = State::FinWait;
            }
        }
    }

    if (flightSize() > 0 && !rto_armed_) {
        armRtoTimer();
    }
}

void
TcpConnection::sendAck(bool immediate)
{
    if (!immediate) {
        return;
    }
    if (delack_armed_) {
        kernel_.cancelTimer(delack_timer_);
        delack_armed_ = false;
    }
    unacked_segs_ = 0;
    transmitSegment(snd_nxt_, 0, kAck, false);
}

// ---------------------------------------------------------------------
// Application interface
// ---------------------------------------------------------------------

uint64_t
TcpConnection::consume(uint64_t max_bytes, std::vector<RecvedMessage> *out)
{
    const uint64_t n = std::min(available(), max_bytes);
    const uint64_t old_window =
        params_.recv_buf_bytes - (rcv_nxt_ - consumed_ > params_.recv_buf_bytes
                                      ? params_.recv_buf_bytes
                                      : rcv_nxt_ - consumed_);
    consumed_ += n;

    if (out) {
        while (!in_msgs_.empty() &&
               in_msgs_.begin()->first <= consumed_) {
            RecvedMessage m;
            m.msg = in_msgs_.begin()->second;
            m.from = flow_.dst;
            m.from_port = flow_.dport;
            out->push_back(std::move(m));
            in_msgs_.erase(in_msgs_.begin());
        }
    }

    // Window update when the advertised window grows materially.
    const uint64_t buffered = rcv_nxt_ - consumed_;
    const uint64_t new_window = params_.recv_buf_bytes > buffered
                                    ? params_.recv_buf_bytes - buffered
                                    : 0;
    if (n > 0 && (old_window == 0 ||
                  new_window - old_window >= params_.mss)) {
        sendAck(true);
    }
    return n;
}

void
TcpConnection::abortConnection(long error)
{
    if (state_ == State::Closed && aborted()) {
        return;
    }
    if (state_ == State::SynSent || state_ == State::SynRcvd) {
        connect_failed_ = true;
    }
    abort_errno_ = error;
    state_ = State::Closed;
    cancelAllTimers();
    kernel_.noteTcpAbort();
    notifyReadable();
    notifyWritable();
}

void
TcpConnection::crashTeardown()
{
    abort_errno_ = err::kIO;
    connect_failed_ = true;
    state_ = State::Closed;
    cancelAllTimers();
}

void
TcpConnection::appClose()
{
    if (state_ == State::Closed || fin_queued_) {
        return;
    }
    if (state_ == State::SynSent || state_ == State::SynRcvd) {
        state_ = State::Closed;
        cancelRtoTimer();
        return;
    }
    fin_queued_ = true;
    trySendData();
}

// ---------------------------------------------------------------------
// Timers / RTT
// ---------------------------------------------------------------------

uint64_t
TcpConnection::available() const
{
    const uint64_t data_end =
        peer_fin_ ? fin_data_end_ : rcv_nxt_;
    return data_end - consumed_;
}

void
TcpConnection::rttSample(SimTime sample)
{
    if (!rtt_valid_) {
        srtt_ = sample;
        rttvar_ = sample / 2;
        rtt_valid_ = true;
    } else {
        const SimTime diff = srtt_ > sample ? srtt_ - sample
                                            : sample - srtt_;
        rttvar_ = rttvar_.scaled(0.75) + diff.scaled(0.25);
        srtt_ = srtt_.scaled(0.875) + sample.scaled(0.125);
    }
    SimTime rto = srtt_ + 4 * rttvar_;
    rto_ = std::clamp(rto, params_.min_rto, params_.max_rto);
}

void
TcpConnection::armRtoTimer()
{
    cancelRtoTimer();
    SimTime t = rto_;
    for (uint32_t i = 0; i < backoff_; ++i) {
        t = std::min(t * 2, params_.max_rto);
    }
    rto_timer_ = kernel_.addTimer(t, [this] { onRtoExpired(); });
    rto_armed_ = true;
}

void
TcpConnection::cancelRtoTimer()
{
    if (rto_armed_) {
        kernel_.cancelTimer(rto_timer_);
        rto_armed_ = false;
    }
}

void
TcpConnection::onRtoExpired()
{
    rto_armed_ = false;
    ++rto_count_;
    kernel_.noteTcpRto();
    log::trace("%.3fus %s RTO state=%d una=%llu nxt=%llu queued=%llu "
               "cwnd=%llu rto=%s backoff=%u dupacks=%u",
               kernel_.sim().now().asMicros(), flow_.str().c_str(),
               static_cast<int>(state_),
               static_cast<unsigned long long>(snd_una_),
               static_cast<unsigned long long>(snd_nxt_),
               static_cast<unsigned long long>(app_queued_end_),
               static_cast<unsigned long long>(cwnd_),
               rto_.str().c_str(), backoff_, dupacks_);
    if (backoff_ < 12) {
        ++backoff_;
    }
    timed_pending_ = false; // Karn: never sample retransmitted segments

    // A peer that died silently never answers: after the retry budget
    // is exhausted the connection aborts instead of retransmitting
    // forever (Linux tcp_retries2 / tcp_syn_retries semantics).
    const bool handshake =
        state_ == State::SynSent || state_ == State::SynRcvd;
    const uint32_t retry_limit =
        handshake ? params_.max_syn_retries : params_.max_retries;
    if (retry_attempts_ >= retry_limit) {
        abortConnection(err::kTimedOut);
        return;
    }
    ++retry_attempts_;

    switch (state_) {
      case State::SynSent:
        syn_retransmitted_ = true; // Karn: don't sample this handshake
        transmitSegment(0, 0, kSyn, true);
        armRtoTimer();
        return;
      case State::SynRcvd:
        transmitSegment(0, 0, static_cast<uint8_t>(kSyn | kAck), true);
        armRtoTimer();
        return;
      case State::Closed:
        return;
      default:
        break;
    }

    if (flightSize() == 0) {
        return;
    }
    // Timeout: collapse to one segment, halve the pipe estimate, and —
    // as in classic Reno without SACK — go back to snd_una: everything
    // beyond it is considered lost and will be re-sent under slow start
    // as acknowledgments return.
    ssthresh_ = std::max<uint64_t>(flightSize() / 2, 2ULL * params_.mss);
    cwnd_ = params_.mss;
    in_fast_recovery_ = false;
    dupacks_ = 0;
    retransmit_until_ = std::max(retransmit_until_, snd_nxt_);
    snd_nxt_ = snd_una_;
    trySendData();
    armRtoTimer();
}

// ---------------------------------------------------------------------
// Socket notification
// ---------------------------------------------------------------------

void
TcpConnection::notifyReadable()
{
    if (sock_ != nullptr) {
        kernel_.socketReadable(*sock_);
    }
}

void
TcpConnection::notifyWritable()
{
    if (sock_ != nullptr) {
        kernel_.socketWritable(*sock_);
    }
}

} // namespace os
} // namespace diablo
