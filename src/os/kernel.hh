#ifndef DIABLO_OS_KERNEL_HH_
#define DIABLO_OS_KERNEL_HH_

/**
 * @file
 * Per-server operating system model.
 *
 * DIABLO runs one unmodified Linux instance per simulated server; the
 * software substitution is an explicit behavioural model of the kernel
 * pieces the paper shows to matter: the syscall interface (including
 * blocking vs epoll service styles and the accept4 path), the socket
 * layer, TCP/UDP stacks, softirq/NAPI receive processing, a timer wheel
 * at kernel-HZ granularity, and the single-core scheduler with timeslice
 * and context-switch costs.  All costs come from a KernelProfile
 * (2.6.39.3 or 3.5.7 calibrations), so "changing the kernel version" is
 * swapping a profile — the experiment in Figure 14.
 *
 * Syscalls are coroutines: they charge CPU cycles in process context,
 * block on wait queues, and return errno-style results.  Device input
 * arrives through the NIC's interrupt path and is processed in softirq
 * context with NAPI batching, charging per-packet stack costs.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "core/ring_buffer.hh"
#include "core/simulator.hh"
#include "core/task.hh"
#include "net/packet.hh"
#include "os/cpu.hh"
#include "os/kernel_profile.hh"
#include "os/socket.hh"
#include "os/tcp.hh"
#include "os/thread.hh"

namespace diablo {
namespace os {

/** Interface the kernel uses to drive its network device. */
class NicDevice {
  public:
    virtual ~NicDevice() = default;

    /** True when the TX descriptor ring cannot accept another packet. */
    virtual bool txRingFull() const = 0;

    /** Queue a packet in the TX ring; caller checked !txRingFull(). */
    virtual void txEnqueue(net::PacketPtr p) = 0;

    /** Pop the next received packet from the RX ring (null if empty). */
    virtual net::PacketPtr rxDequeue() = 0;

    /** Packets currently waiting in the RX ring. */
    virtual size_t rxPending() const = 0;

    /** Kernel finished a NAPI poll round; re-enable RX interrupts. */
    virtual void rxInterruptsEnable(bool on) = 0;

    /** True if the send path may skip the user->kernel copy. */
    virtual bool zeroCopy() const = 0;
};

/** One epoll instance. */
class EpollInstance {
  public:
    EpollInstance(Simulator &sim, int fd) : fd(fd), waiters(sim) {}

    int fd;
    std::set<int> watched;
    std::set<int> ready;
    WaitQueue waiters;
};

/** Result row of epoll_wait. */
struct EpollEvent {
    int fd;
};

/** Per-server kernel instance. */
class Kernel {
  public:
    /**
     * @param route_lookup maps a destination node to the source route
     *        its packets carry (the statically configured WSC topology).
     */
    Kernel(Simulator &sim, net::NodeId node, const CpuParams &cpu_params,
           const KernelProfile &profile,
           std::function<net::SourceRoute(net::NodeId)> route_lookup);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    Simulator &sim() { return sim_; }
    net::NodeId node() const { return node_; }
    Cpu &cpu() { return *cpu_; }
    const KernelProfile &profile() const { return profile_; }
    const TcpParams &tcpParams() const { return tcp_params_; }
    void setTcpParams(const TcpParams &p) { tcp_params_ = p; }

    /** Attach the network device (required before any traffic). */
    void attachNic(NicDevice &nic) { nic_ = &nic; }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /** Create a schedulable user thread. */
    Thread &createThread(const std::string &name);

    /**
     * Spawn @p body as a root process owned by this kernel.  Ownership
     * matters for teardown: a process only ever blocks on its own
     * kernel's wait queues, and the kernel destroys its processes before
     * its sockets, so suspended frames never dangle.
     */
    void spawnProcess(Task<> body);

    // ------------------------------------------------------------------
    // Syscalls (coroutines; charge CPU in the calling thread's context)
    // ------------------------------------------------------------------

    Task<long> sysSocket(Thread &t, net::Proto proto);
    Task<long> sysBind(Thread &t, int fd, uint16_t port);
    Task<long> sysListen(Thread &t, int fd, uint32_t backlog);
    Task<long> sysConnect(Thread &t, int fd, net::NodeId dst,
                          uint16_t dport);
    /** accept()/accept4(); @p use_accept4 skips the extra fcntl cost. */
    Task<long> sysAccept(Thread &t, int fd, bool use_accept4);

    /**
     * Stream send: blocks until all @p bytes are queued; @p msg rides
     * with the final byte.  Returns bytes or a negative errno.
     */
    Task<long> sysSend(Thread &t, int fd, uint64_t bytes,
                       std::shared_ptr<const net::AppData> msg);

    /**
     * Stream receive: blocks until >= 1 byte (or EOF/timeout); consumes
     * up to @p max_bytes; completed message descriptors are appended to
     * @p msgs when non-null.  Returns bytes (0 = EOF) or negative errno.
     */
    Task<long> sysRecv(Thread &t, int fd, uint64_t max_bytes,
                       std::vector<RecvedMessage> *msgs,
                       SimTime timeout = SimTime::max());

    /** Datagram send (fragments at the MTU; charges per fragment). */
    Task<long> sysSendTo(Thread &t, int fd, net::NodeId dst, uint16_t dport,
                         uint64_t bytes,
                         std::shared_ptr<const net::AppData> msg);

    /** Datagram receive: one whole datagram (blocks; optional timeout). */
    Task<long> sysRecvFrom(Thread &t, int fd, RecvedMessage *out,
                           SimTime timeout = SimTime::max());

    Task<long> sysEpollCreate(Thread &t);
    Task<long> sysEpollCtlAdd(Thread &t, int epfd, int fd);
    Task<long> sysEpollWait(Thread &t, int epfd,
                            std::vector<EpollEvent> *events,
                            uint32_t max_events,
                            SimTime timeout = SimTime::max());

    Task<long> sysClose(Thread &t, int fd);

    // ------------------------------------------------------------------
    // Stack-internal services (used by TCP/UDP/NIC code)
    // ------------------------------------------------------------------

    /**
     * Build a fresh packet from this server's partition-local pool —
     * the allocation-free steady-state path every stack-originated
     * packet (TCP segment, UDP fragment, RST) must use.
     */
    net::PacketPtr allocPacket();

    /**
     * Hand a fully built packet to the qdisc/NIC and account the TX
     * stack cycles against the current context (see drainTxCharge()).
     */
    void stackTransmit(net::PacketPtr p);

    /** Cycles of TX stack work accumulated since the last drain. */
    uint64_t drainTxCharge();

    /** Kernel timer: fires rounded UP to the next kernel tick. */
    EventId addTimer(SimTime delay, EventFn fn);
    void cancelTimer(EventId id) { sim_.cancel(id); }

    /** Fine-grained (non-tick) kernel timer, e.g. delayed ACK. */
    EventId addHrTimer(SimTime delay, EventFn fn);

    /** NIC RX interrupt entry point (called by the NIC model). */
    void rxInterrupt();

    /** NIC TX-completion notification: pump the qdisc. */
    void txRingSpace();

    /** Socket readiness changed: update epoll and wake waiters. */
    void socketReadable(Socket &s);
    void socketWritable(Socket &s);

    /** Passive connection fully established: queue for accept(). */
    void onPassiveEstablished(TcpConnection &conn);

    /** Connection removal (close completed or reset). */
    void destroyConnection(TcpConnection &conn);

    // ------------------------------------------------------------------
    // Faults: server crash / reboot
    // ------------------------------------------------------------------

    /**
     * Power-fail the server.  Every connection is torn down silently
     * (a dead host sends nothing — peers find out via their own RTO
     * abort timers), every blocked syscall wakes with EIO, queued TX
     * work and the NIC RX ring are discarded, and until reboot() every
     * syscall fails fast with EIO and every arriving packet is
     * discarded (counted in stats().crash_rx_discards).
     *
     * Suspended coroutine frames are never destroyed — destroying a
     * frame that is registered on wait queues or CPU completion events
     * would dangle; instead they wake, observe errors, and either
     * finish or park as zombies.  Objects they may still reference
     * (sockets, connections, epoll instances) survive in graveyards
     * until the kernel itself is destroyed.
     */
    void crash();

    /**
     * Restore service after crash(): fresh socket/port/connection
     * tables (old fds are dead), finished process frames reaped.  A
     * retransmission arriving for a pre-crash flow now finds no
     * connection and draws an RST — exactly how peers of a rebooted
     * host learn their connection is gone.  Call schedulable delay
     * after crash(); the restart application is spawned by the caller.
     */
    void reboot();

    bool crashed() const { return crashed_; }

    // ------------------------------------------------------------------
    // Stats
    // ------------------------------------------------------------------

    struct Stats {
        uint64_t syscalls = 0;
        uint64_t tx_packets = 0;
        uint64_t rx_packets = 0;
        uint64_t qdisc_drops = 0;
        uint64_t udp_rx_overflow_drops = 0;
        uint64_t softirq_rounds = 0;
        uint64_t tcp_retransmits = 0;
        uint64_t tcp_rtos = 0;
        uint64_t tcp_aborts = 0;    ///< timeout/abort-terminated flows
        uint64_t tcp_recovered = 0; ///< flows that survived >=1 RTO
        uint64_t crash_rx_discards = 0; ///< packets hitting a dead host
    };

    const Stats &stats() const { return stats_; }

    /** TCP bookkeeping hooks (called by TcpConnection). */
    void noteTcpRetransmit() { ++stats_.tcp_retransmits; }
    void noteTcpRto() { ++stats_.tcp_rtos; }
    void noteTcpAbort() { ++stats_.tcp_aborts; }
    void noteTcpRecovered() { ++stats_.tcp_recovered; }

    Socket *socketFor(int fd);

  private:
    friend class TcpConnection;

    Task<long> chargeSyscall(Thread &t, uint64_t body_cycles);
    int allocFd();
    uint16_t allocEphemeralPort();
    Socket *boundUdpSocket(uint16_t port);
    Socket *listeningSocket(uint16_t port);

    void qdiscPump();
    /** Drop everything in the NIC RX ring (host is dead); re-arm IRQs. */
    void discardRxRing();
    void scheduleSoftirq();
    void processNextRx(uint32_t budget);
    void processRxPacket(net::PacketPtr p);
    void deliverUdp(net::PacketPtr p);
    void sendRst(const net::Packet &to);

    Simulator &sim_;
    net::NodeId node_;
    KernelProfile profile_;
    TcpParams tcp_params_;
    std::unique_ptr<Cpu> cpu_;
    std::function<net::SourceRoute(net::NodeId)> route_lookup_;
    NicDevice *nic_ = nullptr;

    // Bookkeeping containers are vectors of owning pointers: pointees
    // stay address-stable across growth (coroutines hold Thread*/Socket*
    // raw pointers), while an *empty* vector — the idle-node common
    // case at warehouse scale — costs three words instead of a deque's
    // eagerly allocated chunk map.  Only processes_ below needs element
    // (not pointee) address stability and remains a deque.
    std::vector<std::unique_ptr<Thread>> threads_;
    uint64_t next_thread_id_ = 1;

    int next_fd_ = 3;
    uint16_t next_ephemeral_ = 32768;
    std::unordered_map<int, std::unique_ptr<Socket>> sockets_;
    std::unordered_map<int, std::unique_ptr<EpollInstance>> epolls_;
    std::unordered_map<uint16_t, Socket *> udp_bound_;
    std::unordered_map<uint16_t, Socket *> tcp_listen_;
    std::unordered_map<net::FlowKey, std::unique_ptr<TcpConnection>,
                       net::FlowKeyHash> conns_;

    /** Connections owned before their socket has an fd (pre-accept). */
    std::vector<std::unique_ptr<Socket>> embryonic_sockets_;

    /** Device egress queue; a ring so steady-state cycling of a busy
     *  queue never touches the allocator (deque chunk churn did). */
    RingBuffer<net::PacketPtr> qdisc_;
    uint64_t qdisc_limit_pkts_ = 1000; ///< txqueuelen
    /**
     * The transmit stack runs on the fixed-CPI core, so packets reach
     * the NIC no faster than one per (per-packet TX cycles): on-wire
     * bursts are CPU-paced, as on the paper's RAMP Gold servers.
     */
    SimTime tx_stack_free_;
    bool tx_release_pending_ = false;

    uint64_t pending_tx_charge_cycles_ = 0;
    bool softirq_scheduled_ = false;

    /** UDP reassembly: (flow-ish key) -> fragments seen. */
    struct Reassembly {
        uint16_t frag_count = 0;
        uint16_t frags_seen = 0;
        std::shared_ptr<const net::AppData> msg;
        net::NodeId from = net::kInvalidNode;
        uint16_t from_port = 0;
        uint64_t bytes = 0;
        SimTime first_seen;
    };
    std::unordered_map<uint64_t, Reassembly> reassembly_;

    uint64_t next_dgram_id_ = 1;

    bool crashed_ = false;
    /**
     * Graveyards for objects retired by reboot().  Zombie coroutine
     * frames suspended at crash time can still hold raw pointers to
     * these; they stay alive until the kernel is destroyed (which
     * clears processes_ — and with it every frame — first).
     */
    std::vector<std::unique_ptr<Socket>> dead_sockets_;
    std::vector<std::unique_ptr<EpollInstance>> dead_epolls_;
    std::vector<std::unique_ptr<TcpConnection>> dead_conns_;

    Stats stats_;

    /**
     * Root processes owned by this kernel.  MUST be the last member:
     * frames are destroyed before every other kernel structure they
     * might reference (sockets, wait queues, threads).
     */
    std::deque<Task<>> processes_;
};

} // namespace os
} // namespace diablo

#endif // DIABLO_OS_KERNEL_HH_
