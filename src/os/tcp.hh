#ifndef DIABLO_OS_TCP_HH_
#define DIABLO_OS_TCP_HH_

/**
 * @file
 * TCP implementation (Reno flavour, Linux constants).
 *
 * TCP Incast (§4.1) hinges on the interaction of small switch buffers
 * with TCP's loss recovery, so this stack implements the mechanisms that
 * matter at that fidelity:
 *
 *  - three-way handshake and FIN teardown (no TIME_WAIT modeling);
 *  - MSS segmentation, sliding window, cumulative ACKs, delayed ACKs;
 *  - RFC 6298 RTT estimation (Karn's rule), with the retransmission
 *    timer quantized to the kernel tick and clamped to the Linux
 *    200 ms minimum RTO that drives Incast throughput collapse;
 *  - Reno slow start / congestion avoidance, 3-dup-ACK fast retransmit
 *    with window inflation, exponential RTO backoff;
 *  - flow control against the advertised receive window, with window
 *    updates as the application drains the receive buffer.
 *
 * Application framing: a message descriptor attached by the sender rides
 * with the stream byte range it occupies and is surfaced to the receiving
 * application when that range has been consumed in order.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "net/packet.hh"
#include "os/socket.hh"

namespace diablo {
namespace os {

class Kernel;

/** Runtime-configurable TCP parameters (Linux defaults). */
struct TcpParams {
    uint32_t mss = 1448;                ///< 1500 - 40 - 12 (timestamps)
    uint64_t send_buf_bytes = 131072;
    uint64_t recv_buf_bytes = 131072;
    uint32_t init_cwnd_segments = 10;   ///< IW10 (2.6.39+)
    SimTime min_rto = SimTime::ms(200); ///< TCP_RTO_MIN
    SimTime init_rto = SimTime::sec(1); ///< RFC 6298 initial
    SimTime max_rto = SimTime::sec(120);
    uint32_t dupack_thresh = 3;
    bool delayed_ack = true;
    SimTime delayed_ack_timeout = SimTime::ms(40);
    /**
     * Consecutive RTOs without forward progress before the connection
     * aborts with ETIMEDOUT (Linux tcp_retries2).  A peer that crashed
     * silently must produce a timeout-driven abort, never a hang.
     */
    uint32_t max_retries = 15;
    /** Handshake retry budget before abort (Linux tcp_syn_retries). */
    uint32_t max_syn_retries = 6;

    static TcpParams fromConfig(const Config &cfg,
                                const std::string &prefix);
};

/** One TCP connection endpoint. */
class TcpConnection {
  public:
    enum class State {
        Closed,
        SynSent,
        SynRcvd,
        Established,
        FinWait,    ///< we sent FIN
        CloseWait,  ///< peer sent FIN
    };

    TcpConnection(Kernel &kernel, Socket &sock, const net::FlowKey &flow,
                  const TcpParams &params);
    ~TcpConnection();

    TcpConnection(const TcpConnection &) = delete;
    TcpConnection &operator=(const TcpConnection &) = delete;

    const net::FlowKey &flow() const { return flow_; }
    State state() const { return state_; }
    Socket &socket() { return *sock_; }

    /** The owning socket was closed; stop delivering wakeups to it. */
    void detachSocket() { sock_ = nullptr; }
    bool detached() const { return sock_ == nullptr; }

    /** Client side: begin the three-way handshake (sends SYN). */
    void startConnect();

    /** Server side: respond to a received SYN (sends SYN|ACK). */
    void startPassive(uint64_t peer_isn, uint64_t peer_window);

    /** Protocol input from the kernel's softirq demux. */
    void onSegment(net::PacketPtr p);

    /**
     * Queue application bytes for transmission; @p msg (may be null)
     * is delivered to the peer application with the final byte.
     * Returns bytes accepted (0 when the send buffer is full).
     */
    uint64_t enqueueSend(uint64_t bytes,
                         std::shared_ptr<const net::AppData> msg);

    /** Free space in the send buffer. */
    uint64_t sendBufferSpace() const;

    /** In-order bytes available to the application. */
    uint64_t available() const;

    /** Peer closed and everything delivered has been consumed. */
    bool atEof() const { return peer_fin_ && available() == 0; }

    bool connectFailed() const { return connect_failed_; }

    /**
     * Consume up to @p max_bytes of in-order data; message descriptors
     * whose final byte is consumed are appended to @p out.  Opens the
     * advertised window (a window update may be sent).
     */
    uint64_t consume(uint64_t max_bytes, std::vector<RecvedMessage> *out);

    /** Application close: FIN after all queued data. */
    void appClose();

    /**
     * Local abort: state goes Closed, every timer is cancelled, waiters
     * are woken, and syscalls on the socket surface @p error.  Nothing
     * is sent — this is the timeout path (the peer finds out via its
     * own timers, or via RST when it later probes a rebooted host).
     */
    void abortConnection(long error);

    /**
     * The owning host crashed: silent teardown.  Like abortConnection
     * but with no stats and no socket wakeups (Kernel::crash() wakes
     * every socket centrally); the object stays alive — in-flight
     * syscall coroutines still hold pointers to it — until reboot.
     */
    void crashTeardown();

    /** Non-zero errno once the connection aborted locally. */
    long abortError() const { return abort_errno_; }
    bool aborted() const { return abort_errno_ != 0; }

    // --- introspection for tests and stats ---
    uint64_t cwndBytes() const { return cwnd_; }
    uint64_t ssthreshBytes() const { return ssthresh_; }
    uint64_t retransmits() const { return retransmits_; }
    uint64_t timeouts() const { return rto_count_; }
    SimTime currentRto() const { return rto_; }
    uint64_t sndNxt() const { return snd_nxt_; }
    uint64_t sndUna() const { return snd_una_; }

  private:
    void transmitSegment(uint64_t seq, uint32_t len, uint8_t flags,
                         bool retransmission);
    uint32_t segmentLenAt(uint64_t seq, uint32_t max_len) const;
    void trySendData();
    void sendAck(bool immediate);
    void enterEstablished();
    void onAck(uint64_t ack, uint64_t wnd);
    void onData(net::Packet &p);
    void armRtoTimer();
    void cancelRtoTimer();
    void cancelAllTimers();
    void onRtoExpired();
    void rttSample(SimTime sample);
    uint64_t flightSize() const { return snd_nxt_ - snd_una_; }
    uint64_t effectiveWindow() const;
    void notifyReadable();
    void notifyWritable();

    Kernel &kernel_;
    Socket *sock_;
    net::FlowKey flow_;
    TcpParams params_;
    State state_ = State::Closed;

    // --- send side ---
    uint64_t snd_una_ = 0;       ///< oldest unacknowledged stream byte
    uint64_t snd_nxt_ = 0;       ///< next stream byte to send
    uint64_t app_queued_end_ = 0;///< end of app-buffered stream data
    uint64_t peer_window_ = 0;   ///< last advertised receive window
    /** Message descriptors keyed by their final stream byte (exclusive). */
    std::map<uint64_t, std::shared_ptr<const net::AppData>> out_msgs_;
    bool fin_queued_ = false;
    bool fin_sent_ = false;

    // --- congestion control (bytes) ---
    uint64_t cwnd_;
    uint64_t ssthresh_;
    SimTime last_tx_time_;       ///< for RFC 2861 idle restart
    /** Stream bytes below this were rolled back by an RTO (go-back-N);
     *  sending them again counts as retransmission (Karn excluded). */
    uint64_t retransmit_until_ = 0;
    uint32_t dupacks_ = 0;
    bool in_fast_recovery_ = false;
    uint64_t recover_ = 0;       ///< NewReno-style recovery point

    // --- RTT / RTO ---
    bool rtt_valid_ = false;
    SimTime srtt_;
    SimTime rttvar_;
    SimTime rto_;
    EventId rto_timer_;
    bool rto_armed_ = false;
    uint32_t backoff_ = 0;
    /** The one timed segment (Karn): stream seq and send time. */
    uint64_t timed_seq_ = 0;
    SimTime timed_sent_at_;
    bool timed_pending_ = false;
    /** Handshake RTT sampling (Linux seeds srtt from SYN/SYN-ACK). */
    SimTime syn_sent_at_;
    bool syn_retransmitted_ = false;

    // --- receive side ---
    uint64_t rcv_nxt_ = 0;       ///< next expected in-order byte
    uint64_t consumed_ = 0;      ///< bytes consumed by the application
    std::map<uint64_t, uint64_t> ooo_;  ///< out-of-order [seq, len)
    std::map<uint64_t, std::shared_ptr<const net::AppData>> in_msgs_;
    uint32_t unacked_segs_ = 0;  ///< for delayed-ACK every-2nd policy
    /**
     * Linux quickack mode: ACK immediately (no delay) while credits
     * remain.  A couple of credits at connection start (Linux's
     * interactive heuristic: pingpong mode takes over once traffic is
     * bidirectional, letting ACKs piggyback on responses), re-armed to
     * a full window's worth on out-of-order arrivals so cwnd=1 loss
     * recovery is never throttled by the 40 ms delayed-ACK timer.
     */
    uint32_t quickack_credits_ = 2;
    EventId delack_timer_;
    bool delack_armed_ = false;
    bool peer_fin_ = false;      ///< FIN received and fully in order
    bool have_fin_ = false;      ///< FIN seen (possibly out of order)
    uint64_t fin_data_end_ = 0;  ///< stream offset of the peer's data end
    uint64_t peer_isn_hs_ = 0;

    // --- zero-window persist probing ---
    bool persist_armed_ = false;
    EventId persist_timer_;

    bool connect_failed_ = false;
    long abort_errno_ = 0;
    /** Consecutive RTOs since the last forward-progress ACK. */
    uint32_t retry_attempts_ = 0;

    uint64_t retransmits_ = 0;
    uint64_t rto_count_ = 0;
};

} // namespace os
} // namespace diablo

#endif // DIABLO_OS_TCP_HH_
