#ifndef DIABLO_OS_THREAD_HH_
#define DIABLO_OS_THREAD_HH_

/**
 * @file
 * Simulated user thread.
 *
 * A Thread is the schedulable identity application coroutines run under.
 * Awaiting compute() charges fixed-CPI cycles on the server's single CPU
 * in the User scheduling class; the CPU model adds queueing delay,
 * timeslice rotation and context-switch penalties, which is how "the OS
 * can be the dominant factor" effects emerge in the experiments.
 */

#include <coroutine>
#include <cstdint>
#include <string>

#include "os/cpu.hh"

namespace diablo {
namespace os {

class Kernel;

/** Schedulable user-thread identity. */
class Thread {
  public:
    Thread(Kernel &kernel, Cpu &cpu, uint64_t id, std::string name)
        : kernel_(kernel), cpu_(cpu), id_(id), name_(std::move(name)) {}

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    uint64_t id() const { return id_; }
    const std::string &name() const { return name_; }
    Kernel &kernel() { return kernel_; }
    Cpu &cpu() { return cpu_; }

    struct ComputeAwaiter {
        Cpu &cpu;
        SchedClass cls;
        uint64_t cycles;
        uint64_t tag;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            cpu.submit(cls, cycles, tag, [h] { h.resume(); });
        }

        void await_resume() const noexcept {}
    };

    /** Execute @p cycles of user-mode work on the server CPU. */
    ComputeAwaiter
    compute(uint64_t cycles)
    {
        return ComputeAwaiter{cpu_, SchedClass::User, cycles, id_};
    }

    /** Execute kernel-mode work on behalf of this thread (syscalls). */
    ComputeAwaiter
    kcompute(uint64_t cycles)
    {
        // Syscall work runs in process context, so it is schedulable like
        // the thread itself (class User), still paying queueing delays.
        return ComputeAwaiter{cpu_, SchedClass::User, cycles, id_};
    }

  private:
    Kernel &kernel_;
    Cpu &cpu_;
    uint64_t id_;
    std::string name_;
};

} // namespace os
} // namespace diablo

#endif // DIABLO_OS_THREAD_HH_
