#ifndef DIABLO_OS_WAIT_QUEUE_HH_
#define DIABLO_OS_WAIT_QUEUE_HH_

/**
 * @file
 * Kernel wait queue: the blocking primitive every simulated syscall uses.
 *
 * Mirrors Linux wait queues: a task sleeps on a queue until a wakeup (or
 * an optional timeout) settles it.  Waiter nodes live in the suspended
 * coroutine's frame, so no allocation happens per block, and resumptions
 * are routed through the event queue to preserve deterministic ordering.
 */

#include <coroutine>
#include <deque>

#include "core/simulator.hh"

namespace diablo {
namespace os {

/** Value returned from a timed-out wait (Linux -ETIMEDOUT). */
inline constexpr long kWaitTimedOut = -110;

/** FIFO wait queue with optional per-waiter timeout. */
class WaitQueue {
  public:
    explicit WaitQueue(Simulator &sim) : sim_(sim) {}

    WaitQueue(const WaitQueue &) = delete;
    WaitQueue &operator=(const WaitQueue &) = delete;

    struct Awaiter {
        WaitQueue &wq;
        SimTime timeout;
        std::coroutine_handle<> h;
        long value = 0;
        bool settled = false;
        EventId timer;

        /**
         * Awaiter nodes live in the suspended coroutine's frame.  They
         * must never outlive their queue membership: the destructor
         * unlinks, so destroying a suspended frame (teardown) or
         * returning from a timed-out wait cannot leave a dangling
         * pointer in nodes_.
         */
        ~Awaiter() { wq.remove(this); }

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> handle)
        {
            h = handle;
            wq.nodes_.push_back(this);
            if (timeout != SimTime::max()) {
                timer = wq.sim_.schedule(timeout, [this] {
                    if (!settled) {
                        settled = true;
                        value = kWaitTimedOut;
                        wq.remove(this);
                        wq.sim_.schedule(SimTime(), [this] { h.resume(); },
                                         event_prio::kWakeup);
                    }
                }, event_prio::kTimer);
            }
        }

        long
        await_resume()
        {
            wq.sim_.cancel(timer);
            return value;
        }
    };

    /**
     * Block the calling coroutine until wakeOne()/wakeAll() or, if
     * @p timeout is finite, until it elapses (then kWaitTimedOut).
     */
    Awaiter
    wait(SimTime timeout = SimTime::max())
    {
        return Awaiter{*this, timeout, {}, 0, false, {}};
    }

    /** Wake the oldest waiter with @p value; false if none waited. */
    bool
    wakeOne(long value = 0)
    {
        while (!nodes_.empty()) {
            Awaiter *n = nodes_.front();
            nodes_.pop_front();
            if (n->settled) {
                continue; // settled but not yet unlinked
            }
            settle(n, value);
            return true;
        }
        return false;
    }

    /** Unlink a node (timeout or frame destruction). */
    void
    remove(Awaiter *node)
    {
        for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
            if (*it == node) {
                nodes_.erase(it);
                return;
            }
        }
    }

    /** Wake every current waiter with @p value. */
    void
    wakeAll(long value = 0)
    {
        while (wakeOne(value)) {
        }
    }

    bool
    hasWaiters() const
    {
        for (Awaiter *n : nodes_) {
            if (!n->settled) {
                return true;
            }
        }
        return false;
    }

  private:
    void
    settle(Awaiter *n, long value)
    {
        n->settled = true;
        n->value = value;
        sim_.schedule(SimTime(), [n] { n->h.resume(); },
                      event_prio::kWakeup);
    }

    Simulator &sim_;
    std::deque<Awaiter *> nodes_;
};

} // namespace os
} // namespace diablo

#endif // DIABLO_OS_WAIT_QUEUE_HH_
