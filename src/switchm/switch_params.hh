#ifndef DIABLO_SWITCHM_SWITCH_PARAMS_HH_
#define DIABLO_SWITCHM_SWITCH_PARAMS_HH_

/**
 * @file
 * Runtime-configurable switch model parameters.
 *
 * Mirrors DIABLO's design where "switch models in different layers of the
 * network hierarchy differ only in their link latency, bandwidth, and
 * buffer configuration parameters" (§3.3), and where buffer layout is
 * deliberately configurable because it is "an active area for
 * packet-switch researchers".
 */

#include <cstdint>
#include <string>

#include "core/config.hh"
#include "core/time.hh"
#include "core/units.hh"

namespace diablo {
namespace switchm {

/** How packet-buffer space is organized. */
enum class BufferPolicy {
    /** Fixed private budget per output port (e.g. Nortel 5500, 4 KB). */
    Partitioned,
    /** One shared pool, first-come first-served (e.g. Asante IC35516). */
    Shared,
    /**
     * Shared pool with Broadcom-style dynamic per-queue threshold:
     * a queue may use at most alpha * (free pool) bytes [42].
     */
    SharedDynamic,
};

const char *bufferPolicyName(BufferPolicy p);
BufferPolicy bufferPolicyFromString(const std::string &s);

/** Complete parameter set for one switch instance. */
struct SwitchParams {
    std::string name = "switch";
    uint32_t num_ports = 16;

    /** Egress line rate of every port. */
    Bandwidth port_bw = Bandwidth::gbps(1);

    /** Port-to-port forwarding latency (1 us GigE ... 100 ns 10 GigE). */
    SimTime port_latency = SimTime::us(1);

    /** Cut-through (forward at header) vs store-and-forward. */
    bool cut_through = true;

    BufferPolicy buffer_policy = BufferPolicy::Partitioned;

    /** Per-output budget for Partitioned policy. */
    uint64_t buffer_per_port_bytes = 4096;

    /** Pool size for Shared/SharedDynamic policies. */
    uint64_t buffer_total_bytes = 512 * 1024;

    /** Dynamic threshold factor for SharedDynamic. */
    double dynamic_alpha = 0.5;

    /**
     * Read parameters from a Config under @p prefix (e.g.
     * "switch.rack."), falling back to the current values for any key
     * not present.
     */
    static SwitchParams fromConfig(const Config &cfg,
                                   const std::string &prefix,
                                   const SwitchParams &defaults);

    static SwitchParams
    fromConfig(const Config &cfg, const std::string &prefix)
    {
        return fromConfig(cfg, prefix, SwitchParams());
    }
};

} // namespace switchm
} // namespace diablo

#endif // DIABLO_SWITCHM_SWITCH_PARAMS_HH_
