#ifndef DIABLO_SWITCHM_SWITCH_HH_
#define DIABLO_SWITCHM_SWITCH_HH_

/**
 * @file
 * Abstract interface of a simulated switch.
 *
 * Following the paper's functional/timing split, every switch model's
 * *functional* job is fixed — read the next hop from the packet's source
 * route and move the packet to that output — while its *timing* (latency,
 * bandwidth, buffering, scheduling) is the model-specific part.
 */

#include <cstdint>
#include <functional>
#include <utility>

#include "net/link.hh"
#include "net/packet.hh"
#include "switchm/switch_params.hh"

namespace diablo {
namespace switchm {

/** Aggregate statistics every switch model maintains. */
struct SwitchStats {
    uint64_t forwarded_pkts = 0;
    uint64_t forwarded_bytes = 0;
    uint64_t dropped_pkts = 0;
    uint64_t dropped_bytes = 0;
    uint64_t max_buffer_used = 0;
};

/** A switch with N bidirectional ports. */
class Switch {
  public:
    virtual ~Switch() = default;

    /** Ingress sink of port @p i; connect the upstream Link here. */
    virtual net::PacketSink &inPort(uint32_t i) = 0;

    /**
     * Attach the egress link of port @p i.  The switch takes over the
     * link's tx-done callback to drain its queues.
     */
    virtual void attachOutLink(uint32_t i, net::Link &link) = 0;

    virtual const SwitchParams &params() const = 0;
    virtual const SwitchStats &stats() const = 0;

    /** Packets dropped at a specific output port. */
    virtual uint64_t dropsAt(uint32_t port) const = 0;

    /**
     * Hook invoked when a packet heads for an output port that has no
     * link attached; the hook may attach one (via attachOutLink) before
     * the packet proceeds — the lazy-materialization path, where a
     * ToR's server-facing port conjures the server's NIC/link on first
     * delivery.  If the port is still unattached after the hook, the
     * switch panics as before (a genuinely miswired route).
     */
    using UnattachedPortHook = std::function<void(uint32_t port)>;

    void
    setUnattachedPortHook(UnattachedPortHook hook)
    {
        unattached_hook_ = std::move(hook);
    }

  protected:
    /** Give the hook a chance to attach the missing link. */
    void
    fireUnattachedPortHook(uint32_t port)
    {
        if (unattached_hook_) {
            unattached_hook_(port);
        }
    }

  private:
    UnattachedPortHook unattached_hook_;
};

} // namespace switchm
} // namespace diablo

#endif // DIABLO_SWITCHM_SWITCH_HH_
