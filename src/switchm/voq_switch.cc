#include "switchm/voq_switch.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace switchm {

VoqSwitch::VoqSwitch(Simulator &sim, const SwitchParams &params)
    : sim_(sim), params_(params), buffer_(BufferManager::create(params)),
      ingress_(params.num_ports), outputs_(params.num_ports)
{
    for (uint32_t i = 0; i < params.num_ports; ++i) {
        ingress_[i].sw = this;
        ingress_[i].port = i;
        outputs_[i].voq.resize(params.num_ports);
    }
}

net::PacketSink &
VoqSwitch::inPort(uint32_t i)
{
    if (i >= ingress_.size()) {
        panic("%s: inPort %u out of range", params_.name.c_str(), i);
    }
    return ingress_[i];
}

void
VoqSwitch::attachOutLink(uint32_t i, net::Link &link)
{
    if (i >= outputs_.size()) {
        panic("%s: attachOutLink %u out of range", params_.name.c_str(), i);
    }
    outputs_[i].link = &link;
    link.setTxDoneCallback([this, i] { kickOutput(i); });
}

uint64_t
VoqSwitch::dropsAt(uint32_t port) const
{
    return outputs_[port].drops;
}

void
VoqSwitch::handleIngress(uint32_t in_port, net::PacketPtr p)
{
    if (p->route.exhausted()) {
        panic("%s: packet %s arrived with exhausted route",
              params_.name.c_str(), p->str().c_str());
    }
    const uint32_t out = p->route.hop(p->id);
    p->route.advance(p->id);
    ++p->hop_count;
    if (out >= outputs_.size()) {
        panic("%s: route names invalid output port %u",
              params_.name.c_str(), out);
    }
    Output &o = outputs_[out];
    if (o.link == nullptr) {
        // Happens before any buffer/queue state is touched, so the
        // hook may attach the link (lazy server materialization) and
        // forwarding proceeds as if it had always been there.
        fireUnattachedPortHook(out);
        if (o.link == nullptr) {
            panic("%s: output port %u has no link", params_.name.c_str(),
                  out);
        }
    }

    // VOQs are input-side: charge the arrival port's partition.
    const uint32_t buf_bytes = eth::frameBufferBytes(p->l3Bytes());
    if (!buffer_->tryAdmit(in_port, buf_bytes)) {
        ++o.drops;
        ++stats_.dropped_pkts;
        stats_.dropped_bytes += buf_bytes;
        return; // packet destroyed: tail drop
    }
    stats_.max_buffer_used =
        std::max(stats_.max_buffer_used, buffer_->used());

    // Earliest egress start: forwarding latency after delivery, and (for
    // cut-through) never so early that egress transmission would finish
    // before the packet's ingress bits have arrived.
    SimTime eligible = sim_.now() + params_.port_latency;
    const SimTime egress_ser = o.link->bandwidth().transferTime(
        p->wireBytes());
    if (p->last_bit > eligible + egress_ser) {
        eligible = p->last_bit - egress_ser;
    }

    Queued q;
    q.eligible = eligible;
    q.buf_bytes = buf_bytes;
    q.in_port = in_port;
    q.pkt = std::move(p);
    o.voq[in_port].push_back(std::move(q));
    ++o.queued_pkts;
    kickOutput(out);
}

void
VoqSwitch::kickOutput(uint32_t out_port)
{
    Output &o = outputs_[out_port];
    if (o.queued_pkts == 0 || o.link->busy()) {
        return;
    }
    const SimTime now = sim_.now();
    const uint32_t n = static_cast<uint32_t>(o.voq.size());

    // Round-robin across inputs with an eligible head-of-queue packet.
    SimTime min_eligible = SimTime::max();
    for (uint32_t k = 0; k < n; ++k) {
        const uint32_t in = (o.rr + k) % n;
        auto &q = o.voq[in];
        if (q.empty()) {
            continue;
        }
        if (q.front().eligible <= now) {
            Queued item = std::move(q.front());
            q.pop_front();
            --o.queued_pkts;
            o.rr = (in + 1) % n;

            ++stats_.forwarded_pkts;
            stats_.forwarded_bytes += item.pkt->l3Bytes();

            const uint32_t buf_bytes = item.buf_bytes;
            const uint32_t buf_port = item.in_port;
            const SimTime tx_done = o.link->transmit(std::move(item.pkt));
            // Buffer space frees when the frame has fully left.
            sim_.scheduleAt(tx_done, [this, buf_port, buf_bytes] {
                buffer_->release(buf_port, buf_bytes);
            });
            // The link tx-done callback re-kicks this output.
            return;
        }
        min_eligible = std::min(min_eligible, q.front().eligible);
    }

    // Nothing eligible yet: wake up when the earliest head becomes so.
    if (min_eligible != SimTime::max()) {
        sim_.cancel(o.pending_kick);
        o.pending_kick = sim_.scheduleAt(min_eligible, [this, out_port] {
            kickOutput(out_port);
        });
    }
}

} // namespace switchm
} // namespace diablo
