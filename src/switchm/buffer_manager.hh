#ifndef DIABLO_SWITCHM_BUFFER_MANAGER_HH_
#define DIABLO_SWITCHM_BUFFER_MANAGER_HH_

/**
 * @file
 * Switch packet-buffer accounting policies.
 *
 * The paper bases its packet buffer models "after that of the Cisco Nexus
 * 5000 switch, with configurable parameters selected according to a
 * Broadcom switch design [42]"; the validation hardware (Asante IC35516)
 * uses a shared pool.  The three policies here cover that space:
 * per-port partitioned, fully shared, and shared with dynamic per-queue
 * thresholds.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "switchm/switch_params.hh"

namespace diablo {
namespace switchm {

/** Admission control and accounting for a switch's packet memory. */
class BufferManager {
  public:
    virtual ~BufferManager() = default;

    /**
     * Try to admit @p bytes destined for output @p port.  On success the
     * bytes are charged and true is returned; on failure nothing is
     * charged (the packet must be dropped).
     */
    virtual bool tryAdmit(uint32_t port, uint32_t bytes) = 0;

    /** Return bytes previously admitted for @p port. */
    virtual void release(uint32_t port, uint32_t bytes) = 0;

    virtual uint64_t used() const = 0;
    virtual uint64_t usedAt(uint32_t port) const = 0;

    /** Construct the policy selected by @p params. */
    static std::unique_ptr<BufferManager> create(const SwitchParams &params);
};

/** Fixed private byte budget per output port. */
class PartitionedBuffer : public BufferManager {
  public:
    PartitionedBuffer(uint32_t ports, uint64_t per_port_bytes);

    bool tryAdmit(uint32_t port, uint32_t bytes) override;
    void release(uint32_t port, uint32_t bytes) override;
    uint64_t used() const override { return total_used_; }
    uint64_t usedAt(uint32_t port) const override { return used_[port]; }

  private:
    uint64_t cap_;
    uint64_t total_used_ = 0;
    std::vector<uint64_t> used_;
};

/** One pool shared by all ports, first come first served. */
class SharedBuffer : public BufferManager {
  public:
    SharedBuffer(uint32_t ports, uint64_t total_bytes);

    bool tryAdmit(uint32_t port, uint32_t bytes) override;
    void release(uint32_t port, uint32_t bytes) override;
    uint64_t used() const override { return total_used_; }
    uint64_t usedAt(uint32_t port) const override { return used_[port]; }

  private:
    uint64_t cap_;
    uint64_t total_used_ = 0;
    std::vector<uint64_t> used_;
};

/**
 * Shared pool with a dynamic per-queue threshold: a port may occupy at
 * most alpha * (free pool bytes), which adapts per-port limits to load
 * (Broadcom-style flexible buffer allocation).
 */
class SharedDynamicBuffer : public BufferManager {
  public:
    SharedDynamicBuffer(uint32_t ports, uint64_t total_bytes, double alpha);

    bool tryAdmit(uint32_t port, uint32_t bytes) override;
    void release(uint32_t port, uint32_t bytes) override;
    uint64_t used() const override { return total_used_; }
    uint64_t usedAt(uint32_t port) const override { return used_[port]; }

  private:
    uint64_t cap_;
    double alpha_;
    uint64_t total_used_ = 0;
    std::vector<uint64_t> used_;
};

} // namespace switchm
} // namespace diablo

#endif // DIABLO_SWITCHM_BUFFER_MANAGER_HH_
