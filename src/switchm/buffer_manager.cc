#include "switchm/buffer_manager.hh"

#include "core/log.hh"

namespace diablo {
namespace switchm {

std::unique_ptr<BufferManager>
BufferManager::create(const SwitchParams &p)
{
    switch (p.buffer_policy) {
      case BufferPolicy::Partitioned:
        return std::make_unique<PartitionedBuffer>(
            p.num_ports, p.buffer_per_port_bytes);
      case BufferPolicy::Shared:
        return std::make_unique<SharedBuffer>(p.num_ports,
                                              p.buffer_total_bytes);
      case BufferPolicy::SharedDynamic:
        return std::make_unique<SharedDynamicBuffer>(
            p.num_ports, p.buffer_total_bytes, p.dynamic_alpha);
    }
    panic("unreachable buffer policy");
}

PartitionedBuffer::PartitionedBuffer(uint32_t ports, uint64_t per_port_bytes)
    : cap_(per_port_bytes), used_(ports, 0)
{
}

bool
PartitionedBuffer::tryAdmit(uint32_t port, uint32_t bytes)
{
    if (used_[port] + bytes > cap_) {
        return false;
    }
    used_[port] += bytes;
    total_used_ += bytes;
    return true;
}

void
PartitionedBuffer::release(uint32_t port, uint32_t bytes)
{
    if (used_[port] < bytes) {
        panic("PartitionedBuffer: release underflow on port %u", port);
    }
    used_[port] -= bytes;
    total_used_ -= bytes;
}

SharedBuffer::SharedBuffer(uint32_t ports, uint64_t total_bytes)
    : cap_(total_bytes), used_(ports, 0)
{
}

bool
SharedBuffer::tryAdmit(uint32_t port, uint32_t bytes)
{
    if (total_used_ + bytes > cap_) {
        return false;
    }
    used_[port] += bytes;
    total_used_ += bytes;
    return true;
}

void
SharedBuffer::release(uint32_t port, uint32_t bytes)
{
    if (used_[port] < bytes) {
        panic("SharedBuffer: release underflow on port %u", port);
    }
    used_[port] -= bytes;
    total_used_ -= bytes;
}

SharedDynamicBuffer::SharedDynamicBuffer(uint32_t ports,
                                         uint64_t total_bytes, double alpha)
    : cap_(total_bytes), alpha_(alpha), used_(ports, 0)
{
    if (alpha <= 0) {
        fatal("SharedDynamicBuffer: alpha must be positive");
    }
}

bool
SharedDynamicBuffer::tryAdmit(uint32_t port, uint32_t bytes)
{
    if (total_used_ + bytes > cap_) {
        return false;
    }
    const uint64_t free_bytes = cap_ - total_used_;
    const auto threshold =
        static_cast<uint64_t>(alpha_ * static_cast<double>(free_bytes));
    if (used_[port] + bytes > threshold) {
        return false;
    }
    used_[port] += bytes;
    total_used_ += bytes;
    return true;
}

void
SharedDynamicBuffer::release(uint32_t port, uint32_t bytes)
{
    if (used_[port] < bytes) {
        panic("SharedDynamicBuffer: release underflow on port %u", port);
    }
    used_[port] -= bytes;
    total_used_ -= bytes;
}

} // namespace switchm
} // namespace diablo
