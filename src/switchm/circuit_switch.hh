#ifndef DIABLO_SWITCHM_CIRCUIT_SWITCH_HH_
#define DIABLO_SWITCHM_CIRCUIT_SWITCH_HH_

/**
 * @file
 * Connection-oriented virtual-circuit switch model.
 *
 * The paper (§3.3) models two broad categories of WSC array switch:
 * connectionless packet switches and connection-oriented virtual-circuit
 * switches proposed for predictable-latency supercomputer-style fabrics
 * (e.g. Thacker's data center network [59], with a fully detailed
 * 128-port model in [56]).  This model captures the architectural
 * essentials: circuits are set up per (input, output) pair with a
 * guaranteed bandwidth share, traffic on a circuit never queues behind
 * other circuits, and packets without a circuit are rejected.
 */

#include <deque>
#include <optional>
#include <vector>

#include "core/simulator.hh"
#include "switchm/switch.hh"

namespace diablo {
namespace switchm {

/** Identifier for an established virtual circuit. */
struct CircuitId {
    uint32_t index = UINT32_MAX;

    bool valid() const { return index != UINT32_MAX; }
};

/** Virtual-circuit switch with per-circuit bandwidth reservation. */
class CircuitSwitch : public Switch {
  public:
    CircuitSwitch(Simulator &sim, const SwitchParams &params);

    net::PacketSink &inPort(uint32_t i) override;
    void attachOutLink(uint32_t i, net::Link &link) override;

    const SwitchParams &params() const override { return params_; }
    const SwitchStats &stats() const override { return stats_; }
    uint64_t dropsAt(uint32_t port) const override;

    /**
     * Establish a circuit from @p in_port to @p out_port reserving
     * @p share of the output's line rate.  Fails (returns invalid id)
     * when the output's reservations would exceed its capacity.
     * The circuit becomes usable after the configured setup delay.
     */
    CircuitId setupCircuit(uint32_t in_port, uint32_t out_port,
                           double share);

    /** Tear down a circuit, releasing its reservation. */
    void teardownCircuit(CircuitId id);

    /** Reserved fraction of an output port's bandwidth. */
    double reservedShare(uint32_t out_port) const;

    /** Circuit setup latency (control-plane round trip). */
    void setSetupDelay(SimTime d) { setup_delay_ = d; }

    uint64_t rejectedNoCircuit() const { return no_circuit_drops_; }

  private:
    struct Ingress : net::PacketSink {
        CircuitSwitch *sw = nullptr;
        uint32_t port = 0;

        void
        receive(net::PacketPtr p) override
        {
            sw->handleIngress(port, std::move(p));
        }
    };

    struct Circuit {
        uint32_t in_port = 0;
        uint32_t out_port = 0;
        double share = 0;
        SimTime usable_at;
        bool active = false;
        /** Per-circuit FIFO, drained at the reserved rate. */
        std::deque<net::PacketPtr> fifo;
        bool draining = false;
    };

    void handleIngress(uint32_t in_port, net::PacketPtr p);
    void drainCircuit(uint32_t index);
    std::optional<uint32_t> findCircuit(uint32_t in_port,
                                        uint32_t out_port) const;

    Simulator &sim_;
    SwitchParams params_;
    std::vector<Ingress> ingress_;
    std::vector<net::Link *> out_links_;
    /** deque: Circuit holds a PacketPtr FIFO and must never relocate. */
    std::deque<Circuit> circuits_;
    std::vector<double> reserved_;  ///< per output port
    std::vector<uint64_t> drops_;
    SimTime setup_delay_ = SimTime::us(10);
    uint64_t no_circuit_drops_ = 0;
    SwitchStats stats_;
};

} // namespace switchm
} // namespace diablo

#endif // DIABLO_SWITCHM_CIRCUIT_SWITCH_HH_
