#include "switchm/output_queue_switch.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace switchm {

OutputQueueSwitch::OutputQueueSwitch(Simulator &sim,
                                     const SwitchParams &params)
    : sim_(sim), params_(params), buffer_(BufferManager::create(params)),
      ingress_(params.num_ports), outputs_(params.num_ports)
{
    for (uint32_t i = 0; i < params.num_ports; ++i) {
        ingress_[i].sw = this;
        ingress_[i].port = i;
    }
}

net::PacketSink &
OutputQueueSwitch::inPort(uint32_t i)
{
    if (i >= ingress_.size()) {
        panic("%s: inPort %u out of range", params_.name.c_str(), i);
    }
    return ingress_[i];
}

void
OutputQueueSwitch::attachOutLink(uint32_t i, net::Link &link)
{
    if (i >= outputs_.size()) {
        panic("%s: attachOutLink %u out of range", params_.name.c_str(), i);
    }
    outputs_[i].link = &link;
    link.setTxDoneCallback([this, i] { kickOutput(i); });
}

uint64_t
OutputQueueSwitch::dropsAt(uint32_t port) const
{
    return outputs_[port].drops;
}

void
OutputQueueSwitch::handleIngress(net::PacketPtr p)
{
    if (p->route.exhausted()) {
        panic("%s: packet %s arrived with exhausted route",
              params_.name.c_str(), p->str().c_str());
    }
    const uint32_t out = p->route.hop(p->id);
    p->route.advance(p->id);
    ++p->hop_count;
    if (out >= outputs_.size()) {
        panic("%s: route names invalid output port %u",
              params_.name.c_str(), out);
    }
    Output &o = outputs_[out];
    if (o.link == nullptr) {
        // Same lazy-materialization hook point as VoqSwitch: before
        // any buffer state is touched.
        fireUnattachedPortHook(out);
        if (o.link == nullptr) {
            panic("%s: output port %u has no link", params_.name.c_str(),
                  out);
        }
    }

    const uint32_t buf_bytes = eth::frameBufferBytes(p->l3Bytes());
    if (!buffer_->tryAdmit(out, buf_bytes)) {
        ++o.drops;
        ++stats_.dropped_pkts;
        stats_.dropped_bytes += buf_bytes;
        return;
    }
    stats_.max_buffer_used =
        std::max(stats_.max_buffer_used, buffer_->used());

    Queued q;
    q.eligible = sim_.now() + params_.port_latency;
    q.buf_bytes = buf_bytes;
    q.pkt = std::move(p);
    o.fifo.push_back(std::move(q));
    kickOutput(out);
}

void
OutputQueueSwitch::kickOutput(uint32_t out_port)
{
    Output &o = outputs_[out_port];
    if (o.fifo.empty() || o.link->busy()) {
        return;
    }
    Queued &head = o.fifo.front();
    const SimTime now = sim_.now();
    if (head.eligible > now) {
        sim_.cancel(o.pending_kick);
        o.pending_kick = sim_.scheduleAt(head.eligible, [this, out_port] {
            kickOutput(out_port);
        });
        return;
    }

    Queued item = std::move(o.fifo.front());
    o.fifo.pop_front();
    ++stats_.forwarded_pkts;
    stats_.forwarded_bytes += item.pkt->l3Bytes();

    const uint32_t buf_bytes = item.buf_bytes;
    const SimTime tx_done = o.link->transmit(std::move(item.pkt));
    sim_.scheduleAt(tx_done, [this, out_port, buf_bytes] {
        buffer_->release(out_port, buf_bytes);
    });
}

} // namespace switchm
} // namespace diablo
