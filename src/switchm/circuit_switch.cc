#include "switchm/circuit_switch.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace switchm {

CircuitSwitch::CircuitSwitch(Simulator &sim, const SwitchParams &params)
    : sim_(sim), params_(params), ingress_(params.num_ports),
      out_links_(params.num_ports, nullptr),
      reserved_(params.num_ports, 0.0), drops_(params.num_ports, 0)
{
    for (uint32_t i = 0; i < params.num_ports; ++i) {
        ingress_[i].sw = this;
        ingress_[i].port = i;
    }
}

net::PacketSink &
CircuitSwitch::inPort(uint32_t i)
{
    if (i >= ingress_.size()) {
        panic("%s: inPort %u out of range", params_.name.c_str(), i);
    }
    return ingress_[i];
}

void
CircuitSwitch::attachOutLink(uint32_t i, net::Link &link)
{
    if (i >= out_links_.size()) {
        panic("%s: attachOutLink %u out of range", params_.name.c_str(), i);
    }
    out_links_[i] = &link;
    link.setTxDoneCallback([this, i] {
        for (uint32_t c = 0; c < circuits_.size(); ++c) {
            if (circuits_[c].active && circuits_[c].out_port == i) {
                drainCircuit(c);
            }
        }
    });
}

uint64_t
CircuitSwitch::dropsAt(uint32_t port) const
{
    return drops_[port];
}

CircuitId
CircuitSwitch::setupCircuit(uint32_t in_port, uint32_t out_port,
                            double share)
{
    if (in_port >= params_.num_ports || out_port >= params_.num_ports) {
        fatal("%s: setupCircuit with invalid port", params_.name.c_str());
    }
    if (share <= 0 || share > 1.0) {
        fatal("%s: circuit share %.3f out of (0,1]", params_.name.c_str(),
              share);
    }
    if (reserved_[out_port] + share > 1.0 + 1e-9) {
        return CircuitId{}; // admission control: no capacity left
    }
    reserved_[out_port] += share;

    Circuit c;
    c.in_port = in_port;
    c.out_port = out_port;
    c.share = share;
    c.usable_at = sim_.now() + setup_delay_;
    c.active = true;
    circuits_.push_back(std::move(c));
    return CircuitId{static_cast<uint32_t>(circuits_.size() - 1)};
}

void
CircuitSwitch::teardownCircuit(CircuitId id)
{
    if (!id.valid() || id.index >= circuits_.size() ||
        !circuits_[id.index].active) {
        panic("%s: teardown of invalid circuit", params_.name.c_str());
    }
    Circuit &c = circuits_[id.index];
    c.active = false;
    reserved_[c.out_port] -= c.share;
    c.fifo.clear();
}

double
CircuitSwitch::reservedShare(uint32_t out_port) const
{
    return reserved_[out_port];
}

std::optional<uint32_t>
CircuitSwitch::findCircuit(uint32_t in_port, uint32_t out_port) const
{
    for (uint32_t c = 0; c < circuits_.size(); ++c) {
        if (circuits_[c].active && circuits_[c].in_port == in_port &&
            circuits_[c].out_port == out_port &&
            circuits_[c].usable_at <= sim_.now()) {
            return c;
        }
    }
    return std::nullopt;
}

void
CircuitSwitch::handleIngress(uint32_t in_port, net::PacketPtr p)
{
    if (p->route.exhausted()) {
        panic("%s: packet %s arrived with exhausted route",
              params_.name.c_str(), p->str().c_str());
    }
    const uint32_t out = p->route.hop();
    p->route.advance();
    ++p->hop_count;
    if (out >= out_links_.size() || out_links_[out] == nullptr) {
        panic("%s: route names invalid output port %u",
              params_.name.c_str(), out);
    }

    auto circuit = findCircuit(in_port, out);
    if (!circuit) {
        // Connection-oriented fabric: traffic without an established
        // circuit is rejected at the ingress line card.
        ++no_circuit_drops_;
        ++drops_[out];
        ++stats_.dropped_pkts;
        stats_.dropped_bytes += p->l3Bytes();
        return;
    }
    Circuit &c = circuits_[*circuit];
    c.fifo.push_back(std::move(p));
    if (!c.draining) {
        // Forwarding latency before the first packet may depart.
        c.draining = true;
        const uint32_t idx = *circuit;
        sim_.schedule(params_.port_latency, [this, idx] {
            circuits_[idx].draining = false;
            drainCircuit(idx);
        });
    }
}

void
CircuitSwitch::drainCircuit(uint32_t index)
{
    Circuit &c = circuits_[index];
    if (!c.active || c.fifo.empty() || c.draining) {
        return;
    }
    net::Link *link = out_links_[c.out_port];
    if (link->busy()) {
        return; // tx-done callback retries
    }

    net::PacketPtr p = std::move(c.fifo.front());
    c.fifo.pop_front();
    ++stats_.forwarded_pkts;
    stats_.forwarded_bytes += p->l3Bytes();

    // Pace this circuit at its reserved rate: the gap between successive
    // departures is the serialization time at (share * line rate).
    const SimTime paced = link->bandwidth().transferTime(p->wireBytes())
                              .scaled(1.0 / c.share);
    link->transmit(std::move(p));

    c.draining = true;
    sim_.schedule(paced, [this, index] {
        circuits_[index].draining = false;
        drainCircuit(index);
    });
}

} // namespace switchm
} // namespace diablo
