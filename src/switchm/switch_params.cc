#include "switchm/switch_params.hh"

#include "core/log.hh"

namespace diablo {
namespace switchm {

const char *
bufferPolicyName(BufferPolicy p)
{
    switch (p) {
      case BufferPolicy::Partitioned:   return "partitioned";
      case BufferPolicy::Shared:        return "shared";
      case BufferPolicy::SharedDynamic: return "shared_dynamic";
    }
    return "?";
}

BufferPolicy
bufferPolicyFromString(const std::string &s)
{
    if (s == "partitioned") {
        return BufferPolicy::Partitioned;
    }
    if (s == "shared") {
        return BufferPolicy::Shared;
    }
    if (s == "shared_dynamic") {
        return BufferPolicy::SharedDynamic;
    }
    fatal("unknown buffer policy '%s'", s.c_str());
}

SwitchParams
SwitchParams::fromConfig(const Config &cfg, const std::string &prefix,
                         const SwitchParams &defaults)
{
    SwitchParams p = defaults;
    p.name = cfg.getString(prefix + "name", p.name);
    p.num_ports = static_cast<uint32_t>(
        cfg.getUint(prefix + "num_ports", p.num_ports));
    p.port_bw = Bandwidth::bps(
        cfg.getDouble(prefix + "port_gbps", p.port_bw.asGbps()) * 1e9);
    p.port_latency = SimTime::nanoseconds(
        cfg.getDouble(prefix + "port_latency_ns",
                      p.port_latency.asNanos()));
    p.cut_through = cfg.getBool(prefix + "cut_through", p.cut_through);
    p.buffer_policy = bufferPolicyFromString(
        cfg.getString(prefix + "buffer_policy",
                      bufferPolicyName(p.buffer_policy)));
    p.buffer_per_port_bytes =
        cfg.getUint(prefix + "buffer_per_port_bytes",
                    p.buffer_per_port_bytes);
    p.buffer_total_bytes =
        cfg.getUint(prefix + "buffer_total_bytes", p.buffer_total_bytes);
    p.dynamic_alpha =
        cfg.getDouble(prefix + "dynamic_alpha", p.dynamic_alpha);
    if (p.num_ports == 0) {
        fatal("switch '%s': num_ports must be > 0", p.name.c_str());
    }
    return p;
}

} // namespace switchm
} // namespace diablo
