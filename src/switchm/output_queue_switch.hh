#ifndef DIABLO_SWITCHM_OUTPUT_QUEUE_SWITCH_HH_
#define DIABLO_SWITCHM_OUTPUT_QUEUE_SWITCH_HH_

/**
 * @file
 * Simple store-and-forward output-queued drop-tail switch.
 *
 * This is the "ns2-like" baseline the paper compares DIABLO against in
 * Figure 6(a): one FIFO per output in arrival order, no virtual output
 * queues, full frame received before forwarding.  Kept deliberately
 * minimal so ablations isolate the effect of the VOQ architecture.
 */

#include <memory>
#include <vector>

#include "core/ring_buffer.hh"
#include "core/simulator.hh"
#include "switchm/buffer_manager.hh"
#include "switchm/switch.hh"

namespace diablo {
namespace switchm {

/** Store-and-forward drop-tail switch with per-output FIFOs. */
class OutputQueueSwitch : public Switch {
  public:
    OutputQueueSwitch(Simulator &sim, const SwitchParams &params);

    net::PacketSink &inPort(uint32_t i) override;
    void attachOutLink(uint32_t i, net::Link &link) override;

    const SwitchParams &params() const override { return params_; }
    const SwitchStats &stats() const override { return stats_; }
    uint64_t dropsAt(uint32_t port) const override;

  private:
    struct Ingress : net::PacketSink {
        OutputQueueSwitch *sw = nullptr;
        uint32_t port = 0;

        void
        receive(net::PacketPtr p) override
        {
            sw->handleIngress(std::move(p));
        }

        // Always store-and-forward: never request early delivery.
    };

    struct Queued {
        net::PacketPtr pkt;
        SimTime eligible;
        uint32_t buf_bytes;
    };

    struct Output {
        net::Link *link = nullptr;
        RingBuffer<Queued> fifo;
        EventId pending_kick;
        uint64_t drops = 0;
    };

    void handleIngress(net::PacketPtr p);
    void kickOutput(uint32_t out_port);

    Simulator &sim_;
    SwitchParams params_;
    std::unique_ptr<BufferManager> buffer_;
    std::vector<Ingress> ingress_;
    std::vector<Output> outputs_;
    SwitchStats stats_;
};

} // namespace switchm
} // namespace diablo

#endif // DIABLO_SWITCHM_OUTPUT_QUEUE_SWITCH_HH_
