#ifndef DIABLO_SWITCHM_VOQ_SWITCH_HH_
#define DIABLO_SWITCHM_VOQ_SWITCH_HH_

/**
 * @file
 * The paper's unified abstract switch model: a virtual-output-queue
 * switch with a simple round-robin scheduler (§3.3), used for every
 * level of the WSC network hierarchy with per-level latency, bandwidth
 * and buffer parameters.
 *
 * Per-(output, input) virtual queues prevent head-of-line blocking; each
 * output port independently round-robins across the inputs that have a
 * packet queued for it.  Packet memory is an *input-side* resource: a
 * packet is charged against the buffer partition of the port it arrived
 * on (VOQs live at the inputs), so one congested sender cannot consume
 * another input's buffering — unlike the output-queued baseline, where
 * all ingress traffic to a hot output competes for that output's FIFO.
 * Cut-through forwarding is supported: the packet is handed to the
 * switch at header arrival and may begin egress transmission
 * immediately, constrained so its egress transmission never finishes
 * before its ingress bits have arrived.
 */

#include <memory>
#include <vector>

#include "core/ring_buffer.hh"
#include "core/simulator.hh"
#include "switchm/buffer_manager.hh"
#include "switchm/switch.hh"

namespace diablo {
namespace switchm {

/** Virtual-output-queue switch with round-robin egress scheduling. */
class VoqSwitch : public Switch {
  public:
    VoqSwitch(Simulator &sim, const SwitchParams &params);

    net::PacketSink &inPort(uint32_t i) override;
    void attachOutLink(uint32_t i, net::Link &link) override;

    const SwitchParams &params() const override { return params_; }
    const SwitchStats &stats() const override { return stats_; }
    uint64_t dropsAt(uint32_t port) const override;

    /** Current buffer occupancy (bytes) across the switch. */
    uint64_t bufferUsed() const { return buffer_->used(); }

  private:
    struct Ingress : net::PacketSink {
        VoqSwitch *sw = nullptr;
        uint32_t port = 0;

        void
        receive(net::PacketPtr p) override
        {
            sw->handleIngress(port, std::move(p));
        }

        bool
        wantsEarlyDelivery() const override
        {
            return sw->params_.cut_through;
        }
    };

    struct Queued {
        net::PacketPtr pkt;
        SimTime eligible;     ///< earliest egress transmit start
        uint32_t buf_bytes;   ///< buffer accounting charge
        uint32_t in_port;     ///< input whose partition holds the bytes
    };

    struct Output {
        net::Link *link = nullptr;
        /** One virtual queue per input port (grow-only rings: a busy
         *  VOQ cycling at steady state never touches the allocator). */
        std::vector<RingBuffer<Queued>> voq;
        uint32_t rr = 0;
        uint32_t queued_pkts = 0;
        EventId pending_kick;
        uint64_t drops = 0;
    };

    void handleIngress(uint32_t in_port, net::PacketPtr p);
    void kickOutput(uint32_t out_port);

    Simulator &sim_;
    SwitchParams params_;
    std::unique_ptr<BufferManager> buffer_;
    std::vector<Ingress> ingress_;
    std::vector<Output> outputs_;
    SwitchStats stats_;
};

} // namespace switchm
} // namespace diablo

#endif // DIABLO_SWITCHM_VOQ_SWITCH_HH_
