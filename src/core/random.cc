#include "core/random.hh"

#include <algorithm>
#include <cmath>

#include "core/log.hh"

namespace diablo {

namespace {

/** SplitMix64: used to expand seeds and hash labels. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
hashBytes(const char *data, size_t n)
{
    // FNV-1a, then one splitmix round for avalanche.
    uint64_t h = 0xCBF29CE484222325ULL;
    for (size_t i = 0; i < n; ++i) {
        h ^= static_cast<uint8_t>(data[i]);
        h *= 0x100000001B3ULL;
    }
    return splitmix64(h);
}

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed) : seed_(seed)
{
    uint64_t sm = seed;
    for (auto &s : s_) {
        s = splitmix64(sm);
    }
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng
Rng::fork(std::string_view label) const
{
    return Rng(seed_ ^ hashBytes(label.data(), label.size()));
}

Rng
Rng::fork(uint64_t id) const
{
    uint64_t sm = id + 0xA24BAED4963EE407ULL;
    return Rng(seed_ ^ splitmix64(sm));
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t lo, uint64_t hi)
{
    if (lo > hi) {
        panic("Rng::uniformInt: lo > hi");
    }
    const uint64_t range = hi - lo + 1;
    if (range == 0) {
        return next(); // full 64-bit range
    }
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + v % range;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    // -mean * ln(1 - U); 1-U avoids ln(0).
    return -mean * std::log(1.0 - uniform());
}

double
Rng::normal(double mean, double stddev)
{
    // Box-Muller without caching the second variate, so each call
    // consumes a fixed number of generator outputs (determinism under
    // interleaving).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::pareto(double xm, double alpha)
{
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double
Rng::generalizedPareto(double location, double scale, double shape)
{
    double u = 1.0 - uniform();
    if (shape == 0.0) {
        return location - scale * std::log(u);
    }
    return location + scale * (std::pow(u, -shape) - 1.0) / shape;
}

size_t
Rng::weightedChoice(const std::vector<double> &weights)
{
    double total = 0;
    for (double w : weights) {
        total += w;
    }
    if (total <= 0) {
        panic("Rng::weightedChoice: non-positive total weight");
    }
    double r = uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc) {
            return i;
        }
    }
    return weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double skew)
{
    if (n == 0) {
        fatal("ZipfSampler: empty domain");
    }
    cdf_.resize(n);
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
        cdf_[i] = acc;
    }
    for (auto &v : cdf_) {
        v /= acc;
    }
}

size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) {
        return cdf_.size() - 1;
    }
    return static_cast<size_t>(it - cdf_.begin());
}

} // namespace diablo
