#ifndef DIABLO_CORE_CPU_TOPOLOGY_HH_
#define DIABLO_CORE_CPU_TOPOLOGY_HH_

/**
 * @file
 * CPU cache topology detection and thread pinning.
 *
 * The parallel FAME engine wants to know two things about the host:
 * how many CPUs it may actually run on (so it can stop spinning when
 * oversubscribed), and which CPUs share a last-level cache (so fused
 * partition groups that exchange channel traffic can be placed on LLC
 * siblings and their quantum-boundary message drain stays on-package).
 *
 * Detection reads /sys/devices/system/cpu.  Hosts without sysfs (or
 * non-Linux builds) fall back to a deterministic flat topology derived
 * from std::thread::hardware_concurrency(): N CPUs, one LLC group.
 * detectFrom() takes the sysfs root as a parameter so tests can point
 * it at a fixture directory describing any machine shape.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace diablo {

struct CpuTopology {
    /** Online CPU ids, ascending. */
    std::vector<int> cpus;

    /**
     * Last-level-cache group per entry of cpus (parallel array).
     * Group ids are dense, assigned in order of first appearance, so
     * two topologies describing the same machine compare equal.
     */
    std::vector<int> llc_of;

    /**
     * NUMA node group per entry of cpus (parallel array, dense ids in
     * first-appearance order like llc_of).  Detected from the sysfs
     * node directory (node<N>/cpulist); a host without one — or the
     * flat fallback — reports a single node.  An LLC group never spans
     * nodes on real hardware, so node distance is the coarser tier of
     * the worker placement score.
     */
    std::vector<int> numa_of;

    /** True when the shape came from sysfs, false for the fallback. */
    bool from_sysfs = false;

    size_t cpuCount() const { return cpus.size(); }

    /** Number of distinct LLC groups (>= 1 unless no CPUs). */
    size_t llcGroupCount() const;

    /** LLC group of a cpu id, or -1 if the id is not in cpus. */
    int llcGroupOf(int cpu) const;

    /** Number of distinct NUMA nodes (>= 1 unless no CPUs). */
    size_t numaNodeCount() const;

    /** NUMA node group of a cpu id, or -1 if the id is not in cpus. */
    int numaNodeOf(int cpu) const;

    /**
     * Detect the host topology: sysfs when available, else the flat
     * fallback.  The result is cached after the first call.
     */
    static const CpuTopology &host();

    /**
     * Parse a topology from a sysfs-style tree rooted at `cpu_dir`
     * (the directory containing cpu0/, cpu1/, ...).  Returns the flat
     * fallback with `fallback_cpus` CPUs when the tree is unreadable.
     * NUMA shape comes from `node_dir` (the directory containing
     * node0/cpulist, node1/cpulist, ...; /sys/devices/system/node on a
     * real host); the two-argument overload — and any unreadable node
     * tree — yields a single node.
     */
    static CpuTopology detectFrom(const std::string &cpu_dir,
                                  unsigned fallback_cpus);
    static CpuTopology detectFrom(const std::string &cpu_dir,
                                  unsigned fallback_cpus,
                                  const std::string &node_dir);

    /** Flat fallback: CPUs 0..n-1, all in one LLC group. */
    static CpuTopology flat(unsigned n);
};

/**
 * Parse a sysfs cpu list ("0-3,8,10-11") into ascending cpu ids.
 * Malformed input yields an empty vector.
 */
std::vector<int> parseCpuList(const std::string &text);

/**
 * Pin the calling thread to one CPU.  Returns false (and leaves the
 * affinity unchanged) when the kernel refuses or pinning is
 * unsupported on this platform.
 */
bool pinCurrentThreadToCpu(int cpu);

/**
 * Opaque saved affinity mask of the calling thread, for restoring the
 * caller's mask after a run borrows it as worker 0.  An empty save
 * (capture failed) makes restore a no-op.
 */
struct SavedAffinity {
    std::vector<uint8_t> mask;
    bool valid = false;
};

SavedAffinity saveCurrentThreadAffinity();
void restoreCurrentThreadAffinity(const SavedAffinity &saved);

} // namespace diablo

#endif // DIABLO_CORE_CPU_TOPOLOGY_HH_
