#ifndef DIABLO_CORE_UNITS_HH_
#define DIABLO_CORE_UNITS_HH_

/**
 * @file
 * Bandwidth and data-size helpers used throughout the network models.
 */

#include <cstdint>
#include <string>

#include "core/time.hh"

namespace diablo {

/**
 * A link or device bandwidth in bits per second.
 *
 * The key operation is computing the serialization delay of a given number
 * of bytes, which every link and switch-port model uses.
 */
class Bandwidth {
  public:
    constexpr Bandwidth() : bps_(0) {}

    static constexpr Bandwidth bps(double v) { return Bandwidth(v); }
    static constexpr Bandwidth kbps(double v) { return Bandwidth(v * 1e3); }
    static constexpr Bandwidth mbps(double v) { return Bandwidth(v * 1e6); }
    static constexpr Bandwidth gbps(double v) { return Bandwidth(v * 1e9); }

    constexpr double bitsPerSec() const { return bps_; }
    constexpr double bytesPerSec() const { return bps_ / 8.0; }
    constexpr double asGbps() const { return bps_ / 1e9; }
    constexpr double asMbps() const { return bps_ / 1e6; }

    constexpr bool isZero() const { return bps_ == 0; }

    constexpr auto operator<=>(const Bandwidth&) const = default;
    constexpr Bandwidth operator*(double k) const { return Bandwidth(bps_ * k); }
    constexpr Bandwidth operator/(double k) const { return Bandwidth(bps_ / k); }

    /**
     * Time to serialize @p bytes onto a link at this bandwidth.
     * Computed in double and rounded to the nearest picosecond, which is
     * exact for all realistic (bytes, rate) combinations.
     */
    constexpr SimTime
    transferTime(uint64_t bytes) const
    {
        return SimTime::seconds(static_cast<double>(bytes) * 8.0 / bps_);
    }

    std::string str() const;

  private:
    explicit constexpr Bandwidth(double v) : bps_(v) {}

    double bps_;
};

/** Ethernet physical-layer constants (IEEE 802.3). */
namespace eth {

/** Destination + source MAC + EtherType. */
inline constexpr uint32_t kHeaderBytes = 14;
/** Frame check sequence. */
inline constexpr uint32_t kFcsBytes = 4;
/** Preamble + start-of-frame delimiter. */
inline constexpr uint32_t kPreambleBytes = 8;
/** Minimum inter-frame gap, in byte times. */
inline constexpr uint32_t kIfgBytes = 12;
/** Minimum payload so a frame reaches the 64-byte minimum. */
inline constexpr uint32_t kMinPayloadBytes = 46;
/** Standard (non-jumbo) MTU. */
inline constexpr uint32_t kMtuBytes = 1500;

/**
 * Total wire occupancy of a frame carrying @p l3_bytes of layer-3 payload,
 * including preamble, header, FCS, inter-frame gap and minimum-size padding.
 */
constexpr uint32_t
wireBytes(uint32_t l3_bytes)
{
    uint32_t payload = l3_bytes < kMinPayloadBytes ? kMinPayloadBytes
                                                   : l3_bytes;
    return payload + kHeaderBytes + kFcsBytes + kPreambleBytes + kIfgBytes;
}

/**
 * Bytes a frame occupies in a switch packet buffer: header + payload +
 * FCS (no preamble or inter-frame gap, which exist only on the wire).
 */
constexpr uint32_t
frameBufferBytes(uint32_t l3_bytes)
{
    uint32_t payload = l3_bytes < kMinPayloadBytes ? kMinPayloadBytes
                                                   : l3_bytes;
    return payload + kHeaderBytes + kFcsBytes;
}

/** Bytes of a frame a cut-through switch must see before forwarding. */
inline constexpr uint32_t kCutThroughHeaderBytes = 64;

} // namespace eth

namespace ip {

inline constexpr uint32_t kIpv4HeaderBytes = 20;
inline constexpr uint32_t kTcpHeaderBytes = 20;
inline constexpr uint32_t kUdpHeaderBytes = 8;

} // namespace ip

} // namespace diablo

#endif // DIABLO_CORE_UNITS_HH_
