#include "core/log.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace diablo {
namespace log {

namespace {

Level g_level = Level::Warn;

const char *
levelName(Level lvl)
{
    switch (lvl) {
      case Level::Trace: return "TRACE";
      case Level::Debug: return "DEBUG";
      case Level::Info:  return "INFO";
      case Level::Warn:  return "WARN";
      case Level::Error: return "ERROR";
      case Level::Off:   return "OFF";
    }
    return "?";
}

void
vlogf(Level lvl, const char *fmt, va_list ap)
{
    if (lvl < g_level) {
        return;
    }
    std::fprintf(stderr, "[%s] ", levelName(lvl));
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void setLevel(Level lvl) { g_level = lvl; }
Level level() { return g_level; }

void
logf(Level lvl, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogf(lvl, fmt, ap);
    va_end(ap);
}

#define DIABLO_LOG_FN(name, lvl)                                            \
    void                                                                    \
    name(const char *fmt, ...)                                              \
    {                                                                       \
        va_list ap;                                                         \
        va_start(ap, fmt);                                                  \
        vlogf(lvl, fmt, ap);                                                \
        va_end(ap);                                                         \
    }

DIABLO_LOG_FN(trace, Level::Trace)
DIABLO_LOG_FN(debug, Level::Debug)
DIABLO_LOG_FN(inform, Level::Info)
DIABLO_LOG_FN(warn, Level::Warn)
DIABLO_LOG_FN(error, Level::Error)

#undef DIABLO_LOG_FN

} // namespace log

void
panic(const char *fmt, ...)
{
    std::fprintf(stderr, "panic: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::exit(1);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

} // namespace diablo
