#include "core/stats.hh"

#include <algorithm>
#include <cmath>

#include "core/log.hh"

namespace diablo {

void
RunningStats::record(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
SampleSet::record(double x)
{
    samples_.push_back(x);
    sorted_valid_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    double s = 0;
    for (double x : samples_) {
        s += x;
    }
    return s / static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

void
SampleSet::ensureSorted() const
{
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

double
SampleSet::percentile(double p) const
{
    ensureSorted();
    if (sorted_.empty()) {
        return 0.0;
    }
    if (p <= 0) {
        return sorted_.front();
    }
    if (p >= 100) {
        return sorted_.back();
    }
    double idx = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    double frac = idx - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size()) {
        return sorted_.back();
    }
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<SampleSet::CdfPoint>
SampleSet::cdf() const
{
    ensureSorted();
    std::vector<CdfPoint> out;
    out.reserve(sorted_.size());
    const double n = static_cast<double>(sorted_.size());
    for (size_t i = 0; i < sorted_.size(); ++i) {
        // Collapse runs of equal values into one point.
        if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) {
            continue;
        }
        out.push_back({sorted_[i], static_cast<double>(i + 1) / n});
    }
    return out;
}

std::vector<SampleSet::CdfPoint>
SampleSet::tailCdf(double p_lo) const
{
    auto full = cdf();
    std::vector<CdfPoint> out;
    const double cut = p_lo / 100.0;
    for (const auto &pt : full) {
        if (pt.cum >= cut) {
            out.push_back(pt);
        }
    }
    return out;
}

std::vector<SampleSet::PmfBin>
SampleSet::logPmf(int bins_per_decade) const
{
    ensureSorted();
    std::vector<PmfBin> out;
    if (sorted_.empty()) {
        return out;
    }
    double lo = std::max(sorted_.front(), 1e-12);
    double hi = std::max(sorted_.back(), lo * 1.0000001);
    int first = static_cast<int>(
        std::floor(std::log10(lo) * bins_per_decade));
    int last = static_cast<int>(
        std::ceil(std::log10(hi) * bins_per_decade));
    int nbins = last - first + 1;
    std::vector<uint64_t> counts(static_cast<size_t>(nbins), 0);
    for (double x : sorted_) {
        double v = std::max(x, 1e-12);
        int b = static_cast<int>(
            std::floor(std::log10(v) * bins_per_decade)) - first;
        b = std::clamp(b, 0, nbins - 1);
        counts[static_cast<size_t>(b)]++;
    }
    const double n = static_cast<double>(sorted_.size());
    for (int b = 0; b < nbins; ++b) {
        double e_lo = static_cast<double>(first + b) / bins_per_decade;
        double e_hi = static_cast<double>(first + b + 1) / bins_per_decade;
        out.push_back({std::pow(10.0, e_lo), std::pow(10.0, e_hi),
                       static_cast<double>(counts[static_cast<size_t>(b)]) /
                           n});
    }
    return out;
}

void
SampleSet::merge(const SampleSet &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_valid_ = false;
}

LogHistogram::LogHistogram(double lo, double hi, int bins_per_decade)
    : lo_(lo)
{
    if (lo <= 0 || hi <= lo || bins_per_decade <= 0) {
        fatal("LogHistogram: invalid bin specification");
    }
    log_lo_ = std::log10(lo);
    double decades = std::log10(hi) - log_lo_;
    size_t nbins =
        static_cast<size_t>(std::ceil(decades * bins_per_decade)) + 1;
    inv_bin_width_ = bins_per_decade;
    bins_.assign(nbins, 0);
}

void
LogHistogram::record(double x)
{
    ++count_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    size_t b = static_cast<size_t>((std::log10(x) - log_lo_) *
                                   inv_bin_width_);
    if (b >= bins_.size()) {
        ++overflow_;
        return;
    }
    ++bins_[b];
}

double
LogHistogram::percentile(double p) const
{
    if (count_ == 0) {
        return 0.0;
    }
    uint64_t target = static_cast<uint64_t>(
        p / 100.0 * static_cast<double>(count_));
    uint64_t acc = underflow_;
    if (acc >= target) {
        return lo_;
    }
    for (size_t b = 0; b < bins_.size(); ++b) {
        acc += bins_[b];
        if (acc >= target) {
            double e = log_lo_ + (static_cast<double>(b) + 0.5) /
                                     inv_bin_width_;
            return std::pow(10.0, e);
        }
    }
    // Only overflow samples remain: report the upper edge.
    double e = log_lo_ + static_cast<double>(bins_.size()) / inv_bin_width_;
    return std::pow(10.0, e);
}

} // namespace diablo
