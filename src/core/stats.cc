#include "core/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "core/log.hh"

namespace diablo {

void
RunningStats::record(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
SampleSet::record(double x)
{
    samples_.push_back(x);
    sorted_valid_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    double s = 0;
    for (double x : samples_) {
        s += x;
    }
    return s / static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

void
SampleSet::ensureSorted() const
{
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

double
SampleSet::percentile(double p) const
{
    ensureSorted();
    if (sorted_.empty()) {
        return 0.0;
    }
    if (p <= 0) {
        return sorted_.front();
    }
    if (p >= 100) {
        return sorted_.back();
    }
    double idx = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    double frac = idx - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size()) {
        return sorted_.back();
    }
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<SampleSet::CdfPoint>
SampleSet::cdf() const
{
    ensureSorted();
    std::vector<CdfPoint> out;
    out.reserve(sorted_.size());
    const double n = static_cast<double>(sorted_.size());
    for (size_t i = 0; i < sorted_.size(); ++i) {
        // Collapse runs of equal values into one point.
        if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) {
            continue;
        }
        out.push_back({sorted_[i], static_cast<double>(i + 1) / n});
    }
    return out;
}

std::vector<SampleSet::CdfPoint>
SampleSet::tailCdf(double p_lo) const
{
    auto full = cdf();
    std::vector<CdfPoint> out;
    const double cut = p_lo / 100.0;
    for (const auto &pt : full) {
        if (pt.cum >= cut) {
            out.push_back(pt);
        }
    }
    return out;
}

std::vector<SampleSet::PmfBin>
SampleSet::logPmf(int bins_per_decade) const
{
    ensureSorted();
    std::vector<PmfBin> out;
    if (sorted_.empty()) {
        return out;
    }
    double lo = std::max(sorted_.front(), 1e-12);
    double hi = std::max(sorted_.back(), lo * 1.0000001);
    int first = static_cast<int>(
        std::floor(std::log10(lo) * bins_per_decade));
    int last = static_cast<int>(
        std::ceil(std::log10(hi) * bins_per_decade));
    int nbins = last - first + 1;
    std::vector<uint64_t> counts(static_cast<size_t>(nbins), 0);
    for (double x : sorted_) {
        double v = std::max(x, 1e-12);
        int b = static_cast<int>(
            std::floor(std::log10(v) * bins_per_decade)) - first;
        b = std::clamp(b, 0, nbins - 1);
        counts[static_cast<size_t>(b)]++;
    }
    const double n = static_cast<double>(sorted_.size());
    for (int b = 0; b < nbins; ++b) {
        double e_lo = static_cast<double>(first + b) / bins_per_decade;
        double e_hi = static_cast<double>(first + b + 1) / bins_per_decade;
        out.push_back({std::pow(10.0, e_lo), std::pow(10.0, e_hi),
                       static_cast<double>(counts[static_cast<size_t>(b)]) /
                           n});
    }
    return out;
}

void
SampleSet::merge(const SampleSet &other)
{
    // Note which caches are valid before mutating: self-merge aliases
    // other.samples_ / other.sorted_ with our own storage.
    const bool keep_sorted =
        sorted_valid_ && other.sorted_valid_ && this != &other;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    if (keep_sorted) {
        const size_t mid = sorted_.size();
        sorted_.insert(sorted_.end(), other.sorted_.begin(),
                       other.sorted_.end());
        std::inplace_merge(sorted_.begin(),
                           sorted_.begin() + static_cast<ptrdiff_t>(mid),
                           sorted_.end());
        return; // cache stays valid: no re-sort on the next query
    }
    sorted_valid_ = false;
}

// --- QuantileSketch -----------------------------------------------------

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    // Byte-wise FNV-1a over the value's 8 bytes.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
doubleBits(double d)
{
    uint64_t u;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

} // namespace

void
QuantileSketch::validate() const
{
    if (!(cfg_.unit > 0.0) || cfg_.sub_bits == 0 || cfg_.sub_bits > 16 ||
        cfg_.octaves == 0 || cfg_.octaves > 40) {
        fatal("QuantileSketch: invalid config (unit=%g sub_bits=%u "
              "octaves=%u)",
              cfg_.unit, cfg_.sub_bits, cfg_.octaves);
    }
}

void
QuantileSketch::ensureBins()
{
    if (bins_.empty()) {
        bins_.assign(numBins(), 0);
    }
}

size_t
QuantileSketch::binIndex(uint64_t u) const
{
    const uint64_t sub = 1ull << cfg_.sub_bits;
    if (u < 2 * sub) {
        return static_cast<size_t>(u); // first bucket: exact units
    }
    const int msb = 63 - __builtin_clzll(u);
    const int b = msb - static_cast<int>(cfg_.sub_bits); // >= 1
    const uint64_t s = u >> b;                           // [sub, 2*sub)
    return (static_cast<size_t>(b) + 1) * sub + (s - sub);
}

double
QuantileSketch::binLo(size_t idx) const
{
    const uint64_t sub = 1ull << cfg_.sub_bits;
    if (idx < 2 * sub) {
        return cfg_.unit * static_cast<double>(idx);
    }
    const size_t b = idx / sub - 1;
    const uint64_t s = sub + idx % sub;
    return cfg_.unit * static_cast<double>(s << b);
}

double
QuantileSketch::binHi(size_t idx) const
{
    const uint64_t sub = 1ull << cfg_.sub_bits;
    if (idx < 2 * sub) {
        return cfg_.unit * static_cast<double>(idx + 1);
    }
    const size_t b = idx / sub - 1;
    const uint64_t s = sub + idx % sub;
    return cfg_.unit * static_cast<double>((s + 1) << b);
}

void
QuantileSketch::record(double x)
{
    ensureBins();
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    if (x < 0.0) {
        ++underflow_;
        return;
    }
    // Truncating quantization is exact in IEEE arithmetic for the
    // representable range — no libm, so bucket choice is bit-stable.
    const uint64_t u = static_cast<uint64_t>(x / cfg_.unit);
    const size_t idx = binIndex(u);
    if (idx >= bins_.size()) {
        ++overflow_;
        return;
    }
    ++bins_[idx];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (!(cfg_ == other.cfg_)) {
        fatal("QuantileSketch::merge: config mismatch (unit %g vs %g, "
              "sub_bits %u vs %u, octaves %u vs %u) — merged sketches "
              "must share one bin layout",
              cfg_.unit, other.cfg_.unit, cfg_.sub_bits,
              other.cfg_.sub_bits, cfg_.octaves, other.cfg_.octaves);
    }
    if (other.count_ == 0) {
        return;
    }
    ensureBins();
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    if (!other.bins_.empty()) {
        for (size_t i = 0; i < bins_.size(); ++i) {
            bins_[i] += other.bins_[i];
        }
    }
}

double
QuantileSketch::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
QuantileSketch::percentile(double p) const
{
    if (count_ == 0) {
        return 0.0;
    }
    const double clamped = std::clamp(p, 0.0, 100.0);
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(count_)));
    rank = std::clamp<uint64_t>(rank, 1, count_);

    // The extreme ranks are tracked exactly, so return them exactly
    // rather than through bucket interpolation: p=0 is the observed
    // minimum, p=100 the observed maximum.
    if (rank == 1) {
        return min_;
    }
    if (rank == count_) {
        return max_;
    }

    uint64_t acc = underflow_;
    if (rank <= acc) {
        return min_; // negative samples: exact observed minimum
    }
    for (size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0) {
            continue;
        }
        if (rank <= acc + bins_[i]) {
            const double frac =
                static_cast<double>(rank - acc) /
                static_cast<double>(bins_[i]);
            const double v =
                binLo(i) + (binHi(i) - binLo(i)) * frac;
            return std::clamp(v, min_, max_);
        }
        acc += bins_[i];
    }
    return max_; // overflow mass: exact observed maximum
}

uint64_t
QuantileSketch::fingerprint() const
{
    uint64_t h = kFnvOffset;
    h = fnvMix(h, doubleBits(cfg_.unit));
    h = fnvMix(h, cfg_.sub_bits);
    h = fnvMix(h, cfg_.octaves);
    h = fnvMix(h, count_);
    h = fnvMix(h, underflow_);
    h = fnvMix(h, overflow_);
    h = fnvMix(h, doubleBits(min_));
    h = fnvMix(h, doubleBits(max_));
    h = fnvMix(h, doubleBits(sum_));
    for (size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] != 0) {
            h = fnvMix(h, i);
            h = fnvMix(h, bins_[i]);
        }
    }
    return h;
}

uint64_t
QuantileSketch::chainFingerprint(uint64_t chain, uint64_t fp)
{
    // splitmix64 of (chain ^ rotated fp): mixing the rotated operand
    // breaks commutativity, the avalanche breaks associativity.
    uint64_t z = chain ^ (fp << 1 | fp >> 63) ^ 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// --- LatencyStat --------------------------------------------------------

void
LatencyStat::enableSketch(const QuantileSketch::Config &cfg)
{
    if (SampleSet::count() != 0 || sketch_.count() != 0) {
        fatal("LatencyStat: enableSketch after samples were recorded");
    }
    mode_ = Mode::Sketch;
    sketch_ = QuantileSketch(cfg);
}

void
LatencyStat::record(double x)
{
    if (mode_ == Mode::Sketch) {
        sketch_.record(x);
    } else {
        SampleSet::record(x);
    }
}

void
LatencyStat::merge(const LatencyStat &other)
{
    if (mode_ != other.mode_) {
        fatal("LatencyStat::merge: raw/sketch mode mismatch");
    }
    if (mode_ == Mode::Sketch) {
        sketch_.merge(other.sketch_);
    } else {
        SampleSet::merge(other);
    }
}

size_t
LatencyStat::count() const
{
    return mode_ == Mode::Sketch
               ? static_cast<size_t>(sketch_.count())
               : SampleSet::count();
}

double
LatencyStat::mean() const
{
    return mode_ == Mode::Sketch ? sketch_.mean() : SampleSet::mean();
}

double
LatencyStat::min() const
{
    return mode_ == Mode::Sketch ? sketch_.min() : SampleSet::min();
}

double
LatencyStat::max() const
{
    return mode_ == Mode::Sketch ? sketch_.max() : SampleSet::max();
}

double
LatencyStat::percentile(double p) const
{
    return mode_ == Mode::Sketch ? sketch_.percentile(p)
                                 : SampleSet::percentile(p);
}

const SampleSet &
LatencyStat::samples() const
{
    if (mode_ == Mode::Sketch) {
        fatal("LatencyStat: raw samples were not retained in sketch "
              "mode (cdf/pmf/raw need the default raw mode)");
    }
    return *this;
}

const QuantileSketch &
LatencyStat::sketch() const
{
    if (mode_ != Mode::Sketch) {
        fatal("LatencyStat: sketch() on a raw-mode stat");
    }
    return sketch_;
}

uint64_t
LatencyStat::fingerprint() const
{
    if (mode_ == Mode::Sketch) {
        return sketch_.fingerprint();
    }
    uint64_t h = kFnvOffset;
    h = fnvMix(h, SampleSet::count());
    for (double x : raw()) {
        h = fnvMix(h, doubleBits(x));
    }
    return h;
}

LogHistogram::LogHistogram(double lo, double hi, int bins_per_decade)
    : lo_(lo), hi_(hi)
{
    if (lo <= 0 || hi <= lo || bins_per_decade <= 0) {
        fatal("LogHistogram: invalid bin specification");
    }
    log_lo_ = std::log10(lo);
    double decades = std::log10(hi) - log_lo_;
    size_t nbins =
        static_cast<size_t>(std::ceil(decades * bins_per_decade)) + 1;
    inv_bin_width_ = bins_per_decade;
    bins_.assign(nbins, 0);
}

void
LogHistogram::record(double x)
{
    ++count_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    size_t b = static_cast<size_t>((std::log10(x) - log_lo_) *
                                   inv_bin_width_);
    if (b >= bins_.size()) {
        ++overflow_;
        return;
    }
    ++bins_[b];
}

double
LogHistogram::upperEdge() const
{
    // The configured upper bound, not the top of the (slightly wider)
    // bin grid: overflow percentiles saturate at the range the caller
    // declared, which is what the header's contract promises.
    return hi_;
}

double
LogHistogram::percentile(double p) const
{
    // Contract (see header): rank = clamp(ceil(p/100 * count), 1,
    // count) over all samples including underflow_/overflow_; ranks in
    // the underflow mass clamp to lo_, ranks in the overflow mass to
    // the upper bin edge.  The old computation truncated the rank
    // (p=0 always hit lo_ even with no underflow) and used a >= test
    // that returned one rank early.
    if (count_ == 0) {
        return 0.0;
    }
    const double clamped = std::clamp(p, 0.0, 100.0);
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(count_)));
    rank = std::clamp<uint64_t>(rank, 1, count_);

    uint64_t acc = underflow_;
    if (rank <= acc) {
        return lo_; // lower bin-edge clamp
    }
    for (size_t b = 0; b < bins_.size(); ++b) {
        acc += bins_[b];
        if (rank <= acc) {
            double e = log_lo_ + (static_cast<double>(b) + 0.5) /
                                     inv_bin_width_;
            return std::pow(10.0, e);
        }
    }
    return upperEdge(); // overflow mass: upper bin-edge clamp
}

} // namespace diablo
