#ifndef DIABLO_CORE_EVENT_HH_
#define DIABLO_CORE_EVENT_HH_

/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events at equal timestamps are ordered by (priority, insertion sequence),
 * so a run is a pure function of the configuration and master seed — the
 * software analog of DIABLO's "repeatable deterministic experiments".
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/time.hh"

namespace diablo {

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/** Handle for cancelling a scheduled event. */
struct EventId {
    uint64_t seq = 0;

    bool valid() const { return seq != 0; }
    void invalidate() { seq = 0; }
};

/** Priorities for same-timestamp ordering; lower runs first. */
namespace event_prio {
inline constexpr int8_t kTimer = -10;    ///< hardware/kernel timers
inline constexpr int8_t kDefault = 0;
inline constexpr int8_t kWakeup = 10;    ///< coroutine resumptions
} // namespace event_prio

/**
 * Min-heap of timestamped callbacks with O(1) lazy cancellation.
 */
class EventQueue {
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p fn at absolute time @p when. */
    EventId schedule(SimTime when, EventFn fn,
                     int8_t prio = event_prio::kDefault);

    /**
     * Cancel a previously scheduled event.  Safe to call for events that
     * have already fired (no effect).
     */
    void cancel(EventId id);

    bool empty() const { return pending_.empty(); }
    size_t size() const { return pending_.size(); }

    /** Timestamp of the next live event; SimTime::max() when empty. */
    SimTime nextTime();

    /**
     * Pop and return the next live event.  Caller must check !empty().
     * The callback is invoked by the caller (the Simulator), not by the
     * queue, so partitioned engines can interpose.
     */
    std::pair<SimTime, EventFn> popNext();

    /** Total events ever scheduled (for engine throughput reporting). */
    uint64_t scheduledCount() const { return next_seq_ - 1; }

  private:
    struct Item {
        SimTime when;
        int8_t prio;
        uint64_t seq;
    };

    struct ItemOrder {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            if (a.prio != b.prio) {
                return a.prio > b.prio;
            }
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries from the top of the heap. */
    void prune();

    std::priority_queue<Item, std::vector<Item>, ItemOrder> heap_;
    std::unordered_map<uint64_t, EventFn> pending_;
    uint64_t next_seq_ = 1;
};

} // namespace diablo

#endif // DIABLO_CORE_EVENT_HH_
