#ifndef DIABLO_CORE_EVENT_HH_
#define DIABLO_CORE_EVENT_HH_

/**
 * @file
 * Deterministic discrete-event queue — the engine hot path.
 *
 * Events at equal timestamps are ordered by (priority, insertion sequence),
 * so a run is a pure function of the configuration and master seed — the
 * software analog of DIABLO's "repeatable deterministic experiments".
 *
 * Performance is the point: DIABLO exists because the per-event cost of a
 * software simulator bounds the achievable event rate (§3.2).  The queue is
 * therefore allocation-free on the schedule/execute path:
 *
 *  - Callbacks are stored in an InlineFunction, a small-buffer-optimized
 *    type-erased callable.  Captures up to kInlineSize bytes live inline
 *    in the queue's slot pool; only oversized captures fall back to the
 *    heap (and such call sites should be fixed, not tolerated).
 *  - Timestamps/ordering keys live in a 4-ary implicit heap of 24-byte
 *    POD entries (memcpy-relocated, cache-friendlier than a binary heap
 *    because sift-down touches 4 children per cache line-ish level).
 *  - Cancellation is O(1) and tombstone-based: an EventId names a slot in
 *    a freelist-managed pool plus the slot's generation at schedule time.
 *    cancel() destroys the callback and bumps the generation; the heap
 *    entry remains and is recognized as a tombstone (generation mismatch)
 *    when it reaches the top.  No side-table, no hashing.
 *  - The slot pool is chunked out of a queue-owned SlabArena: slots never
 *    relocate (growth allocates a fresh chunk instead of moving every
 *    live callback the way vector growth did), and the queue's hot state
 *    lives in memory owned by its partition — under the fused parallel
 *    engine each partition belongs to exactly one worker for a run, so
 *    no allocator or slot cacheline is shared across workers.
 */

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/arena.hh"
#include "core/time.hh"

namespace diablo {

/**
 * Small-buffer-optimized, move-only, type-erased `void()` callable.
 *
 * Callables whose size is <= kInlineSize, whose alignment fits
 * max_align_t, and whose move constructor is noexcept are stored inline —
 * no heap allocation.  Trivially-copyable callables (the common case: a
 * lambda capturing a few pointers/ints) relocate by memcpy with no
 * destructor bookkeeping at all.  Anything else falls back to a single
 * heap allocation, preserving correctness for rare fat captures.
 */
class InlineFunction {
  public:
    /**
     * Inline capture budget; covers `this` + several words of state.
     * Sized so the whole object is 56 bytes and an EventQueue slot
     * (object + generation/freelist word) is exactly one cache line.
     */
    static constexpr size_t kInlineSize = 40;

    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F> &>>>
    InlineFunction(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        emplace(std::forward<F>(f));
    }

    /**
     * Construct a callable in place, destroying any current one.  The
     * EventQueue emplace path uses this to build the callback directly
     * in its pool slot — the lambda's capture is copied exactly once,
     * with no intermediate InlineFunction moves.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F> &>>>
    void
    emplace(F &&f)
    {
        reset();
        using Fn = std::remove_cvref_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &kInlineOps<Fn>;
        } else {
            // Heap fallback: the buffer holds just an owning pointer, so
            // relocation stays a trivial memcpy; only destruction pays.
            Fn *p = new Fn(std::forward<F>(f));
            std::memcpy(buf_, &p, sizeof(p));
            ops_ = &kHeapOps<Fn>;
        }
    }

    /**
     * Dedicated coroutine-wakeup path: stores the raw handle address
     * with a static resumer thunk.  Trivially relocatable and trivially
     * destructible — cheaper than even an inline `[h]{ h.resume(); }`
     * because no per-lambda code is instantiated at the call site.
     * (The EventQueue wakeup fast path bypasses even this and keeps the
     * handle in the heap entry; this exists for the popNext() wrapper.)
     */
    static InlineFunction
    fromCoroutine(std::coroutine_handle<> h) noexcept
    {
        InlineFunction f;
        void *addr = h.address();
        std::memcpy(f.buf_, &addr, sizeof(addr));
        f.ops_ = &kCoroOps;
        return f;
    }

    InlineFunction(InlineFunction &&o) noexcept : ops_(o.ops_)
    {
        if (ops_) {
            moveBuffer(o);
        }
        o.ops_ = nullptr;
    }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_) {
                moveBuffer(o);
            }
            o.ops_ = nullptr;
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /**
     * True when a callable of type @p F is stored inline (no heap
     * allocation).  Hot paths that must stay allocation-free — e.g.
     * the cross-partition ChannelLink delivery closure posted once per
     * message — static_assert this so a capture growing past the SBO
     * budget is a compile error, not a silent per-message malloc.
     */
    template <typename F>
    static constexpr bool
    inlineable()
    {
        return fitsInline<std::remove_cvref_t<F>>();
    }

    /** Invoke; const like std::function::operator() (shallow const). */
    void
    operator()() const
    {
        ops_->invoke(const_cast<unsigned char *>(buf_));
    }

    /** Destroy the held callable (if any) and become empty. */
    void
    reset() noexcept
    {
        if (ops_ && ops_->destroy) {
            ops_->destroy(buf_);
        }
        ops_ = nullptr;
    }

  private:
    /**
     * Per-erased-type operation table; one static instance per callable
     * type, so a move copies a single pointer.  Null relocate means the
     * buffer is memcpy-relocatable; null destroy means trivially
     * destructible (the common case for small lambdas).
     */
    struct Ops {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static void
    invokeInline(void *b)
    {
        (*std::launder(reinterpret_cast<Fn *>(b)))();
    }

    template <typename Fn>
    static void
    relocateInline(void *dst, void *src)
    {
        Fn *s = std::launder(reinterpret_cast<Fn *>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
    }

    template <typename Fn>
    static void
    destroyInline(void *b)
    {
        std::launder(reinterpret_cast<Fn *>(b))->~Fn();
    }

    template <typename Fn>
    static void
    invokeHeap(void *b)
    {
        Fn *p;
        std::memcpy(&p, b, sizeof(p));
        (*p)();
    }

    template <typename Fn>
    static void
    destroyHeap(void *b)
    {
        Fn *p;
        std::memcpy(&p, b, sizeof(p));
        delete p;
    }

    static void
    resumeCoro(void *b)
    {
        void *addr;
        std::memcpy(&addr, b, sizeof(addr));
        std::coroutine_handle<>::from_address(addr).resume();
    }

    template <typename Fn>
    static constexpr bool kTrivialBuf =
        std::is_trivially_copyable_v<Fn> &&
        std::is_trivially_destructible_v<Fn>;

    template <typename Fn>
    static constexpr Ops kInlineOps{
        &invokeInline<Fn>,
        kTrivialBuf<Fn> ? nullptr : &relocateInline<Fn>,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroyInline<Fn>,
    };

    template <typename Fn>
    static constexpr Ops kHeapOps{&invokeHeap<Fn>, nullptr,
                                  &destroyHeap<Fn>};

    static constexpr Ops kCoroOps{&resumeCoro, nullptr, nullptr};

    void
    moveBuffer(InlineFunction &o) noexcept
    {
        if (ops_->relocate) {
            ops_->relocate(buf_, o.buf_);
        } else {
            std::memcpy(buf_, o.buf_, kInlineSize);
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    const Ops *ops_ = nullptr;
};

/** Callback invoked when an event fires. */
using EventFn = InlineFunction;

/**
 * Handle for cancelling a scheduled event.
 *
 * Names a slot in the queue's callback pool plus the slot's generation at
 * schedule time; once the event fires or is cancelled the generation no
 * longer matches and the id is inert (safe to cancel again, safe to keep).
 */
struct EventId {
    static constexpr uint32_t kInvalidSlot = 0xffffffffu;

    uint32_t slot = kInvalidSlot;
    uint32_t gen = 0;

    bool valid() const { return slot != kInvalidSlot; }
    void invalidate() { slot = kInvalidSlot; }
};

/** Priorities for same-timestamp ordering; lower runs first. */
namespace event_prio {
inline constexpr int8_t kTimer = -10;    ///< hardware/kernel timers
inline constexpr int8_t kDefault = 0;
inline constexpr int8_t kWakeup = 10;    ///< coroutine resumptions
} // namespace event_prio

/**
 * Min-heap of timestamped callbacks with O(1) lazy cancellation.
 *
 * schedule/popNext are allocation-free after warmup: heap entries and
 * callback slots are recycled through freelists and geometric vector
 * growth.  See the file comment for the layout.
 */
class EventQueue {
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Slots are placement-constructed in arena chunks; the arena
        // reclaims the bytes but cannot run the EventFn destructors.
        for (uint32_t i = 0; i < slot_count_; ++i) {
            slotRef(i).~Slot();
        }
    }

    /** Schedule @p fn at absolute time @p when. */
    EventId
    schedule(SimTime when, EventFn fn, int8_t prio = event_prio::kDefault)
    {
        const uint32_t slot = allocSlot();
        Slot &s = slotRef(slot);
        s.fn = std::move(fn);
        const uint64_t seq = next_seq_++;
        ++live_;
        heapPush(HeapEntry{when, packOrder(prio, seq),
                           callbackPayload(slot, s.gen)});
        return EventId{slot, s.gen};
    }

    /**
     * Emplace fast path: construct the callable directly in its pool
     * slot from @p f.  Saves two InlineFunction relocations versus
     * schedule() — the capture is copied once, straight into the slot —
     * which is measurable when the capture is a few words and the event
     * rate is the bottleneck (the common case; see microbench_engine).
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, EventFn>>>
    EventId
    scheduleEmplace(SimTime when, int8_t prio, F &&f)
    {
        const uint32_t slot = allocSlot();
        Slot &s = slotRef(slot);
        s.fn.emplace(std::forward<F>(f));
        const uint64_t seq = next_seq_++;
        ++live_;
        heapPush(HeapEntry{when, packOrder(prio, seq),
                           callbackPayload(slot, s.gen)});
        return EventId{slot, s.gen};
    }

    /**
     * Coroutine-wakeup fast path: schedule resumption of @p h at @p when.
     * The raw handle is stored directly in the heap entry — no callback
     * object, no slot allocation, no moves.  Wakeups are not cancellable
     * (nothing in the engine cancels a pending resumption), so the
     * returned id is always invalid.
     */
    EventId
    scheduleWakeup(SimTime when, std::coroutine_handle<> h,
                   int8_t prio = event_prio::kWakeup)
    {
        const uint64_t seq = next_seq_++;
        ++live_;
        heapPush(HeapEntry{when, packOrder(prio, seq),
                           wakeupPayload(h.address())});
        return EventId{};
    }

    /**
     * Cancel a previously scheduled event.  Safe to call for events that
     * have already fired or been cancelled (no effect).
     */
    void
    cancel(EventId id)
    {
        if (!id.valid() || id.slot >= slot_count_) {
            return;
        }
        Slot &s = slotRef(id.slot);
        if (s.gen != id.gen) {
            return; // already fired or cancelled
        }
        s.fn.reset();
        ++s.gen; // heap entry becomes a tombstone
        freeSlot(id.slot);
        --live_;
    }

    /** True when no *live* (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }
    size_t size() const { return live_; }

    /** Timestamp of the next live event; SimTime::max() when empty. */
    SimTime
    nextTime()
    {
        prune();
        if (heap_.empty()) {
            return SimTime::max();
        }
        return heap_[0].when;
    }

    /**
     * Pop the next live event.  Caller must check !empty().  Exactly one
     * of the two out-params is set: @p fn (callback event, moved out
     * once) or @p coro (wakeup, resumed directly by the caller).  The
     * event is executed by the caller (the Simulator), not the queue, so
     * partitioned engines can interpose.
     */
    SimTime
    popNextInto(EventFn &fn, std::coroutine_handle<> &coro)
    {
        prune();
        if (heap_.empty()) {
            popEmptyPanic();
        }
        const HeapEntry top = heap_[0];
        heapPopTop();
        --live_;
        if (isWakeup(top.payload)) {
            coro = std::coroutine_handle<>::from_address(
                wakeupAddr(top.payload));
            return top.when;
        }
        const uint32_t slot = payloadSlot(top.payload);
        Slot &s = slotRef(slot);
        fn = std::move(s.fn);
        ++s.gen; // late cancel() of this id is now a no-op
        freeSlot(slot);
        return top.when;
    }

    /** Pop and return the next live event.  Caller must check !empty(). */
    std::pair<SimTime, EventFn>
    popNext()
    {
        EventFn fn;
        std::coroutine_handle<> coro{};
        SimTime when = popNextInto(fn, coro);
        if (coro) {
            fn = EventFn::fromCoroutine(coro);
        }
        return {when, std::move(fn)};
    }

    /**
     * Discard every pending event without running it.  Callback slots
     * are destroyed (releasing resources their captures own — queued
     * packet deliveries above all) and their generations bumped, so any
     * outstanding EventId is inert.  Wakeup entries are dropped with the
     * heap; their coroutine frames are owned elsewhere (Simulator
     * tasks_, kernel processes_) and reclaimed by their owners.
     * Teardown-only: not meant for mid-run use.
     */
    void
    clear()
    {
        heap_.clear();
        live_ = 0;
        free_head_ = EventId::kInvalidSlot;
        for (uint32_t i = 0; i < slot_count_; ++i) {
            Slot &s = slotRef(i);
            s.fn.reset();
            ++s.gen;
            s.next_free = free_head_;
            free_head_ = i;
        }
    }

    /** Total events ever scheduled (for engine throughput reporting). */
    uint64_t scheduledCount() const { return next_seq_; }

  private:
    /**
     * POD heap entry (24 bytes): relocated by plain assignment during
     * sifts, so the heap never touches the (heavier) callback slots.
     * `order` packs (priority biased to unsigned, insertion sequence)
     * into one compare.
     *
     * `payload` is either a coroutine frame address (wakeup fast path)
     * or a callback pool reference.  Coroutine frames are at least
     * 8-byte aligned, so bit 0 is free to tag the variants:
     *   bit 0 == 1:  payload - 1 is the coroutine frame address
     *   bit 0 == 0:  payload = gen << 32 | slot << 1   (slot < 2^31)
     */
    struct HeapEntry {
        SimTime when;
        uint64_t order;
        uint64_t payload;
    };

    static uint64_t
    callbackPayload(uint32_t slot, uint32_t gen)
    {
        return (static_cast<uint64_t>(gen) << 32) |
               (static_cast<uint64_t>(slot) << 1);
    }

    static uint64_t
    wakeupPayload(void *coro)
    {
        return reinterpret_cast<uintptr_t>(coro) | 1u;
    }

    static bool isWakeup(uint64_t payload) { return payload & 1; }

    static void *
    wakeupAddr(uint64_t payload)
    {
        return reinterpret_cast<void *>(
            static_cast<uintptr_t>(payload & ~uint64_t{1}));
    }

    static uint32_t
    payloadSlot(uint64_t payload)
    {
        return static_cast<uint32_t>((payload >> 1) & 0x7fffffffu);
    }

    static uint32_t
    payloadGen(uint64_t payload)
    {
        return static_cast<uint32_t>(payload >> 32);
    }

    struct Slot {
        EventFn fn;
        uint32_t gen = 0;
        uint32_t next_free = EventId::kInvalidSlot;
    };
    static_assert(sizeof(Slot) == 64,
                  "a callback slot is exactly one cache line");

    /**
     * Slot storage is chunked: fixed-size runs of slots placed in the
     * queue-owned arena, addressed chunk-then-offset by shift/mask.
     * Chunks never move, so a Slot's address — and the EventFn inside
     * it — is stable for the queue's lifetime; growing the pool costs
     * one arena allocation instead of relocating every live callback.
     */
    static constexpr uint32_t kSlotChunkShift = 8; // 256 slots, 16 KiB
    static constexpr uint32_t kSlotsPerChunk = 1u << kSlotChunkShift;
    static constexpr uint32_t kSlotChunkMask = kSlotsPerChunk - 1;

    Slot &
    slotRef(uint32_t slot)
    {
        return chunks_[slot >> kSlotChunkShift][slot & kSlotChunkMask];
    }

    const Slot &
    slotRef(uint32_t slot) const
    {
        return chunks_[slot >> kSlotChunkShift][slot & kSlotChunkMask];
    }

    static uint64_t
    packOrder(int8_t prio, uint64_t seq)
    {
        // 8 bits of biased priority above 56 bits of sequence: a single
        // uint64 compare reproduces (prio, seq) lexicographic order.
        return (static_cast<uint64_t>(static_cast<uint8_t>(prio) ^ 0x80u)
                << 56) |
               (seq & ((uint64_t{1} << 56) - 1));
    }

    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when) {
            return a.when < b.when;
        }
        return a.order < b.order;
    }

    bool
    isTombstone(const HeapEntry &e) const
    {
        // Wakeup entries are never cancelled.
        return !isWakeup(e.payload) &&
               slotRef(payloadSlot(e.payload)).gen != payloadGen(e.payload);
    }

    uint32_t
    allocSlot()
    {
        if (free_head_ != EventId::kInvalidSlot) {
            const uint32_t s = free_head_;
            free_head_ = slotRef(s).next_free;
            return s;
        }
        return growSlots();
    }

    void
    freeSlot(uint32_t slot)
    {
        slotRef(slot).next_free = free_head_;
        free_head_ = slot;
    }

    /**
     * Hole-based sift-up: one assignment per level instead of a swap.
     */
    void
    heapPush(HeapEntry e)
    {
        size_t i = heap_.size();
        const size_t leaf = i;
        heap_.push_back(e);
        while (i > 0) {
            const size_t parent = (i - 1) >> 2;
            if (!before(e, heap_[parent])) {
                break;
            }
            heap_[i] = heap_[parent];
            i = parent;
        }
        if (i != leaf) {
            heap_[i] = e;
        }
    }

    void
    heapPopTop()
    {
        const HeapEntry last = heap_.back();
        heap_.pop_back();
        const size_t n = heap_.size();
        if (n == 0) {
            return;
        }
        size_t i = 0;
        for (;;) {
            const size_t first = 4 * i + 1;
            if (first >= n) {
                break;
            }
            size_t best = first;
            const size_t end = first + 4 < n ? first + 4 : n;
            for (size_t c = first + 1; c < end; ++c) {
                if (before(heap_[c], heap_[best])) {
                    best = c;
                }
            }
            if (!before(heap_[best], last)) {
                break;
            }
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }

    /** Drop cancelled entries from the top of the heap. */
    void
    prune()
    {
        while (!heap_.empty() && isTombstone(heap_[0])) {
            heapPopTop();
        }
    }

    /** Cold paths kept out of line. */
    uint32_t growSlots();
    [[noreturn]] void popEmptyPanic();

    std::vector<HeapEntry> heap_;    ///< 4-ary implicit min-heap
    std::vector<Slot *> chunks_;     ///< arena-backed slot chunks
    uint32_t slot_count_ = 0;        ///< constructed slots
    uint32_t free_head_ = EventId::kInvalidSlot;
    uint64_t next_seq_ = 0;
    size_t live_ = 0;
    SlabArena slot_arena_; ///< owns the chunk storage (stable addresses)
};

} // namespace diablo

#endif // DIABLO_CORE_EVENT_HH_
