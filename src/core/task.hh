#ifndef DIABLO_CORE_TASK_HH_
#define DIABLO_CORE_TASK_HH_

/**
 * @file
 * C++20 coroutine task type for simulated processes.
 *
 * Application and protocol logic in diablo-sim is written as coroutines
 * awaiting simulated time, CPU service, and I/O.  Task<T> is a lazy,
 * owning, move-only coroutine handle:
 *
 *  - awaiting a Task starts the child and transfers control symmetrically
 *    (no host-stack growth for long continuation chains);
 *  - when a child finishes, its parent is resumed via symmetric transfer;
 *  - root tasks are owned by the Simulator (see Simulator::spawn), which
 *    destroys completed frames lazily and all frames at teardown.
 *
 * Exceptions thrown inside a task propagate to the awaiting parent; an
 * exception escaping a root task aborts the simulation (panic), since
 * simulated programs must handle their own errors.
 */

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "core/log.hh"

namespace diablo {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    struct FinalAwaiter {
        bool await_ready() noexcept { return false; }

        template <typename P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> h) noexcept
        {
            auto &p = h.promise();
            if (p.continuation) {
                return p.continuation;
            }
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        exception = std::current_exception();
    }
};

template <typename T>
struct Promise : PromiseBase {
    std::optional<T> value;

    Task<T> get_return_object();

    template <typename U>
    void
    return_value(U &&v)
    {
        value.emplace(std::forward<U>(v));
    }
};

template <>
struct Promise<void> : PromiseBase {
    Task<void> get_return_object();

    void return_void() {}
};

} // namespace detail

/**
 * Lazy coroutine task producing a value of type T (or void).
 */
template <typename T = void>
class [[nodiscard]] Task {
  public:
    using promise_type = detail::Promise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : h_(h) {}

    Task(Task &&o) noexcept : h_(std::exchange(o.h_, nullptr)) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            h_ = std::exchange(o.h_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(h_); }
    bool done() const { return !h_ || h_.done(); }

    /**
     * Start or resume a root task from plain (non-coroutine) code; the
     * task runs until its next suspension point.
     */
    void
    resume()
    {
        if (h_ && !h_.done()) {
            h_.resume();
        }
    }

    /** Rethrow a root task's stored exception as a panic, if any. */
    void
    checkRootException() const
    {
        if (h_ && h_.done() && h_.promise().exception) {
            try {
                std::rethrow_exception(h_.promise().exception);
            } catch (const std::exception &e) {
                panic("unhandled exception escaped root task: %s", e.what());
            } catch (...) {
                panic("unhandled non-standard exception escaped root task");
            }
        }
    }

    // --- awaitable interface (co_await child_task) ---

    bool await_ready() const noexcept { return !h_ || h_.done(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        h_.promise().continuation = parent;
        return h_; // start the child
    }

    T
    await_resume()
    {
        auto &p = h_.promise();
        if (p.exception) {
            std::rethrow_exception(p.exception);
        }
        if constexpr (!std::is_void_v<T>) {
            return std::move(*p.value);
        }
    }

  private:
    void
    destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = nullptr;
        }
    }

    Handle h_;
};

namespace detail {

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace diablo

#endif // DIABLO_CORE_TASK_HH_
