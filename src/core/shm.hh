#ifndef DIABLO_CORE_SHM_HH_
#define DIABLO_CORE_SHM_HH_

/**
 * @file
 * Shared-memory primitives for the cross-process engine.
 *
 * DIABLO couples FPGAs over dedicated serial transceivers (§3.2); the
 * multi-process software engine couples simulator processes over a
 * mmap'd file instead.  This header holds the process-agnostic pieces:
 *
 *  - ShmSegment: a file-backed MAP_SHARED mapping, created by the
 *    launcher and attached by each engine process.
 *  - sharedFutexWait/Wake: park/wake on a 32-bit word that lives in
 *    shared memory.  std::atomic::wait cannot be used across processes
 *    (libstdc++ parks on process-private futexes / proxy tables), so
 *    these call futex(2) without FUTEX_PRIVATE_FLAG; non-Linux builds
 *    degrade to a bounded sleep, which only costs latency.
 *  - SpscRecordRing: a cacheline-padded single-producer single-consumer
 *    byte ring carrying length-prefixed records, the building block of
 *    fame::ShmRingTransport.  Producer and consumer may be in different
 *    processes; each side spins briefly and then parks on the ring's
 *    head/tail word.
 *
 * Everything here is position-independent: the ring object is its own
 * shared-memory header (placement-initialized into the segment), and
 * all internal state is offsets, never pointers.
 */

#include <atomic>
#include <cstdint>
#include <string>

namespace diablo {

/**
 * Park the calling thread until the value at @p word changes from
 * @p expected, another process calls sharedFutexWake on it, or
 * @p timeout_ns elapses (<= 0 waits indefinitely).  Spurious returns
 * are allowed; callers re-check their condition in a loop.
 */
void sharedFutexWait(std::atomic<uint32_t> *word, uint32_t expected,
                     int64_t timeout_ns);

/** Wake one (or all) waiters parked on @p word, across processes. */
void sharedFutexWake(std::atomic<uint32_t> *word, bool all);

/**
 * A file-backed shared mapping.  The launcher create()s it sized for
 * the process group's rings, children attach() by path, and the
 * creator unlink()s the file once every child has attached (the
 * mapping survives the unlink; nothing leaks on a crash after that
 * point).  Movable, not copyable; the destructor unmaps.
 */
class ShmSegment {
  public:
    ShmSegment() = default;
    ~ShmSegment();

    ShmSegment(ShmSegment &&o) noexcept;
    ShmSegment &operator=(ShmSegment &&o) noexcept;
    ShmSegment(const ShmSegment &) = delete;
    ShmSegment &operator=(const ShmSegment &) = delete;

    /** Create the backing file (must not exist), size it, map it. */
    static ShmSegment create(const std::string &path, size_t bytes);

    /** Map an existing segment created by another process. */
    static ShmSegment attach(const std::string &path);

    /** Remove the backing file; the mapping stays valid. */
    void unlinkFile();

    bool valid() const { return mem_ != nullptr; }
    void *data() const { return mem_; }
    size_t size() const { return bytes_; }
    const std::string &path() const { return path_; }

  private:
    void *mem_ = nullptr;
    size_t bytes_ = 0;
    std::string path_;
};

/**
 * Lock-free SPSC ring of length-prefixed records over caller-provided
 * memory (shared or heap).  The object itself is the shared header —
 * exactly kHeaderBytes of atomics and padding, with the data area
 * following it in the same allocation — so one side init()s it in
 * place and the other attach()es to the same address range.
 *
 * Positions are free-running uint32 byte counters (capacity is a power
 * of two well below 4 GiB, so wraparound arithmetic is exact), and a
 * record may wrap the data area byte-wise; push/pop copy through the
 * modulo helpers.  Producer and consumer each own one position word
 * and park on the *other* side's word when they must wait, with a
 * parked flag the opposite side checks after publishing (the seq_cst
 * store/load pairing makes missed wakeups impossible).
 */
class SpscRecordRing {
  public:
    /** Header size: head line, tail line, shared flags line. */
    static constexpr size_t kHeaderBytes = 192;

    /** Largest record push/pop will carry (sanity bound, not a tune). */
    static constexpr uint32_t kMaxRecordBytes = 1u << 16;

    /** Bytes of memory a ring with @p capacity data bytes needs. */
    static size_t footprint(uint32_t capacity);

    /**
     * Placement-initialize a ring over @p mem (>= footprint(capacity)
     * bytes, 64-byte aligned).  @p capacity must be a power of two of
     * at least 4 KiB.  Fatal on a bad capacity or alignment.
     */
    static SpscRecordRing *init(void *mem, uint32_t capacity);

    /** View a ring another process already init()ed at @p mem. */
    static SpscRecordRing *attach(void *mem);

    uint32_t capacity() const { return capacity_; }

    /** Bytes currently buffered (records + their length prefixes). */
    uint32_t bytesUsed() const;

    bool empty() const { return bytesUsed() == 0; }

    /**
     * Enqueue one record.  Returns false when the ring lacks space
     * (caller drains its own inbound rings and retries — see
     * fame::PartitionSet::runCoupled for why that never deadlocks).
     * Fatal if the record alone exceeds the ring or kMaxRecordBytes.
     */
    bool tryPush(const void *p, uint32_t n);

    /**
     * Dequeue one record into @p out (>= @p cap bytes); returns its
     * length, or 0 when the ring is empty.  Fatal if the record does
     * not fit @p cap — record sizes are bounded by protocol, so a
     * too-small buffer is a caller bug, not a runtime condition.
     */
    uint32_t tryPop(void *out, uint32_t cap);

    /**
     * Consumer-side park: spin up to @p spin_budget relaxations, then
     * futex-park on the tail word for at most @p timeout_ns.  Returns
     * true when data is available.  Callers loop, re-checking abort
     * and interrupt conditions between calls.
     */
    bool waitForData(uint32_t spin_budget, int64_t timeout_ns);

    /** Producer-side park: wait for @p bytes of space (as tryPush). */
    bool waitForSpace(uint32_t bytes, uint32_t spin_budget,
                      int64_t timeout_ns);

    /**
     * Mark the ring dead (peer crash / abandoned run) and wake both
     * sides.  Sticky; push/pop keep working so a draining peer can
     * still empty the ring.
     */
    void setAborted();
    bool aborted() const
    {
        return aborted_.load(std::memory_order_acquire) != 0;
    }

  private:
    SpscRecordRing() = default;

    uint8_t *dataArea()
    {
        return reinterpret_cast<uint8_t *>(this) + kHeaderBytes;
    }
    const uint8_t *dataArea() const
    {
        return reinterpret_cast<const uint8_t *>(this) + kHeaderBytes;
    }

    void copyIn(uint32_t pos, const void *src, uint32_t n);
    void copyOut(uint32_t pos, void *dst, uint32_t n) const;

    static constexpr uint32_t kMagic = 0x44424C52; // "DBLR"

    // Line 0: consumer-owned position (producer reads it).
    alignas(64) std::atomic<uint32_t> head_{0};
    std::atomic<uint32_t> producer_parked_{0};
    // Line 1: producer-owned position (consumer reads it).
    alignas(64) std::atomic<uint32_t> tail_{0};
    std::atomic<uint32_t> consumer_parked_{0};
    // Line 2: shared, rarely written.
    alignas(64) std::atomic<uint32_t> aborted_{0};
    uint32_t capacity_ = 0;
    uint32_t magic_ = 0;
};

static_assert(sizeof(SpscRecordRing) == SpscRecordRing::kHeaderBytes,
              "ring header must match its advertised shared layout");

} // namespace diablo

#endif // DIABLO_CORE_SHM_HH_
