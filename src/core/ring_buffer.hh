#ifndef DIABLO_CORE_RING_BUFFER_HH_
#define DIABLO_CORE_RING_BUFFER_HH_

/**
 * @file
 * Grow-only circular FIFO for hot-path packet queues.
 *
 * DIABLO's FPGA models queue packets in fixed BRAM rings; `std::deque`
 * is the wrong software analog because libstdc++ allocates and frees a
 * chunk every ~dozen elements as a busy queue cycles across a chunk
 * boundary — a steady-state allocation per handful of packets.  This
 * ring keeps one power-of-two storage array that grows geometrically
 * and never shrinks, so after warm-up push/pop touch no allocator.
 *
 * Capacity semantics are the caller's: a descriptor ring of depth N
 * reserves N slots up front and refuses pushes past its modeled depth
 * itself (checking size() before push_back, as the NIC does); unbounded
 * model queues just let the ring double.
 */

#include <cstddef>
#include <memory>
#include <utility>

namespace diablo {

/** Power-of-two circular FIFO; grows on demand, never shrinks. */
template <typename T>
class RingBuffer {
  public:
    RingBuffer() = default;

    explicit RingBuffer(size_t capacity) { reserve(capacity); }

    RingBuffer(RingBuffer &&) = default;
    RingBuffer &operator=(RingBuffer &&) = default;
    RingBuffer(const RingBuffer &) = delete;
    RingBuffer &operator=(const RingBuffer &) = delete;

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }
    size_t capacity() const { return cap_; }

    /** Ensure room for at least @p n elements without further growth. */
    void
    reserve(size_t n)
    {
        if (n > cap_) {
            grow(n);
        }
    }

    void
    push_back(T v)
    {
        if (size_ == cap_) {
            grow(cap_ == 0 ? kMinCapacity : cap_ * 2);
        }
        buf_[(head_ + size_) & (cap_ - 1)] = std::move(v);
        ++size_;
    }

    /** Requeue at the head (e.g. preempted work resuming first). */
    void
    push_front(T v)
    {
        if (size_ == cap_) {
            grow(cap_ == 0 ? kMinCapacity : cap_ * 2);
        }
        head_ = (head_ + cap_ - 1) & (cap_ - 1);
        buf_[head_] = std::move(v);
        ++size_;
    }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    T &back() { return buf_[(head_ + size_ - 1) & (cap_ - 1)]; }
    const T &back() const { return buf_[(head_ + size_ - 1) & (cap_ - 1)]; }

    /** FIFO access: element @p i positions after the front. */
    T &operator[](size_t i) { return buf_[(head_ + i) & (cap_ - 1)]; }
    const T &
    operator[](size_t i) const
    {
        return buf_[(head_ + i) & (cap_ - 1)];
    }

    void
    pop_front()
    {
        buf_[head_] = T{}; // release owned resources promptly
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

    void
    clear()
    {
        while (size_ != 0) {
            pop_front();
        }
        head_ = 0;
    }

  private:
    static constexpr size_t kMinCapacity = 8;

    static size_t
    roundUpPow2(size_t n)
    {
        size_t c = kMinCapacity;
        while (c < n) {
            c *= 2;
        }
        return c;
    }

    void
    grow(size_t want)
    {
        const size_t new_cap = roundUpPow2(want);
        std::unique_ptr<T[]> fresh(new T[new_cap]);
        for (size_t i = 0; i < size_; ++i) {
            fresh[i] = std::move(buf_[(head_ + i) & (cap_ - 1)]);
        }
        buf_ = std::move(fresh);
        cap_ = new_cap;
        head_ = 0;
    }

    std::unique_ptr<T[]> buf_;
    size_t cap_ = 0;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace diablo

#endif // DIABLO_CORE_RING_BUFFER_HH_
