#include "core/simulator.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {

Simulator::~Simulator() = default;

EventId
Simulator::scheduleAt(SimTime when, EventFn fn, int8_t prio)
{
    if (when < now_) {
        schedulePastPanic(when);
    }
    return queue_.schedule(when, std::move(fn), prio);
}

void
Simulator::schedulePastPanic(SimTime when) const
{
    panic("Simulator::scheduleAt: time %s is in the past (now %s)",
          when.str().c_str(), now_.str().c_str());
}

void
Simulator::spawn(Task<> task)
{
    sweepTasks();
    tasks_.push_back(std::move(task));
    // The vector may reallocate as more tasks are spawned, so capture
    // the index, not a pointer; sweepTasks only trims completed tasks
    // from the back, so indices of live entries never shift.
    const size_t idx = tasks_.size() - 1;
    schedule(SimTime(), [this, idx] {
        tasks_[idx].resume();
        tasks_[idx].checkRootException();
    }, event_prio::kWakeup);
}

void
Simulator::sweepTasks()
{
    // Completed root frames can be reclaimed, but entries whose start
    // event has not fired yet must keep their index; only trim done tasks
    // from the back where indices stay stable.
    while (!tasks_.empty() && tasks_.back().done()) {
        tasks_.pop_back();
    }
}

void
Simulator::run()
{
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        executeNext();
    }
}

void
Simulator::runUntil(SimTime t)
{
    stopped_ = false;
    while (!stopped_) {
        SimTime next = queue_.nextTime();
        if (next > t) {
            break;
        }
        executeNext();
    }
    if (now_ < t) {
        now_ = t;
    }
}

void
Simulator::runBefore(SimTime t)
{
    stopped_ = false;
    while (!stopped_ && queue_.nextTime() < t) {
        executeNext();
    }
}

void
Simulator::timeWentBackwards(SimTime when) const
{
    panic("event time went backwards: %s < %s",
          when.str().c_str(), now_.str().c_str());
}

} // namespace diablo
