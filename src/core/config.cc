#include "core/config.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "core/log.hh"

namespace diablo {

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, const char *value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, int value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

int64_t
Config::getInt(const std::string &key, int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        return def;
    }
    char *end = nullptr;
    errno = 0;
    int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0') {
        fatal("Config: parameter '%s' = '%s' is not an integer",
              key.c_str(), it->second.c_str());
    }
    if (errno == ERANGE) {
        fatal("Config: parameter '%s' = '%s' is out of int64 range",
              key.c_str(), it->second.c_str());
    }
    return v;
}

uint64_t
Config::getUint(const std::string &key, uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        return def;
    }
    // strtoull silently wraps negative input ("-1" -> 2^64-1); reject
    // a leading sign before it gets the chance.
    const char *s = it->second.c_str();
    while (std::isspace(static_cast<unsigned char>(*s))) {
        ++s;
    }
    if (*s == '-') {
        fatal("Config: parameter '%s' = '%s' is negative, expected an "
              "unsigned integer", key.c_str(), it->second.c_str());
    }
    char *end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0') {
        fatal("Config: parameter '%s' = '%s' is not an unsigned integer",
              key.c_str(), it->second.c_str());
    }
    if (errno == ERANGE) {
        fatal("Config: parameter '%s' = '%s' is out of uint64 range",
              key.c_str(), it->second.c_str());
    }
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        return def;
    }
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        fatal("Config: parameter '%s' = '%s' is not a number",
              key.c_str(), it->second.c_str());
    }
    // ERANGE covers both overflow (±HUGE_VAL) and harmless underflow
    // to a denormal; only the former silently corrupts a parameter.
    if (errno == ERANGE && std::fabs(v) == HUGE_VAL) {
        fatal("Config: parameter '%s' = '%s' overflows a double",
              key.c_str(), it->second.c_str());
    }
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        return def;
    }
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on") {
        return true;
    }
    if (v == "false" || v == "0" || v == "no" || v == "off") {
        return false;
    }
    fatal("Config: parameter '%s' = '%s' is not a boolean",
          key.c_str(), v.c_str());
}

bool
Config::parseAssignment(const std::string &token)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
        return false;
    }
    values_[token.substr(0, eq)] = token.substr(eq + 1);
    return true;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values_) {
        values_[k] = v;
    }
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_) {
        out.push_back(k);
    }
    return out;
}

} // namespace diablo
