#ifndef DIABLO_CORE_RANDOM_HH_
#define DIABLO_CORE_RANDOM_HH_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * DIABLO supports "repeatable deterministic experiments"; to keep that
 * property in software we avoid std:: distributions (whose outputs are
 * implementation-defined) and implement both the generator (xoshiro256++)
 * and every distribution ourselves.  Each component derives its own
 * statistically independent stream from a master seed via fork(), so
 * adding a component never perturbs the draws seen by another.
 */

#include <cstdint>
#include <string_view>
#include <vector>

namespace diablo {

/** xoshiro256++ generator with our own distribution implementations. */
class Rng {
  public:
    /**
     * Seed via SplitMix64 expansion of @p seed.  The seed is always
     * explicit: a defaulted seed let two components silently draw the
     * same stream, which destroys the independence fork() guarantees.
     * Derive per-component streams with fork("name") instead.
     */
    explicit Rng(uint64_t seed);

    /** Next raw 64-bit output. */
    uint64_t next();

    /**
     * Derive an independent child stream.  The child's seed mixes this
     * stream's seed with a hash of @p label, so streams are stable under
     * reordering of fork() calls with distinct labels.
     */
    Rng fork(std::string_view label) const;

    /** Derive an independent child stream keyed by an integer id. */
    Rng fork(uint64_t id) const;

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t uniformInt(uint64_t lo, uint64_t hi);

    /** Bernoulli trial with probability @p p of true. */
    bool bernoulli(double p);

    /** Exponential with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double normal(double mean, double stddev);

    /** Log-normal with the given parameters of the underlying normal. */
    double lognormal(double mu, double sigma);

    /**
     * Pareto (type I): xm * U^(-1/alpha).  Heavy-tailed; used for the
     * Facebook key-value size model.
     */
    double pareto(double xm, double alpha);

    /** Generalized Pareto with location/scale/shape (Atikoglu et al.). */
    double generalizedPareto(double location, double scale, double shape);

    /** Pick an index in [0, weights.size()) proportionally to weights. */
    size_t weightedChoice(const std::vector<double> &weights);

    uint64_t seed() const { return seed_; }

  private:
    uint64_t seed_;
    uint64_t s_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Precomputes the CDF once, so sampling is O(log n); used for key
 * popularity in the memcached workload generator.
 */
class ZipfSampler {
  public:
    ZipfSampler(size_t n, double skew);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    size_t sample(Rng &rng) const;

    size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace diablo

#endif // DIABLO_CORE_RANDOM_HH_
