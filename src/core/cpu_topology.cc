#include "core/cpu_topology.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#ifdef __linux__
#include <dirent.h>
#include <sched.h>
#endif

namespace diablo {

namespace {

bool readFileString(const std::string &path, std::string *out) {
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    out->assign(buf, n);
    while (!out->empty() &&
           (out->back() == '\n' || out->back() == '\r' || out->back() == ' '))
        out->pop_back();
    return true;
}

/** ids present as <prefix><N> directories under `dir`, ascending. */
std::vector<int> listNumberedDirs(const std::string &dir,
                                  const char *prefix) {
    std::vector<int> ids;
#ifdef __linux__
    DIR *d = opendir(dir.c_str());
    if (!d)
        return ids;
    const size_t plen = std::strlen(prefix);
    while (struct dirent *e = readdir(d)) {
        const char *name = e->d_name;
        if (std::strncmp(name, prefix, plen) != 0)
            continue;
        const char *p = name + plen;
        if (*p == '\0')
            continue;
        bool digits = true;
        for (const char *q = p; *q; ++q)
            digits = digits && std::isdigit((unsigned char)*q);
        if (digits)
            ids.push_back(std::atoi(p));
    }
    closedir(d);
    std::sort(ids.begin(), ids.end());
#else
    (void)dir;
    (void)prefix;
#endif
    return ids;
}

std::vector<int> listCpuDirs(const std::string &cpu_dir) {
    return listNumberedDirs(cpu_dir, "cpu");
}

/**
 * Canonical key of the cpu's last-level cache: the shared_cpu_list of
 * the highest-level Unified (or Data, if no Unified) cache index.
 * Empty when the cache directory is absent.
 */
std::string llcKeyOf(const std::string &cpu_path) {
    std::string best_key;
    int best_level = -1;
    for (int index = 0; index < 16; ++index) {
        std::string base =
            cpu_path + "/cache/index" + std::to_string(index);
        std::string level_s, type_s, shared_s;
        if (!readFileString(base + "/level", &level_s))
            continue;
        if (!readFileString(base + "/shared_cpu_list", &shared_s))
            continue;
        readFileString(base + "/type", &type_s);
        if (type_s == "Instruction")
            continue;
        int level = std::atoi(level_s.c_str());
        if (level > best_level) {
            best_level = level;
            best_key = shared_s;
        }
    }
    return best_key;
}

unsigned fallbackHardwareCpus() {
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

} // namespace

size_t CpuTopology::llcGroupCount() const {
    int max_group = -1;
    for (int g : llc_of)
        max_group = std::max(max_group, g);
    return (size_t)(max_group + 1);
}

int CpuTopology::llcGroupOf(int cpu) const {
    for (size_t i = 0; i < cpus.size(); ++i)
        if (cpus[i] == cpu)
            return llc_of[i];
    return -1;
}

size_t CpuTopology::numaNodeCount() const {
    if (numa_of.empty())
        return cpus.empty() ? 0 : 1; // omitted numa_of: single node
    int max_node = -1;
    for (int n : numa_of)
        max_node = std::max(max_node, n);
    return (size_t)(max_node + 1);
}

int CpuTopology::numaNodeOf(int cpu) const {
    for (size_t i = 0; i < cpus.size(); ++i)
        if (cpus[i] == cpu)
            // Hand-built topologies (tests, tools) may omit numa_of;
            // absent means single-node.
            return i < numa_of.size() ? numa_of[i] : 0;
    return -1;
}

CpuTopology CpuTopology::flat(unsigned n) {
    CpuTopology t;
    if (n == 0)
        n = 1;
    t.cpus.reserve(n);
    t.llc_of.assign(n, 0);
    t.numa_of.assign(n, 0);
    for (unsigned i = 0; i < n; ++i)
        t.cpus.push_back((int)i);
    t.from_sysfs = false;
    return t;
}

CpuTopology CpuTopology::detectFrom(const std::string &cpu_dir,
                                    unsigned fallback_cpus) {
    return detectFrom(cpu_dir, fallback_cpus, std::string());
}

CpuTopology CpuTopology::detectFrom(const std::string &cpu_dir,
                                    unsigned fallback_cpus,
                                    const std::string &node_dir) {
    std::vector<int> ids = listCpuDirs(cpu_dir);
    if (ids.empty())
        return flat(fallback_cpus);

    // sysfs node<N>/cpulist, read up front: cpu id -> node id.  An
    // unreadable (or absent) node tree leaves the map empty and every
    // cpu lands on one node, matching single-socket hosts.
    std::map<int, int> node_of_cpu;
    if (!node_dir.empty()) {
        for (int node : listNumberedDirs(node_dir, "node")) {
            std::string list;
            if (!readFileString(node_dir + "/node" + std::to_string(node) +
                                    "/cpulist",
                                &list))
                continue;
            for (int cpu : parseCpuList(list))
                node_of_cpu.emplace(cpu, node);
        }
    }

    CpuTopology t;
    t.from_sysfs = true;
    std::map<std::string, int> group_of_key;
    std::map<int, int> numa_group_of_node; // dense, first appearance
    for (int id : ids) {
        std::string cpu_path = cpu_dir + "/cpu" + std::to_string(id);
        // Respect hotplug state; cpu0 typically has no online file.
        std::string online;
        if (readFileString(cpu_path + "/online", &online) && online == "0")
            continue;
        std::string key = llcKeyOf(cpu_path);
        if (key.empty())
            key = "all"; // no cache info: one shared group
        auto [it, fresh] =
            group_of_key.emplace(key, (int)group_of_key.size());
        t.cpus.push_back(id);
        t.llc_of.push_back(it->second);
        (void)fresh;
        auto node_it = node_of_cpu.find(id);
        const int raw_node =
            node_it != node_of_cpu.end() ? node_it->second : 0;
        auto [nit, nfresh] = numa_group_of_node.emplace(
            raw_node, (int)numa_group_of_node.size());
        t.numa_of.push_back(nit->second);
        (void)nfresh;
    }
    if (t.cpus.empty())
        return flat(fallback_cpus);
    return t;
}

const CpuTopology &CpuTopology::host() {
    static const CpuTopology cached =
        detectFrom("/sys/devices/system/cpu", fallbackHardwareCpus(),
                   "/sys/devices/system/node");
    return cached;
}

std::vector<int> parseCpuList(const std::string &text) {
    std::vector<int> out;
    const char *p = text.c_str();
    while (*p) {
        char *end = nullptr;
        long lo = std::strtol(p, &end, 10);
        if (end == p || lo < 0)
            return {};
        long hi = lo;
        p = end;
        if (*p == '-') {
            ++p;
            hi = std::strtol(p, &end, 10);
            if (end == p || hi < lo)
                return {};
            p = end;
        }
        for (long c = lo; c <= hi; ++c)
            out.push_back((int)c);
        if (*p == ',')
            ++p;
        else if (*p != '\0')
            return {};
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool pinCurrentThreadToCpu(int cpu) {
#ifdef __linux__
    if (cpu < 0)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

SavedAffinity saveCurrentThreadAffinity() {
    SavedAffinity s;
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        s.mask.assign((const uint8_t *)&set,
                      (const uint8_t *)&set + sizeof(set));
        s.valid = true;
    }
#endif
    return s;
}

void restoreCurrentThreadAffinity(const SavedAffinity &saved) {
#ifdef __linux__
    if (!saved.valid || saved.mask.size() != sizeof(cpu_set_t))
        return;
    cpu_set_t set;
    std::memcpy(&set, saved.mask.data(), sizeof(set));
    sched_setaffinity(0, sizeof(set), &set);
#else
    (void)saved;
#endif
}

} // namespace diablo
