#ifndef DIABLO_CORE_LOG_HH_
#define DIABLO_CORE_LOG_HH_

/**
 * @file
 * Logging and error-termination helpers.
 *
 * Follows the gem5 discipline:
 *  - panic():  a simulator bug — something that should never happen
 *              regardless of user input.  Calls abort().
 *  - fatal():  a user error (bad configuration, impossible parameter
 *              combination).  Exits with status 1.
 *  - warn()/inform(): non-fatal status messages.
 */

#include <cstdarg>
#include <string>

namespace diablo {
namespace log {

enum class Level { Trace = 0, Debug, Info, Warn, Error, Off };

/** Set the global threshold; messages below it are dropped. */
void setLevel(Level lvl);
Level level();

/** printf-style message emission at the given level. */
void logf(Level lvl, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void trace(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void error(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace log

/**
 * Terminate because of an internal simulator bug.  Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate because the user asked for something impossible (bad
 * configuration or arguments).  Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace diablo

#endif // DIABLO_CORE_LOG_HH_
