#ifndef DIABLO_CORE_ARENA_HH_
#define DIABLO_CORE_ARENA_HH_

/**
 * @file
 * Slab arena for lazily materialized, never-individually-freed model
 * state (per-partition server nodes).
 *
 * A chunked bump allocator: objects are placed contiguously into
 * geometrically growing slabs, addresses are stable for the arena's
 * lifetime (slabs never move or resize), and nothing is freed until the
 * arena dies — matching the cluster's lifetime model, where a server,
 * once materialized, exists until teardown.  The first slab is small
 * (kFirstSlabBytes), so a partition that materializes one node costs a
 * few KB, while a fully active rack converges to large contiguous
 * slabs.  The arena keeps a byte ledger (used/reserved/objects) for the
 * per-partition memory reports the scale benchmarks assert on.
 *
 * Not thread-safe by design: each arena belongs to one simulation
 * partition and is only touched by that partition's events (or by the
 * main thread outside a run), exactly like every other partition-local
 * structure in the engine.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "core/log.hh"

namespace diablo {

/** Chunked bump allocator with stable addresses and a byte ledger. */
class SlabArena {
  public:
    static constexpr size_t kFirstSlabBytes = 4096;
    static constexpr size_t kMaxSlabBytes = 256 * 1024;

    SlabArena() = default;

    SlabArena(SlabArena &&) = default;
    SlabArena &operator=(SlabArena &&) = default;
    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    /** Raw storage for one object; never individually freed. */
    void *
    allocate(size_t bytes, size_t align)
    {
        if (bytes == 0 || (align & (align - 1)) != 0) {
            fatal("SlabArena: bad allocation (%zu bytes, align %zu)",
                  bytes, align);
        }
        if (!slabs_.empty()) {
            if (void *p = tryBump(slabs_.back(), bytes, align)) {
                ++objects_;
                return p;
            }
        }
        size_t want = next_slab_bytes_;
        while (want < bytes + align) {
            want *= 2;
        }
        Slab s;
        s.mem = std::make_unique<unsigned char[]>(want);
        s.cap = want;
        slabs_.push_back(std::move(s));
        reserved_ += want;
        next_slab_bytes_ = std::min(want * 2, kMaxSlabBytes);
        void *p = tryBump(slabs_.back(), bytes, align);
        ++objects_;
        return p;
    }

    /** Construct a T in the arena; caller owns the dtor call. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        void *p = allocate(sizeof(T), alignof(T));
        return new (p) T(std::forward<Args>(args)...);
    }

    uint64_t bytesUsed() const { return used_; }
    uint64_t bytesReserved() const { return reserved_; }
    uint64_t objects() const { return objects_; }

  private:
    struct Slab {
        std::unique_ptr<unsigned char[]> mem;
        size_t cap = 0;
        size_t off = 0;
    };

    void *
    tryBump(Slab &s, size_t bytes, size_t align)
    {
        const uintptr_t base = reinterpret_cast<uintptr_t>(s.mem.get());
        const uintptr_t at = (base + s.off + align - 1) & ~(align - 1);
        const size_t new_off = (at - base) + bytes;
        if (new_off > s.cap) {
            return nullptr;
        }
        used_ += new_off - s.off;
        s.off = new_off;
        return reinterpret_cast<void *>(at);
    }

    std::vector<Slab> slabs_;
    size_t next_slab_bytes_ = kFirstSlabBytes;
    uint64_t used_ = 0;
    uint64_t reserved_ = 0;
    uint64_t objects_ = 0;
};

} // namespace diablo

#endif // DIABLO_CORE_ARENA_HH_
