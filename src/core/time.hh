#ifndef DIABLO_CORE_TIME_HH_
#define DIABLO_CORE_TIME_HH_

/**
 * @file
 * Simulation time type with picosecond resolution.
 *
 * DIABLO simulates network events at nanosecond scale (a 64-byte packet on
 * a 10 Gbps link lasts ~50 ns) and CPU events at sub-nanosecond scale (a
 * 4 GHz fixed-CPI core retires an instruction every 250 ps), so the global
 * clock uses picoseconds in a signed 64-bit integer.  That gives a
 * simulated-time range of ~106 days, far beyond any WSC-array experiment.
 */

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace diablo {

/**
 * A point in (or distance between points in) simulated time.
 *
 * SimTime is a value type wrapping a signed picosecond count.  The same
 * type is used for absolute times and durations; arithmetic is exact
 * integer arithmetic, which keeps the simulator deterministic across
 * hosts and optimization levels.
 */
class SimTime {
  public:
    constexpr SimTime() : ps_(0) {}

    /** Named constructors from integer quantities of each unit. */
    static constexpr SimTime
    fromPs(int64_t v)
    {
        return SimTime(v);
    }
    static constexpr SimTime ps(int64_t v) { return SimTime(v); }
    static constexpr SimTime ns(int64_t v) { return SimTime(v * 1000); }
    static constexpr SimTime us(int64_t v) { return SimTime(v * 1000000); }
    static constexpr SimTime
    ms(int64_t v)
    {
        return SimTime(v * 1000000000LL);
    }
    static constexpr SimTime
    sec(int64_t v)
    {
        return SimTime(v * 1000000000000LL);
    }

    /**
     * Construct from a floating-point number of seconds.  Rounds to the
     * nearest picosecond; used when converting from rate computations.
     */
    static constexpr SimTime
    seconds(double v)
    {
        return SimTime(static_cast<int64_t>(v * 1e12 + (v >= 0 ? 0.5 : -0.5)));
    }

    /** Construct from a floating-point number of microseconds. */
    static constexpr SimTime
    microseconds(double v)
    {
        return SimTime(static_cast<int64_t>(v * 1e6 + (v >= 0 ? 0.5 : -0.5)));
    }

    /** Construct from a floating-point number of nanoseconds. */
    static constexpr SimTime
    nanoseconds(double v)
    {
        return SimTime(static_cast<int64_t>(v * 1e3 + (v >= 0 ? 0.5 : -0.5)));
    }

    /** Largest representable time; used as "never" sentinel. */
    static constexpr SimTime
    max()
    {
        return SimTime(std::numeric_limits<int64_t>::max());
    }

    constexpr int64_t toPs() const { return ps_; }
    constexpr int64_t toNs() const { return ps_ / 1000; }
    constexpr int64_t toUs() const { return ps_ / 1000000; }
    constexpr int64_t toMs() const { return ps_ / 1000000000LL; }

    constexpr double asSeconds() const { return ps_ * 1e-12; }
    constexpr double asMillis() const { return ps_ * 1e-9; }
    constexpr double asMicros() const { return ps_ * 1e-6; }
    constexpr double asNanos() const { return ps_ * 1e-3; }

    constexpr auto operator<=>(const SimTime&) const = default;

    constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
    constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
    constexpr SimTime& operator+=(SimTime o) { ps_ += o.ps_; return *this; }
    constexpr SimTime& operator-=(SimTime o) { ps_ -= o.ps_; return *this; }
    constexpr SimTime operator*(int64_t k) const { return SimTime(ps_ * k); }
    constexpr SimTime operator/(int64_t k) const { return SimTime(ps_ / k); }
    constexpr int64_t operator/(SimTime o) const { return ps_ / o.ps_; }
    constexpr SimTime operator%(SimTime o) const { return SimTime(ps_ % o.ps_); }

    /** Scale a duration by a floating-point factor (rounds to nearest ps). */
    constexpr SimTime
    scaled(double k) const
    {
        return SimTime(static_cast<int64_t>(ps_ * k + 0.5));
    }

    constexpr bool isZero() const { return ps_ == 0; }

    /** Human-readable rendering with an auto-selected unit. */
    std::string str() const;

  private:
    explicit constexpr SimTime(int64_t v) : ps_(v) {}

    int64_t ps_;
};

constexpr SimTime operator*(int64_t k, SimTime t) { return t * k; }

namespace time_literals {

constexpr SimTime operator""_ps(unsigned long long v)
{
    return SimTime::ps(static_cast<int64_t>(v));
}
constexpr SimTime operator""_ns(unsigned long long v)
{
    return SimTime::ns(static_cast<int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v)
{
    return SimTime::us(static_cast<int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v)
{
    return SimTime::ms(static_cast<int64_t>(v));
}
constexpr SimTime operator""_sec(unsigned long long v)
{
    return SimTime::sec(static_cast<int64_t>(v));
}

} // namespace time_literals

} // namespace diablo

#endif // DIABLO_CORE_TIME_HH_
