#include "core/time.hh"

#include <cstdio>

namespace diablo {

std::string
SimTime::str() const
{
    char buf[64];
    const int64_t v = ps_;
    if (v == 0) {
        return "0s";
    }
    if (v % 1000000000000LL == 0) {
        std::snprintf(buf, sizeof(buf), "%llds",
                      static_cast<long long>(v / 1000000000000LL));
    } else if (v % 1000000000LL == 0) {
        std::snprintf(buf, sizeof(buf), "%lldms",
                      static_cast<long long>(v / 1000000000LL));
    } else if (v % 1000000 == 0) {
        std::snprintf(buf, sizeof(buf), "%lldus",
                      static_cast<long long>(v / 1000000));
    } else if (v % 1000 == 0) {
        std::snprintf(buf, sizeof(buf), "%lldns",
                      static_cast<long long>(v / 1000));
    } else {
        std::snprintf(buf, sizeof(buf), "%lldps", static_cast<long long>(v));
    }
    return buf;
}

} // namespace diablo
