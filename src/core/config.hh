#ifndef DIABLO_CORE_CONFIG_HH_
#define DIABLO_CORE_CONFIG_HH_

/**
 * @file
 * Runtime-configurable parameter store.
 *
 * DIABLO's models are parameterized at runtime so that design-space
 * exploration never requires re-synthesis; the software analog is a typed
 * key-value store with dotted parameter names ("switch.rack.buffer_bytes")
 * that model constructors read with defaults.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace diablo {

/** Typed key-value parameter store with dotted names. */
class Config {
  public:
    Config() = default;

    /** Set a parameter (stored as text, parsed on read). */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, int64_t value);
    void set(const std::string &key, uint64_t value);
    void set(const std::string &key, int value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    bool has(const std::string &key) const;

    /** Typed getters; return @p def when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    int64_t getInt(const std::string &key, int64_t def) const;
    uint64_t getUint(const std::string &key, uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Parse a "key=value" assignment (e.g. a command-line override).
     * Returns false when the token is not of that form.
     */
    bool parseAssignment(const std::string &token);

    /** Merge: entries in @p other override entries here. */
    void merge(const Config &other);

    /** All keys in sorted order (for dumping a run's configuration). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace diablo

#endif // DIABLO_CORE_CONFIG_HH_
