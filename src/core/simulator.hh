#ifndef DIABLO_CORE_SIMULATOR_HH_
#define DIABLO_CORE_SIMULATOR_HH_

/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns the event queue and the root coroutine tasks of one
 * simulation *partition*.  In the default configuration one Simulator
 * models the entire target system (the software analog of running all of
 * DIABLO on one FPGA); the FAME layer (src/fame) runs several partitions
 * under a conservative barrier scheduler, mirroring the multi-FPGA
 * deployment, with identical results.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "core/event.hh"
#include "core/task.hh"
#include "core/time.hh"

namespace diablo {

/** Discrete-event engine for one simulation partition. */
class Simulator {
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;
    ~Simulator();

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule a callback @p delay after now. */
    EventId
    schedule(SimTime delay, EventFn fn, int8_t prio = event_prio::kDefault)
    {
        return queue_.schedule(now_ + delay, std::move(fn), prio);
    }

    /**
     * Emplace overload: a lambda (or any non-EventFn callable) is
     * constructed directly in its queue slot, skipping the intermediate
     * EventFn moves.  Overload resolution picks this for raw callables
     * and the EventFn overload for pre-built callbacks, so call sites
     * get the fast path with no change.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F> &>>>
    EventId
    schedule(SimTime delay, F &&fn, int8_t prio = event_prio::kDefault)
    {
        return queue_.scheduleEmplace(now_ + delay, prio,
                                      std::forward<F>(fn));
    }

    /** Schedule a callback at absolute time @p when (must be >= now). */
    EventId scheduleAt(SimTime when, EventFn fn,
                       int8_t prio = event_prio::kDefault);

    /**
     * Emplace overload of scheduleAt: same slot-direct construction as
     * the relative-time schedule() template.  The absolute-time path is
     * just as hot — per-frame tx-done callbacks and switch egress kicks
     * land here — so it gets the same fast path.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::remove_cvref_t<F> &>>>
    EventId
    scheduleAt(SimTime when, F &&fn, int8_t prio = event_prio::kDefault)
    {
        if (when < now_) {
            schedulePastPanic(when);
        }
        return queue_.scheduleEmplace(when, prio, std::forward<F>(fn));
    }

    void cancel(EventId id) { queue_.cancel(id); }

    /**
     * Coroutine-wakeup fast path: resume @p h after @p delay, at wakeup
     * priority.  The raw handle is scheduled through the queue's
     * dedicated path — no callback object, no slot, no allocation.
     * Wakeups are not cancellable; the returned id is always invalid.
     */
    EventId
    scheduleWakeup(SimTime delay, std::coroutine_handle<> h)
    {
        return queue_.scheduleWakeup(now_ + delay, h);
    }

    /**
     * Adopt a root coroutine task and start it at the current time (via
     * the event queue, so spawn order at equal times is deterministic).
     */
    void spawn(Task<> task);

    /** Awaitable that suspends the calling coroutine for @p delay. */
    struct SleepAwaiter {
        Simulator &sim;
        SimTime delay;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.scheduleWakeup(delay, h);
        }

        void await_resume() const noexcept {}
    };

    SleepAwaiter sleep(SimTime delay) { return SleepAwaiter{*this, delay}; }

    /** Run until the queue drains or stop() is called. */
    void run();

    /**
     * Run all events with timestamp <= @p t, then set now to @p t.
     * Used both by tests and by the FAME quantum scheduler.
     */
    void runUntil(SimTime t);

    /**
     * Run all events with timestamp strictly < @p t; the clock is left
     * at the last executed event.  This is the partition-quantum step:
     * events exactly at the quantum boundary belong to the next window,
     * after cross-partition messages for that instant have arrived.
     */
    void runBefore(SimTime t);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopped_ = true; }
    bool stopped() const { return stopped_; }
    void clearStop() { stopped_ = false; }

    // --- stepping interface for the FAME partition runner ---

    /** Timestamp of the next pending event; SimTime::max() when idle. */
    SimTime nextEventTime() { return queue_.nextTime(); }

    /** Execute exactly one event (caller checked one is pending). */
    void
    executeNext()
    {
        EventFn fn;
        std::coroutine_handle<> coro{};
        const SimTime when = queue_.popNextInto(fn, coro);
        if (when < now_) {
            timeWentBackwards(when);
        }
        now_ = when;
        ++executed_;
        if (coro) {
            coro.resume();
        } else {
            fn();
        }
    }

    bool idle() { return queue_.empty(); }

    uint64_t executedEvents() const { return executed_; }
    uint64_t scheduledEvents() const { return queue_.scheduledCount(); }

    /**
     * Partition-local attachment slot: one opaque object owned by this
     * Simulator (net::packetPoolOf hangs the partition's packet pool
     * here).  Declared as the *first* data member, so it is destroyed
     * after the event queue and root tasks — anything they still hold
     * (pending deliveries, suspended frames owning packets) can safely
     * release back into the attachment during teardown.
     */
    void *attachment() { return attachment_.get(); }

    /** Replace the attachment; @p deleter frees it with the Simulator. */
    void
    setAttachment(void *obj, void (*deleter)(void *))
    {
        attachment_ = AttachmentPtr(obj, deleter);
    }

    /**
     * Drop every pending event (callbacks are destroyed, never run) and
     * all cancellation state.  Teardown-only — fame::PartitionSet uses
     * it to drain every partition's queue before any Simulator is
     * destroyed, since a queued cross-partition delivery may own a
     * packet whose recycling pool lives on another partition.
     */
    void discardPendingEvents() { queue_.clear(); }

  private:
    void sweepTasks();
    [[noreturn]] void timeWentBackwards(SimTime when) const;
    [[noreturn]] void schedulePastPanic(SimTime when) const;

    using AttachmentPtr = std::unique_ptr<void, void (*)(void *)>;
    static void noopDeleter(void *) {}

    /** Must stay the first member (destroyed last); see attachment(). */
    AttachmentPtr attachment_{nullptr, &noopDeleter};

    EventQueue queue_;
    SimTime now_;
    bool stopped_ = false;
    uint64_t executed_ = 0;
    std::vector<Task<>> tasks_;
};

/**
 * One-shot, single-waiter synchronization cell.
 *
 * Kernel and device models complete a simulated-blocking operation by
 * calling fulfill(); the waiting coroutine resumes through the event
 * queue at the current time (never inline), preserving deterministic
 * event ordering.  fulfill() is idempotent: the first call wins, which
 * makes completion-vs-timeout races trivial to express.
 */
template <typename T>
class OneShot {
  public:
    explicit OneShot(Simulator &sim) : sim_(sim) {}

    OneShot(const OneShot &) = delete;
    OneShot &operator=(const OneShot &) = delete;

    bool fulfilled() const { return value_.has_value(); }

    /** Complete the operation with @p v; only the first call has effect. */
    void
    fulfill(T v)
    {
        if (value_.has_value()) {
            return;
        }
        value_.emplace(std::move(v));
        if (waiter_) {
            auto h = waiter_;
            waiter_ = nullptr;
            sim_.scheduleWakeup(SimTime(), h);
        }
    }

    bool await_ready() const noexcept { return value_.has_value(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        if (waiter_) {
            panic("OneShot: second waiter");
        }
        waiter_ = h;
    }

    T
    await_resume()
    {
        return std::move(*value_);
    }

  private:
    Simulator &sim_;
    std::coroutine_handle<> waiter_;
    std::optional<T> value_;
};

} // namespace diablo

#endif // DIABLO_CORE_SIMULATOR_HH_
