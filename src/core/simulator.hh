#ifndef DIABLO_CORE_SIMULATOR_HH_
#define DIABLO_CORE_SIMULATOR_HH_

/**
 * @file
 * The discrete-event simulation engine.
 *
 * A Simulator owns the event queue and the root coroutine tasks of one
 * simulation *partition*.  In the default configuration one Simulator
 * models the entire target system (the software analog of running all of
 * DIABLO on one FPGA); the FAME layer (src/fame) runs several partitions
 * under a conservative barrier scheduler, mirroring the multi-FPGA
 * deployment, with identical results.
 */

#include <cstdint>
#include <vector>

#include "core/event.hh"
#include "core/task.hh"
#include "core/time.hh"

namespace diablo {

/** Discrete-event engine for one simulation partition. */
class Simulator {
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;
    ~Simulator();

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule a callback @p delay after now. */
    EventId
    schedule(SimTime delay, EventFn fn, int8_t prio = event_prio::kDefault)
    {
        return queue_.schedule(now_ + delay, std::move(fn), prio);
    }

    /** Schedule a callback at absolute time @p when (must be >= now). */
    EventId scheduleAt(SimTime when, EventFn fn,
                       int8_t prio = event_prio::kDefault);

    void cancel(EventId id) { queue_.cancel(id); }

    /**
     * Adopt a root coroutine task and start it at the current time (via
     * the event queue, so spawn order at equal times is deterministic).
     */
    void spawn(Task<> task);

    /** Awaitable that suspends the calling coroutine for @p delay. */
    struct SleepAwaiter {
        Simulator &sim;
        SimTime delay;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.schedule(delay, [h] { h.resume(); }, event_prio::kWakeup);
        }

        void await_resume() const noexcept {}
    };

    SleepAwaiter sleep(SimTime delay) { return SleepAwaiter{*this, delay}; }

    /** Run until the queue drains or stop() is called. */
    void run();

    /**
     * Run all events with timestamp <= @p t, then set now to @p t.
     * Used both by tests and by the FAME quantum scheduler.
     */
    void runUntil(SimTime t);

    /**
     * Run all events with timestamp strictly < @p t; the clock is left
     * at the last executed event.  This is the partition-quantum step:
     * events exactly at the quantum boundary belong to the next window,
     * after cross-partition messages for that instant have arrived.
     */
    void runBefore(SimTime t);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopped_ = true; }
    bool stopped() const { return stopped_; }
    void clearStop() { stopped_ = false; }

    // --- stepping interface for the FAME partition runner ---

    /** Timestamp of the next pending event; SimTime::max() when idle. */
    SimTime nextEventTime() { return queue_.nextTime(); }

    /** Execute exactly one event (caller checked one is pending). */
    void executeNext();

    bool idle() { return queue_.empty(); }

    uint64_t executedEvents() const { return executed_; }
    uint64_t scheduledEvents() const { return queue_.scheduledCount(); }

  private:
    void sweepTasks();

    EventQueue queue_;
    SimTime now_;
    bool stopped_ = false;
    uint64_t executed_ = 0;
    std::vector<Task<>> tasks_;
};

/**
 * One-shot, single-waiter synchronization cell.
 *
 * Kernel and device models complete a simulated-blocking operation by
 * calling fulfill(); the waiting coroutine resumes through the event
 * queue at the current time (never inline), preserving deterministic
 * event ordering.  fulfill() is idempotent: the first call wins, which
 * makes completion-vs-timeout races trivial to express.
 */
template <typename T>
class OneShot {
  public:
    explicit OneShot(Simulator &sim) : sim_(sim) {}

    OneShot(const OneShot &) = delete;
    OneShot &operator=(const OneShot &) = delete;

    bool fulfilled() const { return value_.has_value(); }

    /** Complete the operation with @p v; only the first call has effect. */
    void
    fulfill(T v)
    {
        if (value_.has_value()) {
            return;
        }
        value_.emplace(std::move(v));
        if (waiter_) {
            auto h = waiter_;
            waiter_ = nullptr;
            sim_.schedule(SimTime(), [h] { h.resume(); },
                          event_prio::kWakeup);
        }
    }

    bool await_ready() const noexcept { return value_.has_value(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        if (waiter_) {
            panic("OneShot: second waiter");
        }
        waiter_ = h;
    }

    T
    await_resume()
    {
        return std::move(*value_);
    }

  private:
    Simulator &sim_;
    std::coroutine_handle<> waiter_;
    std::optional<T> value_;
};

} // namespace diablo

#endif // DIABLO_CORE_SIMULATOR_HH_
