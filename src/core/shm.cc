#include "core/shm.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <new>

#include "core/log.hh"

#if defined(__linux__)
#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#else
#include <chrono>
#include <thread>
#endif

namespace diablo {

// ---------------------------------------------------------------------
// Cross-process futex
// ---------------------------------------------------------------------

#if defined(__linux__)

namespace {

long
sysFutex(void *addr, int op, uint32_t val, const struct timespec *ts)
{
    return syscall(SYS_futex, addr, op, val, ts, nullptr, 0);
}

} // namespace

void
sharedFutexWait(std::atomic<uint32_t> *word, uint32_t expected,
                int64_t timeout_ns)
{
    struct timespec ts;
    struct timespec *tsp = nullptr;
    if (timeout_ns > 0) {
        ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000LL);
        ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000LL);
        tsp = &ts;
    }
    // Deliberately *not* FUTEX_PRIVATE_FLAG: the word lives in a
    // MAP_SHARED segment and the waker may be another process.
    sysFutex(word, FUTEX_WAIT, expected, tsp);
}

void
sharedFutexWake(std::atomic<uint32_t> *word, bool all)
{
    sysFutex(word, FUTEX_WAKE, all ? INT32_MAX : 1, nullptr);
}

#else // !__linux__

void
sharedFutexWait(std::atomic<uint32_t> *word, uint32_t expected,
                int64_t timeout_ns)
{
    // Portable degradation: bounded sleep instead of a kernel park.
    // Correctness only needs "returns eventually"; callers loop.
    (void)expected;
    int64_t ns = timeout_ns > 0 ? std::min<int64_t>(timeout_ns, 1000000)
                                : 1000000;
    (void)word;
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void
sharedFutexWake(std::atomic<uint32_t> *word, bool all)
{
    (void)word;
    (void)all;
}

#endif

// ---------------------------------------------------------------------
// ShmSegment
// ---------------------------------------------------------------------

#if defined(__linux__)

ShmSegment::~ShmSegment()
{
    if (mem_ != nullptr) {
        ::munmap(mem_, bytes_);
    }
}

ShmSegment::ShmSegment(ShmSegment &&o) noexcept
    : mem_(o.mem_), bytes_(o.bytes_), path_(std::move(o.path_))
{
    o.mem_ = nullptr;
    o.bytes_ = 0;
}

ShmSegment &
ShmSegment::operator=(ShmSegment &&o) noexcept
{
    if (this != &o) {
        if (mem_ != nullptr) {
            ::munmap(mem_, bytes_);
        }
        mem_ = o.mem_;
        bytes_ = o.bytes_;
        path_ = std::move(o.path_);
        o.mem_ = nullptr;
        o.bytes_ = 0;
    }
    return *this;
}

ShmSegment
ShmSegment::create(const std::string &path, size_t bytes)
{
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
    if (fd < 0) {
        fatal("ShmSegment: create %s: %s", path.c_str(),
              std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        const int e = errno;
        ::close(fd);
        ::unlink(path.c_str());
        fatal("ShmSegment: ftruncate %s to %zu bytes: %s", path.c_str(),
              bytes, std::strerror(e));
    }
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED) {
        ::unlink(path.c_str());
        fatal("ShmSegment: mmap %s: %s", path.c_str(),
              std::strerror(errno));
    }
    ShmSegment seg;
    seg.mem_ = mem;
    seg.bytes_ = bytes;
    seg.path_ = path;
    return seg;
}

ShmSegment
ShmSegment::attach(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) {
        fatal("ShmSegment: attach %s: %s", path.c_str(),
              std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        fatal("ShmSegment: attach %s: cannot size segment",
              path.c_str());
    }
    const size_t bytes = static_cast<size_t>(st.st_size);
    void *mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd, 0);
    ::close(fd);
    if (mem == MAP_FAILED) {
        fatal("ShmSegment: mmap %s: %s", path.c_str(),
              std::strerror(errno));
    }
    ShmSegment seg;
    seg.mem_ = mem;
    seg.bytes_ = bytes;
    seg.path_ = path;
    return seg;
}

void
ShmSegment::unlinkFile()
{
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

#else // !__linux__

ShmSegment::~ShmSegment() { delete[] static_cast<uint8_t *>(mem_); }

ShmSegment::ShmSegment(ShmSegment &&o) noexcept
    : mem_(o.mem_), bytes_(o.bytes_), path_(std::move(o.path_))
{
    o.mem_ = nullptr;
    o.bytes_ = 0;
}

ShmSegment &
ShmSegment::operator=(ShmSegment &&o) noexcept
{
    if (this != &o) {
        delete[] static_cast<uint8_t *>(mem_);
        mem_ = o.mem_;
        bytes_ = o.bytes_;
        path_ = std::move(o.path_);
        o.mem_ = nullptr;
        o.bytes_ = 0;
    }
    return *this;
}

ShmSegment
ShmSegment::create(const std::string &path, size_t bytes)
{
    // No mmap on this platform: the "segment" is process-private, which
    // still serves the single-process transports and tests.
    ShmSegment seg;
    seg.mem_ = new uint8_t[bytes]();
    seg.bytes_ = bytes;
    seg.path_ = path;
    return seg;
}

ShmSegment
ShmSegment::attach(const std::string &path)
{
    fatal("ShmSegment: cross-process attach unsupported on this "
          "platform (%s)",
          path.c_str());
}

void
ShmSegment::unlinkFile()
{
    path_.clear();
}

#endif

// ---------------------------------------------------------------------
// SpscRecordRing
// ---------------------------------------------------------------------

namespace {

void
ringRelax() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

} // namespace

size_t
SpscRecordRing::footprint(uint32_t capacity)
{
    return kHeaderBytes + capacity;
}

SpscRecordRing *
SpscRecordRing::init(void *mem, uint32_t capacity)
{
    if (capacity < 4096 || (capacity & (capacity - 1)) != 0) {
        fatal("SpscRecordRing: capacity %u is not a power of two >= "
              "4096",
              capacity);
    }
    if ((reinterpret_cast<uintptr_t>(mem) & 63) != 0) {
        fatal("SpscRecordRing: ring memory must be 64-byte aligned");
    }
    auto *ring = new (mem) SpscRecordRing();
    ring->capacity_ = capacity;
    ring->magic_ = kMagic;
    return ring;
}

SpscRecordRing *
SpscRecordRing::attach(void *mem)
{
    auto *ring = static_cast<SpscRecordRing *>(mem);
    if (ring->magic_ != kMagic) {
        fatal("SpscRecordRing: attach to uninitialized ring memory");
    }
    return ring;
}

uint32_t
SpscRecordRing::bytesUsed() const
{
    // Free-running counters: the difference is exact under uint32
    // wraparound as long as used <= capacity, which push enforces.
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
}

void
SpscRecordRing::copyIn(uint32_t pos, const void *src, uint32_t n)
{
    const uint32_t mask = capacity_ - 1;
    const uint32_t at = pos & mask;
    const uint32_t first = std::min(n, capacity_ - at);
    std::memcpy(dataArea() + at, src, first);
    if (first < n) {
        std::memcpy(dataArea(), static_cast<const uint8_t *>(src) + first,
                    n - first);
    }
}

void
SpscRecordRing::copyOut(uint32_t pos, void *dst, uint32_t n) const
{
    const uint32_t mask = capacity_ - 1;
    const uint32_t at = pos & mask;
    const uint32_t first = std::min(n, capacity_ - at);
    std::memcpy(dst, dataArea() + at, first);
    if (first < n) {
        std::memcpy(static_cast<uint8_t *>(dst) + first, dataArea(),
                    n - first);
    }
}

bool
SpscRecordRing::tryPush(const void *p, uint32_t n)
{
    if (n > kMaxRecordBytes || n + 4 > capacity_) {
        fatal("SpscRecordRing: record of %u bytes exceeds ring bounds "
              "(capacity %u)",
              n, capacity_);
    }
    const uint32_t tail = tail_.load(std::memory_order_relaxed);
    const uint32_t head = head_.load(std::memory_order_acquire);
    if (capacity_ - (tail - head) < n + 4) {
        return false;
    }
    copyIn(tail, &n, 4);
    copyIn(tail + 4, p, n);
    // seq_cst publish, then seq_cst flag read: either the consumer's
    // parked store is ordered before this store (we see the flag and
    // wake), or our publish is ordered before its re-check (it sees
    // the data and never sleeps).
    tail_.store(tail + 4 + n, std::memory_order_seq_cst);
    if (consumer_parked_.load(std::memory_order_seq_cst) != 0) {
        sharedFutexWake(&tail_, true);
    }
    return true;
}

uint32_t
SpscRecordRing::tryPop(void *out, uint32_t cap)
{
    const uint32_t head = head_.load(std::memory_order_relaxed);
    const uint32_t tail = tail_.load(std::memory_order_acquire);
    if (tail == head) {
        return 0;
    }
    uint32_t n = 0;
    copyOut(head, &n, 4);
    if (n > cap) {
        fatal("SpscRecordRing: %u-byte record exceeds the %u-byte pop "
              "buffer (protocol violation)",
              n, cap);
    }
    copyOut(head + 4, out, n);
    head_.store(head + 4 + n, std::memory_order_seq_cst);
    if (producer_parked_.load(std::memory_order_seq_cst) != 0) {
        sharedFutexWake(&head_, true);
    }
    return n;
}

bool
SpscRecordRing::waitForData(uint32_t spin_budget, int64_t timeout_ns)
{
    const uint32_t head = head_.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i < spin_budget; ++i) {
        if (tail_.load(std::memory_order_acquire) != head) {
            return true;
        }
        ringRelax();
    }
    consumer_parked_.store(1, std::memory_order_seq_cst);
    const uint32_t tail = tail_.load(std::memory_order_seq_cst);
    if (tail != head || aborted()) {
        consumer_parked_.store(0, std::memory_order_relaxed);
        return tail != head;
    }
    sharedFutexWait(&tail_, tail, timeout_ns);
    consumer_parked_.store(0, std::memory_order_relaxed);
    return tail_.load(std::memory_order_acquire) != head;
}

bool
SpscRecordRing::waitForSpace(uint32_t bytes, uint32_t spin_budget,
                             int64_t timeout_ns)
{
    const uint32_t need = bytes + 4;
    const uint32_t tail = tail_.load(std::memory_order_relaxed);
    auto spaceFor = [&](uint32_t head) {
        return capacity_ - (tail - head) >= need;
    };
    for (uint32_t i = 0; i < spin_budget; ++i) {
        if (spaceFor(head_.load(std::memory_order_acquire))) {
            return true;
        }
        ringRelax();
    }
    producer_parked_.store(1, std::memory_order_seq_cst);
    const uint32_t head = head_.load(std::memory_order_seq_cst);
    if (spaceFor(head) || aborted()) {
        producer_parked_.store(0, std::memory_order_relaxed);
        return spaceFor(head);
    }
    sharedFutexWait(&head_, head, timeout_ns);
    producer_parked_.store(0, std::memory_order_relaxed);
    return spaceFor(head_.load(std::memory_order_acquire));
}

void
SpscRecordRing::setAborted()
{
    aborted_.store(1, std::memory_order_seq_cst);
    sharedFutexWake(&tail_, true);
    sharedFutexWake(&head_, true);
}

} // namespace diablo
