#include "core/interrupt.hh"

#include <csignal>

#include <atomic>

namespace diablo {
namespace core {

namespace {

/** 0 = no request; otherwise the first cause to arrive (signo or
 *  negative kCause*).  Lock-free, so safe to store from a handler. */
std::atomic<int> g_cause{0};
static_assert(std::atomic<int>::is_always_lock_free);

extern "C" void
interruptHandler(int signo)
{
    int expected = 0;
    if (!g_cause.compare_exchange_strong(expected, signo,
                                         std::memory_order_relaxed)) {
        // Second delivery: the cooperative path is already draining (or
        // wedged).  Restore the default disposition and re-raise so the
        // kernel terminates the process the ordinary way.
        std::signal(signo, SIG_DFL);
        std::raise(signo);
    }
}

} // namespace

void
installInterruptHandlers()
{
    struct sigaction sa;
    sa.sa_handler = interruptHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: a run blocked in I/O should see EINTR and reach
    // its interrupt poll promptly rather than resuming the syscall.
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
interruptRequested()
{
    return g_cause.load(std::memory_order_relaxed) != 0;
}

int
interruptCause()
{
    return g_cause.load(std::memory_order_relaxed);
}

const char *
interruptCauseName()
{
    switch (interruptCause()) {
    case 0:
        return "none";
    case SIGINT:
        return "SIGINT";
    case SIGTERM:
        return "SIGTERM";
    case kCauseWatchdogDeadline:
        return "watchdog-deadline";
    case kCauseWatchdogStall:
        return "watchdog-stall";
    case kCausePeer:
        return "peer-interrupt";
    default:
        return "signal";
    }
}

void
requestInterrupt(int cause)
{
    int expected = 0;
    g_cause.compare_exchange_strong(expected, cause,
                                    std::memory_order_relaxed);
}

void
clearInterrupt()
{
    g_cause.store(0, std::memory_order_relaxed);
}

} // namespace core
} // namespace diablo
