#ifndef DIABLO_CORE_INTERRUPT_HH_
#define DIABLO_CORE_INTERRUPT_HH_

/**
 * @file
 * Cooperative run interruption for unattended operation.
 *
 * Long unattended runs must never die artifact-less: a SIGINT from an
 * operator, a SIGTERM from a batch scheduler, or a watchdog trip all
 * funnel into one process-wide *request* flag that the experiment
 * drivers poll at safe points (engine window boundaries, periodic
 * events) and answer by finalizing a partial artifact before exiting
 * with a distinct code.  The handlers only ever store into a lock-free
 * atomic — async-signal-safe by construction — and re-raising the
 * signal (a second Ctrl-C) restores the default disposition so a wedged
 * finalizer can still be killed the ordinary way.
 *
 * Exit-code contract (shared by diablo_run, diablo_sweep, CI, and the
 * tests — keep DESIGN.md §10's table in sync):
 *   0                   clean run
 *   1                   failure (fatal(), determinism mismatch)
 *   2                   usage error
 *   kExitSweepPartial   sweep completed but some grid points failed
 *   kExitInterrupted    run interrupted by signal; partial artifact
 *                       was finalized
 *   kExitWatchdog       watchdog (deadline/stall) aborted the run
 */

namespace diablo {
namespace core {

/** Sweep finished but one or more grid points failed or timed out. */
constexpr int kExitSweepPartial = 3;
/** Run was interrupted (SIGINT/SIGTERM) and finalized a partial
 *  artifact. */
constexpr int kExitInterrupted = 75;
/** The run watchdog (wall-clock deadline or progress stall) fired. */
constexpr int kExitWatchdog = 76;

/**
 * Interrupt causes, for interruptCause().  Signals store their signal
 * number; programmatic requests store one of these (negative so they
 * can never collide with a signo).
 */
constexpr int kCauseWatchdogDeadline = -1;
constexpr int kCauseWatchdogStall = -2;
/** A peer engine process of a coupled run was interrupted or died. */
constexpr int kCausePeer = -3;

/**
 * Install SIGINT/SIGTERM handlers that record the signal and request a
 * cooperative stop.  Idempotent.  The second delivery of the same
 * signal falls through to the default disposition (the handler is
 * installed without SA_RESETHAND but re-raises after restoring the
 * default), so a finalizer that itself hangs cannot make the process
 * unkillable.
 */
void installInterruptHandlers();

/** True once a stop has been requested (signal or programmatic). */
bool interruptRequested();

/**
 * Why the stop was requested: a positive signal number, a negative
 * kCause* constant, or 0 when no request is pending.  First request
 * wins; later ones are ignored.
 */
int interruptCause();

/** Human-readable cause ("SIGTERM", "watchdog-stall", ...). */
const char *interruptCauseName();

/** Programmatic request (watchdog trip); async-signal-safe. */
void requestInterrupt(int cause);

/** Test hook: clear any pending request. */
void clearInterrupt();

} // namespace core
} // namespace diablo

#endif // DIABLO_CORE_INTERRUPT_HH_
