#include "core/event.hh"

#include "core/log.hh"

namespace diablo {

// Cold paths only — the schedule/cancel/pop hot path is inline in
// event.hh so the compiler can fuse it into the Simulator loop.

uint32_t
EventQueue::growSlots()
{
    // Payload encoding gives slots 31 bits (see HeapEntry).
    if (slot_count_ >= (uint32_t{1} << 31)) {
        panic("EventQueue: slot pool overflow");
    }
    if ((slot_count_ & kSlotChunkMask) == 0) {
        void *mem = slot_arena_.allocate(sizeof(Slot) * kSlotsPerChunk,
                                         alignof(Slot));
        chunks_.push_back(static_cast<Slot *>(mem));
    }
    ::new (&chunks_.back()[slot_count_ & kSlotChunkMask]) Slot();
    return slot_count_++;
}

void
EventQueue::popEmptyPanic()
{
    panic("EventQueue::popNext on empty queue");
}

} // namespace diablo
