#include "core/event.hh"

#include "core/log.hh"

namespace diablo {

EventId
EventQueue::schedule(SimTime when, EventFn fn, int8_t prio)
{
    uint64_t seq = next_seq_++;
    heap_.push(Item{when, prio, seq});
    pending_.emplace(seq, std::move(fn));
    return EventId{seq};
}

void
EventQueue::cancel(EventId id)
{
    if (!id.valid()) {
        return;
    }
    pending_.erase(id.seq);
    // The heap entry stays as a tombstone and is skipped at pop time.
}

void
EventQueue::prune()
{
    while (!heap_.empty() && pending_.find(heap_.top().seq) ==
                                 pending_.end()) {
        heap_.pop();
    }
}

SimTime
EventQueue::nextTime()
{
    prune();
    if (heap_.empty()) {
        return SimTime::max();
    }
    return heap_.top().when;
}

std::pair<SimTime, EventFn>
EventQueue::popNext()
{
    prune();
    if (heap_.empty()) {
        panic("EventQueue::popNext on empty queue");
    }
    Item item = heap_.top();
    heap_.pop();
    auto it = pending_.find(item.seq);
    EventFn fn = std::move(it->second);
    pending_.erase(it);
    return {item.when, std::move(fn)};
}

} // namespace diablo
