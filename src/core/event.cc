#include "core/event.hh"

#include "core/log.hh"

namespace diablo {

// Cold paths only — the schedule/cancel/pop hot path is inline in
// event.hh so the compiler can fuse it into the Simulator loop.

uint32_t
EventQueue::growSlots()
{
    // Payload encoding gives slots 31 bits (see HeapEntry).
    if (slots_.size() >= (uint64_t{1} << 31)) {
        panic("EventQueue: slot pool overflow");
    }
    slots_.emplace_back();
    return static_cast<uint32_t>(slots_.size() - 1);
}

void
EventQueue::popEmptyPanic()
{
    panic("EventQueue::popNext on empty queue");
}

} // namespace diablo
