#ifndef DIABLO_CORE_STATS_HH_
#define DIABLO_CORE_STATS_HH_

/**
 * @file
 * Statistics collection: counters, running moments, sample sets with
 * percentile/CDF/PMF extraction, and log-binned histograms.
 *
 * DIABLO is "fully instrumented"; every model in this repo exposes its
 * behaviour through these types, and the bench harnesses turn them into
 * the paper's tables and figures.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace diablo {

/** Monotonically increasing event count. */
class Counter {
  public:
    Counter() = default;

    void inc(uint64_t by = 1) { value_ += by; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Streaming mean/variance/min/max via Welford's algorithm. */
class RunningStats {
  public:
    void record(double x);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Stores every recorded sample and answers distribution queries.
 *
 * Sorting is cached and invalidated on insert, so repeated percentile
 * queries after a run are cheap.
 */
class SampleSet {
  public:
    void record(double x);
    void reserve(size_t n) { samples_.reserve(n); }

    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double mean() const;
    double min() const;
    double max() const;

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    /**
     * CDF evaluation points: for each sample value x (sorted), the
     * fraction of samples <= x.  Suitable for plotting the paper's
     * latency CDFs.
     */
    struct CdfPoint { double x; double cum; };
    std::vector<CdfPoint> cdf() const;

    /**
     * CDF restricted to the [p_lo, 100] percentile range, as used by the
     * paper's 95th-100th percentile tail plots (Figure 11).
     */
    std::vector<CdfPoint> tailCdf(double p_lo) const;

    /**
     * Probability mass over logarithmically spaced bins (base-10, with
     * @p bins_per_decade subdivisions), as in the paper's Figure 10 PMF.
     */
    struct PmfBin { double lo; double hi; double mass; };
    std::vector<PmfBin> logPmf(int bins_per_decade = 4) const;

    const std::vector<double> &raw() const { return samples_; }

    /** Merge another sample set into this one. */
    void merge(const SampleSet &other);

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

/**
 * Fixed-memory histogram over logarithmic bins; used where sample counts
 * are too large to retain (engine microbenchmarks).
 */
class LogHistogram {
  public:
    /** Bins span [lo, hi) with @p bins_per_decade log10 subdivisions. */
    LogHistogram(double lo, double hi, int bins_per_decade);

    void record(double x);

    uint64_t count() const { return count_; }
    double percentile(double p) const;

  private:
    double lo_;
    double log_lo_;
    double inv_bin_width_;
    std::vector<uint64_t> bins_;
    uint64_t count_ = 0;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
};

} // namespace diablo

#endif // DIABLO_CORE_STATS_HH_
