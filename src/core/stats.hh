#ifndef DIABLO_CORE_STATS_HH_
#define DIABLO_CORE_STATS_HH_

/**
 * @file
 * Statistics collection: counters, running moments, sample sets with
 * percentile/CDF/PMF extraction, and log-binned histograms.
 *
 * DIABLO is "fully instrumented"; every model in this repo exposes its
 * behaviour through these types, and the bench harnesses turn them into
 * the paper's tables and figures.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace diablo {

/** Monotonically increasing event count. */
class Counter {
  public:
    Counter() = default;

    void inc(uint64_t by = 1) { value_ += by; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Streaming mean/variance/min/max via Welford's algorithm. */
class RunningStats {
  public:
    void record(double x);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Stores every recorded sample and answers distribution queries.
 *
 * Sorting is cached and invalidated on insert, so repeated percentile
 * queries after a run are cheap.
 */
class SampleSet {
  public:
    void record(double x);
    void reserve(size_t n) { samples_.reserve(n); }

    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double mean() const;
    double min() const;
    double max() const;

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

    /**
     * CDF evaluation points: for each sample value x (sorted), the
     * fraction of samples <= x.  Suitable for plotting the paper's
     * latency CDFs.
     */
    struct CdfPoint { double x; double cum; };
    std::vector<CdfPoint> cdf() const;

    /**
     * CDF restricted to the [p_lo, 100] percentile range, as used by the
     * paper's 95th-100th percentile tail plots (Figure 11).
     */
    std::vector<CdfPoint> tailCdf(double p_lo) const;

    /**
     * Probability mass over logarithmically spaced bins (base-10, with
     * @p bins_per_decade subdivisions), as in the paper's Figure 10 PMF.
     */
    struct PmfBin { double lo; double hi; double mass; };
    std::vector<PmfBin> logPmf(int bins_per_decade = 4) const;

    const std::vector<double> &raw() const { return samples_; }

    /**
     * Merge another sample set into this one.  When both sides' sorted
     * caches are valid the merged cache is produced with
     * std::inplace_merge and *stays* valid — folding K already-queried
     * per-client sets costs O(n·K) instead of a fresh O(n·K log n·K)
     * sort on the next percentile query.
     */
    void merge(const SampleSet &other);

    /** True when the next distribution query will not pay a sort. */
    bool sortedCacheValid() const { return sorted_valid_; }

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

/**
 * Fixed-memory deterministic quantile sketch (HDR-histogram style).
 *
 * Values are quantized to integer units of `cfg.unit` and counted in
 * log2 buckets subdivided into `1 << sub_bits` linear subbuckets, so
 * relative quantization error is bounded by 2^-sub_bits (1.6% at the
 * default 6) above the exact-resolution first bucket.  The whole sketch
 * is a flat array of counters: memory is fixed by the Config (≈15 KB at
 * the defaults), independent of how many samples are recorded — the
 * paper-scale replacement for retaining every sample in a SampleSet.
 *
 * Determinism: record() and merge() are pure integer-counter updates
 * (bucket indices are computed from the binary representation, no
 * libm), so merging per-partition sketches yields bit-identical bins
 * for any association of the same multiset, and fingerprint() is a
 * deterministic digest of configuration + bins + exact min/max/sum.
 * Fold *order* is made observable with chainFingerprint(), which the
 * seq≡par tests use to pin partition-ordered folds.
 */
class QuantileSketch {
  public:
    struct Config {
        /** Absolute resolution of the exact first bucket. */
        double unit = 0.125;
        /** log2(subbuckets per octave); relative error = 2^-sub_bits. */
        uint32_t sub_bits = 6;
        /** Octaves above the first bucket; caps the tracked range at
         *  unit * 2^(sub_bits + octaves + 1). */
        uint32_t octaves = 28;

        bool operator==(const Config &o) const
        {
            return unit == o.unit && sub_bits == o.sub_bits &&
                   octaves == o.octaves;
        }
    };

    QuantileSketch() = default;
    explicit QuantileSketch(const Config &cfg) : cfg_(cfg) { validate(); }

    void record(double x);

    /** Commutative counter merge; fatal when the configs differ. */
    void merge(const QuantileSketch &other);

    uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double mean() const;
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * p in [0, 100].  Rank semantics: the value of the r-th smallest
     * recorded sample, r = clamp(ceil(p/100 * count), 1, count), linearly
     * interpolated inside its bucket and clamped to the exact observed
     * [min, max].  Deterministic: depends only on the bins.
     */
    double percentile(double p) const;

    /** Bound on relative quantization error above the first bucket. */
    double relativeError() const { return 1.0 / (1u << cfg_.sub_bits); }

    const Config &config() const { return cfg_; }

    /** Counter storage bytes (0 until the first record/merge). */
    size_t memoryBytes() const { return bins_.size() * sizeof(uint64_t); }

    /**
     * Deterministic digest of config + non-empty bins + count and the
     * bit patterns of min/max/sum.  Equal multisets of samples produce
     * equal fingerprints regardless of merge association.
     */
    uint64_t fingerprint() const;

    /**
     * Order-sensitive fold: chain' = mix(chain, fp).  Non-commutative
     * and non-associative by construction, so folding per-partition
     * fingerprints in partition order yields a digest that changes if
     * any engine reorders the fold — how the seq≡par tests catch a
     * non-deterministic aggregation path.
     */
    static uint64_t chainFingerprint(uint64_t chain, uint64_t fp);

  private:
    void validate() const;
    void ensureBins(); ///< lazy: an unused sketch owns no counters
    size_t numBins() const
    {
        return (static_cast<size_t>(cfg_.octaves) + 1)
               << cfg_.sub_bits;
    }
    size_t binIndex(uint64_t u) const;
    double binLo(size_t idx) const;
    double binHi(size_t idx) const;

    Config cfg_;
    std::vector<uint64_t> bins_;
    uint64_t count_ = 0;
    uint64_t underflow_ = 0; ///< negative values (clamped to min())
    uint64_t overflow_ = 0;  ///< beyond the top octave (clamped to max())
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * A latency accumulator that is either a raw SampleSet (the default —
 * retains every sample for figure-quality CDFs/PMFs at small scale) or
 * a fixed-memory QuantileSketch (paper-scale runs, where retaining
 * every sample and sorting at fold time are the measured scale
 * killers).  Publicly derives from SampleSet so raw-mode call sites
 * (cdf(), logPmf(), raw(), reference bindings) keep working unchanged;
 * the shadowing accessors dispatch on the mode.  Raw-only queries on a
 * sketched stat are fatal — the samples were never retained.
 */
class LatencyStat : public SampleSet {
  public:
    enum class Mode { Raw, Sketch };

    LatencyStat() = default;

    /** Switch to sketch mode; must be called before the first record. */
    void enableSketch(const QuantileSketch::Config &cfg =
                          QuantileSketch::Config());

    Mode mode() const { return mode_; }
    bool sketched() const { return mode_ == Mode::Sketch; }

    void record(double x);

    /** Mode must match on both sides (fatal otherwise). */
    void merge(const LatencyStat &other);

    size_t count() const;
    bool empty() const { return count() == 0; }
    double mean() const;
    double min() const;
    double max() const;
    double percentile(double p) const;

    /** Raw-mode view (fatal when sketched: samples were not retained). */
    const SampleSet &samples() const;

    /** Sketch-mode view (fatal in raw mode). */
    const QuantileSketch &sketch() const;

    /**
     * Deterministic digest: the sketch fingerprint when sketched, an
     * insertion-order hash of the raw samples otherwise.
     */
    uint64_t fingerprint() const;

  private:
    Mode mode_ = Mode::Raw;
    QuantileSketch sketch_;
};

/**
 * Fixed-memory histogram over logarithmic bins; used where sample counts
 * are too large to retain (engine microbenchmarks).
 */
class LogHistogram {
  public:
    /** Bins span [lo, hi) with @p bins_per_decade log10 subdivisions. */
    LogHistogram(double lo, double hi, int bins_per_decade);

    void record(double x);

    uint64_t count() const { return count_; }
    uint64_t underflowCount() const { return underflow_; }
    uint64_t overflowCount() const { return overflow_; }

    /**
     * Rank-based percentile over *every* recorded sample, including the
     * underflow/overflow tallies.  Contract: with r = clamp(ceil(p/100
     * * count), 1, count), ranks that land in the underflow mass clamp
     * to the lower edge `lo`, ranks inside a bin return the bin's
     * log-midpoint, and ranks in the overflow mass clamp to the
     * histogram's upper edge — out-of-range samples shift interior
     * percentiles correctly and the tails saturate at the edges instead
     * of being silently dropped from the rank calculation.
     */
    double percentile(double p) const;

  private:
    double upperEdge() const;

    double lo_;
    double hi_;
    double log_lo_;
    double inv_bin_width_;
    std::vector<uint64_t> bins_;
    uint64_t count_ = 0;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
};

} // namespace diablo

#endif // DIABLO_CORE_STATS_HH_
