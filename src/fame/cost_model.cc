#include "fame/cost_model.hh"

namespace diablo {
namespace fame {

DiabloCostParams
DiabloCostParams::bee3Prototype()
{
    DiabloCostParams p;
    p.board_cost_usd = 15000.0;
    // 6 Rack-FPGA boards carried 2,976 servers; with the 3 Switch-FPGA
    // boards a 9-board system models a 2,976-node array: ~331 nodes per
    // board of the mixed system.  For scaling estimates use the
    // rack-board density (4 FPGAs x 124 servers = 496).
    p.nodes_per_board = 496;
    p.infrastructure_usd = 5000.0;
    return p;
}

DiabloCostParams
DiabloCostParams::board2015()
{
    DiabloCostParams p;
    // "Using the latest 20nm FPGAs in 2015 and with a redesigned board,
    // we estimate we could now potentially build a 32,000-node DIABLO
    // system using just 32 FPGAs and an overall cost of $150K including
    // DRAM": 32 boards x $4,531 + infrastructure ~= $150K.
    p.board_cost_usd = 4531.25;
    p.nodes_per_board = 1000;
    p.infrastructure_usd = 5000.0;
    return p;
}

uint32_t
CostModel::boardsNeeded(uint32_t nodes, const DiabloCostParams &p) const
{
    return (nodes + p.nodes_per_board - 1) / p.nodes_per_board;
}

double
CostModel::diabloCapexUsd(uint32_t nodes, const DiabloCostParams &p) const
{
    return boardsNeeded(nodes, p) * p.board_cost_usd +
           p.infrastructure_usd;
}

double
CostModel::wscCapexUsd(uint32_t nodes, const WscCostParams &p) const
{
    return nodes * p.capex_per_server_usd;
}

double
CostModel::wscOpexPerMonthUsd(uint32_t nodes, const WscCostParams &p) const
{
    return nodes * p.opex_per_server_month_usd;
}

} // namespace fame
} // namespace diablo
