#include "fame/perf_model.hh"

namespace diablo {
namespace fame {

HostPlatform
HostPlatform::bee3()
{
    return HostPlatform{};
}

double
PerfModel::slowdown(double target_ghz) const
{
    // Each pipeline advances one thread's target cycle per
    // (stall_factor) host cycles; T threads share it round-robin.
    const double target_hz = target_ghz * 1e9;
    const double per_thread_rate =
        host_.host_clock_mhz * 1e6 /
        (host_.threads_per_pipeline * host_.stall_factor);
    return target_hz / per_thread_rate;
}

SimTime
PerfModel::wallClockFor(SimTime target_time, double target_ghz) const
{
    return target_time.scaled(slowdown(target_ghz));
}

double
PerfModel::softwareSlowdown(double target_ghz, double sw_host_ghz,
                            double host_instr_per_target_cycle)
{
    // One target core simulated at host_instr_per_target_cycle host
    // instructions per target cycle, serialized over all target nodes
    // is impractical; even per-node it is orders of magnitude slower.
    const double target_hz = target_ghz * 1e9;
    const double sim_rate =
        sw_host_ghz * 1e9 / host_instr_per_target_cycle;
    return target_hz / sim_rate;
}

} // namespace fame
} // namespace diablo
