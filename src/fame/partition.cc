#include "fame/partition.hh"

#include <algorithm>
#include <barrier>
#include <thread>

#include "core/log.hh"

namespace diablo {
namespace fame {

void
PartitionSet::Channel::post(SimTime when, std::function<void()> fn)
{
    pending_.push_back(Msg{when, std::move(fn)});
}

PartitionSet::PartitionSet(size_t n)
{
    if (n == 0) {
        fatal("PartitionSet: need at least one partition");
    }
    parts_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        parts_.push_back(std::make_unique<Simulator>());
    }
}

PartitionSet::~PartitionSet() = default;

PartitionSet::Channel &
PartitionSet::makeChannel(size_t src, size_t dst, SimTime min_latency)
{
    if (src >= parts_.size() || dst >= parts_.size()) {
        fatal("PartitionSet: channel endpoints out of range");
    }
    if (min_latency <= SimTime()) {
        fatal("PartitionSet: channel latency must be positive "
              "(conservative lookahead)");
    }
    auto ch = std::make_unique<Channel>();
    ch->owner_ = this;
    ch->src_ = src;
    ch->dst_ = dst;
    ch->min_latency_ = min_latency;
    channels_.push_back(std::move(ch));
    return *channels_.back();
}

SimTime
PartitionSet::quantum() const
{
    SimTime q = SimTime::max();
    for (const auto &ch : channels_) {
        q = std::min(q, ch->min_latency_);
    }
    if (q == SimTime::max()) {
        q = SimTime::ms(1); // no channels: partitions are independent
    }
    return q;
}

void
PartitionSet::drainChannels()
{
    // Fixed channel order keeps destination-queue insertion sequence —
    // and therefore same-timestamp tie-breaking — deterministic.
    for (auto &ch : channels_) {
        Simulator &dst = *parts_[ch->dst_];
        for (auto &msg : ch->pending_) {
            if (msg.when < dst.now()) {
                panic("PartitionSet: causality violation (message at %s "
                      "behind partition clock %s)",
                      msg.when.str().c_str(), dst.now().str().c_str());
            }
            dst.scheduleAt(msg.when, std::move(msg.fn));
        }
        ch->pending_.clear();
    }
}

void
PartitionSet::runSequential(SimTime until)
{
    const SimTime q = quantum();
    SimTime t;
    while (t < until) {
        const SimTime bound = std::min(t + q, until);
        for (auto &p : parts_) {
            p->runBefore(bound);
        }
        drainChannels();
        t = bound;
        ++quanta_;
    }
}

void
PartitionSet::runParallel(SimTime until)
{
    const SimTime q = quantum();
    const size_t n = parts_.size();

    SimTime t;
    SimTime bound = std::min(t + q, until);
    bool done = t >= until;

    // Completion step runs on the last thread arriving at the barrier:
    // drain channels and advance the window, single-threaded.
    auto on_phase_end = [&]() noexcept {
        drainChannels();
        t = bound;
        ++quanta_;
        bound = std::min(t + q, until);
        if (t >= until) {
            done = true;
        }
    };
    std::barrier barrier(static_cast<std::ptrdiff_t>(n), on_phase_end);

    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        workers.emplace_back([this, i, &barrier, &bound, &done] {
            while (true) {
                parts_[i]->runBefore(bound);
                barrier.arrive_and_wait();
                if (done) {
                    return;
                }
            }
        });
    }
    for (auto &w : workers) {
        w.join();
    }
}

uint64_t
PartitionSet::totalExecutedEvents() const
{
    uint64_t n = 0;
    for (const auto &p : parts_) {
        n += p->executedEvents();
    }
    return n;
}

} // namespace fame
} // namespace diablo
