#include "fame/partition.hh"

#include <algorithm>
#include <barrier>
#include <thread>

#include "core/log.hh"

namespace diablo {
namespace fame {

void
PartitionSet::Channel::post(SimTime when, EventFn fn)
{
    pending_.push_back(Msg{when, std::move(fn)});
}

PartitionSet::PartitionSet(size_t n)
{
    if (n == 0) {
        fatal("PartitionSet: need at least one partition");
    }
    parts_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        parts_.push_back(std::make_unique<Simulator>());
    }
}

PartitionSet::~PartitionSet() = default;

PartitionSet::Channel &
PartitionSet::makeChannel(size_t src, size_t dst, SimTime min_latency)
{
    if (src >= parts_.size() || dst >= parts_.size()) {
        fatal("PartitionSet: channel endpoints out of range");
    }
    if (min_latency <= SimTime()) {
        fatal("PartitionSet: channel latency must be positive "
              "(conservative lookahead)");
    }
    auto ch = std::make_unique<Channel>();
    ch->owner_ = this;
    ch->src_ = src;
    ch->dst_ = dst;
    ch->min_latency_ = min_latency;
    channels_.push_back(std::move(ch));
    return *channels_.back();
}

void
PartitionSet::setQuantum(SimTime q)
{
    if (q < SimTime()) {
        fatal("PartitionSet: quantum must be positive");
    }
    quantum_override_ = q;
}

SimTime
PartitionSet::quantum() const
{
    SimTime min_latency = SimTime::max();
    for (const auto &ch : channels_) {
        min_latency = std::min(min_latency, ch->min_latency_);
    }
    if (quantum_override_ > SimTime()) {
        if (quantum_override_ > min_latency) {
            fatal("PartitionSet: quantum override %s exceeds minimum "
                  "channel latency %s (breaks conservative lookahead)",
                  quantum_override_.str().c_str(),
                  min_latency.str().c_str());
        }
        return quantum_override_;
    }
    if (min_latency == SimTime::max()) {
        return kNoChannelQuantum; // no channels: partitions independent
    }
    return min_latency;
}

void
PartitionSet::drainChannels()
{
    // Fixed channel order keeps destination-queue insertion sequence —
    // and therefore same-timestamp tie-breaking — deterministic.
    for (auto &ch : channels_) {
        Simulator &dst = *parts_[ch->dst_];
        for (auto &msg : ch->pending_) {
            if (msg.when < dst.now()) {
                panic("PartitionSet: causality violation (message at %s "
                      "behind partition clock %s)",
                      msg.when.str().c_str(), dst.now().str().c_str());
            }
            dst.scheduleAt(msg.when, std::move(msg.fn));
        }
        ch->pending_.clear();
    }
}

SimTime
PartitionSet::earliestPendingTime()
{
    SimTime earliest = SimTime::max();
    for (auto &p : parts_) {
        earliest = std::min(earliest, p->nextEventTime());
    }
    for (const auto &ch : channels_) {
        for (const auto &msg : ch->pending_) {
            earliest = std::min(earliest, msg.when);
        }
    }
    return earliest;
}

SimTime
PartitionSet::nextWindowStart(SimTime t, SimTime q, SimTime until)
{
    if (!skip_idle_) {
        return t;
    }
    const SimTime earliest = earliestPendingTime();
    if (earliest >= until) {
        return until; // nothing left before the horizon
    }
    if (earliest < t + q) {
        return t; // current window has work; no skip
    }
    // Snap down to the quantum grid so the skipped run executes the
    // exact same window sequence a patient unskipped run would.
    const SimTime snapped = earliest - (earliest % q);
    return std::max(t, snapped);
}

void
PartitionSet::runSequential(SimTime until)
{
    const SimTime q = quantum();
    SimTime t;
    while (t < until) {
        t = nextWindowStart(t, q, until);
        if (t >= until) {
            break;
        }
        const SimTime bound = std::min(t + q, until);
        for (auto &p : parts_) {
            p->runBefore(bound);
        }
        drainChannels();
        t = bound;
        ++quanta_;
    }
}

void
PartitionSet::runParallel(SimTime until)
{
    const SimTime q = quantum();
    const size_t n = parts_.size();

    SimTime t = nextWindowStart(SimTime(), q, until);
    SimTime bound = std::min(t + q, until);
    bool done = t >= until;

    // Completion step runs on the last thread arriving at the barrier:
    // drain channels and advance (possibly skipping idle quanta),
    // single-threaded.  The same nextWindowStart rule as runSequential
    // keeps the window sequence — and thus all results — identical.
    auto on_phase_end = [&]() noexcept {
        drainChannels();
        t = bound;
        ++quanta_;
        t = nextWindowStart(t, q, until);
        bound = std::min(t + q, until);
        if (t >= until) {
            done = true;
        }
    };
    std::barrier barrier(static_cast<std::ptrdiff_t>(n), on_phase_end);

    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        workers.emplace_back([this, i, &barrier, &bound, &done] {
            while (!done) {
                parts_[i]->runBefore(bound);
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto &w : workers) {
        w.join();
    }
}

uint64_t
PartitionSet::totalExecutedEvents() const
{
    uint64_t n = 0;
    for (const auto &p : parts_) {
        n += p->executedEvents();
    }
    return n;
}

} // namespace fame
} // namespace diablo
