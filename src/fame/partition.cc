#include "fame/partition.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "core/log.hh"

namespace diablo {
namespace fame {

void
PartitionSet::Channel::post(SimTime when, EventFn fn)
{
    // Conservative contract, checked at the source: a post below
    // now + min_latency means the wiring advertised more lookahead than
    // the model really has.  Catch it here, where the offending channel
    // and times are known, instead of as a drain-time causality panic
    // (or worse, a message landing exactly on the destination clock and
    // silently executing one quantum late).
    const SimTime now = owner_->parts_[src_]->now();
    if (when < now + min_latency_) {
        panic("PartitionSet: channel %s: post(when=%s) violates "
              "conservative contract: src partition %zu clock %s + "
              "min latency %s (causality violation)",
              name_.c_str(), when.str().c_str(), src_,
              now.str().c_str(), min_latency_.str().c_str());
    }
    if (pending_.empty()) {
        // First post of this quantum: register on the posting worker's
        // dirty list.  Posts run in source-partition events, so exactly
        // one worker — the one the source partition is fused onto —
        // ever touches this channel (and this list) within a quantum.
        owner_->markChannelDirty(index_, src_);
    }
    pending_.push_back(Msg{when, std::move(fn)});
}

void
PartitionSet::markChannelDirty(uint32_t index, size_t src)
{
    WorkerLane &lane = lanes_[worker_of_[src]];
    if (lane.dirty_count == lane.dirty_cap) {
        growLaneDirty(lane);
    }
    lane.dirty[lane.dirty_count++] = index;
}

void
PartitionSet::growLaneDirty(WorkerLane &lane)
{
    // Worst case every channel goes dirty in one quantum, so sizing to
    // the channel count makes growth a once-per-topology event.  The
    // old storage is abandoned inside the lane's arena (bytes, not
    // allocations, are the cost, and only on growth).
    const uint32_t cap =
        std::max({lane.dirty_cap * 2,
                  static_cast<uint32_t>(channels_.size()), 8u});
    auto *fresh = static_cast<uint32_t *>(
        lane.arena.allocate(cap * sizeof(uint32_t), alignof(uint32_t)));
    if (lane.dirty_count != 0) {
        std::memcpy(fresh, lane.dirty, lane.dirty_count * sizeof(uint32_t));
    }
    lane.dirty = fresh;
    lane.dirty_cap = cap;
}

PartitionSet::PartitionSet(size_t n) : topo_(CpuTopology::host())
{
    if (n == 0) {
        fatal("PartitionSet: need at least one partition");
    }
    parts_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        parts_.push_back(std::make_unique<Simulator>());
    }
    last_run_executed_.assign(n, 0);
    weights_.assign(n, 1.0);
    groups_.assign(n, -1);
    // A valid 1-worker fusion exists from birth, so Channel::post finds
    // a dirty lane even before the first run sets up its own fusion.
    worker_of_.assign(n, 0);
    worker_parts_.resize(1);
    ensureLanes(1);
    lane_active_ = 1;
    worker_cpu_.assign(1, -1);
}

void
PartitionSet::ensureLanes(size_t workers)
{
    if (workers <= lane_count_) {
        return;
    }
    // Lanes are rebuilt wholesale: dirty lists are empty between runs
    // (every quantum drains them) and horizons revalidate lazily, so
    // nothing in the old lanes is worth migrating.
    lanes_ = std::make_unique<WorkerLane[]>(workers);
    lane_count_ = workers;
}

PartitionSet::~PartitionSet()
{
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        pool_shutdown_ = true;
    }
    pool_work_cv_.notify_all();
    for (auto &w : pool_) {
        w.join();
    }
    // Drain every queue before any Simulator is destroyed: a pending
    // cross-partition delivery in partition i's queue can own a packet
    // whose recycling pool is attached to partition j, so no queue may
    // still hold packets once the first pool dies.  (channels_ is
    // declared after parts_ and already destructs first, covering
    // messages still buffered in flight.)
    for (auto &p : parts_) {
        p->discardPendingEvents();
    }
}

PartitionSet::Channel &
PartitionSet::makeChannel(size_t src, size_t dst, SimTime min_latency,
                          std::string name)
{
    if (src >= parts_.size() || dst >= parts_.size()) {
        fatal("PartitionSet: channel endpoints out of range");
    }
    if (min_latency <= SimTime()) {
        fatal("PartitionSet: channel latency must be positive "
              "(conservative lookahead)");
    }
    auto ch = std::make_unique<Channel>();
    ch->owner_ = this;
    ch->src_ = src;
    ch->dst_ = dst;
    ch->index_ = static_cast<uint32_t>(channels_.size());
    ch->min_latency_ = min_latency;
    ch->name_ = name.empty()
                    ? strprintf("ch%zu(%zu->%zu)", channels_.size(), src,
                                dst)
                    : std::move(name);
    channels_.push_back(std::move(ch));
    quantum_cache_valid_ = false; // min channel latency may have dropped
    return *channels_.back();
}

void
PartitionSet::setQuantum(SimTime q)
{
    if (q <= SimTime()) {
        fatal("PartitionSet: quantum must be strictly positive (got %s); "
              "use clearQuantum() to drop an override",
              q.str().c_str());
    }
    quantum_override_ = q;
    quantum_cache_valid_ = false;
}

SimTime
PartitionSet::computeQuantum() const
{
    SimTime min_latency = SimTime::max();
    for (const auto &ch : channels_) {
        min_latency = std::min(min_latency, ch->min_latency_);
    }
    if (quantum_override_ > SimTime()) {
        if (quantum_override_ > min_latency) {
            fatal("PartitionSet: quantum override %s exceeds minimum "
                  "channel latency %s (breaks conservative lookahead)",
                  quantum_override_.str().c_str(),
                  min_latency.str().c_str());
        }
        return quantum_override_;
    }
    if (min_latency == SimTime::max()) {
        return kNoChannelQuantum; // no channels: partitions independent
    }
    return min_latency;
}

SimTime
PartitionSet::quantum() const
{
    if (!quantum_cache_valid_) {
        quantum_cache_ = computeQuantum();
        quantum_cache_valid_ = true;
    }
    return quantum_cache_;
}

void
PartitionSet::setParallelism(size_t n)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setParallelism while a parallel run is "
              "live");
    }
    if (n > parts_.size()) {
        // Extra workers could never own a partition; accepting the
        // request silently used to make parallelism() lie to tooling.
        if (!clamp_warned_) {
            log::warn("PartitionSet: parallelism %zu exceeds partition "
                      "count %zu; clamping to %zu",
                      n, parts_.size(), parts_.size());
            clamp_warned_ = true;
        }
        n = parts_.size();
    }
    threads_ = n;
}

void
PartitionSet::setWorkerPinning(bool enable)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setWorkerPinning while a parallel run is "
              "live");
    }
    pin_mode_ = enable ? PinMode::Auto : PinMode::Off;
    pin_cpus_.clear();
}

void
PartitionSet::setWorkerCpus(std::vector<int> cpus)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setWorkerCpus while a parallel run is "
              "live");
    }
    for (int c : cpus) {
        if (topo_.llcGroupOf(c) < 0) {
            fatal("PartitionSet: setWorkerCpus: cpu %d is not an online "
                  "CPU of this host's topology (%zu CPUs)",
                  c, topo_.cpuCount());
        }
    }
    pin_cpus_ = std::move(cpus);
    pin_mode_ = PinMode::Explicit;
}

void
PartitionSet::setCpuTopology(CpuTopology topo)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setCpuTopology while a parallel run is "
              "live");
    }
    topo_ = std::move(topo);
}

size_t
PartitionSet::parallelism() const
{
    if (threads_ != 0) {
        return threads_;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void
PartitionSet::setPartitionWeight(size_t i, double w)
{
    if (i >= parts_.size()) {
        fatal("PartitionSet: setPartitionWeight(%zu): out of range", i);
    }
    if (!(w > 0.0)) {
        fatal("PartitionSet: partition weight must be positive");
    }
    weights_[i] = w;
}

void
PartitionSet::setPartitionGroup(size_t i, int64_t group)
{
    if (i >= parts_.size()) {
        fatal("PartitionSet: setPartitionGroup(%zu): out of range", i);
    }
    groups_[i] = group;
}

void
PartitionSet::assignPartitions(size_t workers)
{
    worker_parts_.resize(workers);
    for (auto &wp : worker_parts_) {
        wp.clear();
    }
    worker_of_.resize(parts_.size());
    ensureLanes(workers);
    lane_active_ = workers;
    for (size_t w = 0; w < workers; ++w) {
        // Events may have been scheduled from outside between runs;
        // horizons revalidate on each worker's first window.
        lanes_[w].horizon_valid = false;
        lanes_[w].published_min = SimTime::max();
    }

    std::vector<double> load(workers, 0.0);
    if (workers == 1) {
        for (size_t p = 0; p < parts_.size(); ++p) {
            worker_of_[p] = 0;
            worker_parts_[0].push_back(p);
            load[0] += weights_[p];
        }
        placeWorkers(workers, load);
        return;
    }

    // Deterministic two-level LPT greedy.  Level 1 works on locality
    // groups (setPartitionGroup; ungrouped partitions are singletons):
    // heaviest group first, onto the least-loaded worker (ties: lowest
    // worker id) — *if* placing the whole group there would not push
    // that worker past 1.25x the ideal per-worker share.  A group too
    // heavy to keep together spills to level 2, where its partitions
    // are placed individually by plain LPT.  With many more groups
    // than workers this preserves rack->array locality; with few heavy
    // groups it degenerates to the old partition-level balance.
    // Results never depend on the assignment — only wall-clock does.
    double total = 0.0;
    for (size_t p = 0; p < parts_.size(); ++p) {
        total += weights_[p];
    }
    const double ideal = total / static_cast<double>(workers);
    const double cap = ideal * 1.25;

    // Collect groups in first-appearance order (deterministic).
    std::vector<std::vector<size_t>> group_parts;
    std::vector<double> group_weight;
    {
        std::map<int64_t, size_t> seen;
        for (size_t p = 0; p < parts_.size(); ++p) {
            if (groups_[p] < 0) {
                group_parts.push_back({p});
                group_weight.push_back(weights_[p]);
                continue;
            }
            auto it = seen.find(groups_[p]);
            if (it == seen.end()) {
                seen.emplace(groups_[p], group_parts.size());
                group_parts.push_back({p});
                group_weight.push_back(weights_[p]);
            } else {
                group_parts[it->second].push_back(p);
                group_weight[it->second] += weights_[p];
            }
        }
    }

    std::vector<size_t> gorder(group_parts.size());
    for (size_t g = 0; g < gorder.size(); ++g) {
        gorder[g] = g;
    }
    std::stable_sort(gorder.begin(), gorder.end(),
                     [&group_weight](size_t a, size_t b) {
                         return group_weight[a] > group_weight[b];
                     });

    auto leastLoaded = [&load, workers]() {
        size_t best = 0;
        for (size_t w = 1; w < workers; ++w) {
            if (load[w] < load[best]) {
                best = w;
            }
        }
        return best;
    };
    auto place = [this, &load](size_t p, size_t w) {
        load[w] += weights_[p];
        worker_of_[p] = static_cast<uint32_t>(w);
        worker_parts_[w].push_back(p);
    };

    std::vector<size_t> spill;
    for (size_t g : gorder) {
        const size_t best = leastLoaded();
        if (group_parts[g].size() > 1 &&
            load[best] + group_weight[g] > cap) {
            // Keeping this group together would overload the worker;
            // remember its partitions for level-2 placement.
            spill.insert(spill.end(), group_parts[g].begin(),
                         group_parts[g].end());
            continue;
        }
        for (size_t p : group_parts[g]) {
            place(p, best);
        }
    }
    std::stable_sort(spill.begin(), spill.end(),
                     [this](size_t a, size_t b) {
                         return weights_[a] > weights_[b];
                     });
    for (size_t p : spill) {
        place(p, leastLoaded());
    }
    // Within one worker, keep partition-index order (pure cosmetics —
    // partitions are independent inside a quantum).
    for (auto &wp : worker_parts_) {
        std::sort(wp.begin(), wp.end());
    }
    placeWorkers(workers, load);
}

void
PartitionSet::placeWorkers(size_t workers, const std::vector<double> &load)
{
    worker_cpu_.assign(workers, -1);
    if (pin_mode_ == PinMode::Explicit) {
        for (size_t w = 0; w < workers && w < pin_cpus_.size(); ++w) {
            worker_cpu_[w] = pin_cpus_[w];
        }
    } else if (pin_mode_ == PinMode::Auto) {
        // Pin only when every worker can own a CPU: an oversubscribed
        // run gains nothing from affinity (the barrier already parks
        // immediately), and a solo run should not perturb the caller's
        // mask for a degenerate fusion.
        if (workers < 2 || workers > topo_.cpuCount()) {
            for (size_t w = 0; w < workers; ++w) {
                lanes_[w].cpu = -1;
            }
            return;
        }
        // Worker-to-worker affinity = number of channels crossing the
        // pair.  Heaviest worker first, each taking the free CPU with
        // the most affinity into LLC groups of already-placed partners
        // (ties: lowest cpu id) — so fused sets that exchange messages
        // land on LLC siblings and the serial drain stays on-package.
        std::vector<uint32_t> aff(workers * workers, 0);
        for (const auto &ch : channels_) {
            const uint32_t a = worker_of_[ch->src_];
            const uint32_t b = worker_of_[ch->dst_];
            if (a != b) {
                ++aff[a * workers + b];
                ++aff[b * workers + a];
            }
        }
        std::vector<size_t> order(workers);
        for (size_t w = 0; w < workers; ++w) {
            order[w] = w;
        }
        std::stable_sort(order.begin(), order.end(),
                         [&load](size_t a, size_t b) {
                             return load[a] > load[b];
                         });
        std::vector<char> taken(topo_.cpuCount(), 0);
        for (size_t w : order) {
            size_t best = SIZE_MAX;
            uint64_t best_score = 0;
            for (size_t c = 0; c < topo_.cpuCount(); ++c) {
                if (taken[c]) {
                    continue;
                }
                uint64_t score = 0;
                for (size_t v = 0; v < workers; ++v) {
                    if (v == w || worker_cpu_[v] < 0) {
                        continue;
                    }
                    if (topo_.llcGroupOf(worker_cpu_[v]) == topo_.llc_of[c]) {
                        score += aff[w * workers + v];
                    }
                }
                if (best == SIZE_MAX || score > best_score) {
                    best = c;
                    best_score = score;
                }
            }
            if (best == SIZE_MAX) {
                continue; // unreachable: workers <= cpuCount above
            }
            taken[best] = 1;
            worker_cpu_[w] = topo_.cpus[best];
        }
    }
    for (size_t w = 0; w < workers; ++w) {
        lanes_[w].cpu = worker_cpu_[w];
    }
}

SimTime
PartitionSet::drainDirtyChannels()
{
    // Merge the per-worker dirty lists and drain in channel-creation
    // order: the destination-queue insertion sequence — and therefore
    // same-timestamp tie-breaking — must not depend on the fusion.
    drain_scratch_.clear();
    for (size_t w = 0; w < lane_active_; ++w) {
        WorkerLane &lane = lanes_[w];
        if (lane.dirty_count != 0) {
            drain_scratch_.insert(drain_scratch_.end(), lane.dirty,
                                  lane.dirty + lane.dirty_count);
            lane.dirty_count = 0;
        }
    }
    if (drain_scratch_.empty()) {
        return SimTime::max();
    }
    std::sort(drain_scratch_.begin(), drain_scratch_.end());
    SimTime min_when = SimTime::max();
    for (uint32_t idx : drain_scratch_) {
        Channel &ch = *channels_[idx];
        Simulator &dst = *parts_[ch.dst_];
        WorkerLane &dst_lane = lanes_[worker_of_[ch.dst_]];
        SimTime ch_min = SimTime::max();
        for (auto &msg : ch.pending_) {
            if (msg.when < dst.now()) {
                panic("PartitionSet: channel %s: causality violation "
                      "(message at %s behind partition clock %s)",
                      ch.name_.c_str(), msg.when.str().c_str(),
                      dst.now().str().c_str());
            }
            ch_min = std::min(ch_min, msg.when);
            dst.scheduleAt(msg.when, std::move(msg.fn));
        }
        min_when = std::min(min_when, ch_min);
        // A message landing in the destination's fused set lowers that
        // worker's cached horizon; folding it here keeps the per-worker
        // quantum skip exact without any rescan.
        if (dst_lane.horizon_valid) {
            dst_lane.horizon = std::min(dst_lane.horizon, ch_min);
        }
        // clear() keeps capacity: steady-state traffic re-posts into
        // the same storage with no allocator round trips.
        ch.pending_.clear();
    }
    return min_when;
}

SimTime
PartitionSet::earliestPendingTime()
{
    SimTime earliest = SimTime::max();
    for (auto &p : parts_) {
        earliest = std::min(earliest, p->nextEventTime());
    }
    for (const auto &ch : channels_) {
        for (const auto &msg : ch->pending_) {
            earliest = std::min(earliest, msg.when);
        }
    }
    return earliest;
}

SimTime
PartitionSet::windowForEarliest(SimTime earliest, SimTime t, SimTime q,
                                SimTime until)
{
    if (earliest >= until) {
        return until; // nothing left before the horizon
    }
    if (earliest < t + q) {
        return t; // current window has work; no skip
    }
    // Snap down to the quantum grid so the skipped run executes the
    // exact same window sequence a patient unskipped run would.
    const SimTime snapped = earliest - (earliest % q);
    return std::max(t, snapped);
}

SimTime
PartitionSet::nextWindowStart(SimTime t, SimTime q, SimTime until)
{
    if (!skip_idle_) {
        return t;
    }
    return windowForEarliest(earliestPendingTime(), t, q, until);
}

void
PartitionSet::beginRunStats()
{
    run_start_quanta_ = quanta_;
    for (size_t i = 0; i < parts_.size(); ++i) {
        last_run_executed_[i] = parts_[i]->executedEvents();
    }
}

void
PartitionSet::endRunStats()
{
    last_run_quanta_ = quanta_ - run_start_quanta_;
    for (size_t i = 0; i < parts_.size(); ++i) {
        last_run_executed_[i] =
            parts_[i]->executedEvents() - last_run_executed_[i];
    }
}

uint64_t
PartitionSet::lastRunTotalExecutedEvents() const
{
    uint64_t n = 0;
    for (uint64_t e : last_run_executed_) {
        n += e;
    }
    return n;
}

void
PartitionSet::resetStats()
{
    quanta_ = 0;
    run_start_quanta_ = 0;
    last_run_quanta_ = 0;
    std::fill(last_run_executed_.begin(), last_run_executed_.end(),
              uint64_t{0});
}

void
PartitionSet::runSequential(SimTime until)
{
    const SimTime q = quantum();
    // The reference engine is a 1-worker fusion for channel-dirty
    // bookkeeping, but keeps the simple full-scan skip rule: it is the
    // obviously-correct baseline the incremental parallel engine is
    // checked against bit-for-bit.
    assignPartitions(1);
    beginRunStats();
    SimTime t;
    while (t < until) {
        t = nextWindowStart(t, q, until);
        if (t >= until) {
            break;
        }
        const SimTime bound = std::min(t + q, until);
        for (auto &p : parts_) {
            p->runBefore(bound);
        }
        drainDirtyChannels();
        t = bound;
        ++quanta_;
    }
    endRunStats();
}

void
PartitionSet::parallelQuantumEnd() noexcept
{
    // Runs on the last worker arriving at the barrier, single-threaded
    // (the barrier sequences the completion step before releasing
    // anyone).  Incremental form of runSequential's loop tail: the
    // earliest pending time is the fold of (a) each worker's published
    // post-quantum minimum over its fused partitions and (b) the
    // minima of the messages drained just now — the only two places
    // future work can live — so no partition or channel scan happens
    // here.  Window sequence, and thus every result, stays identical.
    const SimTime msg_min = drainDirtyChannels();
    par_t_ = par_bound_;
    ++quanta_;
    if (skip_idle_) {
        SimTime earliest = msg_min;
        for (size_t w = 0; w < par_workers_; ++w) {
            earliest = std::min(earliest, lanes_[w].published_min);
        }
        par_t_ = windowForEarliest(earliest, par_t_, par_q_, par_until_);
    }
    par_bound_ = std::min(par_t_ + par_q_, par_until_);
    if (par_t_ >= par_until_) {
        par_done_ = true;
    }
}

void
PartitionSet::workerBody(size_t w)
{
    const std::vector<size_t> &mine = worker_parts_[w];
    WorkerLane &lane = lanes_[w];
    const bool solo = par_workers_ == 1;
    uint32_t sense = 0;
    while (!par_done_) {
        const SimTime bound = par_bound_;
        if (!lane.horizon_valid || lane.horizon < bound) {
            // Work (or unknown state) below the bound: advance the
            // fused set and recompute the cached horizon.
            SimTime local_min = SimTime::max();
            for (size_t p : mine) {
                parts_[p]->runBefore(bound);
                local_min =
                    std::min(local_min, parts_[p]->nextEventTime());
            }
            lane.horizon = local_min;
            lane.horizon_valid = true;
        }
        // else: per-worker quantum skip.  Nothing of this fused set
        // fires before the bound — the serial drain folds incoming
        // messages into the horizon, so the cache is exact — and the
        // window costs one barrier round, zero partition scans.
        lane.published_min = lane.horizon;
        if (solo) {
            // Degenerate fusion: no siblings, so no barrier at all —
            // this is the near-runSequential configuration.
            parallelQuantumEnd();
        } else {
            sense ^= 1u;
            barrier_.arriveAndWait(
                static_cast<uint32_t>(w), sense,
                [this]() noexcept { parallelQuantumEnd(); });
        }
    }
}

void
PartitionSet::ensureWorkerPool(size_t pool_threads)
{
    // Grow on demand, never shrink: an idle pooled worker costs one
    // parked thread, re-spawning costs a clone() per run.
    while (pool_.size() < pool_threads) {
        const size_t worker_id = pool_.size() + 1; // caller is worker 0
        pool_.emplace_back([this, worker_id] { workerLoop(worker_id); });
    }
}

void
PartitionSet::workerLoop(size_t worker_id)
{
    // The thread's inherited mask is home base: runs whose placement
    // pins this worker narrow it, runs that don't restore it.
    const SavedAffinity home = saveCurrentThreadAffinity();
    bool pinned = false;
    uint64_t seen_generation = 0;
    for (;;) {
        bool participate;
        int cpu = -1;
        {
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_work_cv_.wait(lk, [&] {
                return pool_shutdown_ ||
                       pool_generation_ != seen_generation;
            });
            if (pool_shutdown_) {
                return;
            }
            seen_generation = pool_generation_;
            // A run fusing fewer workers than the pool holds leaves the
            // extra threads parked; they are not counted in
            // workers_running_ and never touch the barrier.
            participate = worker_id < par_workers_;
            if (participate) {
                cpu = worker_cpu_[worker_id];
            }
        }
        if (!participate) {
            continue;
        }
        if (cpu >= 0) {
            pinned = pinCurrentThreadToCpu(cpu);
        } else if (pinned) {
            restoreCurrentThreadAffinity(home);
            pinned = false;
        }
        // The initial window state was published under pool_mu_, and
        // every subsequent write happens in the barrier completion
        // step, which strongly-happens-before the workers resume.
        workerBody(worker_id);
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            if (--workers_running_ == 0) {
                pool_idle_cv_.notify_all();
            }
        }
    }
}

void
PartitionSet::runParallel(SimTime until)
{
    const SimTime q = quantum();
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        if (run_active_) {
            fatal("PartitionSet: runParallel re-entered while a parallel "
                  "run's workers are live");
        }
        run_active_ = true;
    }
    beginRunStats();

    const size_t workers = std::min(parts_.size(), parallelism());
    assignPartitions(workers);
    par_workers_ = workers;
    last_oversubscribed_ = workers > topo_.cpuCount();
    par_q_ = q;
    par_until_ = until;
    par_t_ = nextWindowStart(SimTime(), q, until);
    par_bound_ = std::min(par_t_ + q, until);
    par_done_ = par_t_ >= until;

    if (!par_done_) {
        // The caller doubles as worker 0: borrow its affinity for the
        // run when the placement pinned worker 0, and hand it back on
        // exit regardless of how the run went.
        const int cpu0 = worker_cpu_.empty() ? -1 : worker_cpu_[0];
        SavedAffinity home;
        bool pinned0 = false;
        if (cpu0 >= 0) {
            home = saveCurrentThreadAffinity();
            pinned0 = pinCurrentThreadToCpu(cpu0);
        }
        if (workers > 1) {
            barrier_.init(static_cast<uint32_t>(workers));
            // Spinning only pays when every worker owns a core; on an
            // oversubscribed host each spin slot burns the scheduler
            // quantum the sibling worker needs, so park immediately.
            barrier_.setSpinBudget(last_oversubscribed_
                                       ? 0
                                       : TreeBarrier::kDefaultSpinBudget);
            {
                std::lock_guard<std::mutex> lk(pool_mu_);
                ++pool_generation_;
                workers_running_ = workers - 1;
            }
            pool_work_cv_.notify_all();
            // Spawn missing pool threads only after the generation and
            // running count are published: a new thread starts with
            // seen_generation 0 and participates immediately.
            ensureWorkerPool(workers - 1);
            workerBody(0); // the calling thread is worker 0
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_idle_cv_.wait(lk, [&] { return workers_running_ == 0; });
        } else {
            workerBody(0); // fused to one worker: no pool, no barrier
        }
        if (pinned0) {
            restoreCurrentThreadAffinity(home);
        }
    }
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        run_active_ = false;
    }
    endRunStats();
}

uint64_t
PartitionSet::totalExecutedEvents() const
{
    uint64_t n = 0;
    for (const auto &p : parts_) {
        n += p->executedEvents();
    }
    return n;
}

} // namespace fame
} // namespace diablo
