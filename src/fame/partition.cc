#include "fame/partition.hh"

#include <algorithm>

#include "core/log.hh"

namespace diablo {
namespace fame {

void
PartitionSet::Channel::post(SimTime when, EventFn fn)
{
    // Conservative contract, checked at the source: a post below
    // now + min_latency means the wiring advertised more lookahead than
    // the model really has.  Catch it here, where the offending channel
    // and times are known, instead of as a drain-time causality panic
    // (or worse, a message landing exactly on the destination clock and
    // silently executing one quantum late).
    const SimTime now = owner_->parts_[src_]->now();
    if (when < now + min_latency_) {
        panic("PartitionSet: channel %s: post(when=%s) violates "
              "conservative contract: src partition %zu clock %s + "
              "min latency %s (causality violation)",
              name_.c_str(), when.str().c_str(), src_,
              now.str().c_str(), min_latency_.str().c_str());
    }
    pending_.push_back(Msg{when, std::move(fn)});
}

PartitionSet::PartitionSet(size_t n)
{
    if (n == 0) {
        fatal("PartitionSet: need at least one partition");
    }
    parts_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        parts_.push_back(std::make_unique<Simulator>());
    }
    last_run_executed_.assign(n, 0);
}

PartitionSet::~PartitionSet()
{
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        pool_shutdown_ = true;
    }
    pool_work_cv_.notify_all();
    for (auto &w : pool_) {
        w.join();
    }
}

PartitionSet::Channel &
PartitionSet::makeChannel(size_t src, size_t dst, SimTime min_latency,
                          std::string name)
{
    if (src >= parts_.size() || dst >= parts_.size()) {
        fatal("PartitionSet: channel endpoints out of range");
    }
    if (min_latency <= SimTime()) {
        fatal("PartitionSet: channel latency must be positive "
              "(conservative lookahead)");
    }
    auto ch = std::make_unique<Channel>();
    ch->owner_ = this;
    ch->src_ = src;
    ch->dst_ = dst;
    ch->min_latency_ = min_latency;
    ch->name_ = name.empty()
                    ? strprintf("ch%zu(%zu->%zu)", channels_.size(), src,
                                dst)
                    : std::move(name);
    channels_.push_back(std::move(ch));
    return *channels_.back();
}

void
PartitionSet::setQuantum(SimTime q)
{
    if (q <= SimTime()) {
        fatal("PartitionSet: quantum must be strictly positive (got %s); "
              "use clearQuantum() to drop an override",
              q.str().c_str());
    }
    quantum_override_ = q;
}

SimTime
PartitionSet::quantum() const
{
    SimTime min_latency = SimTime::max();
    for (const auto &ch : channels_) {
        min_latency = std::min(min_latency, ch->min_latency_);
    }
    if (quantum_override_ > SimTime()) {
        if (quantum_override_ > min_latency) {
            fatal("PartitionSet: quantum override %s exceeds minimum "
                  "channel latency %s (breaks conservative lookahead)",
                  quantum_override_.str().c_str(),
                  min_latency.str().c_str());
        }
        return quantum_override_;
    }
    if (min_latency == SimTime::max()) {
        return kNoChannelQuantum; // no channels: partitions independent
    }
    return min_latency;
}

void
PartitionSet::drainChannels()
{
    // Fixed channel order keeps destination-queue insertion sequence —
    // and therefore same-timestamp tie-breaking — deterministic.
    for (auto &ch : channels_) {
        Simulator &dst = *parts_[ch->dst_];
        for (auto &msg : ch->pending_) {
            if (msg.when < dst.now()) {
                panic("PartitionSet: channel %s: causality violation "
                      "(message at %s behind partition clock %s)",
                      ch->name_.c_str(), msg.when.str().c_str(),
                      dst.now().str().c_str());
            }
            dst.scheduleAt(msg.when, std::move(msg.fn));
        }
        ch->pending_.clear();
    }
}

SimTime
PartitionSet::earliestPendingTime()
{
    SimTime earliest = SimTime::max();
    for (auto &p : parts_) {
        earliest = std::min(earliest, p->nextEventTime());
    }
    for (const auto &ch : channels_) {
        for (const auto &msg : ch->pending_) {
            earliest = std::min(earliest, msg.when);
        }
    }
    return earliest;
}

SimTime
PartitionSet::nextWindowStart(SimTime t, SimTime q, SimTime until)
{
    if (!skip_idle_) {
        return t;
    }
    const SimTime earliest = earliestPendingTime();
    if (earliest >= until) {
        return until; // nothing left before the horizon
    }
    if (earliest < t + q) {
        return t; // current window has work; no skip
    }
    // Snap down to the quantum grid so the skipped run executes the
    // exact same window sequence a patient unskipped run would.
    const SimTime snapped = earliest - (earliest % q);
    return std::max(t, snapped);
}

void
PartitionSet::beginRunStats()
{
    run_start_quanta_ = quanta_;
    for (size_t i = 0; i < parts_.size(); ++i) {
        last_run_executed_[i] = parts_[i]->executedEvents();
    }
}

void
PartitionSet::endRunStats()
{
    last_run_quanta_ = quanta_ - run_start_quanta_;
    for (size_t i = 0; i < parts_.size(); ++i) {
        last_run_executed_[i] =
            parts_[i]->executedEvents() - last_run_executed_[i];
    }
}

uint64_t
PartitionSet::lastRunTotalExecutedEvents() const
{
    uint64_t n = 0;
    for (uint64_t e : last_run_executed_) {
        n += e;
    }
    return n;
}

void
PartitionSet::resetStats()
{
    quanta_ = 0;
    run_start_quanta_ = 0;
    last_run_quanta_ = 0;
    std::fill(last_run_executed_.begin(), last_run_executed_.end(),
              uint64_t{0});
}

void
PartitionSet::runSequential(SimTime until)
{
    const SimTime q = quantum();
    beginRunStats();
    SimTime t;
    while (t < until) {
        t = nextWindowStart(t, q, until);
        if (t >= until) {
            break;
        }
        const SimTime bound = std::min(t + q, until);
        for (auto &p : parts_) {
            p->runBefore(bound);
        }
        drainChannels();
        t = bound;
        ++quanta_;
    }
    endRunStats();
}

void
PartitionSet::parallelQuantumEnd() noexcept
{
    // Runs on the last worker arriving at the barrier, single-threaded
    // (std::barrier sequences the completion step before releasing
    // anyone).  Same nextWindowStart rule as runSequential, keeping the
    // window sequence — and thus all results — identical.
    drainChannels();
    par_t_ = par_bound_;
    ++quanta_;
    par_t_ = nextWindowStart(par_t_, par_q_, par_until_);
    par_bound_ = std::min(par_t_ + par_q_, par_until_);
    if (par_t_ >= par_until_) {
        par_done_ = true;
    }
}

void
PartitionSet::ensureWorkerPool()
{
    if (!pool_.empty()) {
        return;
    }
    pool_.reserve(parts_.size());
    for (size_t i = 0; i < parts_.size(); ++i) {
        pool_.emplace_back([this, i] { workerLoop(i); });
    }
}

void
PartitionSet::workerLoop(size_t i)
{
    uint64_t seen_generation = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_work_cv_.wait(lk, [&] {
                return pool_shutdown_ ||
                       pool_generation_ != seen_generation;
            });
            if (pool_shutdown_) {
                return;
            }
            seen_generation = pool_generation_;
        }
        // Quantum loop.  par_done_/par_bound_ are safe to read: the
        // initial values were published under pool_mu_, and every
        // subsequent write happens in the barrier completion step,
        // which strongly-happens-before the workers resume.
        while (!par_done_) {
            parts_[i]->runBefore(par_bound_);
            par_barrier_->arrive_and_wait();
        }
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            if (--workers_running_ == 0) {
                pool_idle_cv_.notify_all();
            }
        }
    }
}

void
PartitionSet::runParallel(SimTime until)
{
    const SimTime q = quantum();
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        if (run_active_) {
            fatal("PartitionSet: runParallel re-entered while a parallel "
                  "run's workers are live");
        }
        run_active_ = true;
    }
    beginRunStats();

    par_q_ = q;
    par_until_ = until;
    par_t_ = nextWindowStart(SimTime(), q, until);
    par_bound_ = std::min(par_t_ + q, until);
    par_done_ = par_t_ >= until;
    par_barrier_.emplace(static_cast<std::ptrdiff_t>(parts_.size()),
                         QuantumCompletion{this});

    ensureWorkerPool();
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        ++pool_generation_;
        workers_running_ = parts_.size();
    }
    pool_work_cv_.notify_all();

    {
        std::unique_lock<std::mutex> lk(pool_mu_);
        pool_idle_cv_.wait(lk, [&] { return workers_running_ == 0; });
        run_active_ = false;
    }
    par_barrier_.reset();
    endRunStats();
}

uint64_t
PartitionSet::totalExecutedEvents() const
{
    uint64_t n = 0;
    for (const auto &p : parts_) {
        n += p->executedEvents();
    }
    return n;
}

} // namespace fame
} // namespace diablo
