#include "fame/partition.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "core/interrupt.hh"
#include "core/log.hh"

namespace diablo {
namespace fame {

void
PartitionSet::Channel::validatePost(SimTime when) const
{
    // Conservative contract, checked at the source: a post below
    // now + min_latency means the wiring advertised more lookahead than
    // the model really has.  Catch it here, where the offending channel
    // and times are known, instead of as a drain-time causality panic
    // (or worse, a message landing exactly on the destination clock and
    // silently executing one quantum late).  Shared by post and
    // postRecord so the in-process and cross-process paths fail with
    // one diagnostic.
    const SimTime now = owner_->parts_[src_]->now();
    if (when < now + min_latency_) {
        panic("PartitionSet: channel %s: post(when=%s) violates "
              "conservative contract: src partition %zu clock %s + "
              "min latency %s (causality violation)",
              name_.c_str(), when.str().c_str(), src_,
              now.str().c_str(), min_latency_.str().c_str());
    }
}

void
PartitionSet::Channel::post(SimTime when, EventFn fn)
{
    validatePost(when);
    if (remote_out_) {
        panic("PartitionSet: channel %s: closure post on a channel whose "
              "destination partition is owned by another process (the "
              "wiring layer must use the record path)",
              name_.c_str());
    }
    if (pending_.empty()) {
        // First post of this quantum: register on the posting worker's
        // dirty list.  Posts run in source-partition events, so exactly
        // one worker — the one the source partition is fused onto —
        // ever touches this channel (and this list) within a quantum.
        owner_->markChannelDirty(index_, src_);
    }
    pending_.push_back(Msg{when, std::move(fn)});
}

void
PartitionSet::markChannelDirty(uint32_t index, size_t src)
{
    WorkerLane &lane = lanes_[worker_of_[src]];
    if (lane.dirty_count == lane.dirty_cap) {
        growLaneDirty(lane);
    }
    lane.dirty[lane.dirty_count++] = index;
}

void
PartitionSet::growLaneDirty(WorkerLane &lane)
{
    // Worst case every channel goes dirty in one quantum, so sizing to
    // the channel count makes growth a once-per-topology event.  The
    // old storage is abandoned inside the lane's arena (bytes, not
    // allocations, are the cost, and only on growth).
    const uint32_t cap =
        std::max({lane.dirty_cap * 2,
                  static_cast<uint32_t>(channels_.size()), 8u});
    auto *fresh = static_cast<uint32_t *>(
        lane.arena.allocate(cap * sizeof(uint32_t), alignof(uint32_t)));
    if (lane.dirty_count != 0) {
        std::memcpy(fresh, lane.dirty, lane.dirty_count * sizeof(uint32_t));
    }
    lane.dirty = fresh;
    lane.dirty_cap = cap;
}

PartitionSet::PartitionSet(size_t n) : topo_(CpuTopology::host())
{
    if (n == 0) {
        fatal("PartitionSet: need at least one partition");
    }
    parts_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        parts_.push_back(std::make_unique<Simulator>());
    }
    last_run_executed_.assign(n, 0);
    weights_.assign(n, 1.0);
    groups_.assign(n, -1);
    // A valid 1-worker fusion exists from birth, so Channel::post finds
    // a dirty lane even before the first run sets up its own fusion.
    worker_of_.assign(n, 0);
    worker_parts_.resize(1);
    ensureLanes(1);
    lane_active_ = 1;
    worker_cpu_.assign(1, -1);
}

void
PartitionSet::ensureLanes(size_t workers)
{
    if (workers <= lane_count_) {
        return;
    }
    // Lanes are rebuilt wholesale: dirty lists are empty between runs
    // (every quantum drains them) and horizons revalidate lazily, so
    // nothing in the old lanes is worth migrating.
    lanes_ = std::make_unique<WorkerLane[]>(workers);
    lane_count_ = workers;
}

PartitionSet::~PartitionSet()
{
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        pool_shutdown_ = true;
    }
    pool_work_cv_.notify_all();
    for (auto &w : pool_) {
        w.join();
    }
    // Drain every queue before any Simulator is destroyed: a pending
    // cross-partition delivery in partition i's queue can own a packet
    // whose recycling pool is attached to partition j, so no queue may
    // still hold packets once the first pool dies.  (channels_ is
    // declared after parts_ and already destructs first, covering
    // messages still buffered in flight.)
    for (auto &p : parts_) {
        p->discardPendingEvents();
    }
}

PartitionSet::Channel &
PartitionSet::makeChannel(size_t src, size_t dst, SimTime min_latency,
                          std::string name)
{
    if (src >= parts_.size() || dst >= parts_.size()) {
        fatal("PartitionSet: channel endpoints out of range");
    }
    if (coupled_) {
        fatal("PartitionSet: makeChannel after enableCoupled (channel "
              "classification is fixed at coupling time)");
    }
    if (min_latency <= SimTime()) {
        fatal("PartitionSet: channel latency must be positive "
              "(conservative lookahead)");
    }
    auto ch = std::make_unique<Channel>();
    ch->owner_ = this;
    ch->src_ = src;
    ch->dst_ = dst;
    ch->index_ = static_cast<uint32_t>(channels_.size());
    ch->min_latency_ = min_latency;
    ch->name_ = name.empty()
                    ? strprintf("ch%zu(%zu->%zu)", channels_.size(), src,
                                dst)
                    : std::move(name);
    channels_.push_back(std::move(ch));
    quantum_cache_valid_ = false; // min channel latency may have dropped
    return *channels_.back();
}

void
PartitionSet::setQuantum(SimTime q)
{
    if (q <= SimTime()) {
        fatal("PartitionSet: quantum must be strictly positive (got %s); "
              "use clearQuantum() to drop an override",
              q.str().c_str());
    }
    quantum_override_ = q;
    quantum_cache_valid_ = false;
}

SimTime
PartitionSet::computeQuantum() const
{
    SimTime min_latency = SimTime::max();
    for (const auto &ch : channels_) {
        min_latency = std::min(min_latency, ch->min_latency_);
    }
    if (quantum_override_ > SimTime()) {
        if (quantum_override_ > min_latency) {
            fatal("PartitionSet: quantum override %s exceeds minimum "
                  "channel latency %s (breaks conservative lookahead)",
                  quantum_override_.str().c_str(),
                  min_latency.str().c_str());
        }
        return quantum_override_;
    }
    if (min_latency == SimTime::max()) {
        return kNoChannelQuantum; // no channels: partitions independent
    }
    return min_latency;
}

SimTime
PartitionSet::quantum() const
{
    if (!quantum_cache_valid_) {
        quantum_cache_ = computeQuantum();
        quantum_cache_valid_ = true;
    }
    return quantum_cache_;
}

void
PartitionSet::setParallelism(size_t n)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setParallelism while a parallel run is "
              "live");
    }
    if (n > parts_.size()) {
        // Extra workers could never own a partition; accepting the
        // request silently used to make parallelism() lie to tooling.
        if (!clamp_warned_) {
            log::warn("PartitionSet: parallelism %zu exceeds partition "
                      "count %zu; clamping to %zu",
                      n, parts_.size(), parts_.size());
            clamp_warned_ = true;
        }
        n = parts_.size();
    }
    threads_ = n;
}

void
PartitionSet::setWorkerPinning(bool enable)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setWorkerPinning while a parallel run is "
              "live");
    }
    pin_mode_ = enable ? PinMode::Auto : PinMode::Off;
    pin_cpus_.clear();
}

void
PartitionSet::setWorkerCpus(std::vector<int> cpus)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setWorkerCpus while a parallel run is "
              "live");
    }
    for (int c : cpus) {
        if (topo_.llcGroupOf(c) < 0) {
            fatal("PartitionSet: setWorkerCpus: cpu %d is not an online "
                  "CPU of this host's topology (%zu CPUs)",
                  c, topo_.cpuCount());
        }
    }
    pin_cpus_ = std::move(cpus);
    pin_mode_ = PinMode::Explicit;
}

void
PartitionSet::setCpuTopology(CpuTopology topo)
{
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (run_active_) {
        fatal("PartitionSet: setCpuTopology while a parallel run is "
              "live");
    }
    topo_ = std::move(topo);
}

size_t
PartitionSet::parallelism() const
{
    if (threads_ != 0) {
        return threads_;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void
PartitionSet::setPartitionWeight(size_t i, double w)
{
    if (i >= parts_.size()) {
        fatal("PartitionSet: setPartitionWeight(%zu): out of range", i);
    }
    if (!(w > 0.0)) {
        fatal("PartitionSet: partition weight must be positive");
    }
    weights_[i] = w;
}

void
PartitionSet::setPartitionGroup(size_t i, int64_t group)
{
    if (i >= parts_.size()) {
        fatal("PartitionSet: setPartitionGroup(%zu): out of range", i);
    }
    groups_[i] = group;
}

void
PartitionSet::assignPartitions(size_t workers)
{
    worker_parts_.resize(workers);
    for (auto &wp : worker_parts_) {
        wp.clear();
    }
    worker_of_.resize(parts_.size());
    ensureLanes(workers);
    lane_active_ = workers;
    for (size_t w = 0; w < workers; ++w) {
        // Events may have been scheduled from outside between runs;
        // horizons revalidate on each worker's first window.
        lanes_[w].horizon_valid = false;
        lanes_[w].published_min = SimTime::max();
    }

    std::vector<double> load(workers, 0.0);
    if (workers == 1) {
        for (size_t p = 0; p < parts_.size(); ++p) {
            worker_of_[p] = 0;
            worker_parts_[0].push_back(p);
            load[0] += weights_[p];
        }
        placeWorkers(workers, load);
        return;
    }

    // Deterministic two-level LPT greedy.  Level 1 works on locality
    // groups (setPartitionGroup; ungrouped partitions are singletons):
    // heaviest group first, onto the least-loaded worker (ties: lowest
    // worker id) — *if* placing the whole group there would not push
    // that worker past 1.25x the ideal per-worker share.  A group too
    // heavy to keep together spills to level 2, where its partitions
    // are placed individually by plain LPT.  With many more groups
    // than workers this preserves rack->array locality; with few heavy
    // groups it degenerates to the old partition-level balance.
    // Results never depend on the assignment — only wall-clock does.
    double total = 0.0;
    for (size_t p = 0; p < parts_.size(); ++p) {
        total += weights_[p];
    }
    const double ideal = total / static_cast<double>(workers);
    const double cap = ideal * 1.25;

    // Collect groups in first-appearance order (deterministic).
    std::vector<std::vector<size_t>> group_parts;
    std::vector<double> group_weight;
    {
        std::map<int64_t, size_t> seen;
        for (size_t p = 0; p < parts_.size(); ++p) {
            if (groups_[p] < 0) {
                group_parts.push_back({p});
                group_weight.push_back(weights_[p]);
                continue;
            }
            auto it = seen.find(groups_[p]);
            if (it == seen.end()) {
                seen.emplace(groups_[p], group_parts.size());
                group_parts.push_back({p});
                group_weight.push_back(weights_[p]);
            } else {
                group_parts[it->second].push_back(p);
                group_weight[it->second] += weights_[p];
            }
        }
    }

    std::vector<size_t> gorder(group_parts.size());
    for (size_t g = 0; g < gorder.size(); ++g) {
        gorder[g] = g;
    }
    std::stable_sort(gorder.begin(), gorder.end(),
                     [&group_weight](size_t a, size_t b) {
                         return group_weight[a] > group_weight[b];
                     });

    auto leastLoaded = [&load, workers]() {
        size_t best = 0;
        for (size_t w = 1; w < workers; ++w) {
            if (load[w] < load[best]) {
                best = w;
            }
        }
        return best;
    };
    auto place = [this, &load](size_t p, size_t w) {
        load[w] += weights_[p];
        worker_of_[p] = static_cast<uint32_t>(w);
        worker_parts_[w].push_back(p);
    };

    std::vector<size_t> spill;
    for (size_t g : gorder) {
        const size_t best = leastLoaded();
        if (group_parts[g].size() > 1 &&
            load[best] + group_weight[g] > cap) {
            // Keeping this group together would overload the worker;
            // remember its partitions for level-2 placement.
            spill.insert(spill.end(), group_parts[g].begin(),
                         group_parts[g].end());
            continue;
        }
        for (size_t p : group_parts[g]) {
            place(p, best);
        }
    }
    std::stable_sort(spill.begin(), spill.end(),
                     [this](size_t a, size_t b) {
                         return weights_[a] > weights_[b];
                     });
    for (size_t p : spill) {
        place(p, leastLoaded());
    }
    // Within one worker, keep partition-index order (pure cosmetics —
    // partitions are independent inside a quantum).
    for (auto &wp : worker_parts_) {
        std::sort(wp.begin(), wp.end());
    }
    placeWorkers(workers, load);
}

void
PartitionSet::placeWorkers(size_t workers, const std::vector<double> &load)
{
    worker_cpu_.assign(workers, -1);
    if (pin_mode_ == PinMode::Explicit) {
        for (size_t w = 0; w < workers && w < pin_cpus_.size(); ++w) {
            worker_cpu_[w] = pin_cpus_[w];
        }
    } else if (pin_mode_ == PinMode::Auto) {
        // Pin only when every worker can own a CPU: an oversubscribed
        // run gains nothing from affinity (the barrier already parks
        // immediately), and a solo run should not perturb the caller's
        // mask for a degenerate fusion.
        if (workers < 2 || workers > topo_.cpuCount()) {
            for (size_t w = 0; w < workers; ++w) {
                lanes_[w].cpu = -1;
            }
            return;
        }
        // Worker-to-worker affinity = number of channels crossing the
        // pair.  Heaviest worker first, each taking the free CPU with
        // the most affinity into LLC groups of already-placed partners
        // (ties: lowest cpu id) — so fused sets that exchange messages
        // land on LLC siblings and the serial drain stays on-package.
        // Affinity into the same NUMA node but a different LLC scores
        // half the same-LLC tier: on a multi-socket host, when no
        // LLC-sibling CPU is free, a worker still lands on its
        // partners' node rather than paying a cross-socket drain.
        std::vector<uint32_t> aff(workers * workers, 0);
        for (const auto &ch : channels_) {
            const uint32_t a = worker_of_[ch->src_];
            const uint32_t b = worker_of_[ch->dst_];
            if (a != b) {
                ++aff[a * workers + b];
                ++aff[b * workers + a];
            }
        }
        std::vector<size_t> order(workers);
        for (size_t w = 0; w < workers; ++w) {
            order[w] = w;
        }
        std::stable_sort(order.begin(), order.end(),
                         [&load](size_t a, size_t b) {
                             return load[a] > load[b];
                         });
        std::vector<char> taken(topo_.cpuCount(), 0);
        for (size_t w : order) {
            size_t best = SIZE_MAX;
            uint64_t best_score = 0;
            for (size_t c = 0; c < topo_.cpuCount(); ++c) {
                if (taken[c]) {
                    continue;
                }
                uint64_t score = 0;
                const int c_numa = c < topo_.numa_of.size()
                                       ? topo_.numa_of[c]
                                       : 0;
                for (size_t v = 0; v < workers; ++v) {
                    if (v == w || worker_cpu_[v] < 0) {
                        continue;
                    }
                    if (topo_.llcGroupOf(worker_cpu_[v]) == topo_.llc_of[c]) {
                        score += 2 * aff[w * workers + v];
                    } else if (topo_.numaNodeOf(worker_cpu_[v]) == c_numa) {
                        score += aff[w * workers + v];
                    }
                }
                if (best == SIZE_MAX || score > best_score) {
                    best = c;
                    best_score = score;
                }
            }
            if (best == SIZE_MAX) {
                continue; // unreachable: workers <= cpuCount above
            }
            taken[best] = 1;
            worker_cpu_[w] = topo_.cpus[best];
        }
    }
    for (size_t w = 0; w < workers; ++w) {
        lanes_[w].cpu = worker_cpu_[w];
    }
}

SimTime
PartitionSet::drainDirtyChannels()
{
    // Merge the per-worker dirty lists and drain in channel-creation
    // order: the destination-queue insertion sequence — and therefore
    // same-timestamp tie-breaking — must not depend on the fusion.
    drain_scratch_.clear();
    for (size_t w = 0; w < lane_active_; ++w) {
        WorkerLane &lane = lanes_[w];
        if (lane.dirty_count != 0) {
            drain_scratch_.insert(drain_scratch_.end(), lane.dirty,
                                  lane.dirty + lane.dirty_count);
            lane.dirty_count = 0;
        }
    }
    if (drain_scratch_.empty()) {
        return SimTime::max();
    }
    std::sort(drain_scratch_.begin(), drain_scratch_.end());
    SimTime min_when = SimTime::max();
    for (uint32_t idx : drain_scratch_) {
        Channel &ch = *channels_[idx];
        Simulator &dst = *parts_[ch.dst_];
        WorkerLane &dst_lane = lanes_[worker_of_[ch.dst_]];
        SimTime ch_min = SimTime::max();
        for (auto &msg : ch.pending_) {
            if (msg.when < dst.now()) {
                panic("PartitionSet: channel %s: causality violation "
                      "(message at %s behind partition clock %s)",
                      ch.name_.c_str(), msg.when.str().c_str(),
                      dst.now().str().c_str());
            }
            ch_min = std::min(ch_min, msg.when);
            dst.scheduleAt(msg.when, std::move(msg.fn));
        }
        min_when = std::min(min_when, ch_min);
        // A message landing in the destination's fused set lowers that
        // worker's cached horizon; folding it here keeps the per-worker
        // quantum skip exact without any rescan.
        if (dst_lane.horizon_valid) {
            dst_lane.horizon = std::min(dst_lane.horizon, ch_min);
        }
        // clear() keeps capacity: steady-state traffic re-posts into
        // the same storage with no allocator round trips.
        ch.pending_.clear();
    }
    return min_when;
}

SimTime
PartitionSet::earliestPendingTime()
{
    SimTime earliest = SimTime::max();
    for (auto &p : parts_) {
        earliest = std::min(earliest, p->nextEventTime());
    }
    for (const auto &ch : channels_) {
        for (const auto &msg : ch->pending_) {
            earliest = std::min(earliest, msg.when);
        }
    }
    return earliest;
}

SimTime
PartitionSet::windowForEarliest(SimTime earliest, SimTime t, SimTime q,
                                SimTime until)
{
    if (earliest >= until) {
        return until; // nothing left before the horizon
    }
    if (earliest < t + q) {
        return t; // current window has work; no skip
    }
    // Snap down to the quantum grid so the skipped run executes the
    // exact same window sequence a patient unskipped run would.
    const SimTime snapped = earliest - (earliest % q);
    return std::max(t, snapped);
}

SimTime
PartitionSet::nextWindowStart(SimTime t, SimTime q, SimTime until)
{
    if (!skip_idle_) {
        return t;
    }
    return windowForEarliest(earliestPendingTime(), t, q, until);
}

void
PartitionSet::beginRunStats()
{
    run_start_quanta_ = quanta_;
    for (size_t i = 0; i < parts_.size(); ++i) {
        last_run_executed_[i] = parts_[i]->executedEvents();
    }
}

void
PartitionSet::endRunStats()
{
    last_run_quanta_ = quanta_ - run_start_quanta_;
    for (size_t i = 0; i < parts_.size(); ++i) {
        last_run_executed_[i] =
            parts_[i]->executedEvents() - last_run_executed_[i];
    }
}

uint64_t
PartitionSet::lastRunTotalExecutedEvents() const
{
    uint64_t n = 0;
    for (uint64_t e : last_run_executed_) {
        n += e;
    }
    return n;
}

void
PartitionSet::resetStats()
{
    quanta_ = 0;
    run_start_quanta_ = 0;
    last_run_quanta_ = 0;
    std::fill(last_run_executed_.begin(), last_run_executed_.end(),
              uint64_t{0});
}

void
PartitionSet::runSequential(SimTime until)
{
    const SimTime q = quantum();
    // The reference engine is a 1-worker fusion for channel-dirty
    // bookkeeping, but keeps the simple full-scan skip rule: it is the
    // obviously-correct baseline the incremental parallel engine is
    // checked against bit-for-bit.
    assignPartitions(1);
    beginRunStats();
    SimTime t;
    while (t < until) {
        t = nextWindowStart(t, q, until);
        if (t >= until) {
            break;
        }
        const SimTime bound = std::min(t + q, until);
        for (auto &p : parts_) {
            p->runBefore(bound);
        }
        drainDirtyChannels();
        t = bound;
        ++quanta_;
    }
    endRunStats();
}

void
PartitionSet::parallelQuantumEnd() noexcept
{
    // Runs on the last worker arriving at the barrier, single-threaded
    // (the barrier sequences the completion step before releasing
    // anyone).  Incremental form of runSequential's loop tail: the
    // earliest pending time is the fold of (a) each worker's published
    // post-quantum minimum over its fused partitions and (b) the
    // minima of the messages drained just now — the only two places
    // future work can live — so no partition or channel scan happens
    // here.  Window sequence, and thus every result, stays identical.
    const SimTime msg_min = drainDirtyChannels();
    par_t_ = par_bound_;
    ++quanta_;
    if (skip_idle_) {
        SimTime earliest = msg_min;
        for (size_t w = 0; w < par_workers_; ++w) {
            earliest = std::min(earliest, lanes_[w].published_min);
        }
        par_t_ = windowForEarliest(earliest, par_t_, par_q_, par_until_);
    }
    par_bound_ = std::min(par_t_ + par_q_, par_until_);
    if (par_t_ >= par_until_) {
        par_done_ = true;
    }
}

void
PartitionSet::workerBody(size_t w)
{
    const std::vector<size_t> &mine = worker_parts_[w];
    WorkerLane &lane = lanes_[w];
    const bool solo = par_workers_ == 1;
    uint32_t sense = 0;
    while (!par_done_) {
        const SimTime bound = par_bound_;
        if (!lane.horizon_valid || lane.horizon < bound) {
            // Work (or unknown state) below the bound: advance the
            // fused set and recompute the cached horizon.
            SimTime local_min = SimTime::max();
            for (size_t p : mine) {
                parts_[p]->runBefore(bound);
                local_min =
                    std::min(local_min, parts_[p]->nextEventTime());
            }
            lane.horizon = local_min;
            lane.horizon_valid = true;
        }
        // else: per-worker quantum skip.  Nothing of this fused set
        // fires before the bound — the serial drain folds incoming
        // messages into the horizon, so the cache is exact — and the
        // window costs one barrier round, zero partition scans.
        lane.published_min = lane.horizon;
        if (solo) {
            // Degenerate fusion: no siblings, so no barrier at all —
            // this is the near-runSequential configuration.
            parallelQuantumEnd();
        } else {
            sense ^= 1u;
            barrier_.arriveAndWait(
                static_cast<uint32_t>(w), sense,
                [this]() noexcept { parallelQuantumEnd(); });
        }
    }
}

void
PartitionSet::ensureWorkerPool(size_t pool_threads)
{
    // Grow on demand, never shrink: an idle pooled worker costs one
    // parked thread, re-spawning costs a clone() per run.
    while (pool_.size() < pool_threads) {
        const size_t worker_id = pool_.size() + 1; // caller is worker 0
        pool_.emplace_back([this, worker_id] { workerLoop(worker_id); });
    }
}

void
PartitionSet::workerLoop(size_t worker_id)
{
    // The thread's inherited mask is home base: runs whose placement
    // pins this worker narrow it, runs that don't restore it.
    const SavedAffinity home = saveCurrentThreadAffinity();
    bool pinned = false;
    uint64_t seen_generation = 0;
    for (;;) {
        bool participate;
        int cpu = -1;
        {
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_work_cv_.wait(lk, [&] {
                return pool_shutdown_ ||
                       pool_generation_ != seen_generation;
            });
            if (pool_shutdown_) {
                return;
            }
            seen_generation = pool_generation_;
            // A run fusing fewer workers than the pool holds leaves the
            // extra threads parked; they are not counted in
            // workers_running_ and never touch the barrier.
            participate = worker_id < par_workers_;
            if (participate) {
                cpu = worker_cpu_[worker_id];
            }
        }
        if (!participate) {
            continue;
        }
        if (cpu >= 0) {
            pinned = pinCurrentThreadToCpu(cpu);
        } else if (pinned) {
            restoreCurrentThreadAffinity(home);
            pinned = false;
        }
        // The initial window state was published under pool_mu_, and
        // every subsequent write happens in the barrier completion
        // step, which strongly-happens-before the workers resume.
        workerBody(worker_id);
        {
            std::lock_guard<std::mutex> lk(pool_mu_);
            if (--workers_running_ == 0) {
                pool_idle_cv_.notify_all();
            }
        }
    }
}

void
PartitionSet::runParallel(SimTime until)
{
    const SimTime q = quantum();
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        if (run_active_) {
            fatal("PartitionSet: runParallel re-entered while a parallel "
                  "run's workers are live");
        }
        run_active_ = true;
    }
    beginRunStats();

    const size_t workers = std::min(parts_.size(), parallelism());
    assignPartitions(workers);
    par_workers_ = workers;
    last_oversubscribed_ = workers > topo_.cpuCount();
    par_q_ = q;
    par_until_ = until;
    par_t_ = nextWindowStart(SimTime(), q, until);
    par_bound_ = std::min(par_t_ + q, until);
    par_done_ = par_t_ >= until;

    if (!par_done_) {
        // The caller doubles as worker 0: borrow its affinity for the
        // run when the placement pinned worker 0, and hand it back on
        // exit regardless of how the run went.
        const int cpu0 = worker_cpu_.empty() ? -1 : worker_cpu_[0];
        SavedAffinity home;
        bool pinned0 = false;
        if (cpu0 >= 0) {
            home = saveCurrentThreadAffinity();
            pinned0 = pinCurrentThreadToCpu(cpu0);
        }
        if (workers > 1) {
            barrier_.init(static_cast<uint32_t>(workers));
            // Spinning only pays when every worker owns a core; on an
            // oversubscribed host each spin slot burns the scheduler
            // quantum the sibling worker needs, so park immediately.
            barrier_.setSpinBudget(last_oversubscribed_
                                       ? 0
                                       : TreeBarrier::kDefaultSpinBudget);
            {
                std::lock_guard<std::mutex> lk(pool_mu_);
                ++pool_generation_;
                workers_running_ = workers - 1;
            }
            pool_work_cv_.notify_all();
            // Spawn missing pool threads only after the generation and
            // running count are published: a new thread starts with
            // seen_generation 0 and participates immediately.
            ensureWorkerPool(workers - 1);
            workerBody(0); // the calling thread is worker 0
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_idle_cv_.wait(lk, [&] { return workers_running_ == 0; });
        } else {
            workerBody(0); // fused to one worker: no pool, no barrier
        }
        if (pinned0) {
            restoreCurrentThreadAffinity(home);
        }
    }
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        run_active_ = false;
    }
    endRunStats();
}

// --- cross-process coupled engine -----------------------------------

namespace {

/**
 * Abandonment budgets for one coupled wait: a healthy peer answers a
 * barrier in microseconds, so a long silence means it died (crash, OOM
 * kill) — give up and unwind instead of hanging the group.  Once an
 * interrupt is pending the budget collapses: the operator asked to
 * stop, and a dead peer must not delay the partial artifact.
 */
constexpr int64_t kCoupledWaitBudgetNs = 60LL * 1000 * 1000 * 1000;
constexpr int64_t kCoupledInterruptedBudgetNs = 2LL * 1000 * 1000 * 1000;

int64_t
coupledWaitBudgetNs()
{
    return core::interruptRequested() ? kCoupledInterruptedBudgetNs
                                      : kCoupledWaitBudgetNs;
}

uint64_t
fnv1a(const void *bytes, size_t n, uint64_t h = 1469598103934665603ULL)
{
    const auto *p = static_cast<const uint8_t *>(bytes);
    for (size_t i = 0; i < n; ++i) {
        h = (h ^ p[i]) * 1099511628211ULL;
    }
    return h;
}

} // namespace

void
PartitionSet::setChannelDecoder(Channel &ch, RecordDecoder decoder)
{
    if (!decoder) {
        fatal("PartitionSet: setChannelDecoder(%s): null decoder",
              ch.name_.c_str());
    }
    ch.decoder_ = std::move(decoder);
}

void
PartitionSet::postRecord(Channel &ch, SimTime when, const void *bytes,
                         uint32_t len)
{
    ch.validatePost(when);
    if (ch.cls_ == Channel::Cls::Out) {
        // Destination owned by a peer process: buffer the bytes; the
        // window barrier flushes every out-dirty channel in index
        // order.  Packed [i64 when][u32 len][payload]; the buffer
        // keeps its capacity across windows like pending_ does.
        if (ch.out_pending_.empty()) {
            out_dirty_.push_back(ch.index_);
        }
        const int64_t when_ps = when.toPs();
        const size_t off = ch.out_pending_.size();
        ch.out_pending_.resize(off + sizeof(when_ps) + sizeof(len) + len);
        std::memcpy(ch.out_pending_.data() + off, &when_ps,
                    sizeof(when_ps));
        std::memcpy(ch.out_pending_.data() + off + sizeof(when_ps), &len,
                    sizeof(len));
        std::memcpy(ch.out_pending_.data() + off + sizeof(when_ps) +
                        sizeof(len),
                    bytes, len);
        ch.out_min_ = std::min(ch.out_min_, when);
        return;
    }
    if (coupled_ && ch.cls_ != Channel::Cls::Local) {
        panic("PartitionSet: channel %s: record posted from a partition "
              "this process does not own (classification %s)",
              ch.name_.c_str(),
              ch.cls_ == Channel::Cls::In ? "inbound" : "foreign");
    }
    // Local (or uncoupled) delivery: materialize through the decoder
    // and post like any closure — identical queue position, so the
    // record path is bit-compatible with hand-posted deliveries.
    if (!ch.decoder_) {
        panic("PartitionSet: channel %s: postRecord without a decoder",
              ch.name_.c_str());
    }
    Simulator &dst = *parts_[ch.dst_];
    ch.post(when, ch.decoder_(dst, when, bytes, len));
}

void
PartitionSet::enableCoupled(const CoupledOptions &opts)
{
    if (coupled_) {
        fatal("PartitionSet: enableCoupled called twice");
    }
    if (opts.owner_of.size() != parts_.size()) {
        fatal("PartitionSet: enableCoupled: owner map covers %zu "
              "partitions, set has %zu",
              opts.owner_of.size(), parts_.size());
    }
    uint32_t max_rank = opts.self_rank;
    for (uint32_t r : opts.owner_of) {
        max_rank = std::max(max_rank, r);
    }
    peer_of_rank_.assign(max_rank + 1, UINT32_MAX);
    for (const auto &[rank, tr] : opts.peers) {
        if (rank == opts.self_rank || rank > max_rank || tr == nullptr) {
            fatal("PartitionSet: enableCoupled: bad peer entry (rank %u)",
                  rank);
        }
        if (peer_of_rank_[rank] != UINT32_MAX) {
            fatal("PartitionSet: enableCoupled: duplicate peer rank %u",
                  rank);
        }
        peer_of_rank_[rank] = static_cast<uint32_t>(peers_.size());
        PeerState ps;
        ps.rank = rank;
        ps.tr = tr;
        peers_.push_back(std::move(ps));
    }
    owner_of_ = opts.owner_of;
    self_rank_ = opts.self_rank;
    coupled_spin_ = opts.spin_budget;
    coupled_timeout_ns_ = opts.wait_timeout_ns;

    owned_parts_.clear();
    for (size_t p = 0; p < parts_.size(); ++p) {
        if (owner_of_[p] == self_rank_) {
            owned_parts_.push_back(p);
        } else if (peer_of_rank_[owner_of_[p]] == UINT32_MAX) {
            fatal("PartitionSet: enableCoupled: partition %zu is owned "
                  "by rank %u but no transport to that rank was given",
                  p, owner_of_[p]);
        }
    }
    if (owned_parts_.empty()) {
        fatal("PartitionSet: enableCoupled: rank %u owns no partitions",
              self_rank_);
    }

    for (auto &chp : channels_) {
        Channel &ch = *chp;
        const bool src_owned = owner_of_[ch.src_] == self_rank_;
        const bool dst_owned = owner_of_[ch.dst_] == self_rank_;
        ch.cls_ = src_owned
                      ? (dst_owned ? Channel::Cls::Local
                                   : Channel::Cls::Out)
                      : (dst_owned ? Channel::Cls::In
                                   : Channel::Cls::Foreign);
        ch.remote_out_ = ch.cls_ == Channel::Cls::Out;
        if (ch.cls_ == Channel::Cls::In && !ch.decoder_) {
            fatal("PartitionSet: enableCoupled: inbound channel %s has "
                  "no decoder; its records could never materialize",
                  ch.name_.c_str());
        }
    }

    recv_scratch_.resize(SpscRecordRing::kMaxRecordBytes);
    coupled_ = true;
}

SimTime
PartitionSet::coupledContrib()
{
    // Everything this process knows that could fire in a future
    // window: owned partitions' next events, local channel messages
    // not yet drained, and outbound records not yet flushed.  Peers
    // report the same for their shares; the fold of all contributions
    // equals runSequential's full earliestPendingTime() scan exactly.
    SimTime m = SimTime::max();
    for (size_t p : owned_parts_) {
        m = std::min(m, parts_[p]->nextEventTime());
    }
    const WorkerLane &lane = lanes_[0];
    for (uint32_t i = 0; i < lane.dirty_count; ++i) {
        for (const auto &msg : channels_[lane.dirty[i]]->pending_) {
            m = std::min(m, msg.when);
        }
    }
    for (uint32_t idx : out_dirty_) {
        m = std::min(m, channels_[idx]->out_min_);
    }
    return m;
}

void
PartitionSet::pollPeer(size_t pi)
{
    PeerState &ps = peers_[pi];
    auto openBatch = [&ps]() -> PeerState::Batch & {
        if (ps.batches.empty() || ps.batches.back().complete) {
            ps.batches.emplace_back();
        }
        return ps.batches.back();
    };
    for (;;) {
        const uint32_t n = ps.tr->tryRecv(
            recv_scratch_.data(),
            static_cast<uint32_t>(recv_scratch_.size()));
        if (n == 0) {
            return;
        }
        coupled_stats_.bytes_recv += n;
        uint32_t kind = 0;
        if (n < sizeof(kind)) {
            panic("PartitionSet: coupled: runt record (%u bytes) from "
                  "rank %u",
                  n, ps.rank);
        }
        std::memcpy(&kind, recv_scratch_.data(), sizeof(kind));
        switch (kind) {
        case kWireHello: {
            if (n != sizeof(WireHello)) {
                panic("PartitionSet: coupled: HELLO of %u bytes from "
                      "rank %u (want %zu)",
                      n, ps.rank, sizeof(WireHello));
            }
            std::memcpy(&ps.hello, recv_scratch_.data(),
                        sizeof(WireHello));
            ps.hello_seen = true;
            break;
        }
        case kWireMsg: {
            WireMsgHdr hdr;
            if (n < sizeof(hdr)) {
                panic("PartitionSet: coupled: truncated MSG header from "
                      "rank %u",
                      ps.rank);
            }
            std::memcpy(&hdr, recv_scratch_.data(), sizeof(hdr));
            if (n != sizeof(hdr) + hdr.len ||
                hdr.channel >= channels_.size()) {
                panic("PartitionSet: coupled: malformed MSG from rank "
                      "%u (channel %u, len %u, record %u)",
                      ps.rank, hdr.channel, hdr.len, n);
            }
            PeerState::Batch &b = openBatch();
            // Re-pack as [u32 channel][u32 len][i64 when][payload].
            const size_t off = b.data.size();
            b.offsets.push_back(off);
            b.data.resize(off + sizeof(hdr.channel) + sizeof(hdr.len) +
                          sizeof(hdr.when_ps) + hdr.len);
            uint8_t *w = b.data.data() + off;
            std::memcpy(w, &hdr.channel, sizeof(hdr.channel));
            w += sizeof(hdr.channel);
            std::memcpy(w, &hdr.len, sizeof(hdr.len));
            w += sizeof(hdr.len);
            std::memcpy(w, &hdr.when_ps, sizeof(hdr.when_ps));
            w += sizeof(hdr.when_ps);
            std::memcpy(w, recv_scratch_.data() + sizeof(hdr), hdr.len);
            ++coupled_stats_.msgs_recv;
            break;
        }
        case kWireSync: {
            WireSync s;
            if (n != sizeof(s)) {
                panic("PartitionSet: coupled: SYNC of %u bytes from "
                      "rank %u (want %zu)",
                      n, ps.rank, sizeof(s));
            }
            std::memcpy(&s, recv_scratch_.data(), sizeof(s));
            PeerState::Batch &b = openBatch();
            b.seq = s.seq;
            b.bound_ps = s.bound_ps;
            b.contrib_ps = s.contrib_ps;
            b.complete = true;
            ++coupled_stats_.sync_recv;
            break;
        }
        default:
            panic("PartitionSet: coupled: unknown record kind %u from "
                  "rank %u",
                  kind, ps.rank);
        }
    }
}

void
PartitionSet::pollAllPeers()
{
    for (size_t pi = 0; pi < peers_.size(); ++pi) {
        pollPeer(pi);
    }
}

bool
PartitionSet::coupledSend(size_t pi, const void *bytes, uint32_t n)
{
    PeerState &ps = peers_[pi];
    int64_t waited_ns = 0;
    while (!ps.tr->trySend(bytes, n)) {
        // Ring full: the peer is behind consuming us.  Drain our own
        // inbound rings while stalled — a blocked producer that keeps
        // consuming means some process in the group always makes
        // progress, so a full ring cycle can never deadlock.
        pollAllPeers();
        if (ps.tr->peerAborted()) {
            return false;
        }
        if (!ps.tr->waitForSpace(n, coupled_spin_, coupled_timeout_ns_)) {
            waited_ns += coupled_timeout_ns_;
            if (waited_ns >= coupledWaitBudgetNs()) {
                log::warn("PartitionSet: coupled: rank %u stopped "
                          "consuming (%lld ms); abandoning run",
                          ps.rank,
                          static_cast<long long>(waited_ns / 1000000));
                return false;
            }
        }
    }
    coupled_stats_.bytes_sent += n;
    return true;
}

bool
PartitionSet::flushOutgoing()
{
    // Index order, like every drain: the receiving process schedules
    // records in the order they arrive per channel, so the sender must
    // emit channels deterministically.
    std::sort(out_dirty_.begin(), out_dirty_.end());
    for (uint32_t idx : out_dirty_) {
        Channel &ch = *channels_[idx];
        const uint32_t pi = peer_of_rank_[owner_of_[ch.dst_]];
        size_t off = 0;
        while (off < ch.out_pending_.size()) {
            WireMsgHdr hdr;
            hdr.channel = idx;
            std::memcpy(&hdr.when_ps, ch.out_pending_.data() + off,
                        sizeof(hdr.when_ps));
            off += sizeof(hdr.when_ps);
            std::memcpy(&hdr.len, ch.out_pending_.data() + off,
                        sizeof(hdr.len));
            off += sizeof(hdr.len);
            wire_scratch_.resize(sizeof(hdr) + hdr.len);
            std::memcpy(wire_scratch_.data(), &hdr, sizeof(hdr));
            std::memcpy(wire_scratch_.data() + sizeof(hdr),
                        ch.out_pending_.data() + off, hdr.len);
            off += hdr.len;
            if (!coupledSend(pi, wire_scratch_.data(),
                             static_cast<uint32_t>(wire_scratch_.size()))) {
                return false;
            }
            ++coupled_stats_.msgs_sent;
        }
        ch.out_pending_.clear(); // keeps capacity
        ch.out_min_ = SimTime::max();
    }
    out_dirty_.clear();
    return true;
}

bool
PartitionSet::awaitBatch(size_t pi, uint64_t seq)
{
    PeerState &ps = peers_[pi];
    auto ready = [&ps] {
        return !ps.batches.empty() && ps.batches.front().complete;
    };
    pollAllPeers();
    if (ready()) {
        // Free-run: the peer already published this barrier, so the
        // "wait" costs one ring drain and no synchronization at all.
        ++coupled_stats_.waits_elided;
    } else {
        ++coupled_stats_.waits_blocked;
        int64_t waited_ns = 0;
        while (!ready()) {
            if (ps.tr->peerAborted()) {
                return false;
            }
            const bool got =
                ps.tr->waitForData(coupled_spin_, coupled_timeout_ns_);
            pollAllPeers();
            if (!got && !ready()) {
                waited_ns += coupled_timeout_ns_;
                if (waited_ns >= coupledWaitBudgetNs()) {
                    log::warn("PartitionSet: coupled: rank %u silent at "
                              "barrier %llu (%lld ms); abandoning run",
                              ps.rank,
                              static_cast<unsigned long long>(seq),
                              static_cast<long long>(waited_ns /
                                                     1000000));
                    return false;
                }
            }
        }
    }
    const PeerState::Batch &b = ps.batches.front();
    if (b.seq != seq) {
        panic("PartitionSet: coupled protocol error: rank %u delivered "
              "barrier %llu while %llu was expected",
              ps.rank, static_cast<unsigned long long>(b.seq),
              static_cast<unsigned long long>(seq));
    }
    return true;
}

void
PartitionSet::coupledDrain()
{
    // Merged drain: local dirty channels (whole pending_ vectors) and
    // every peer's front batch (individual records), ordered by global
    // channel index — the same order drainDirtyChannels uses — so the
    // destination-queue insertion sequence is independent of which
    // process a message came from.  A channel is local-dirty xor
    // inbound (its source is owned xor foreign), so the two entry
    // kinds never interleave within one channel.
    coupled_drain_scratch_.clear();
    WorkerLane &lane = lanes_[0];
    for (uint32_t i = 0; i < lane.dirty_count; ++i) {
        coupled_drain_scratch_.push_back(
            CoupledDrainEntry{lane.dirty[i], UINT32_MAX, 0});
    }
    lane.dirty_count = 0;
    for (size_t pi = 0; pi < peers_.size(); ++pi) {
        const PeerState::Batch &b = peers_[pi].batches.front();
        for (size_t r = 0; r < b.offsets.size(); ++r) {
            uint32_t channel = 0;
            std::memcpy(&channel, b.data.data() + b.offsets[r],
                        sizeof(channel));
            coupled_drain_scratch_.push_back(CoupledDrainEntry{
                channel, static_cast<uint32_t>(pi),
                static_cast<uint32_t>(r)});
        }
    }
    std::stable_sort(coupled_drain_scratch_.begin(),
                     coupled_drain_scratch_.end(),
                     [](const CoupledDrainEntry &a,
                        const CoupledDrainEntry &b) {
                         return a.channel < b.channel;
                     });
    for (const CoupledDrainEntry &e : coupled_drain_scratch_) {
        Channel &ch = *channels_[e.channel];
        Simulator &dst = *parts_[ch.dst_];
        if (e.peer == UINT32_MAX) {
            for (auto &msg : ch.pending_) {
                if (msg.when < dst.now()) {
                    panic("PartitionSet: channel %s: causality violation "
                          "(message at %s behind partition clock %s)",
                          ch.name_.c_str(), msg.when.str().c_str(),
                          dst.now().str().c_str());
                }
                dst.scheduleAt(msg.when, std::move(msg.fn));
            }
            ch.pending_.clear();
            continue;
        }
        if (ch.cls_ != Channel::Cls::In) {
            panic("PartitionSet: coupled: rank %u sent a record on "
                  "channel %s, whose destination it owns itself",
                  peers_[e.peer].rank, ch.name_.c_str());
        }
        const PeerState::Batch &b = peers_[e.peer].batches.front();
        const uint8_t *rec = b.data.data() + b.offsets[e.rec];
        uint32_t len = 0;
        int64_t when_ps = 0;
        std::memcpy(&len, rec + sizeof(uint32_t), sizeof(len));
        std::memcpy(&when_ps, rec + 2 * sizeof(uint32_t),
                    sizeof(when_ps));
        const uint8_t *payload =
            rec + 2 * sizeof(uint32_t) + sizeof(when_ps);
        const SimTime when = SimTime::ps(when_ps);
        if (when < dst.now()) {
            // Receiver-side lookahead check: the peer's conservative
            // contract was violated (or its clock diverged) — same
            // diagnostic as the in-process drain.
            panic("PartitionSet: channel %s: causality violation "
                  "(message at %s behind partition clock %s)",
                  ch.name_.c_str(), when.str().c_str(),
                  dst.now().str().c_str());
        }
        dst.scheduleAt(when, ch.decoder_(dst, when, payload, len));
    }
    for (auto &ps : peers_) {
        ps.batches.pop_front();
    }
}

bool
PartitionSet::coupledBarrier(SimTime bound, SimTime contrib,
                             SimTime *global)
{
    if (!flushOutgoing()) {
        return false;
    }
    WireSync sync;
    sync.seq = sync_seq_;
    sync.bound_ps = bound.toPs();
    sync.contrib_ps = contrib.toPs();
    for (size_t pi = 0; pi < peers_.size(); ++pi) {
        if (!coupledSend(pi, &sync, sizeof(sync))) {
            return false;
        }
        ++coupled_stats_.sync_sent;
    }
    SimTime g = contrib;
    for (size_t pi = 0; pi < peers_.size(); ++pi) {
        if (!awaitBatch(pi, sync_seq_)) {
            return false;
        }
        const PeerState::Batch &b = peers_[pi].batches.front();
        if (b.bound_ps != sync.bound_ps) {
            // Both sides computed this window bound from the same
            // global fold; divergence means the lockstep (and with it
            // the determinism contract) is broken — stop loudly.
            panic("PartitionSet: coupled window divergence at barrier "
                  "%llu: rank %u bound %lld ps, local bound %lld ps",
                  static_cast<unsigned long long>(sync_seq_),
                  peers_[pi].rank, static_cast<long long>(b.bound_ps),
                  static_cast<long long>(sync.bound_ps));
        }
        g = std::min(g, SimTime::ps(b.contrib_ps));
    }
    ++sync_seq_;
    coupledDrain();
    *global = g;
    return true;
}

bool
PartitionSet::exchangeHello()
{
    WireHello mine;
    mine.self_rank = self_rank_;
    mine.partitions = static_cast<uint32_t>(parts_.size());
    mine.channels = static_cast<uint32_t>(channels_.size());
    mine.quantum_ps = quantum().toPs();
    mine.owner_hash =
        fnv1a(owner_of_.data(), owner_of_.size() * sizeof(uint32_t));
    for (size_t pi = 0; pi < peers_.size(); ++pi) {
        if (!coupledSend(pi, &mine, sizeof(mine))) {
            return false;
        }
    }
    for (size_t pi = 0; pi < peers_.size(); ++pi) {
        PeerState &ps = peers_[pi];
        int64_t waited_ns = 0;
        while (!ps.hello_seen) {
            if (ps.tr->peerAborted()) {
                return false;
            }
            const bool got =
                ps.tr->waitForData(coupled_spin_, coupled_timeout_ns_);
            pollAllPeers();
            if (!got && !ps.hello_seen) {
                waited_ns += coupled_timeout_ns_;
                if (waited_ns >= coupledWaitBudgetNs()) {
                    log::warn("PartitionSet: coupled: no HELLO from "
                              "rank %u; abandoning run",
                              ps.rank);
                    return false;
                }
            }
        }
        const WireHello &h = ps.hello;
        // A mismatch is a launcher bug (the processes built different
        // models), not a runtime condition: fail fast and loudly.
        if (h.magic != mine.magic || h.version != mine.version) {
            fatal("PartitionSet: coupled: rank %u spoke a different "
                  "protocol (magic %llx version %u)",
                  ps.rank, static_cast<unsigned long long>(h.magic),
                  h.version);
        }
        if (h.self_rank != ps.rank) {
            fatal("PartitionSet: coupled: transport to rank %u is "
                  "wired to rank %u (launcher ring mix-up)",
                  ps.rank, h.self_rank);
        }
        if (h.partitions != mine.partitions ||
            h.channels != mine.channels ||
            h.quantum_ps != mine.quantum_ps ||
            h.owner_hash != mine.owner_hash) {
            fatal("PartitionSet: coupled: rank %u built a different "
                  "model (partitions %u/%u, channels %u/%u, quantum "
                  "%lld/%lld ps, owner hash %llx/%llx)",
                  ps.rank, h.partitions, mine.partitions, h.channels,
                  mine.channels, static_cast<long long>(h.quantum_ps),
                  static_cast<long long>(mine.quantum_ps),
                  static_cast<unsigned long long>(h.owner_hash),
                  static_cast<unsigned long long>(mine.owner_hash));
        }
    }
    return true;
}

void
PartitionSet::abandonCoupled()
{
    for (auto &ps : peers_) {
        ps.tr->abort();
    }
    coupled_abandoned_ = true;
}

bool
PartitionSet::runCoupled(SimTime until)
{
    if (!coupled_) {
        fatal("PartitionSet: runCoupled without enableCoupled");
    }
    if (coupled_abandoned_) {
        return false;
    }
    const SimTime q = quantum();
    // Single in-process worker: the coupled engine's intra-process
    // concurrency is the peer processes, and the 1-worker fusion gives
    // Channel::post its dirty-lane bookkeeping.
    assignPartitions(1);
    beginRunStats();
    if (!hello_done_) {
        if (!exchangeHello()) {
            abandonCoupled();
            endRunStats();
            return false;
        }
        hello_done_ = true;
    }
    // Entry exchange: every process contributes its owned share of the
    // earliest-pending fold, replacing runSequential's entry full scan
    // with identical semantics, so each drive-loop call rediscovers
    // the same window sequence from t = 0.  The sentinel bound (-1)
    // doubles as a lockstep check: peers must be at their entry too.
    bool ok = true;
    SimTime t;
    SimTime global;
    if (!coupledBarrier(SimTime::ps(-1), coupledContrib(), &global)) {
        ok = false;
    }
    if (ok && skip_idle_) {
        t = windowForEarliest(global, t, q, until);
    }
    while (ok && t < until) {
        const SimTime bound = std::min(t + q, until);
        for (size_t p : owned_parts_) {
            parts_[p]->runBefore(bound);
        }
        if (!coupledBarrier(bound, coupledContrib(), &global)) {
            ok = false;
            break;
        }
        t = bound;
        ++quanta_;
        if (skip_idle_) {
            t = windowForEarliest(global, t, q, until);
        }
    }
    endRunStats();
    if (!ok) {
        abandonCoupled();
    }
    return ok;
}

std::vector<uint32_t>
PartitionSet::lptAssign(const std::vector<double> &weights,
                        uint32_t nprocs)
{
    if (nprocs == 0 || weights.empty()) {
        fatal("PartitionSet: lptAssign: empty input");
    }
    std::vector<size_t> order(weights.size());
    for (size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&weights](size_t a, size_t b) {
                         return weights[a] > weights[b];
                     });
    std::vector<double> load(nprocs, 0.0);
    std::vector<uint32_t> owner(weights.size(), 0);
    for (size_t p : order) {
        uint32_t best = 0;
        for (uint32_t r = 1; r < nprocs; ++r) {
            if (load[r] < load[best]) {
                best = r;
            }
        }
        owner[p] = best;
        load[best] += weights[p];
    }
    // Relabel ranks in first-appearance order over partition indices:
    // rank 0 always owns partition 0 (the launcher keeps the client
    // rack — and with it the latency samples — in the parent process).
    std::vector<uint32_t> relabel(nprocs, UINT32_MAX);
    uint32_t next = 0;
    for (uint32_t r : owner) {
        if (relabel[r] == UINT32_MAX) {
            relabel[r] = next++;
        }
    }
    for (uint32_t r = 0; r < nprocs; ++r) {
        if (relabel[r] == UINT32_MAX) {
            relabel[r] = next++;
        }
    }
    for (uint32_t &r : owner) {
        r = relabel[r];
    }
    return owner;
}

uint64_t
PartitionSet::totalExecutedEvents() const
{
    uint64_t n = 0;
    for (const auto &p : parts_) {
        n += p->executedEvents();
    }
    return n;
}

} // namespace fame
} // namespace diablo
