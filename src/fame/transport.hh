#ifndef DIABLO_FAME_TRANSPORT_HH_
#define DIABLO_FAME_TRANSPORT_HH_

/**
 * @file
 * Cross-engine channel transports and the coupled-sync wire protocol.
 *
 * DIABLO spans 36 FPGAs over dedicated serial links, each FPGA's
 * scheduler "synchroniz[ing] with adjacent FPGAs over the serial links
 * at a fine granularity" (§3.2).  This is the software analog of the
 * serial link: a Transport carries two kinds of records between engine
 * processes (or, for tests and benchmarks, between two PartitionSets
 * in one process):
 *
 *   MSG   a timestamped cross-partition channel message — the payload
 *         is an opaque byte record the wiring layer (net/sim) encodes
 *         and decodes (fame never learns what a packet is);
 *   SYNC  one per window barrier, carrying the sender's contribution
 *         to the global earliest-pending-time fold.
 *
 * This is the SimBricks netif recipe (polled shared-memory queues with
 * periodic sync messages at the link latency) adapted to the
 * conservative quantum loop: a process free-runs through a window
 * while every peer's SYNC for the current barrier has already arrived
 * (`peer_horizon >= local_window_bound` realized as wait elision), and
 * parks on the ring's futex word only when a peer is behind.
 *
 * Wire framing: every ring record starts with a uint32 kind.  Records
 * are POD and carried verbatim — both sides of a transport are builds
 * of this same binary (the launcher re-execs itself), so there is no
 * cross-version concern beyond the HELLO handshake's layout hash.
 */

#include <cstdint>
#include <memory>
#include <utility>

#include "core/shm.hh"

namespace diablo {
namespace fame {

/** Record kinds (first uint32 of every ring record). */
enum WireKind : uint32_t {
    kWireHello = 1,
    kWireMsg = 2,
    kWireSync = 3,
};

/**
 * Handshake, first record on every ring: both sides prove they built
 * the same model.  A mismatch is a launcher bug (diverging configs in
 * parent and child) and fatals with the differing field.
 */
struct WireHello {
    uint32_t kind = kWireHello;
    uint32_t version = 1;
    uint64_t magic = 0x4449414254505254ULL; // "DIABTPRT"
    uint32_t self_rank = 0;
    uint32_t partitions = 0;
    uint32_t channels = 0;
    uint32_t pad = 0;
    int64_t quantum_ps = 0;
    uint64_t owner_hash = 0; ///< FNV over the partition->rank map
};

/**
 * One cross-process channel message.  @p len payload bytes follow this
 * header in the same ring record; the payload is the wiring layer's
 * encoded delivery (a net::PacketRecord for trunk links).
 */
struct WireMsgHdr {
    uint32_t kind = kWireMsg;
    uint32_t channel = 0; ///< global channel index (drain order)
    uint32_t len = 0;     ///< payload bytes following this header
    uint32_t pad = 0;
    int64_t when_ps = 0;  ///< absolute delivery time
};

/** Per-barrier synchronization record (closes one message batch). */
struct WireSync {
    uint32_t kind = kWireSync;
    uint32_t pad = 0;
    uint64_t seq = 0;       ///< barrier sequence number
    int64_t bound_ps = 0;   ///< window bound the sender just finished
    int64_t contrib_ps = 0; ///< sender's earliest-pending contribution
};

/**
 * A bidirectional record pipe to one peer engine.  Send/recv move one
 * whole record (kind header + body); ordering is FIFO per direction.
 * All methods are called from the engine's single coupled thread.
 */
class Transport {
  public:
    virtual ~Transport() = default;

    /** Enqueue one record; false when the pipe is full (retry). */
    virtual bool trySend(const void *bytes, uint32_t n) = 0;

    /** Dequeue one record into @p out; its length, or 0 when empty. */
    virtual uint32_t tryRecv(void *out, uint32_t cap) = 0;

    /**
     * One bounded wait for inbound data: spin, then park for at most
     * @p timeout_ns.  True when data is available.  Callers loop with
     * interrupt / peerAborted checks between calls.
     */
    virtual bool waitForData(uint32_t spin_budget, int64_t timeout_ns) = 0;

    /** One bounded wait for @p bytes of outbound space (as above). */
    virtual bool waitForSpace(uint32_t bytes, uint32_t spin_budget,
                              int64_t timeout_ns) = 0;

    /** Tell the peer this engine is abandoning the run; wakes it. */
    virtual void abort() = 0;

    /** True once the peer called abort() (sticky). */
    virtual bool peerAborted() const = 0;
};

/**
 * Transport over a pair of SpscRecordRings in caller-owned memory
 * (a ShmSegment for real multi-process runs, heap for in-process
 * coupling).  tx carries self -> peer, rx peer -> self; the peer wraps
 * the same two rings with the roles swapped.
 */
class ShmRingTransport : public Transport {
  public:
    ShmRingTransport(SpscRecordRing *tx, SpscRecordRing *rx)
        : tx_(tx), rx_(rx)
    {
    }

    bool
    trySend(const void *bytes, uint32_t n) override
    {
        return tx_->tryPush(bytes, n);
    }

    uint32_t
    tryRecv(void *out, uint32_t cap) override
    {
        return rx_->tryPop(out, cap);
    }

    bool
    waitForData(uint32_t spin_budget, int64_t timeout_ns) override
    {
        return rx_->waitForData(spin_budget, timeout_ns);
    }

    bool
    waitForSpace(uint32_t bytes, uint32_t spin_budget,
                 int64_t timeout_ns) override
    {
        return tx_->waitForSpace(bytes, spin_budget, timeout_ns);
    }

    void
    abort() override
    {
        // The peer observes its rx (= our tx) ring's flag; flag our rx
        // too so our own parked waits (if any remain) bail out.
        tx_->setAborted();
        rx_->setAborted();
    }

    bool
    peerAborted() const override
    {
        return rx_->aborted();
    }

  private:
    SpscRecordRing *tx_;
    SpscRecordRing *rx_;
};

/**
 * In-process transport pair over heap rings: endpoint A's tx is B's rx
 * and vice versa.  Exercises the exact coupled code path (framing,
 * parking, barrier elision) without fork/exec — the bit-identity tests
 * and the transport benchmark couple two PartitionSets on two threads
 * this way.  Both endpoints share ownership of the ring storage.
 */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcTransportPair(uint32_t ring_capacity = 1u << 20);

/**
 * Layout of one process group's shared segment: a control block
 * followed by an nprocs x nprocs matrix of rings (diagonal unused —
 * the waste is a few ring footprints, and the indexing stays trivial).
 * The launcher create()s and initGroupSegment()s it; every process
 * derives its transports with groupTransport().
 */
struct ShmGroupLayout {
    static constexpr uint32_t kMaxProcs = 32; // control-word mask width

    uint32_t nprocs = 0;
    uint32_t ring_capacity = 1u << 20;

    size_t controlOffset() const { return 0; }
    size_t ringOffset(uint32_t from, uint32_t to) const;
    size_t totalBytes() const;
};

/**
 * Outer-loop control block at the head of the group segment.  The
 * leader (rank 0) publishes each outer window; followers park on the
 * epoch word.  Any rank that observes an interrupt raises its bit in
 * interrupted_mask; only the leader turns that into a kStop command,
 * so the group always stops at one agreed window boundary.
 */
struct alignas(64) ShmGroupControl {
    enum Command : uint32_t {
        kRun = 1,
        kStop = 2,
        kStopInterrupted = 3,
    };

    std::atomic<uint32_t> epoch{0};
    std::atomic<uint32_t> command{kRun};
    std::atomic<int64_t> until_ps{0};
    std::atomic<uint32_t> interrupted_mask{0};
    std::atomic<uint32_t> attached{0}; ///< ranks that mapped the segment

    /** Leader: publish the next command and wake every follower. */
    void publish(Command cmd, int64_t until);

    /**
     * Follower: wait (bounded spin + futex) until epoch != last_epoch.
     * Returns the new epoch.  Callers re-check interrupt flags between
     * the bounded waits, which this loops internally with timeout_ns.
     */
    uint32_t waitEpoch(uint32_t last_epoch, int64_t timeout_ns);

    void
    markInterrupted(uint32_t rank)
    {
        interrupted_mask.fetch_or(1u << rank, std::memory_order_seq_cst);
    }

    bool
    anyInterrupted() const
    {
        return interrupted_mask.load(std::memory_order_seq_cst) != 0;
    }
};

static_assert(sizeof(ShmGroupControl) == 64,
              "control block must stay one cacheline (shared layout)");

/** Placement-initialize the control block and every ring. */
void initGroupSegment(void *mem, const ShmGroupLayout &layout);

/** The group's control block (segment already initialized). */
ShmGroupControl *groupControl(void *mem, const ShmGroupLayout &layout);

/** Transport connecting @p self to @p peer over the group segment. */
std::unique_ptr<Transport> groupTransport(void *mem,
                                          const ShmGroupLayout &layout,
                                          uint32_t self, uint32_t peer);

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_TRANSPORT_HH_
