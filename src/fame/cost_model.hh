#ifndef DIABLO_FAME_COST_MODEL_HH_
#define DIABLO_FAME_COST_MODEL_HH_

/**
 * @file
 * Capital/operating cost model behind the paper's headline economics:
 * a ~$150K DIABLO system versus a ~$36M-CAPEX, ~$800K/month-OPEX real
 * WSC array of the same node count (§1, §3.4).
 */

#include <cstdint>

namespace diablo {
namespace fame {

/** DIABLO platform cost parameters. */
struct DiabloCostParams {
    double board_cost_usd = 15000.0;   ///< BEE3 board (2007-era, 4 FPGAs)
    uint32_t nodes_per_board = 1344;   ///< 4 FPGAs x 4 pipelines (+pkg)
    double infrastructure_usd = 5000.0;///< rack, cables, front-end hosts

    /** The paper's 9-board, 36-FPGA prototype. */
    static DiabloCostParams bee3Prototype();

    /** Projected 2015 single-FPGA board (20 nm, incl. DRAM). */
    static DiabloCostParams board2015();
};

/** Real-WSC cost parameters (Barroso/Holzle-style accounting). */
struct WscCostParams {
    double capex_per_server_usd = 3025.0; ///< server + network share
    double opex_per_server_month_usd = 67.2;
};

/** Evaluates both platforms for a target node count. */
class CostModel {
  public:
    CostModel() = default;

    /** Total DIABLO hardware cost for @p nodes simulated servers. */
    double diabloCapexUsd(uint32_t nodes,
                          const DiabloCostParams &p) const;

    uint32_t boardsNeeded(uint32_t nodes, const DiabloCostParams &p) const;

    /** Real array CAPEX for @p nodes physical servers. */
    double wscCapexUsd(uint32_t nodes, const WscCostParams &p) const;

    /** Real array OPEX per month. */
    double wscOpexPerMonthUsd(uint32_t nodes, const WscCostParams &p) const;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_COST_MODEL_HH_
