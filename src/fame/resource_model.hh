#ifndef DIABLO_FAME_RESOURCE_MODEL_HH_
#define DIABLO_FAME_RESOURCE_MODEL_HH_

/**
 * @file
 * FPGA resource model for DIABLO's host configurations.
 *
 * DIABLO maps host-multithreaded FAME-7 models onto Xilinx Virtex-5
 * LX155T FPGAs; Table 2 of the paper reports the Rack FPGA's place-and-
 * route utilization.  This parametric model estimates LUT/register/
 * BRAM/LUTRAM consumption as a function of the host configuration
 * (server pipelines, threads per pipeline, NIC models, switch models and
 * ports) and is calibrated so the paper's default Rack FPGA
 * configuration — four 32-thread server pipelines, four NIC models,
 * four ToR switch models — reproduces Table 2 exactly.
 */

#include <cstdint>
#include <string>

namespace diablo {
namespace fame {

/** Resource vector (absolute counts). */
struct Resources {
    double lut = 0;
    double reg = 0;
    double bram = 0;
    double lutram = 0;

    Resources &operator+=(const Resources &o);
    Resources operator+(const Resources &o) const;
    Resources operator*(double k) const;
};

/** Host FPGA device capacities. */
struct FpgaDevice {
    std::string name;
    double lut;
    double reg;
    double bram;
    double lutram;

    /** The BEE3's Xilinx Virtex-5 LX155T. */
    static FpgaDevice virtex5Lx155t();

    /** A 2015-era 20 nm device (for the paper's scaling projection). */
    static FpgaDevice ultrascale20nm();
};

/** A host FPGA configuration (Rack FPGA or Switch FPGA). */
struct HostConfig {
    uint32_t server_pipelines = 4;
    uint32_t threads_per_pipeline = 32;
    uint32_t nic_models = 4;
    uint32_t switch_models = 4;
    uint32_t switch_ports = 32;
    bool frontend_and_scheduler = true; ///< misc infrastructure

    /** The paper's Rack FPGA (Table 2). */
    static HostConfig rackFpga();

    /** The paper's Switch FPGA (cut-down: one functional pipeline). */
    static HostConfig switchFpga();
};

/** Parametric estimator calibrated against Table 2. */
class ResourceModel {
  public:
    ResourceModel() = default;

    Resources serverModels(uint32_t pipelines, uint32_t threads) const;
    Resources nicModels(uint32_t count) const;
    Resources switchModels(uint32_t count, uint32_t ports) const;
    Resources miscellaneous() const;

    Resources estimate(const HostConfig &cfg) const;

    /** Utilization fraction of the scarcest resource on @p dev. */
    double worstUtilization(const HostConfig &cfg,
                            const FpgaDevice &dev) const;

    /** Largest thread count per pipeline that fits on @p dev. */
    uint32_t maxThreadsThatFit(HostConfig cfg, const FpgaDevice &dev) const;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_RESOURCE_MODEL_HH_
