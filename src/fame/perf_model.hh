#ifndef DIABLO_FAME_PERF_MODEL_HH_
#define DIABLO_FAME_PERF_MODEL_HH_

/**
 * @file
 * Host performance model of the FAME-7 execution platform.
 *
 * A host-multithreaded pipeline interleaves T target threads, retiring
 * roughly one target instruction per host cycle per pipeline when fully
 * utilized; host DRAM accesses, timing-model synchronization and
 * inter-FPGA links add a stall factor.  The model predicts the
 * simulation slowdown (target time -> wall-clock) the paper reports:
 * 250-1000x in general, and ~3000x (50 minutes per simulated second)
 * for 4 GHz targets with a 10 Gbps interconnect (§1, §5).
 */

#include <cstdint>

#include "core/time.hh"

namespace diablo {
namespace fame {

/** FAME host platform parameters. */
struct HostPlatform {
    double host_clock_mhz = 90.0;       ///< BEE3 Virtex-5 host clock
    uint32_t threads_per_pipeline = 32;
    /** Average host cycles per target cycle per thread beyond the ideal
     *  1.0 (host DRAM stalls, sync with switch models). */
    double stall_factor = 2.1;

    static HostPlatform bee3();
};

/** Slowdown and runtime predictions. */
class PerfModel {
  public:
    explicit PerfModel(const HostPlatform &host) : host_(host) {}

    /**
     * Wall-clock slowdown versus target time for a fixed-CPI target
     * clocked at @p target_ghz.  Independent of node count: adding
     * nodes adds pipelines/FPGAs (the paper observed no performance
     * drop from 500 to 2,000 nodes).
     */
    double slowdown(double target_ghz) const;

    /** Wall-clock time to simulate @p target_time of target time. */
    SimTime wallClockFor(SimTime target_time, double target_ghz) const;

    /**
     * Slowdown of a single-threaded software simulator retiring
     * @p host_instr_per_target_cycle instructions per simulated target
     * cycle on a @p sw_host_ghz host — the paper's "software simulation
     * would take almost two weeks" comparison.
     */
    static double softwareSlowdown(double target_ghz, double sw_host_ghz,
                                   double host_instr_per_target_cycle);

    const HostPlatform &host() const { return host_; }

  private:
    HostPlatform host_;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_PERF_MODEL_HH_
