#ifndef DIABLO_FAME_TREE_BARRIER_HH_
#define DIABLO_FAME_TREE_BARRIER_HH_

/**
 * @file
 * Hierarchical (combining-tree) sense-reversing barrier.
 *
 * A flat barrier serializes every arrival on one cacheline: N workers
 * contend one atomic fetch_sub, and the release store invalidates the
 * line in N caches at once.  That is what capped the fused engine's
 * barrier round-trip at threads:2 — DIABLO's FPGA analog would be all
 * 36 FPGAs sharing one sync wire instead of the per-link handshakes of
 * §3.2.  This barrier arranges workers in a radix-4 tree: each worker
 * arrives at its leaf node (at most 4 workers per cacheline), the last
 * arriver of a node propagates one arrival to the parent, and the
 * overall winner runs the serial completion step at the root, then
 * releases the tree top-down by flipping each node's sense word — so
 * no line is ever touched by more than radix+1 threads.
 *
 * Round/sense protocol: callers pass the *target* sense value of the
 * current round (flip a local bit each call, starting at 1).  Waiting
 * for `sense == target` instead of `sense != previous` is what makes
 * overlapped rounds safe: a fast worker that races ahead and starts
 * waiting at an interior node for round k+1 cannot be released by the
 * round-k flip, because that flip sets the word to round k's target,
 * not k+1's.  The winner resets every node's arrival counter *before*
 * flipping any sense, so re-arrivals (which may climb to any interior
 * node) always find fresh counters.
 *
 * Waiters spin with bounded exponential backoff, then park on their
 * node's sense word (futex via std::atomic::wait).  The spin budget is
 * settable: when the engine detects more workers than online CPUs it
 * drops the budget to zero, because spinning on a timeshared core just
 * burns the scheduler quantum the *other* worker needs (the measured
 * 40.8M -> 16k quanta/s collapse at threads:2 on one core).
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

namespace diablo {
namespace fame {

class TreeBarrier {
  public:
    static constexpr uint32_t kRadix = 4;

    /** Default spin budget, ~tens of µs on current x86 (several quanta). */
    static constexpr uint32_t kDefaultSpinBudget = 4096;

    /**
     * (Re)build the tree for @p participants workers and reset every
     * node to round 0 (all senses 0; the first round's target is 1).
     * Not thread-safe against concurrent arriveAndWait.
     */
    void
    init(uint32_t participants)
    {
        participants_ = participants;
        node_count_ = 0;
        // Level sizes bottom-up: ceil(n/4) until a single root remains.
        uint32_t level = participants ? (participants + kRadix - 1) / kRadix
                                      : 0;
        while (level > 1) {
            node_count_ += level;
            level = (level + kRadix - 1) / kRadix;
        }
        node_count_ += level; // the root (0 nodes for 0 participants)
        if (node_count_ > node_cap_) {
            nodes_ = std::make_unique<Node[]>(node_count_);
            node_cap_ = node_count_;
        }
        // Wire arities and parents level by level.
        uint32_t base = 0;
        uint32_t members = participants; // fan-in of the level being built
        while (base < node_count_) {
            uint32_t width = (members + kRadix - 1) / kRadix;
            for (uint32_t i = 0; i < width; ++i) {
                Node &n = nodes_[base + i];
                n.arity = std::min(kRadix, members - i * kRadix);
                n.parent = (width == 1) ? -1
                                        : (int32_t)(base + width + i / kRadix);
                n.pending.store(n.arity, std::memory_order_relaxed);
                n.sense.store(0, std::memory_order_relaxed);
                n.parked.store(0, std::memory_order_relaxed);
            }
            base += width;
            members = width;
        }
    }

    uint32_t participants() const { return participants_; }
    size_t nodeCount() const { return node_count_; }

    /**
     * Bound on busy-wait iterations before parking on the futex.  Zero
     * parks immediately (right when workers outnumber CPUs).
     */
    void setSpinBudget(uint32_t budget) { spin_budget_ = budget; }
    uint32_t spinBudget() const { return spin_budget_; }

    /** One node per cacheline; tests assert the padding contract. */
    static size_t nodeSize() { return sizeof(Node); }
    static size_t nodeAlignment() { return alignof(Node); }

    /**
     * Arrive as @p worker for the round whose post-release sense value
     * is @p target_sense (callers flip a local bit each round, first
     * round passes 1).  Exactly one caller — the last arrival at the
     * root — runs @p serial single-threaded while everyone else waits,
     * then releases the tree.  Returns true for that winner.
     */
    template <typename Serial>
    bool
    arriveAndWait(uint32_t worker, uint32_t target_sense, Serial &&serial)
    {
        uint32_t n = worker / kRadix; // leaf nodes occupy [0, ceil(N/4))
        for (;;) {
            Node &node = nodes_[n];
            // The acq_rel RMW chain up the tree makes every earlier
            // arrival's pre-barrier writes visible to the winner.
            if (node.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                if (node.parent < 0) {
                    serial();
                    release(target_sense);
                    return true;
                }
                n = (uint32_t)node.parent;
                continue;
            }
            waitOn(node, target_sense);
            return false;
        }
    }

  private:
    struct alignas(64) Node {
        std::atomic<uint32_t> pending{0};
        std::atomic<uint32_t> sense{0};
        std::atomic<uint32_t> parked{0};
        uint32_t arity = 0;
        int32_t parent = -1;
    };
    static_assert(sizeof(Node) == 64,
                  "one barrier node per cacheline, no false sharing");

    void
    waitOn(Node &node, uint32_t target)
    {
        uint32_t batch = 1;
        uint32_t spent = 0;
        while (node.sense.load(std::memory_order_acquire) != target) {
            if (spent >= spin_budget_) {
                node.parked.fetch_add(1, std::memory_order_seq_cst);
                for (;;) {
                    // seq_cst vs. the release store: either the
                    // releaser sees parked_ > 0 and notifies, or this
                    // load is ordered after its store and breaks out.
                    uint32_t s = node.sense.load(std::memory_order_seq_cst);
                    if (s == target)
                        break;
                    node.sense.wait(s, std::memory_order_seq_cst);
                }
                node.parked.fetch_sub(1, std::memory_order_relaxed);
                return;
            }
            for (uint32_t i = 0; i < batch; ++i)
                cpuRelax();
            spent += batch;
            if (batch < kMaxBatch)
                batch <<= 1;
        }
    }

    void
    release(uint32_t target)
    {
        // Reset every arrival counter before flipping any sense: a
        // released waiter may re-arrive — and climb to any interior
        // node — immediately.  The waiter's acquire of its node's
        // sense orders these resets before its next fetch_sub.
        for (size_t i = 0; i < node_count_; ++i) {
            nodes_[i].pending.store(nodes_[i].arity,
                                    std::memory_order_relaxed);
        }
        for (size_t i = 0; i < node_count_; ++i) {
            Node &node = nodes_[i];
            node.sense.store(target, std::memory_order_seq_cst);
            if (node.parked.load(std::memory_order_seq_cst) != 0)
                node.sense.notify_all();
        }
    }

    static void
    cpuRelax() noexcept
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#else
        std::this_thread::yield();
#endif
    }

    static constexpr uint32_t kMaxBatch = 64;

    std::unique_ptr<Node[]> nodes_;
    size_t node_count_ = 0;
    size_t node_cap_ = 0;
    uint32_t participants_ = 0;
    uint32_t spin_budget_ = kDefaultSpinBudget;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_TREE_BARRIER_HH_
