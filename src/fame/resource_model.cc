#include "fame/resource_model.hh"

#include <algorithm>

namespace diablo {
namespace fame {

Resources &
Resources::operator+=(const Resources &o)
{
    lut += o.lut;
    reg += o.reg;
    bram += o.bram;
    lutram += o.lutram;
    return *this;
}

Resources
Resources::operator+(const Resources &o) const
{
    Resources r = *this;
    r += o;
    return r;
}

Resources
Resources::operator*(double k) const
{
    return Resources{lut * k, reg * k, bram * k, lutram * k};
}

FpgaDevice
FpgaDevice::virtex5Lx155t()
{
    // 24,320 slices x 4 6-LUTs/FFs; 212 BRAM36; SLICEM LUTs usable as
    // distributed RAM.
    return FpgaDevice{"XC5VLX155T", 97280, 97280, 212, 33280};
}

FpgaDevice
FpgaDevice::ultrascale20nm()
{
    // Representative 2015 20 nm device class (paper §5: "upcoming 20 nm
    // FPGAs"): roughly an order of magnitude more logic than the LX155T.
    return FpgaDevice{"20nm-UltraScale-class", 1045440, 2090880, 1968,
                      480000};
}

HostConfig
HostConfig::rackFpga()
{
    return HostConfig{};
}

HostConfig
HostConfig::switchFpga()
{
    HostConfig c;
    // "A single server functional model pipeline, without a timing
    // model" plus the array/datacenter switch models.
    c.server_pipelines = 1;
    c.threads_per_pipeline = 32;
    c.nic_models = 0;
    c.switch_models = 2;
    c.switch_ports = 128;
    return c;
}

namespace {

// Per-unit coefficients, fitted so HostConfig::rackFpga() reproduces
// Table 2 exactly (4 pipelines x 32 threads, 4 NICs, 4 x 32-port ToRs).
constexpr double kSrvBaseLut = 5191.25, kSrvThreadLut = 60.0;
constexpr double kSrvBaseReg = 2965.75, kSrvThreadReg = 200.0;
constexpr double kSrvBaseBram = 18.0, kSrvThreadBram = 0.1875;
constexpr double kSrvBaseLutram = 1326.0, kSrvThreadLutram = 10.0;

constexpr double kNicLut = 2366.75, kNicReg = 1196.25;
constexpr double kNicBram = 2.5, kNicLutram = 188.0;

constexpr double kSwBaseLut = 647.75, kSwPortLut = 15.0;
constexpr double kSwBaseReg = 550.5, kSwPortReg = 10.0;
constexpr double kSwBaseBram = 5.0, kSwPortBram = 0.25;
constexpr double kSwBaseLutram = 22.25, kSwPortLutram = 2.0;

constexpr Resources kMisc{3395, 16052, 31, 5058};

} // namespace

Resources
ResourceModel::serverModels(uint32_t pipelines, uint32_t threads) const
{
    Resources per;
    per.lut = kSrvBaseLut + kSrvThreadLut * threads;
    per.reg = kSrvBaseReg + kSrvThreadReg * threads;
    per.bram = kSrvBaseBram + kSrvThreadBram * threads;
    per.lutram = kSrvBaseLutram + kSrvThreadLutram * threads;
    return per * static_cast<double>(pipelines);
}

Resources
ResourceModel::nicModels(uint32_t count) const
{
    return Resources{kNicLut, kNicReg, kNicBram, kNicLutram} *
           static_cast<double>(count);
}

Resources
ResourceModel::switchModels(uint32_t count, uint32_t ports) const
{
    Resources per;
    per.lut = kSwBaseLut + kSwPortLut * ports;
    per.reg = kSwBaseReg + kSwPortReg * ports;
    per.bram = kSwBaseBram + kSwPortBram * ports;
    per.lutram = kSwBaseLutram + kSwPortLutram * ports;
    return per * static_cast<double>(count);
}

Resources
ResourceModel::miscellaneous() const
{
    return kMisc;
}

Resources
ResourceModel::estimate(const HostConfig &cfg) const
{
    Resources r = serverModels(cfg.server_pipelines,
                               cfg.threads_per_pipeline);
    r += nicModels(cfg.nic_models);
    r += switchModels(cfg.switch_models, cfg.switch_ports);
    if (cfg.frontend_and_scheduler) {
        r += miscellaneous();
    }
    return r;
}

double
ResourceModel::worstUtilization(const HostConfig &cfg,
                                const FpgaDevice &dev) const
{
    const Resources r = estimate(cfg);
    return std::max({r.lut / dev.lut, r.reg / dev.reg, r.bram / dev.bram,
                     r.lutram / dev.lutram});
}

uint32_t
ResourceModel::maxThreadsThatFit(HostConfig cfg,
                                 const FpgaDevice &dev) const
{
    uint32_t best = 0;
    for (uint32_t t = 1; t <= 4096; ++t) {
        cfg.threads_per_pipeline = t;
        if (worstUtilization(cfg, dev) <= 1.0) {
            best = t;
        } else {
            break;
        }
    }
    return best;
}

} // namespace fame
} // namespace diablo
