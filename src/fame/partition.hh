#ifndef DIABLO_FAME_PARTITION_HH_
#define DIABLO_FAME_PARTITION_HH_

/**
 * @file
 * Partitioned conservative-parallel simulation engine.
 *
 * DIABLO distributes one simulation across many FPGAs, each running its
 * own simulation scheduler that "synchronizes with adjacent FPGAs over
 * the serial links at a fine granularity" (§3.2).  This is the software
 * analog: the model is split into partitions, each with its own event
 * queue, advancing in lockstep quanta no larger than the minimum
 * cross-partition link latency (the lookahead), so every remote event
 * is known before the quantum in which it fires.
 *
 * Determinism is preserved exactly: cross-partition messages are
 * drained at each barrier in fixed channel order and scheduled with the
 * destination queue's usual (time, priority, sequence) ordering, so a
 * parallel run produces *identical* results to the sequential reference
 * (see fame tests), mirroring DIABLO's repeatable experiments across
 * its multi-FPGA deployment.
 *
 * Quantum skipping: warehouse-scale workloads are bursty — activity
 * clusters (an incast burst, a memcached request wave) separated by long
 * idle stretches.  Spinning a barrier per quantum through idle time is
 * pure synchronization tax (the dominant cost SimBricks identifies in
 * quantum-synchronized simulation).  At each window boundary the engine
 * therefore inspects the earliest pending event / in-flight message
 * across all partitions; if the next window would be empty it jumps the
 * clock forward to the window containing that event, snapped to the
 * quantum grid.  Because nothing can happen in the skipped windows (no
 * local events, and messages only originate from executing events), the
 * executed-event sequence — and thus every result — is bit-identical to
 * the unskipped run.  Both runSequential and runParallel apply the same
 * skip rule, so parallel ≡ sequential continues to hold exactly.
 *
 * Winning back the sync tax (the paper's whole point is that the
 * partitioned engine *accelerates* the model) takes stacked
 * mechanisms in runParallel:
 *
 *  1. **Partition fusion.**  P partitions are mapped onto
 *     `min(P, parallelism())` workers; each worker advances its fused
 *     set sequentially within a quantum.  Barrier participant count
 *     matches host cores, not model racks, and with one worker the
 *     engine degenerates to a single-thread loop with no barrier at
 *     all — near-runSequential cost.  The calling thread doubles as
 *     worker 0, so a run hands off to at most `workers-1` pool
 *     threads.  setPartitionWeight() biases the (deterministic, LPT
 *     greedy) fusion assignment toward balance.
 *  2. **Hierarchical spin-then-park barrier.**  Workers synchronize
 *     on a radix-4 combining tree (TreeBarrier): arrivals touch one
 *     cacheline per tree node instead of all contending one atomic,
 *     waiters spin with bounded backoff (quanta are ~µs; a futex
 *     round trip costs more than most quanta) and park only after
 *     the budget — which drops to zero when workers outnumber online
 *     CPUs, because spinning on a timeshared core just burns the
 *     scheduler quantum the other worker needs.
 *  3. **Cache-topology-aware worker placement.**  Fusion derives a
 *     worker-to-worker affinity from the channels crossing them and
 *     pins workers so that heavily-communicating workers share a
 *     last-level cache (CpuTopology; sysfs-detected, deterministic
 *     fallback), keeping quantum-boundary message drains on-package.
 *     setWorkerCpus() overrides the map; setWorkerPinning(false)
 *     disables it.
 *  4. **Per-worker lanes and arenas.**  All hot per-worker engine
 *     state — published minima, the cached event horizon, the dirty
 *     channel list — lives in one cacheline-aligned WorkerLane whose
 *     scratch comes from a worker-local SlabArena, so no two workers'
 *     hot state ever shares a cacheline.  (Each partition's EventQueue
 *     slot pool is likewise arena-chunked, and a partition belongs to
 *     exactly one worker for the duration of a run.)
 *  5. **Per-worker quantum skipping.**  Each worker caches its fused
 *     set's next-event horizon; while the horizon clears the window
 *     bound — and the serial drain lowers it when a message lands in
 *     the worker's partitions — the worker skips its partition scans
 *     entirely and arrives at the barrier with the published minimum
 *     unchanged.  The global window sequence is untouched, so results
 *     stay bit-identical; sparse phases just pay one tree round.
 *  6. **Incremental serial section.**  Each worker publishes the
 *     earliest pending event time of its fused partitions as it
 *     arrives at the barrier, and a channel registers itself on its
 *     worker's dirty list on the first post of a quantum; the
 *     completion step folds worker minima with drained-message minima
 *     instead of rescanning every partition and channel per ~µs
 *     window.
 *  7. **Allocation-free channel buffers.**  Per-channel message
 *     storage keeps its capacity across quanta, and posts carry the
 *     small-buffer-optimized EventFn, so steady-state cross-partition
 *     traffic touches no allocator.
 *
 * runSequential stays the deliberately simple full-scan reference the
 * incremental engine is checked against (bit-identity tests).
 *
 * **Cross-process coupling (runCoupled).**  A third engine spreads the
 * window loop over multiple *processes*, DIABLO's multi-FPGA scaling
 * axis mapped onto host processes connected by fame::Transport record
 * pipes (shared-memory rings between real processes; heap rings for
 * in-process tests).  Every process builds the full deterministic
 * model but advances only the partitions it owns; cross-process
 * channels carry opaque byte records (the wiring layer installs a
 * RecordDecoder per channel), and each window ends in one SYNC
 * exchange carrying every process's earliest-pending contribution —
 * the same fold the other engines compute locally, so the window
 * sequence, the drain order (global channel index), and therefore
 * every simulated result are bit-identical to runSequential and
 * runParallel.  A process whose peers have already published their
 * SYNC free-runs straight through the barrier (wait elision); it
 * parks on the ring futex only when a peer is genuinely behind.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/arena.hh"
#include "core/cpu_topology.hh"
#include "core/simulator.hh"
#include "fame/transport.hh"
#include "fame/tree_barrier.hh"

namespace diablo {
namespace fame {

/** A set of lockstep simulation partitions. */
class PartitionSet {
  public:
    /**
     * Synchronization quantum used when no channels exist.  Isolated
     * partitions have no lookahead constraint, so any positive quantum
     * is semantically valid; 1 ms keeps barrier overhead negligible
     * while bounding how far partitions drift from the horizon check.
     * Override with setQuantum() when a different granularity matters
     * (e.g. benchmarking barrier cost itself).
     */
    static constexpr SimTime kNoChannelQuantum = SimTime::ms(1);

    /**
     * Materialize a received byte record into the delivery closure for
     * @p dst (the channel's destination partition).  The wiring layer
     * (net/sim) installs one per channel via setChannelDecoder; fame
     * itself never learns the payload format.  The returned EventFn is
     * scheduled exactly like a directly-posted closure, so local and
     * cross-process deliveries land at identical queue positions.
     */
    using RecordDecoder = std::function<EventFn(
        Simulator &dst, SimTime when, const void *bytes, uint32_t len)>;

    /** Unidirectional cross-partition message channel. */
    class Channel {
      public:
        /**
         * Deliver @p fn in the destination partition at absolute time
         * @p when.  Must be called from the source partition's events,
         * and @p when must respect the conservative contract
         * `when >= src.now() + minLatency()`, which guarantees the
         * message lands in a future quantum.  The contract is validated
         * here, at post time, against the source partition's clock — a
         * violation is a model-wiring bug (the advertised lookahead was
         * larger than the real one) and panics immediately with the
         * channel's name rather than surfacing later as an
         * unattributable drain-time failure or a silently late
         * delivery.
         *
         * The first post of a quantum registers the channel on the
         * posting worker's dirty list, so the barrier's serial section
         * drains only channels that actually carried traffic.  Message
         * storage keeps its capacity across quanta: steady-state posts
         * are allocation-free.
         */
        void post(SimTime when, EventFn fn);

        SimTime minLatency() const { return min_latency_; }
        const std::string &name() const { return name_; }

        /**
         * Stable flag the wiring layer branches on per delivery: true
         * while this channel's destination partition is owned by a
         * different process (set by enableCoupled, never changed
         * during a run).  Deliveries on such a channel must go through
         * PartitionSet::postRecord — closures cannot cross a process
         * boundary — and post() on one is fatal.  Always false for
         * uncoupled sets, so the in-process hot path stays one
         * predictable branch.
         */
        const bool *remoteOutgoingFlag() const { return &remote_out_; }

      private:
        friend class PartitionSet;

        struct Msg {
            SimTime when;
            EventFn fn;
        };

        /** Channel role relative to this process's owned partitions. */
        enum class Cls : uint8_t {
            Local,   ///< src and dst owned: today's in-process path
            Out,     ///< src owned, dst foreign: serialize outbound
            In,      ///< dst owned, src foreign: decode inbound
            Foreign, ///< neither owned: never carries traffic here
        };

        /** Conservative-contract check shared by post and postRecord. */
        void validatePost(SimTime when) const;

        PartitionSet *owner_ = nullptr;
        size_t src_ = 0;
        size_t dst_ = 0;
        uint32_t index_ = 0; ///< creation order == drain order
        SimTime min_latency_;
        std::string name_;
        std::vector<Msg> pending_;

        // Coupled-mode state (inert defaults for uncoupled sets).
        Cls cls_ = Cls::Local;
        bool remote_out_ = false;
        RecordDecoder decoder_;
        /** Outbound records awaiting flush: [i64 when][u32 len][bytes]. */
        std::vector<uint8_t> out_pending_;
        SimTime out_min_ = SimTime::max();
    };

    explicit PartitionSet(size_t n);
    ~PartitionSet();

    PartitionSet(const PartitionSet &) = delete;
    PartitionSet &operator=(const PartitionSet &) = delete;

    size_t size() const { return parts_.size(); }
    Simulator &partition(size_t i) { return *parts_[i]; }

    /**
     * Create a channel from partition @p src to @p dst whose messages
     * always arrive at least @p min_latency after they are posted.
     * The run quantum is the minimum such latency across all channels.
     * @p name appears in contract-violation diagnostics; when empty, a
     * "ch<i>(<src>-><dst>)" default is generated.
     */
    Channel &makeChannel(size_t src, size_t dst, SimTime min_latency,
                         std::string name = std::string());

    /**
     * Synchronization quantum (lookahead): the explicit override if one
     * was set, else the minimum channel latency, else kNoChannelQuantum.
     * The derived value is cached (run entry used to pay an O(channels)
     * scan) and invalidated by makeChannel/setQuantum/clearQuantum, so
     * a channel added after an override is set is still validated.
     */
    SimTime quantum() const;

    /**
     * Override the synchronization quantum.  Must be strictly positive
     * (rejected otherwise), and — to keep the engine conservative — no
     * larger than the minimum channel latency at run time (checked in
     * quantum(), so channels may be added after the override is set).
     * Use clearQuantum() to drop the override; a zero quantum is never
     * a valid request, so it is no longer overloaded to mean "clear".
     */
    void setQuantum(SimTime q);

    /** Remove a setQuantum() override and return to the derived value. */
    void
    clearQuantum()
    {
        quantum_override_ = SimTime();
        quantum_cache_valid_ = false;
    }

    /**
     * Enable/disable empty-quantum skipping (default: enabled).  Only
     * wall-clock behaviour changes; simulated results are identical.
     * Disabling is useful for measuring raw barrier cost.
     */
    void setSkipIdleQuanta(bool skip) { skip_idle_ = skip; }
    bool skipIdleQuanta() const { return skip_idle_; }

    /**
     * Cap the number of worker threads runParallel fuses partitions
     * onto: a run uses `min(size(), n)` workers (the calling thread is
     * worker 0, so at most n-1 pool threads run).  @p n == 0 restores
     * the default, `hardware_concurrency`.  A request above the
     * partition count is clamped to it (extra workers could never own
     * a partition) with a one-time warning.  Simulated results are
     * identical for every setting — only the fusion changes.  Fatal if
     * called while a parallel run is live.
     */
    void setParallelism(size_t n);

    /** Resolved worker cap (the hardware default when unset). */
    size_t parallelism() const;

    /**
     * Relative load hint for partition @p i (default 1.0, must be
     * positive): fusion assigns partitions to workers by greedy
     * longest-processing-time on these weights.  A sharded cluster
     * sets rack partitions ∝ servers and the switch partition ∝ trunk
     * fan-in.  Purely a balance hint; results never depend on it.
     */
    void setPartitionWeight(size_t i, double w);

    /**
     * Locality hint: partitions sharing a non-negative @p group id are
     * placed on the same worker when that fits — the fusion first runs
     * LPT over whole groups, then spills a group to partition-level
     * placement only if keeping it together would overload a worker by
     * more than 25% of the ideal share.  A sharded cluster groups each
     * array's rack partitions together (rack -> array -> datacenter
     * hierarchy), so at 16x more partitions than cores, racks that
     * exchange intra-array traffic land on one worker and their
     * channel drains stay cache-warm.  Group -1 (the default) means
     * ungrouped: the partition is its own singleton group.  Purely a
     * balance/locality hint; results never depend on it.
     */
    void setPartitionGroup(size_t i, int64_t group);

    /**
     * Worker that partition @p i was fused onto in the most recent
     * parallel run (0 before any run).  Introspection for balance
     * tooling and the fusion tests; never affects results.
     */
    uint32_t workerOfPartition(size_t i) const { return worker_of_[i]; }

    /**
     * Enable/disable automatic worker-to-CPU pinning (default on).
     * When on and the host has at least as many online CPUs as the run
     * has workers, each worker is pinned to one CPU, placed so that
     * workers exchanging channel traffic share a last-level cache.
     * Oversubscribed runs (more workers than CPUs) are never pinned.
     * Purely a wall-clock matter; results never depend on it.
     */
    void setWorkerPinning(bool enable);

    /**
     * Explicit worker-to-CPU map: worker @p i is pinned to cpus[i];
     * workers beyond the list run unpinned.  Every id must name an
     * online CPU of the topology (fatal otherwise — a silent fallback
     * would hide a stale pinning config from a different machine).
     * Overrides the automatic placement; fatal while a run is live.
     */
    void setWorkerCpus(std::vector<int> cpus);

    /**
     * Replace the detected host topology (tests pin down placement on
     * arbitrary machine shapes; tools may restrict the engine to a
     * cpuset).  Call before setWorkerCpus — explicit maps are checked
     * against the topology current at set time.  Fatal while a run is
     * live.
     */
    void setCpuTopology(CpuTopology topo);

    /** Topology the engine is placing workers against. */
    const CpuTopology &cpuTopology() const { return topo_; }

    /**
     * CPU each worker of the most recent fusion was assigned to, -1
     * for unpinned; index w is worker w.  Feeds the run artifact's
     * engine section and the placement tests.
     */
    const std::vector<int> &lastRunWorkerCpus() const { return worker_cpu_; }

    /** True when the last parallel run had more workers than CPUs. */
    bool lastRunOversubscribed() const { return last_oversubscribed_; }

    /** Layout introspection for the false-sharing tests. */
    static size_t workerLaneStride() { return sizeof(WorkerLane); }
    static size_t workerLaneAlignment() { return alignof(WorkerLane); }

    /**
     * Advance all partitions to @p until on `min(size(), parallelism())`
     * fused workers with spin-then-park barrier synchronization each
     * quantum.  The calling thread participates as worker 0; pool
     * threads are created on first use and reused across runs.  Not
     * re-entrant: calling it again (from an event, or from another
     * host thread) while a parallel run is live is fatal.
     */
    void runParallel(SimTime until);

    /** Reference implementation: same semantics, one host thread. */
    void runSequential(SimTime until);

    // --- cross-process coupling -------------------------------------

    /**
     * Install the byte-record codec of a channel.  Required on every
     * channel whose destination partition this process owns but whose
     * source it does not (class In); also lets postRecord deliver
     * locally, which is how the bit-identity tests drive the record
     * path without any transport.
     */
    void setChannelDecoder(Channel &ch, RecordDecoder decoder);

    /**
     * Post one byte record on @p ch at absolute time @p when.  The
     * conservative contract is validated against the source clock with
     * the same diagnostic as Channel::post.  Destination owned by this
     * process: the decoder materializes the delivery immediately and
     * it joins pending_ like any closure post.  Destination foreign:
     * the bytes are buffered and flushed to the owning process at the
     * next window barrier.
     */
    void postRecord(Channel &ch, SimTime when, const void *bytes,
                    uint32_t len);

    /** Configuration of one process's view of a coupled group. */
    struct CoupledOptions {
        uint32_t self_rank = 0;
        /** Owning rank per partition; identical in every process. */
        std::vector<uint32_t> owner_of;
        /** Transport to every other rank appearing in owner_of. */
        std::vector<std::pair<uint32_t, Transport *>> peers;
        /** Ring-wait spin budget before parking (see TreeBarrier). */
        uint32_t spin_budget = 512;
        /** One futex-park slice; waits loop with liveness checks. */
        int64_t wait_timeout_ns = 20 * 1000 * 1000;
    };

    /**
     * Enter coupled mode: classify every channel against the owner
     * map, flip the remote-outgoing flags the wiring layer branches
     * on, and record the peer transports.  Every In-class channel must
     * already have a decoder (fatal otherwise — a missing codec would
     * surface as silently-dropped traffic).  Call once, after all
     * channels and decoders are wired and before the first runCoupled.
     */
    void enableCoupled(const CoupledOptions &opts);

    bool coupled() const { return coupled_; }
    uint32_t coupledSelfRank() const { return self_rank_; }

    /** True when this process owns partition @p i (always true uncoupled). */
    bool partitionOwned(size_t i) const
    {
        return !coupled_ || owner_of_[i] == self_rank_;
    }

    /**
     * Advance the owned partitions to @p until in lockstep with every
     * peer process.  The window sequence — and every simulated result —
     * is bit-identical to runSequential over the whole model: each
     * barrier exchanges SYNC records whose contributions reconstruct
     * the exact global earliest-pending fold the sequential engine
     * scans for, and drains local + inbound messages in global channel
     * order.  Like runSequential, each call rediscovers the window
     * sequence from t=0 (an entry SYNC exchange replaces the entry
     * full scan), so interleaved drive loops stay aligned.
     *
     * Returns false when the run was abandoned — a peer died or
     * aborted, or an interrupt arrived while a peer stayed silent —
     * after flagging every transport so the peers unwind too.  The
     * caller finalizes its artifact as interrupted; results of a
     * false return are incomplete and must not be reported as a run.
     */
    bool runCoupled(SimTime until);

    /** Transport-side counters of all runCoupled calls so far. */
    struct CoupledStats {
        uint64_t sync_sent = 0;
        uint64_t sync_recv = 0;
        uint64_t msgs_sent = 0;
        uint64_t msgs_recv = 0;
        uint64_t bytes_sent = 0;
        uint64_t bytes_recv = 0;
        /** Barriers where the peer's batch had already arrived. */
        uint64_t waits_elided = 0;
        /** Barriers that had to spin/park for a peer. */
        uint64_t waits_blocked = 0;
    };

    const CoupledStats &coupledStats() const { return coupled_stats_; }

    /** Fusion weights (setPartitionWeight), for the process placement. */
    const std::vector<double> &partitionWeights() const { return weights_; }

    /**
     * Deterministic partition -> rank map: greedy LPT over @p weights
     * onto @p nprocs ranks (heaviest partition first, least-loaded
     * rank, ties to the lowest rank), relabeled in first-appearance
     * order so rank 0 owns partition 0.  Every process — launcher and
     * children — computes this independently and must agree, which the
     * HELLO handshake's owner hash verifies.
     */
    static std::vector<uint32_t> lptAssign(
        const std::vector<double> &weights, uint32_t nprocs);

    /**
     * Cumulative barriers executed (quanta) across every run of this
     * PartitionSet, for the scaling benchmark.  With skipping enabled,
     * empty windows are jumped over and not counted; the count is
     * identical between sequential and parallel runs.  Per-run deltas
     * are available from lastRunQuanta(); resetStats() zeroes this.
     */
    uint64_t quantaExecuted() const { return quanta_; }

    /** Cumulative executed events summed over all partitions. */
    uint64_t totalExecutedEvents() const;

    // --- per-run statistics (the host-performance model's inputs) ---
    //
    // Both run engines snapshot counters on entry and publish deltas on
    // exit, so interleaved runSequential/runParallel calls on one
    // PartitionSet can be attributed individually: events per partition
    // per run expose load imbalance (the FAME host model's utilization
    // input), quanta per run expose synchronization intensity.

    /** Quanta executed by the most recent run (either engine). */
    uint64_t lastRunQuanta() const { return last_run_quanta_; }

    /** Events executed by partition @p i during the most recent run. */
    uint64_t lastRunExecutedEvents(size_t i) const
    {
        return last_run_executed_[i];
    }

    /** Events executed across all partitions during the most recent run. */
    uint64_t lastRunTotalExecutedEvents() const;

    /** Workers the most recent runParallel fused the partitions onto. */
    size_t lastRunWorkers() const { return par_workers_; }

    /**
     * Zero the cumulative quantum counter and the last-run deltas.
     * (Executed-event totals are owned by the Simulators and stay
     * cumulative; the per-run accessors above are already deltas.)
     */
    void resetStats();

  private:
    /**
     * Per-worker engine lane: every piece of state one worker mutates
     * on the quantum hot path lives here, cacheline-aligned and padded
     * to a whole number of lines, so two workers' hot state never
     * shares a line (the false sharing that, with the flat barrier,
     * collapsed the threads:2 round trip).  The serial completion step
     * reads published_min / drains dirty and may lower horizon; both
     * directions are ordered by the barrier's RMW chain.
     */
    struct alignas(64) WorkerLane {
        /** Post-quantum minimum over the fused set (skip-rule input). */
        SimTime published_min;
        /**
         * Cached earliest pending time of the fused set.  Valid means:
         * no partition of this worker has run since it was computed,
         * and every message drained into them since has been folded
         * in — so while horizon >= window bound the worker can skip
         * its partition scans entirely (per-worker quantum skipping).
         */
        SimTime horizon;
        bool horizon_valid = false;
        /** Channel indices with posts this quantum (arena storage). */
        uint32_t *dirty = nullptr;
        uint32_t dirty_count = 0;
        uint32_t dirty_cap = 0;
        /** CPU this worker's thread is pinned to; -1 = unpinned. */
        int cpu = -1;
        /** Worker-local scratch; nothing here is freed before the lane. */
        SlabArena arena;
    };
    static_assert(alignof(WorkerLane) == 64,
                  "lanes must start on a cacheline");
    static_assert(sizeof(WorkerLane) % 64 == 0,
                  "adjacent lanes must not share a cacheline");

    SimTime computeQuantum() const;

    /** Drain dirty channels in creation order; min drained `when`. */
    SimTime drainDirtyChannels();

    /** Earliest pending local event or undelivered channel message. */
    SimTime earliestPendingTime();

    /**
     * Start of the next window that can contain work given the
     * earliest pending time: @p t itself when work exists in [t, t+q);
     * otherwise @p earliest snapped down to the quantum grid, clamped
     * to [@p t, @p until].
     */
    static SimTime windowForEarliest(SimTime earliest, SimTime t,
                                     SimTime q, SimTime until);

    /** Full-scan skip rule (run entry, and the sequential reference). */
    SimTime nextWindowStart(SimTime t, SimTime q, SimTime until);

    // --- per-run statistics bookkeeping ---
    void beginRunStats();
    void endRunStats();

    // --- fused parallel runner ---

    /** Barrier completion step: drain, advance, possibly skip. */
    void parallelQuantumEnd() noexcept;

    /** Fuse partitions onto @p workers (deterministic LPT greedy). */
    void assignPartitions(size_t workers);

    /** Resolve worker -> CPU placement for the fusion just computed. */
    void placeWorkers(size_t workers, const std::vector<double> &load);

    /** Grow lanes_ to at least @p workers lanes (never shrinks). */
    void ensureLanes(size_t workers);

    /** Channel @p index got its first post this quantum (from @p src). */
    void markChannelDirty(uint32_t index, size_t src);
    void growLaneDirty(WorkerLane &lane);

    /** Quantum loop of fused worker @p w (worker 0 = calling thread). */
    void workerBody(size_t w);

    void ensureWorkerPool(size_t pool_threads);
    void workerLoop(size_t worker_id);

    // --- coupled engine internals ---

    /** Inbound state of one peer process. */
    struct PeerState {
        uint32_t rank = 0;
        Transport *tr = nullptr;
        bool hello_seen = false;
        WireHello hello;

        /**
         * One barrier's worth of inbound records.  Peers free-run
         * ahead, so polling while waiting for barrier j may consume
         * records that belong to j+1; batches stage them in arrival
         * order — messages accumulate into the open (back) batch, the
         * peer's SYNC closes it — and awaitBatch consumes exactly the
         * front completed batch.
         */
        struct Batch {
            uint64_t seq = 0;
            int64_t bound_ps = 0;
            int64_t contrib_ps = 0;
            bool complete = false;
            /** Packed records: [u32 channel][u32 len][i64 when][bytes]. */
            std::vector<uint8_t> data;
            std::vector<size_t> offsets; ///< record starts within data
        };
        std::deque<Batch> batches;
    };

    /** Earliest future work this process knows about (contrib fold). */
    SimTime coupledContrib();

    /** Drain one peer's ring until empty, staging records into batches. */
    void pollPeer(size_t pi);
    void pollAllPeers();

    /** Push one wire record to peer @p pi, draining inbound on stall. */
    bool coupledSend(size_t pi, const void *bytes, uint32_t n);

    /** Serialize and send every out-dirty channel's buffered records. */
    bool flushOutgoing();

    /** Block until peer @p pi's batch for barrier @p seq is complete. */
    bool awaitBatch(size_t pi, uint64_t seq);

    /**
     * One window barrier: flush outbound, SYNC all peers, await their
     * batches, drain local + inbound messages in global channel order.
     * @p global receives the group-wide earliest-pending fold.
     */
    bool coupledBarrier(SimTime bound, SimTime contrib, SimTime *global);

    /** Merged drain of local dirty channels and front peer batches. */
    void coupledDrain();

    bool exchangeHello();
    void abandonCoupled();

    std::vector<std::unique_ptr<Simulator>> parts_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<double> weights_;
    std::vector<int64_t> groups_; ///< -1 = ungrouped (singleton)
    SimTime quantum_override_;
    mutable SimTime quantum_cache_;
    mutable bool quantum_cache_valid_ = false;
    bool skip_idle_ = true;
    uint64_t quanta_ = 0;
    size_t threads_ = 0; ///< setParallelism cap; 0 = hardware default

    // Per-run stat deltas (see accessors above).
    uint64_t run_start_quanta_ = 0;
    uint64_t last_run_quanta_ = 0;
    std::vector<uint64_t> last_run_executed_;

    // Worker pool: min(P, parallelism()) - 1 pool threads (the caller
    // is worker 0), created on first use, grown on demand, reused for
    // every subsequent run and joined in the destructor.  generation_
    // hands work to the pool; workers_running_ counts them back in.
    std::vector<std::thread> pool_;
    std::mutex pool_mu_;
    std::condition_variable pool_work_cv_;
    std::condition_variable pool_idle_cv_;
    uint64_t pool_generation_ = 0;
    size_t workers_running_ = 0;
    bool pool_shutdown_ = false;
    bool run_active_ = false;

    // Fusion state of the in-flight run.  Written before workers are
    // released (mutex handoff) and only read during the run, except
    // the WorkerLane hot fields, which each worker writes for itself
    // between barriers and the completion step reads (the barrier's
    // RMW chain orders both directions).
    std::vector<std::vector<size_t>> worker_parts_; ///< worker -> fused set
    std::vector<uint32_t> worker_of_;               ///< partition -> worker
    std::unique_ptr<WorkerLane[]> lanes_; ///< per-worker hot state
    size_t lane_count_ = 0;               ///< allocated (never shrinks)
    size_t lane_active_ = 0;              ///< lanes of the current fusion
    std::vector<uint32_t> drain_scratch_; ///< merged+sorted dirty list
    TreeBarrier barrier_;
    size_t par_workers_ = 0;

    // Worker placement (see setWorkerPinning/setWorkerCpus).
    enum class PinMode { Auto, Off, Explicit };
    CpuTopology topo_;
    PinMode pin_mode_ = PinMode::Auto;
    std::vector<int> pin_cpus_;   ///< Explicit worker -> cpu request
    std::vector<int> worker_cpu_; ///< resolved placement of last fusion
    bool last_oversubscribed_ = false;
    bool clamp_warned_ = false;

    // Shared window state of the in-flight parallel run.  Written only
    // by the barrier completion step (single-threaded by construction)
    // or before workers are released; read by workers between barriers.
    SimTime par_t_;
    SimTime par_bound_;
    SimTime par_until_;
    SimTime par_q_;
    bool par_done_ = false;

    // Coupled-mode state (inert for uncoupled sets).
    bool coupled_ = false;
    bool hello_done_ = false;
    bool coupled_abandoned_ = false;
    uint32_t self_rank_ = 0;
    std::vector<uint32_t> owner_of_;   ///< partition -> owning rank
    std::vector<size_t> owned_parts_;  ///< partitions this process runs
    std::vector<PeerState> peers_;     ///< rank order, deterministic
    std::vector<uint32_t> peer_of_rank_; ///< rank -> index in peers_
    uint32_t coupled_spin_ = 512;
    int64_t coupled_timeout_ns_ = 20 * 1000 * 1000;
    uint64_t sync_seq_ = 0;
    std::vector<uint32_t> out_dirty_;  ///< Out channels with buffered records
    std::vector<uint8_t> recv_scratch_;
    std::vector<uint8_t> wire_scratch_;
    /** (channel, peer-or-local, record) entries of one merged drain. */
    struct CoupledDrainEntry {
        uint32_t channel;
        uint32_t peer; ///< UINT32_MAX = local pending_ drain
        uint32_t rec;
    };
    std::vector<CoupledDrainEntry> coupled_drain_scratch_;
    CoupledStats coupled_stats_;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_PARTITION_HH_
