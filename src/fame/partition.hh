#ifndef DIABLO_FAME_PARTITION_HH_
#define DIABLO_FAME_PARTITION_HH_

/**
 * @file
 * Partitioned conservative-parallel simulation engine.
 *
 * DIABLO distributes one simulation across many FPGAs, each running its
 * own simulation scheduler that "synchronizes with adjacent FPGAs over
 * the serial links at a fine granularity" (§3.2).  This is the software
 * analog: the model is split into partitions, each with its own event
 * queue, advancing in lockstep quanta no larger than the minimum
 * cross-partition link latency (the lookahead), so every remote event
 * is known before the quantum in which it fires.
 *
 * Determinism is preserved exactly: cross-partition messages are
 * drained at each barrier in fixed channel order and scheduled with the
 * destination queue's usual (time, priority, sequence) ordering, so a
 * parallel run produces *identical* results to the sequential reference
 * (see fame tests), mirroring DIABLO's repeatable experiments across
 * its multi-FPGA deployment.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/simulator.hh"

namespace diablo {
namespace fame {

/** A set of lockstep simulation partitions. */
class PartitionSet {
  public:
    /** Unidirectional cross-partition message channel. */
    class Channel {
      public:
        /**
         * Deliver @p fn in the destination partition at absolute time
         * @p when.  Must be called from the source partition's events;
         * @p when must respect the channel latency (>= now + latency),
         * which guarantees it lands in a future quantum.
         */
        void post(SimTime when, std::function<void()> fn);

        SimTime minLatency() const { return min_latency_; }

      private:
        friend class PartitionSet;

        struct Msg {
            SimTime when;
            std::function<void()> fn;
        };

        PartitionSet *owner_ = nullptr;
        size_t src_ = 0;
        size_t dst_ = 0;
        SimTime min_latency_;
        std::vector<Msg> pending_;
    };

    explicit PartitionSet(size_t n);
    ~PartitionSet();

    PartitionSet(const PartitionSet &) = delete;
    PartitionSet &operator=(const PartitionSet &) = delete;

    size_t size() const { return parts_.size(); }
    Simulator &partition(size_t i) { return *parts_[i]; }

    /**
     * Create a channel from partition @p src to @p dst whose messages
     * always arrive at least @p min_latency after they are posted.
     * The run quantum is the minimum such latency across all channels.
     */
    Channel &makeChannel(size_t src, size_t dst, SimTime min_latency);

    /** Synchronization quantum (lookahead). */
    SimTime quantum() const;

    /**
     * Advance all partitions to @p until using one host thread per
     * partition with barrier synchronization each quantum.
     */
    void runParallel(SimTime until);

    /** Reference implementation: same semantics, one host thread. */
    void runSequential(SimTime until);

    /** Barriers executed (quanta), for the scaling benchmark. */
    uint64_t quantaExecuted() const { return quanta_; }

    uint64_t totalExecutedEvents() const;

  private:
    void drainChannels();

    std::vector<std::unique_ptr<Simulator>> parts_;
    std::vector<std::unique_ptr<Channel>> channels_;
    uint64_t quanta_ = 0;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_PARTITION_HH_
