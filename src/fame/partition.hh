#ifndef DIABLO_FAME_PARTITION_HH_
#define DIABLO_FAME_PARTITION_HH_

/**
 * @file
 * Partitioned conservative-parallel simulation engine.
 *
 * DIABLO distributes one simulation across many FPGAs, each running its
 * own simulation scheduler that "synchronizes with adjacent FPGAs over
 * the serial links at a fine granularity" (§3.2).  This is the software
 * analog: the model is split into partitions, each with its own event
 * queue, advancing in lockstep quanta no larger than the minimum
 * cross-partition link latency (the lookahead), so every remote event
 * is known before the quantum in which it fires.
 *
 * Determinism is preserved exactly: cross-partition messages are
 * drained at each barrier in fixed channel order and scheduled with the
 * destination queue's usual (time, priority, sequence) ordering, so a
 * parallel run produces *identical* results to the sequential reference
 * (see fame tests), mirroring DIABLO's repeatable experiments across
 * its multi-FPGA deployment.
 *
 * Quantum skipping: warehouse-scale workloads are bursty — activity
 * clusters (an incast burst, a memcached request wave) separated by long
 * idle stretches.  Spinning a barrier per quantum through idle time is
 * pure synchronization tax (the dominant cost SimBricks identifies in
 * quantum-synchronized simulation).  At each window boundary the engine
 * therefore inspects the earliest pending event / in-flight message
 * across all partitions; if the next window would be empty it jumps the
 * clock forward to the window containing that event, snapped to the
 * quantum grid.  Because nothing can happen in the skipped windows (no
 * local events, and messages only originate from executing events), the
 * executed-event sequence — and thus every result — is bit-identical to
 * the unskipped run.  Both runSequential and runParallel apply the same
 * skip rule, so parallel ≡ sequential continues to hold exactly.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "core/simulator.hh"

namespace diablo {
namespace fame {

/** A set of lockstep simulation partitions. */
class PartitionSet {
  public:
    /**
     * Synchronization quantum used when no channels exist.  Isolated
     * partitions have no lookahead constraint, so any positive quantum
     * is semantically valid; 1 ms keeps barrier overhead negligible
     * while bounding how far partitions drift from the horizon check.
     * Override with setQuantum() when a different granularity matters
     * (e.g. benchmarking barrier cost itself).
     */
    static constexpr SimTime kNoChannelQuantum = SimTime::ms(1);

    /** Unidirectional cross-partition message channel. */
    class Channel {
      public:
        /**
         * Deliver @p fn in the destination partition at absolute time
         * @p when.  Must be called from the source partition's events;
         * @p when must respect the channel latency (>= now + latency),
         * which guarantees it lands in a future quantum.
         */
        void post(SimTime when, EventFn fn);

        SimTime minLatency() const { return min_latency_; }

      private:
        friend class PartitionSet;

        struct Msg {
            SimTime when;
            EventFn fn;
        };

        PartitionSet *owner_ = nullptr;
        size_t src_ = 0;
        size_t dst_ = 0;
        SimTime min_latency_;
        std::vector<Msg> pending_;
    };

    explicit PartitionSet(size_t n);
    ~PartitionSet();

    PartitionSet(const PartitionSet &) = delete;
    PartitionSet &operator=(const PartitionSet &) = delete;

    size_t size() const { return parts_.size(); }
    Simulator &partition(size_t i) { return *parts_[i]; }

    /**
     * Create a channel from partition @p src to @p dst whose messages
     * always arrive at least @p min_latency after they are posted.
     * The run quantum is the minimum such latency across all channels.
     */
    Channel &makeChannel(size_t src, size_t dst, SimTime min_latency);

    /**
     * Synchronization quantum (lookahead): the explicit override if one
     * was set, else the minimum channel latency, else kNoChannelQuantum.
     */
    SimTime quantum() const;

    /**
     * Override the synchronization quantum.  Must be positive, and — to
     * keep the engine conservative — no larger than the minimum channel
     * latency at run time (checked in quantum(), so channels may be
     * added after the override is set).  Pass SimTime() to clear.
     */
    void setQuantum(SimTime q);

    /**
     * Enable/disable empty-quantum skipping (default: enabled).  Only
     * wall-clock behaviour changes; simulated results are identical.
     * Disabling is useful for measuring raw barrier cost.
     */
    void setSkipIdleQuanta(bool skip) { skip_idle_ = skip; }
    bool skipIdleQuanta() const { return skip_idle_; }

    /**
     * Advance all partitions to @p until using one host thread per
     * partition with barrier synchronization each quantum.
     */
    void runParallel(SimTime until);

    /** Reference implementation: same semantics, one host thread. */
    void runSequential(SimTime until);

    /**
     * Barriers executed (quanta), for the scaling benchmark.  With
     * skipping enabled, empty windows are jumped over and not counted;
     * the count is identical between sequential and parallel runs.
     */
    uint64_t quantaExecuted() const { return quanta_; }

    uint64_t totalExecutedEvents() const;

  private:
    void drainChannels();

    /** Earliest pending local event or undelivered channel message. */
    SimTime earliestPendingTime();

    /**
     * Start of the next window that can contain work: @p t itself when
     * skipping is off or work exists in [t, t+q); otherwise the earliest
     * pending time snapped down to the quantum grid, clamped to
     * [@p t, @p until].
     */
    SimTime nextWindowStart(SimTime t, SimTime q, SimTime until);

    std::vector<std::unique_ptr<Simulator>> parts_;
    std::vector<std::unique_ptr<Channel>> channels_;
    SimTime quantum_override_;
    bool skip_idle_ = true;
    uint64_t quanta_ = 0;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_PARTITION_HH_
