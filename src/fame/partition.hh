#ifndef DIABLO_FAME_PARTITION_HH_
#define DIABLO_FAME_PARTITION_HH_

/**
 * @file
 * Partitioned conservative-parallel simulation engine.
 *
 * DIABLO distributes one simulation across many FPGAs, each running its
 * own simulation scheduler that "synchronizes with adjacent FPGAs over
 * the serial links at a fine granularity" (§3.2).  This is the software
 * analog: the model is split into partitions, each with its own event
 * queue, advancing in lockstep quanta no larger than the minimum
 * cross-partition link latency (the lookahead), so every remote event
 * is known before the quantum in which it fires.
 *
 * Determinism is preserved exactly: cross-partition messages are
 * drained at each barrier in fixed channel order and scheduled with the
 * destination queue's usual (time, priority, sequence) ordering, so a
 * parallel run produces *identical* results to the sequential reference
 * (see fame tests), mirroring DIABLO's repeatable experiments across
 * its multi-FPGA deployment.
 *
 * Quantum skipping: warehouse-scale workloads are bursty — activity
 * clusters (an incast burst, a memcached request wave) separated by long
 * idle stretches.  Spinning a barrier per quantum through idle time is
 * pure synchronization tax (the dominant cost SimBricks identifies in
 * quantum-synchronized simulation).  At each window boundary the engine
 * therefore inspects the earliest pending event / in-flight message
 * across all partitions; if the next window would be empty it jumps the
 * clock forward to the window containing that event, snapped to the
 * quantum grid.  Because nothing can happen in the skipped windows (no
 * local events, and messages only originate from executing events), the
 * executed-event sequence — and thus every result — is bit-identical to
 * the unskipped run.  Both runSequential and runParallel apply the same
 * skip rule, so parallel ≡ sequential continues to hold exactly.
 *
 * Host threads: runParallel drives one worker thread per partition from
 * a pool created on first use and reused for every subsequent run (a
 * 64-rack sharded cluster measured in windows would otherwise pay 65
 * thread spawns per measurement window).  The pool is joined in the
 * destructor.
 */

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <optional>
#include <vector>

#include "core/simulator.hh"

namespace diablo {
namespace fame {

/** A set of lockstep simulation partitions. */
class PartitionSet {
  public:
    /**
     * Synchronization quantum used when no channels exist.  Isolated
     * partitions have no lookahead constraint, so any positive quantum
     * is semantically valid; 1 ms keeps barrier overhead negligible
     * while bounding how far partitions drift from the horizon check.
     * Override with setQuantum() when a different granularity matters
     * (e.g. benchmarking barrier cost itself).
     */
    static constexpr SimTime kNoChannelQuantum = SimTime::ms(1);

    /** Unidirectional cross-partition message channel. */
    class Channel {
      public:
        /**
         * Deliver @p fn in the destination partition at absolute time
         * @p when.  Must be called from the source partition's events,
         * and @p when must respect the conservative contract
         * `when >= src.now() + minLatency()`, which guarantees the
         * message lands in a future quantum.  The contract is validated
         * here, at post time, against the source partition's clock — a
         * violation is a model-wiring bug (the advertised lookahead was
         * larger than the real one) and panics immediately with the
         * channel's name rather than surfacing later as an
         * unattributable drain-time failure or a silently late
         * delivery.
         */
        void post(SimTime when, EventFn fn);

        SimTime minLatency() const { return min_latency_; }
        const std::string &name() const { return name_; }

      private:
        friend class PartitionSet;

        struct Msg {
            SimTime when;
            EventFn fn;
        };

        PartitionSet *owner_ = nullptr;
        size_t src_ = 0;
        size_t dst_ = 0;
        SimTime min_latency_;
        std::string name_;
        std::vector<Msg> pending_;
    };

    explicit PartitionSet(size_t n);
    ~PartitionSet();

    PartitionSet(const PartitionSet &) = delete;
    PartitionSet &operator=(const PartitionSet &) = delete;

    size_t size() const { return parts_.size(); }
    Simulator &partition(size_t i) { return *parts_[i]; }

    /**
     * Create a channel from partition @p src to @p dst whose messages
     * always arrive at least @p min_latency after they are posted.
     * The run quantum is the minimum such latency across all channels.
     * @p name appears in contract-violation diagnostics; when empty, a
     * "ch<i>(<src>-><dst>)" default is generated.
     */
    Channel &makeChannel(size_t src, size_t dst, SimTime min_latency,
                         std::string name = std::string());

    /**
     * Synchronization quantum (lookahead): the explicit override if one
     * was set, else the minimum channel latency, else kNoChannelQuantum.
     */
    SimTime quantum() const;

    /**
     * Override the synchronization quantum.  Must be strictly positive
     * (rejected otherwise), and — to keep the engine conservative — no
     * larger than the minimum channel latency at run time (checked in
     * quantum(), so channels may be added after the override is set).
     * Use clearQuantum() to drop the override; a zero quantum is never
     * a valid request, so it is no longer overloaded to mean "clear".
     */
    void setQuantum(SimTime q);

    /** Remove a setQuantum() override and return to the derived value. */
    void clearQuantum() { quantum_override_ = SimTime(); }

    /**
     * Enable/disable empty-quantum skipping (default: enabled).  Only
     * wall-clock behaviour changes; simulated results are identical.
     * Disabling is useful for measuring raw barrier cost.
     */
    void setSkipIdleQuanta(bool skip) { skip_idle_ = skip; }
    bool skipIdleQuanta() const { return skip_idle_; }

    /**
     * Advance all partitions to @p until using one pooled worker thread
     * per partition with barrier synchronization each quantum.  Not
     * re-entrant: calling it again (from an event, or from another
     * host thread) while a parallel run's workers are live is fatal.
     */
    void runParallel(SimTime until);

    /** Reference implementation: same semantics, one host thread. */
    void runSequential(SimTime until);

    /**
     * Cumulative barriers executed (quanta) across every run of this
     * PartitionSet, for the scaling benchmark.  With skipping enabled,
     * empty windows are jumped over and not counted; the count is
     * identical between sequential and parallel runs.  Per-run deltas
     * are available from lastRunQuanta(); resetStats() zeroes this.
     */
    uint64_t quantaExecuted() const { return quanta_; }

    /** Cumulative executed events summed over all partitions. */
    uint64_t totalExecutedEvents() const;

    // --- per-run statistics (the host-performance model's inputs) ---
    //
    // Both run engines snapshot counters on entry and publish deltas on
    // exit, so interleaved runSequential/runParallel calls on one
    // PartitionSet can be attributed individually: events per partition
    // per run expose load imbalance (the FAME host model's utilization
    // input), quanta per run expose synchronization intensity.

    /** Quanta executed by the most recent run (either engine). */
    uint64_t lastRunQuanta() const { return last_run_quanta_; }

    /** Events executed by partition @p i during the most recent run. */
    uint64_t lastRunExecutedEvents(size_t i) const
    {
        return last_run_executed_[i];
    }

    /** Events executed across all partitions during the most recent run. */
    uint64_t lastRunTotalExecutedEvents() const;

    /**
     * Zero the cumulative quantum counter and the last-run deltas.
     * (Executed-event totals are owned by the Simulators and stay
     * cumulative; the per-run accessors above are already deltas.)
     */
    void resetStats();

  private:
    void drainChannels();

    /** Earliest pending local event or undelivered channel message. */
    SimTime earliestPendingTime();

    /**
     * Start of the next window that can contain work: @p t itself when
     * skipping is off or work exists in [t, t+q); otherwise the earliest
     * pending time snapped down to the quantum grid, clamped to
     * [@p t, @p until].
     */
    SimTime nextWindowStart(SimTime t, SimTime q, SimTime until);

    // --- per-run statistics bookkeeping ---
    void beginRunStats();
    void endRunStats();

    // --- pooled parallel runner ---

    /** Barrier completion step: drain, advance, possibly skip. */
    void parallelQuantumEnd() noexcept;

    struct QuantumCompletion {
        PartitionSet *ps;
        void operator()() noexcept { ps->parallelQuantumEnd(); }
    };

    void ensureWorkerPool();
    void workerLoop(size_t i);

    std::vector<std::unique_ptr<Simulator>> parts_;
    std::vector<std::unique_ptr<Channel>> channels_;
    SimTime quantum_override_;
    bool skip_idle_ = true;
    uint64_t quanta_ = 0;

    // Per-run stat deltas (see accessors above).
    uint64_t run_start_quanta_ = 0;
    uint64_t last_run_quanta_ = 0;
    std::vector<uint64_t> last_run_executed_;

    // Worker pool: one thread per partition, created on the first
    // runParallel and parked between runs.  generation_ hands work to
    // the pool; workers_running_ counts them back in.
    std::vector<std::thread> pool_;
    std::mutex pool_mu_;
    std::condition_variable pool_work_cv_;
    std::condition_variable pool_idle_cv_;
    uint64_t pool_generation_ = 0;
    size_t workers_running_ = 0;
    bool pool_shutdown_ = false;
    bool run_active_ = false;

    // Shared state of the in-flight parallel run.  Written only by the
    // barrier completion step (single-threaded by construction) or
    // before workers are released; read by workers between barriers.
    SimTime par_t_;
    SimTime par_bound_;
    SimTime par_until_;
    SimTime par_q_;
    bool par_done_ = false;
    std::optional<std::barrier<QuantumCompletion>> par_barrier_;
};

} // namespace fame
} // namespace diablo

#endif // DIABLO_FAME_PARTITION_HH_
