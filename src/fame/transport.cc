#include "fame/transport.hh"

#include <cstdlib>

#include "core/log.hh"

namespace diablo {
namespace fame {

namespace {

/**
 * Heap storage for one in-process ring pair.  Both endpoints keep a
 * shared_ptr so the rings outlive whichever side is destroyed first.
 */
struct InProcRingPair {
    explicit InProcRingPair(uint32_t capacity)
    {
        const size_t footprint = SpscRecordRing::footprint(capacity);
        mem_a = std::aligned_alloc(64, footprint);
        mem_b = std::aligned_alloc(64, footprint);
        if (!mem_a || !mem_b)
            panic("InProcRingPair: allocation of %zu-byte ring failed",
                  footprint);
        a_to_b = SpscRecordRing::init(mem_a, capacity);
        b_to_a = SpscRecordRing::init(mem_b, capacity);
    }

    ~InProcRingPair()
    {
        std::free(mem_a);
        std::free(mem_b);
    }

    InProcRingPair(const InProcRingPair &) = delete;
    InProcRingPair &operator=(const InProcRingPair &) = delete;

    void *mem_a = nullptr;
    void *mem_b = nullptr;
    SpscRecordRing *a_to_b = nullptr;
    SpscRecordRing *b_to_a = nullptr;
};

class InProcTransport : public ShmRingTransport {
  public:
    InProcTransport(std::shared_ptr<InProcRingPair> storage,
                    SpscRecordRing *tx, SpscRecordRing *rx)
        : ShmRingTransport(tx, rx), storage_(std::move(storage))
    {
    }

  private:
    std::shared_ptr<InProcRingPair> storage_;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
makeInProcTransportPair(uint32_t ring_capacity)
{
    auto storage = std::make_shared<InProcRingPair>(ring_capacity);
    auto a = std::make_unique<InProcTransport>(storage, storage->a_to_b,
                                               storage->b_to_a);
    auto b = std::make_unique<InProcTransport>(storage, storage->b_to_a,
                                               storage->a_to_b);
    return {std::move(a), std::move(b)};
}

size_t
ShmGroupLayout::ringOffset(uint32_t from, uint32_t to) const
{
    if (from >= nprocs || to >= nprocs)
        panic("ShmGroupLayout: ring (%u -> %u) out of range for %u "
              "processes",
              from, to, nprocs);
    // Control block first; ring footprints are 64-byte multiples
    // (header 192 + power-of-two capacity >= 4 KiB), so every ring
    // header lands cacheline-aligned without extra padding.
    return sizeof(ShmGroupControl) +
           ((size_t)from * nprocs + to) *
               SpscRecordRing::footprint(ring_capacity);
}

size_t
ShmGroupLayout::totalBytes() const
{
    return sizeof(ShmGroupControl) +
           (size_t)nprocs * nprocs *
               SpscRecordRing::footprint(ring_capacity);
}

void
ShmGroupControl::publish(Command cmd, int64_t until)
{
    until_ps.store(until, std::memory_order_seq_cst);
    command.store(cmd, std::memory_order_seq_cst);
    epoch.fetch_add(1, std::memory_order_seq_cst);
    sharedFutexWake(&epoch, /*all=*/true);
}

uint32_t
ShmGroupControl::waitEpoch(uint32_t last_epoch, int64_t timeout_ns)
{
    uint32_t e = epoch.load(std::memory_order_seq_cst);
    for (uint32_t spin = 0; e == last_epoch && spin < 4096; ++spin)
        e = epoch.load(std::memory_order_seq_cst);
    if (e == last_epoch) {
        sharedFutexWait(&epoch, last_epoch, timeout_ns);
        e = epoch.load(std::memory_order_seq_cst);
    }
    return e;
}

void
initGroupSegment(void *mem, const ShmGroupLayout &layout)
{
    if (layout.nprocs < 2 || layout.nprocs > ShmGroupLayout::kMaxProcs)
        panic("initGroupSegment: %u processes outside [2, %u]",
              layout.nprocs, ShmGroupLayout::kMaxProcs);
    auto *base = static_cast<uint8_t *>(mem);
    new (base + layout.controlOffset()) ShmGroupControl();
    for (uint32_t from = 0; from < layout.nprocs; ++from) {
        for (uint32_t to = 0; to < layout.nprocs; ++to) {
            if (from == to)
                continue;
            SpscRecordRing::init(base + layout.ringOffset(from, to),
                                 layout.ring_capacity);
        }
    }
}

ShmGroupControl *
groupControl(void *mem, const ShmGroupLayout &layout)
{
    auto *base = static_cast<uint8_t *>(mem);
    return reinterpret_cast<ShmGroupControl *>(base +
                                               layout.controlOffset());
}

std::unique_ptr<Transport>
groupTransport(void *mem, const ShmGroupLayout &layout, uint32_t self,
               uint32_t peer)
{
    if (self == peer)
        panic("groupTransport: rank %u cannot connect to itself", self);
    auto *base = static_cast<uint8_t *>(mem);
    SpscRecordRing *tx =
        SpscRecordRing::attach(base + layout.ringOffset(self, peer));
    SpscRecordRing *rx =
        SpscRecordRing::attach(base + layout.ringOffset(peer, self));
    return std::make_unique<ShmRingTransport>(tx, rx);
}

} // namespace fame
} // namespace diablo
