/**
 * @file
 * diablo_sweep: scenario-grid orchestrator over diablo_run.
 *
 * Reads a sweep spec — key=value lines, '#' comments — where any
 * comma-separated value becomes a grid axis, expands the cross
 * product, and fork/execs one `diablo_run --json` job per grid point
 * with a concurrency cap.  Per-run artifacts and logs land in the run
 * directory; afterwards the artifacts are merged into a comparison
 * table (stdout) and a machine-readable report.json.
 *
 *   # incast_sweep.spec
 *   workload = incast
 *   engine = seq,par            # axis: engines to cross-check
 *   incast.servers = 8,16       # axis: model parameter grid
 *   incast.iterations = 5
 *   sweep.jobs = 4
 *
 *   diablo_sweep incast_sweep.spec --out sweep-out
 *
 * Special keys: `workload` (required) selects the experiment;
 * `engine`, `threads`, and `fault_plan` map to the corresponding
 * diablo_run flags; `sweep.jobs` caps concurrent jobs (--jobs
 * overrides); `sweep.name` names the run directory's report.  Every
 * other key is passed through as a model override.
 *
 * Determinism cross-check: grid points identical except for `engine`
 * form a group, and their artifact fingerprints must be equal — the
 * seq≡par contract checked end-to-end through the CLI.  Any job
 * failure or fingerprint mismatch makes the sweep exit non-zero.
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/json_writer.hh"
#include "analysis/report.hh"
#include "core/log.hh"

using namespace diablo;

namespace {

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) {
        return "";
    }
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** One spec entry; values.size() > 1 makes it a grid axis. */
struct Axis {
    std::string key;
    std::vector<std::string> values;
};

/** Parsed sweep spec: axes in file order plus the sweep.* controls. */
struct Spec {
    std::vector<Axis> axes;
    size_t jobs = 4;
    std::string name = "sweep";
};

Spec
parseSpec(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        fatal("diablo_sweep: cannot read spec '%s'", path.c_str());
    }
    Spec spec;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        if (trimmed(line).empty()) {
            continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            fatal("diablo_sweep: %s:%zu: expected key=value, got '%s'",
                  path.c_str(), lineno, trimmed(line).c_str());
        }
        Axis a;
        a.key = trimmed(line.substr(0, eq));
        // Comma-separated values expand into a grid axis.
        std::string rest = line.substr(eq + 1);
        size_t pos = 0;
        while (true) {
            const size_t comma = rest.find(',', pos);
            const std::string v = trimmed(
                rest.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos));
            if (v.empty()) {
                fatal("diablo_sweep: %s:%zu: empty value in '%s'",
                      path.c_str(), lineno, a.key.c_str());
            }
            a.values.push_back(v);
            if (comma == std::string::npos) {
                break;
            }
            pos = comma + 1;
        }
        if (a.key == "sweep.jobs") {
            spec.jobs = static_cast<size_t>(
                std::strtoull(a.values[0].c_str(), nullptr, 10));
            continue;
        }
        if (a.key == "sweep.name") {
            spec.name = a.values[0];
            continue;
        }
        for (const Axis &prev : spec.axes) {
            if (prev.key == a.key) {
                fatal("diablo_sweep: %s:%zu: duplicate key '%s'",
                      path.c_str(), lineno, a.key.c_str());
            }
        }
        spec.axes.push_back(std::move(a));
    }
    bool has_workload = false;
    for (const Axis &a : spec.axes) {
        has_workload = has_workload || a.key == "workload";
    }
    if (!has_workload) {
        fatal("diablo_sweep: spec '%s' does not set 'workload'",
              path.c_str());
    }
    return spec;
}

/** One expanded grid point plus everything its job produced. */
struct Job {
    std::vector<std::pair<std::string, std::string>> assign;
    std::string label;    ///< axis assignments only ("base" if none)
    std::string name;     ///< filesystem-safe run name
    std::string json;     ///< artifact path
    std::string log;      ///< combined stdout+stderr path
    std::vector<std::string> argv;
    pid_t pid = -1;
    int exit_code = -1;

    // Scraped from the artifact after the job exits.
    bool parsed = false;
    std::string fingerprint;
    double elapsed_us = 0.0;
    double goodput_mbps = 0.0;
    double p99_us = 0.0;
    uint64_t requests = 0;

    std::string
    get(const std::string &key) const
    {
        for (const auto &[k, v] : assign) {
            if (k == key) {
                return v;
            }
        }
        return "";
    }
};

std::string
sanitize(const std::string &s)
{
    std::string out;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Expand the axes' cross product, first axis slowest. */
std::vector<Job>
expandGrid(const Spec &spec, const std::string &out_dir,
           const std::string &runner)
{
    size_t total = 1;
    for (const Axis &a : spec.axes) {
        total *= a.values.size();
    }
    std::vector<Job> jobs;
    for (size_t idx = 0; idx < total; ++idx) {
        Job j;
        size_t rem = idx;
        for (size_t ai = spec.axes.size(); ai-- > 0;) {
            const Axis &a = spec.axes[ai];
            j.assign.emplace_back(a.key,
                                  a.values[rem % a.values.size()]);
            rem /= a.values.size();
        }
        std::reverse(j.assign.begin(), j.assign.end());
        for (size_t ai = 0; ai < spec.axes.size(); ++ai) {
            if (spec.axes[ai].values.size() > 1) {
                if (!j.label.empty()) {
                    j.label += ",";
                }
                j.label += spec.axes[ai].key + "=" + j.assign[ai].second;
            }
        }
        if (j.label.empty()) {
            j.label = "base";
        }
        char num[32];
        std::snprintf(num, sizeof(num), "run%03zu", idx);
        j.name = std::string(num) + "_" + sanitize(j.label);
        j.json = out_dir + "/" + j.name + ".json";
        j.log = out_dir + "/" + j.name + ".log";

        j.argv.push_back(runner);
        j.argv.push_back(j.get("workload"));
        j.argv.push_back("--json");
        j.argv.push_back(j.json);
        for (const auto &[k, v] : j.assign) {
            if (k == "workload") {
                continue;
            }
            if (k == "engine") {
                j.argv.push_back("--engine");
                j.argv.push_back(v);
            } else if (k == "threads") {
                j.argv.push_back("--threads");
                j.argv.push_back(v);
            } else if (k == "fault_plan") {
                j.argv.push_back("--fault-plan");
                j.argv.push_back(v);
            } else {
                j.argv.push_back(k + "=" + v);
            }
        }
        jobs.push_back(std::move(j));
    }
    return jobs;
}

/** fork/exec one job with stdout+stderr redirected to its log file. */
pid_t
spawnJob(const Job &j)
{
    // Flush before forking so the child doesn't replay the parent's
    // buffered output into its log (or the terminal).
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    if (pid < 0) {
        fatal("diablo_sweep: fork: %s", std::strerror(errno));
    }
    if (pid != 0) {
        return pid;
    }
    FILE *log = std::freopen(j.log.c_str(), "w", stdout);
    if (log == nullptr) {
        std::_Exit(127);
    }
    dup2(fileno(stdout), fileno(stderr));
    std::vector<char *> argv;
    for (const std::string &a : j.argv) {
        argv.push_back(const_cast<char *>(a.c_str()));
    }
    argv.push_back(nullptr);
    execvp(argv[0], argv.data());
    std::fprintf(stderr, "diablo_sweep: exec %s: %s\n", argv[0],
                 std::strerror(errno));
    std::_Exit(127);
}

/**
 * Minimal field scrape of a diablo_run artifact.  We wrote the schema
 * (analysis::RunArtifact::toJson), so positional extraction is safe:
 * the run fingerprint is the only one at top-level indentation, and
 * the numeric result fields appear exactly once.
 */
bool
scrapeArtifact(Job &j)
{
    std::ifstream in(j.json);
    if (!in) {
        return false;
    }
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    auto num = [&doc](const char *key, double &out) {
        const std::string pat = std::string("\"") + key + "\": ";
        const size_t p = doc.find(pat);
        if (p == std::string::npos) {
            return false;
        }
        out = std::strtod(doc.c_str() + p + pat.size(), nullptr);
        return true;
    };
    double req = 0.0;
    if (!num("elapsed_us", j.elapsed_us) ||
        !num("goodput_mbps", j.goodput_mbps) ||
        !num("requests_completed", req)) {
        return false;
    }
    j.requests = static_cast<uint64_t>(req);
    num("p99_us", j.p99_us); // first latency digest = the headline one
    const std::string fpat = "\n  \"fingerprint\": \"";
    const size_t fp = doc.find(fpat);
    if (fp == std::string::npos) {
        return false;
    }
    const size_t start = fp + fpat.size();
    const size_t end = doc.find('"', start);
    if (end == std::string::npos) {
        return false;
    }
    j.fingerprint = doc.substr(start, end - start);
    j.parsed = true;
    return true;
}

/** Grid points differing only in `engine` must fingerprint-match. */
struct CrossCheck {
    std::string label; ///< the group's non-engine assignments
    std::vector<const Job *> runs;
    bool match = true;
};

std::vector<CrossCheck>
crossCheckEngines(const std::vector<Job> &jobs)
{
    std::map<std::string, CrossCheck> groups;
    for (const Job &j : jobs) {
        if (j.get("engine").empty()) {
            continue;
        }
        std::string key;
        for (const auto &[k, v] : j.assign) {
            if (k != "engine") {
                key += k + "=" + v + ",";
            }
        }
        CrossCheck &g = groups[key];
        g.label = key.empty() ? "base"
                              : key.substr(0, key.size() - 1);
        g.runs.push_back(&j);
    }
    std::vector<CrossCheck> out;
    for (auto &[key, g] : groups) {
        if (g.runs.size() < 2) {
            continue;
        }
        for (const Job *r : g.runs) {
            if (!r->parsed ||
                r->fingerprint != g.runs[0]->fingerprint) {
                g.match = false;
            }
        }
        out.push_back(std::move(g));
    }
    return out;
}

void
writeReport(const std::string &path, const Spec &spec,
            const std::vector<Job> &jobs,
            const std::vector<CrossCheck> &checks, bool ok)
{
    analysis::JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.field("schema", 1);
    w.field("sweep", spec.name);
    w.field("ok", ok);
    w.beginArray("runs");
    for (const Job &j : jobs) {
        w.beginObject();
        w.field("name", j.name);
        w.field("label", j.label);
        w.field("exit_code", j.exit_code);
        w.field("artifact", j.json);
        w.field("log", j.log);
        w.beginObject("params");
        for (const auto &[k, v] : j.assign) {
            w.field(k, v);
        }
        w.endObject();
        if (j.parsed) {
            w.field("elapsed_us", j.elapsed_us);
            w.field("goodput_mbps", j.goodput_mbps);
            w.field("requests_completed", j.requests);
            w.field("p99_us", j.p99_us);
            w.field("fingerprint", j.fingerprint);
        }
        w.endObject();
    }
    w.endArray();
    w.beginArray("engine_cross_checks");
    for (const CrossCheck &c : checks) {
        w.beginObject();
        w.field("group", c.label);
        w.field("match", c.match);
        w.beginArray("runs");
        for (const Job *r : c.runs) {
            w.beginObject();
            w.field("name", r->name);
            w.field("engine", r->get("engine"));
            w.field("fingerprint", r->fingerprint);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.writeFile(path);
}

/** Directory holding this binary, so diablo_run resolves beside it. */
std::string
selfDir()
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) {
        return "";
    }
    buf[n] = '\0';
    char *slash = std::strrchr(buf, '/');
    if (slash == nullptr) {
        return "";
    }
    *slash = '\0';
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *spec_path = nullptr;
    std::string out_dir = "sweep-out";
    std::string runner;
    size_t jobs_flag = 0;
    bool dry_run = false;
    for (int i = 1; i < argc; ++i) {
        auto flagValue = [&](const char *flag) -> const char * {
            const size_t len = std::strlen(flag);
            if (std::strncmp(argv[i], flag, len) != 0) {
                return nullptr;
            }
            if (argv[i][len] == '=') {
                return argv[i] + len + 1;
            }
            if (argv[i][len] == '\0') {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s needs a value\n", flag);
                    std::exit(2);
                }
                return argv[++i];
            }
            return nullptr;
        };
        if (const char *v = flagValue("--out")) {
            out_dir = v;
            continue;
        }
        if (const char *v = flagValue("--runner")) {
            runner = v;
            continue;
        }
        if (const char *v = flagValue("--jobs")) {
            jobs_flag = static_cast<size_t>(
                std::strtoull(v, nullptr, 10));
            continue;
        }
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
            continue;
        }
        if (spec_path == nullptr && argv[i][0] != '-') {
            spec_path = argv[i];
            continue;
        }
        std::fprintf(stderr,
                     "usage: %s <spec> [--out <dir>] [--jobs N] "
                     "[--runner <diablo_run>] [--dry-run]\n", argv[0]);
        return 2;
    }
    if (spec_path == nullptr) {
        std::fprintf(stderr, "usage: %s <spec> [--out <dir>] [--jobs N] "
                     "[--runner <diablo_run>] [--dry-run]\n", argv[0]);
        return 2;
    }

    Spec spec = parseSpec(spec_path);
    if (jobs_flag != 0) {
        spec.jobs = jobs_flag;
    }
    if (spec.jobs == 0) {
        spec.jobs = 1;
    }
    if (runner.empty()) {
        const std::string dir = selfDir();
        runner = dir.empty() ? "diablo_run" : dir + "/diablo_run";
    }
    if (mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        fatal("diablo_sweep: mkdir %s: %s", out_dir.c_str(),
              std::strerror(errno));
    }

    std::vector<Job> jobs = expandGrid(spec, out_dir, runner);
    std::printf("sweep '%s': %zu grid points, %zu concurrent, out=%s\n",
                spec.name.c_str(), jobs.size(), spec.jobs,
                out_dir.c_str());
    if (dry_run) {
        for (const Job &j : jobs) {
            std::string cmd;
            for (const std::string &a : j.argv) {
                cmd += (cmd.empty() ? "" : " ") + a;
            }
            std::printf("  %s\n", cmd.c_str());
        }
        return 0;
    }

    // Bounded-concurrency scheduler: keep up to spec.jobs children
    // alive, reaping any finished child before launching the next.
    size_t next = 0, running = 0, failed = 0;
    std::map<pid_t, Job *> live;
    while (next < jobs.size() || running > 0) {
        while (next < jobs.size() && running < spec.jobs) {
            Job &j = jobs[next++];
            j.pid = spawnJob(j);
            live[j.pid] = &j;
            ++running;
            std::printf("[%zu/%zu] %s: started\n", next, jobs.size(),
                        j.label.c_str());
            std::fflush(stdout);
        }
        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        if (pid < 0) {
            fatal("diablo_sweep: waitpid: %s", std::strerror(errno));
        }
        auto it = live.find(pid);
        if (it == live.end()) {
            continue;
        }
        Job &j = *it->second;
        live.erase(it);
        --running;
        j.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
        if (j.exit_code != 0) {
            ++failed;
            std::printf("%s: FAILED (exit %d, see %s)\n",
                        j.label.c_str(), j.exit_code, j.log.c_str());
        } else if (!scrapeArtifact(j)) {
            ++failed;
            j.exit_code = -2;
            std::printf("%s: FAILED (unreadable artifact %s)\n",
                        j.label.c_str(), j.json.c_str());
        }
        std::fflush(stdout);
    }

    analysis::Table table({"run", "workload", "engine", "elapsed_ms",
                           "goodput_mbps", "requests", "p99_us",
                           "fingerprint"});
    for (const Job &j : jobs) {
        if (!j.parsed) {
            table.addRow({j.label, j.get("workload"), j.get("engine"),
                          "-", "-", "-", "-", "FAILED"});
            continue;
        }
        table.addRow(
            {j.label, j.get("workload"),
             j.get("engine").empty() ? "single" : j.get("engine"),
             analysis::Table::cell("%.1f", j.elapsed_us / 1000.0),
             analysis::Table::cell("%.1f", j.goodput_mbps),
             analysis::Table::cell("%llu",
                                   static_cast<unsigned long long>(
                                       j.requests)),
             analysis::Table::cell("%.1f", j.p99_us), j.fingerprint});
    }
    table.print();

    const std::vector<CrossCheck> checks = crossCheckEngines(jobs);
    size_t mismatches = 0;
    for (const CrossCheck &c : checks) {
        std::printf("cross-check %s: %s", c.label.c_str(),
                    c.match ? "MATCH" : "MISMATCH");
        for (const Job *r : c.runs) {
            std::printf(" %s=%s", r->get("engine").c_str(),
                        r->parsed ? r->fingerprint.c_str() : "?");
        }
        std::printf("\n");
        mismatches += c.match ? 0 : 1;
    }

    const bool ok = failed == 0 && mismatches == 0;
    writeReport(out_dir + "/report.json", spec, jobs, checks, ok);
    std::printf("report: %s/report.json (%zu runs, %zu failed, "
                "%zu fingerprint mismatches)\n",
                out_dir.c_str(), jobs.size(), failed, mismatches);
    return ok ? 0 : 1;
}
