/**
 * @file
 * diablo_sweep: scenario-grid orchestrator over diablo_run.
 *
 * Reads a sweep spec — key=value lines, '#' comments — where any
 * comma-separated value becomes a grid axis, expands the cross
 * product, and fork/execs one `diablo_run --json` job per grid point
 * with a concurrency cap.  Per-run artifacts and logs land in the run
 * directory; afterwards the artifacts are merged into a comparison
 * table (stdout) and a machine-readable report.json.
 *
 *   # incast_sweep.spec
 *   workload = incast
 *   engine = seq,par            # axis: engines to cross-check
 *   incast.servers = 8,16       # axis: model parameter grid
 *   incast.iterations = 5
 *   sweep.jobs = 4
 *
 *   diablo_sweep incast_sweep.spec --out sweep-out
 *
 * Special keys: `workload` (required) selects the experiment;
 * `engine`, `threads`, and `fault_plan` map to the corresponding
 * diablo_run flags; `sweep.jobs` caps concurrent jobs (--jobs
 * overrides); `sweep.name` names the run directory's report.  Every
 * other key is passed through as a model override.
 *
 * Unattended operation: the sweep is built to survive wedged, killed,
 * and flaky grid points without torching the campaign.
 *  - `sweep.timeout = <s>` (--timeout overrides) bounds each job's
 *    wall clock; an overdue job gets SIGTERM — letting diablo_run
 *    finalize a partial artifact — then SIGKILL after `sweep.grace`
 *    seconds (default 5).
 *  - `sweep.retries = <n>` re-runs a failed or timed-out point up to
 *    n more times with exponential backoff (`sweep.backoff` seconds
 *    base, default 1).  Retry attempts write to per-attempt log and
 *    artifact paths; a winning retry's artifact is renamed onto the
 *    canonical path, so downstream consumers never see attempt suffixes.
 *  - `--resume <dir>` re-opens a previous run directory and skips
 *    every grid point whose artifact passes RunArtifact::validate —
 *    only missing, truncated, or interrupted points re-run, and the
 *    seq≡par fingerprint cross-check spans skipped and fresh runs
 *    alike.
 *  - fork() EAGAIN backs off and retries instead of aborting the
 *    sweep, and the scheduler's waitpid tolerates EINTR.
 *
 * Determinism cross-check: grid points identical except for `engine`
 * form a group, and their artifact fingerprints must be equal — the
 * seq≡par contract checked end-to-end through the CLI.  Exit code:
 * 0 all green; 1 on a fingerprint mismatch (determinism bug — never
 * masked); core::kExitSweepPartial (3) when some jobs failed or timed
 * out but the rest completed; core::kExitInterrupted when the sweep
 * itself was interrupted (children are SIGTERMed and reaped first).
 */

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/artifact.hh"
#include "analysis/json_writer.hh"
#include "analysis/report.hh"
#include "core/interrupt.hh"
#include "core/log.hh"

using namespace diablo;

namespace {

using Clock = std::chrono::steady_clock;

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) {
        return "";
    }
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** One spec entry; values.size() > 1 makes it a grid axis. */
struct Axis {
    std::string key;
    std::vector<std::string> values;
};

/** Parsed sweep spec: axes in file order plus the sweep.* controls. */
struct Spec {
    std::vector<Axis> axes;
    size_t jobs = 4;
    std::string name = "sweep";
    double timeout_s = 0.0; ///< per-job wall-clock bound; 0 = none
    double grace_s = 5.0;   ///< SIGTERM → SIGKILL escalation delay
    size_t retries = 0;     ///< extra attempts per failed grid point
    double backoff_s = 1.0; ///< retry delay base, doubled per attempt
};

Spec
parseSpec(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        fatal("diablo_sweep: cannot read spec '%s'", path.c_str());
    }
    Spec spec;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        if (trimmed(line).empty()) {
            continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            fatal("diablo_sweep: %s:%zu: expected key=value, got '%s'",
                  path.c_str(), lineno, trimmed(line).c_str());
        }
        Axis a;
        a.key = trimmed(line.substr(0, eq));
        // Comma-separated values expand into a grid axis.
        std::string rest = line.substr(eq + 1);
        size_t pos = 0;
        while (true) {
            const size_t comma = rest.find(',', pos);
            const std::string v = trimmed(
                rest.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos));
            if (v.empty()) {
                fatal("diablo_sweep: %s:%zu: empty value in '%s'",
                      path.c_str(), lineno, a.key.c_str());
            }
            a.values.push_back(v);
            if (comma == std::string::npos) {
                break;
            }
            pos = comma + 1;
        }
        if (a.key == "sweep.jobs") {
            spec.jobs = static_cast<size_t>(
                std::strtoull(a.values[0].c_str(), nullptr, 10));
            continue;
        }
        if (a.key == "sweep.name") {
            spec.name = a.values[0];
            continue;
        }
        if (a.key == "sweep.timeout") {
            spec.timeout_s = std::strtod(a.values[0].c_str(), nullptr);
            continue;
        }
        if (a.key == "sweep.grace") {
            spec.grace_s = std::strtod(a.values[0].c_str(), nullptr);
            continue;
        }
        if (a.key == "sweep.retries") {
            spec.retries = static_cast<size_t>(
                std::strtoull(a.values[0].c_str(), nullptr, 10));
            continue;
        }
        if (a.key == "sweep.backoff") {
            spec.backoff_s = std::strtod(a.values[0].c_str(), nullptr);
            continue;
        }
        for (const Axis &prev : spec.axes) {
            if (prev.key == a.key) {
                fatal("diablo_sweep: %s:%zu: duplicate key '%s'",
                      path.c_str(), lineno, a.key.c_str());
            }
        }
        spec.axes.push_back(std::move(a));
    }
    bool has_workload = false;
    for (const Axis &a : spec.axes) {
        has_workload = has_workload || a.key == "workload";
    }
    if (!has_workload) {
        fatal("diablo_sweep: spec '%s' does not set 'workload'",
              path.c_str());
    }
    return spec;
}

/** One expanded grid point plus everything its job produced. */
struct Job {
    std::vector<std::pair<std::string, std::string>> assign;
    std::string label;    ///< axis assignments only ("base" if none)
    std::string name;     ///< filesystem-safe run name
    std::string json;     ///< canonical artifact path
    std::string log;      ///< log of the attempt that produced the result
    std::vector<std::string> argv; ///< canonical argv (attempt 1 paths)
    pid_t pid = -1;
    int exit_code = -1;

    // Scraped from the artifact after the job exits.
    bool parsed = false;
    std::string fingerprint;
    double elapsed_us = 0.0;
    double goodput_mbps = 0.0;
    double p99_us = 0.0;
    uint64_t requests = 0;

    // Fault-tolerance state.
    std::string status;        ///< ok|failed|timeout|retried|skipped-resume
    size_t attempts = 0;       ///< spawn attempts made so far
    std::string attempt_json;  ///< this attempt's artifact path
    std::string attempt_log;   ///< this attempt's log path
    bool timed_out = false;    ///< this attempt hit sweep.timeout
    bool term_sent = false;    ///< SIGTERM already sent this attempt
    Clock::time_point deadline;      ///< valid iff timeout_s > 0
    Clock::time_point kill_at;       ///< valid iff term_sent
    Clock::time_point earliest_start; ///< retry backoff gate

    std::string
    get(const std::string &key) const
    {
        for (const auto &[k, v] : assign) {
            if (k == key) {
                return v;
            }
        }
        return "";
    }
};

std::string
sanitize(const std::string &s)
{
    std::string out;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Expand the axes' cross product, first axis slowest. */
std::vector<Job>
expandGrid(const Spec &spec, const std::string &out_dir,
           const std::string &runner)
{
    size_t total = 1;
    for (const Axis &a : spec.axes) {
        total *= a.values.size();
    }
    std::vector<Job> jobs;
    for (size_t idx = 0; idx < total; ++idx) {
        Job j;
        size_t rem = idx;
        for (size_t ai = spec.axes.size(); ai-- > 0;) {
            const Axis &a = spec.axes[ai];
            j.assign.emplace_back(a.key,
                                  a.values[rem % a.values.size()]);
            rem /= a.values.size();
        }
        std::reverse(j.assign.begin(), j.assign.end());
        for (size_t ai = 0; ai < spec.axes.size(); ++ai) {
            if (spec.axes[ai].values.size() > 1) {
                if (!j.label.empty()) {
                    j.label += ",";
                }
                j.label += spec.axes[ai].key + "=" + j.assign[ai].second;
            }
        }
        if (j.label.empty()) {
            j.label = "base";
        }
        char num[32];
        std::snprintf(num, sizeof(num), "run%03zu", idx);
        j.name = std::string(num) + "_" + sanitize(j.label);
        j.json = out_dir + "/" + j.name + ".json";
        j.log = out_dir + "/" + j.name + ".log";

        j.argv.push_back(runner);
        j.argv.push_back(j.get("workload"));
        j.argv.push_back("--json");
        j.argv.push_back(j.json);
        for (const auto &[k, v] : j.assign) {
            if (k == "workload") {
                continue;
            }
            if (k == "engine") {
                j.argv.push_back("--engine");
                j.argv.push_back(v);
            } else if (k == "threads") {
                j.argv.push_back("--threads");
                j.argv.push_back(v);
            } else if (k == "fault_plan") {
                j.argv.push_back("--fault-plan");
                j.argv.push_back(v);
            } else {
                j.argv.push_back(k + "=" + v);
            }
        }
        jobs.push_back(std::move(j));
    }
    return jobs;
}

/**
 * Set the attempt-local artifact/log paths for attempt @p attempt
 * (1-based).  Attempt 1 uses the canonical paths; retries get a
 * ".rN" suffix so a retry never races the previous attempt's files,
 * and a winning retry's artifact is renamed onto the canonical path.
 */
void
setAttemptPaths(Job &j, size_t attempt)
{
    if (attempt <= 1) {
        j.attempt_json = j.json;
        j.attempt_log = j.log;
        return;
    }
    char suf[32];
    std::snprintf(suf, sizeof(suf), ".r%zu", attempt - 1);
    const size_t jdot = j.json.rfind(".json");
    const size_t ldot = j.log.rfind(".log");
    j.attempt_json = j.json.substr(0, jdot) + suf + ".json";
    j.attempt_log = j.log.substr(0, ldot) + suf + ".log";
}

/** Sleep @p ms milliseconds, restarting across EINTR. */
void
sleepMs(long ms)
{
    struct timespec ts;
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = (ms % 1000) * 1000000L;
    while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
}

/**
 * fork/exec one job with stdout+stderr redirected to its attempt's
 * log file.  A transient fork EAGAIN (pid/thread pressure from the
 * concurrent children) backs off and retries instead of killing the
 * whole sweep; a persistent failure returns -1 and the caller treats
 * it like a failed attempt, feeding the normal retry machinery.
 */
pid_t
spawnJob(const Job &j)
{
    // Flush before forking so the child doesn't replay the parent's
    // buffered output into its log (or the terminal).
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t pid = -1;
    for (int attempt = 0;; ++attempt) {
        pid = fork();
        if (pid >= 0) {
            break;
        }
        if (errno != EAGAIN || attempt >= 6) {
            std::fprintf(stderr, "diablo_sweep: fork: %s\n",
                         std::strerror(errno));
            return -1;
        }
        sleepMs(50L << attempt); // 50ms..1.6s, ~3s total
    }
    if (pid != 0) {
        // Mirror the child's setpgid so a signal sent between fork and
        // the child's own call still reaches the group (whichever side
        // runs first creates it; EACCES after exec means it's done).
        setpgid(pid, pid);
        return pid;
    }
    // Child.  Lead a fresh process group so the sweep's signals reach
    // the whole engine family: a multiprocess diablo_run (--processes)
    // spawns child ranks, and a SIGTERM to the group lets every rank
    // finalize, not just the launcher.
    setpgid(0, 0);
    // Keep a copy of the original stderr (close-on-exec so it
    // never leaks into diablo_run) to report redirection failures —
    // otherwise a bad log path exits 127 with no trace anywhere.
    const int saved_err = dup(STDERR_FILENO);
    if (saved_err >= 0) {
        fcntl(saved_err, F_SETFD, FD_CLOEXEC);
    }
    auto childDie = [&](const char *what) {
        if (saved_err >= 0) {
            dprintf(saved_err, "diablo_sweep: %s: %s: %s\n", j.name.c_str(),
                    what, std::strerror(errno));
        }
        std::_Exit(127);
    };
    if (std::freopen(j.attempt_log.c_str(), "w", stdout) == nullptr) {
        childDie(("cannot open log " + j.attempt_log).c_str());
    }
    if (dup2(fileno(stdout), fileno(stderr)) < 0) {
        childDie("dup2 stderr onto log");
    }
    std::vector<char *> argv;
    for (size_t i = 0; i < j.argv.size(); ++i) {
        // Point --json at the attempt-local artifact path.
        const bool is_json_val = i > 0 && j.argv[i - 1] == "--json";
        argv.push_back(const_cast<char *>(
            is_json_val ? j.attempt_json.c_str() : j.argv[i].c_str()));
    }
    argv.push_back(nullptr);
    execvp(argv[0], argv.data());
    std::fprintf(stderr, "diablo_sweep: exec %s: %s\n", argv[0],
                 std::strerror(errno));
    std::_Exit(127);
}

/**
 * Field scrape of a diablo_run artifact at @p path into @p j.  The
 * artifact is first checked with RunArtifact::validate — schema
 * version, completion status, intact fingerprint — so debris from a
 * crashed run or a drifted schema fails loudly with the path instead
 * of silently mis-parsing positional fields.
 */
bool
scrapeArtifact(Job &j, const std::string &path)
{
    const analysis::RunArtifact::Validation v =
        analysis::RunArtifact::validate(path);
    if (!v.ok) {
        std::fprintf(stderr, "diablo_sweep: artifact %s: %s\n",
                     path.c_str(), v.error.c_str());
        return false;
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "diablo_sweep: artifact %s: unreadable\n",
                     path.c_str());
        return false;
    }
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    auto num = [&doc, &path](const char *key, double &out) {
        const std::string pat = std::string("\"") + key + "\": ";
        const size_t p = doc.find(pat);
        if (p == std::string::npos) {
            std::fprintf(stderr,
                         "diablo_sweep: artifact %s: missing field %s\n",
                         path.c_str(), key);
            return false;
        }
        out = std::strtod(doc.c_str() + p + pat.size(), nullptr);
        return true;
    };
    double req = 0.0;
    if (!num("elapsed_us", j.elapsed_us) ||
        !num("goodput_mbps", j.goodput_mbps) ||
        !num("requests_completed", req)) {
        return false;
    }
    j.requests = static_cast<uint64_t>(req);
    double p99 = 0.0;
    {
        // first latency digest = the headline one
        const std::string pat = "\"p99_us\": ";
        const size_t p = doc.find(pat);
        if (p != std::string::npos) {
            p99 = std::strtod(doc.c_str() + p + pat.size(), nullptr);
        }
    }
    j.p99_us = p99;
    j.fingerprint = v.fingerprint;
    j.parsed = true;
    return true;
}

/** Grid points differing only in `engine` must fingerprint-match. */
struct CrossCheck {
    std::string label; ///< the group's non-engine assignments
    std::vector<const Job *> runs;
    bool match = true;
};

std::vector<CrossCheck>
crossCheckEngines(const std::vector<Job> &jobs)
{
    std::map<std::string, CrossCheck> groups;
    for (const Job &j : jobs) {
        if (j.get("engine").empty()) {
            continue;
        }
        // A run with no artifact already counts against the sweep as a
        // failure; only completed runs can witness a determinism bug.
        if (!j.parsed) {
            continue;
        }
        std::string key;
        for (const auto &[k, v] : j.assign) {
            if (k != "engine") {
                key += k + "=" + v + ",";
            }
        }
        CrossCheck &g = groups[key];
        g.label = key.empty() ? "base"
                              : key.substr(0, key.size() - 1);
        g.runs.push_back(&j);
    }
    std::vector<CrossCheck> out;
    for (auto &[key, g] : groups) {
        if (g.runs.size() < 2) {
            continue;
        }
        for (const Job *r : g.runs) {
            if (r->fingerprint != g.runs[0]->fingerprint) {
                g.match = false;
            }
        }
        out.push_back(std::move(g));
    }
    return out;
}

void
writeReport(const std::string &path, const Spec &spec,
            const std::vector<Job> &jobs,
            const std::vector<CrossCheck> &checks, bool ok)
{
    analysis::JsonWriter w(/*pretty=*/true);
    w.beginObject();
    w.field("schema", 1);
    w.field("sweep", spec.name);
    w.field("ok", ok);
    w.beginArray("runs");
    for (const Job &j : jobs) {
        w.beginObject();
        w.field("name", j.name);
        w.field("label", j.label);
        w.field("status", j.status.empty() ? "not-run" : j.status);
        w.field("attempts", static_cast<uint64_t>(j.attempts));
        w.field("exit_code", j.exit_code);
        w.field("artifact", j.json);
        w.field("log", j.log);
        w.beginObject("params");
        for (const auto &[k, v] : j.assign) {
            w.field(k, v);
        }
        w.endObject();
        if (j.parsed) {
            w.field("elapsed_us", j.elapsed_us);
            w.field("goodput_mbps", j.goodput_mbps);
            w.field("requests_completed", j.requests);
            w.field("p99_us", j.p99_us);
            w.field("fingerprint", j.fingerprint);
        }
        w.endObject();
    }
    w.endArray();
    w.beginArray("engine_cross_checks");
    for (const CrossCheck &c : checks) {
        w.beginObject();
        w.field("group", c.label);
        w.field("match", c.match);
        w.beginArray("runs");
        for (const Job *r : c.runs) {
            w.beginObject();
            w.field("name", r->name);
            w.field("engine", r->get("engine"));
            w.field("fingerprint", r->fingerprint);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.writeFile(path);
}

/** Directory holding this binary, so diablo_run resolves beside it. */
std::string
selfDir()
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) {
        return "";
    }
    buf[n] = '\0';
    char *slash = std::strrchr(buf, '/');
    if (slash == nullptr) {
        return "";
    }
    *slash = '\0';
    return buf;
}

/**
 * Reap one exited child without blocking.  Returns the pid (> 0), 0
 * when children exist but none has exited, or -1 when there are no
 * children at all.  EINTR restarts the syscall — a signal must never
 * kill a sweep with live children.
 */
pid_t
reapOne(int *status)
{
    while (true) {
        const pid_t pid = waitpid(-1, status, WNOHANG);
        if (pid >= 0) {
            return pid;
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == ECHILD) {
            return -1;
        }
        fatal("diablo_sweep: waitpid: %s", std::strerror(errno));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const char *spec_path = nullptr;
    std::string out_dir = "sweep-out";
    std::string runner;
    size_t jobs_flag = 0;
    bool dry_run = false;
    bool resume = false;
    double timeout_flag = -1.0;
    const char *usage =
        "usage: %s <spec> [--out <dir>] [--resume <dir>] [--jobs N] "
        "[--timeout <s>] [--runner <diablo_run>] [--dry-run]\n";
    for (int i = 1; i < argc; ++i) {
        auto flagValue = [&](const char *flag) -> const char * {
            const size_t len = std::strlen(flag);
            if (std::strncmp(argv[i], flag, len) != 0) {
                return nullptr;
            }
            if (argv[i][len] == '=') {
                return argv[i] + len + 1;
            }
            if (argv[i][len] == '\0') {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s needs a value\n", flag);
                    std::exit(2);
                }
                return argv[++i];
            }
            return nullptr;
        };
        if (const char *v = flagValue("--out")) {
            out_dir = v;
            continue;
        }
        if (const char *v = flagValue("--resume")) {
            out_dir = v;
            resume = true;
            continue;
        }
        if (const char *v = flagValue("--jobs")) {
            jobs_flag = static_cast<size_t>(
                std::strtoull(v, nullptr, 10));
            continue;
        }
        if (const char *v = flagValue("--timeout")) {
            timeout_flag = std::strtod(v, nullptr);
            continue;
        }
        if (const char *v = flagValue("--runner")) {
            runner = v;
            continue;
        }
        if (std::strcmp(argv[i], "--dry-run") == 0) {
            dry_run = true;
            continue;
        }
        if (spec_path == nullptr && argv[i][0] != '-') {
            spec_path = argv[i];
            continue;
        }
        std::fprintf(stderr, usage, argv[0]);
        return 2;
    }
    if (spec_path == nullptr) {
        std::fprintf(stderr, usage, argv[0]);
        return 2;
    }

    Spec spec = parseSpec(spec_path);
    if (jobs_flag != 0) {
        spec.jobs = jobs_flag;
    }
    if (spec.jobs == 0) {
        spec.jobs = 1;
    }
    if (timeout_flag >= 0.0) {
        spec.timeout_s = timeout_flag;
    }
    if (runner.empty()) {
        const std::string dir = selfDir();
        runner = dir.empty() ? "diablo_run" : dir + "/diablo_run";
    }
    if (mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        fatal("diablo_sweep: mkdir %s: %s", out_dir.c_str(),
              std::strerror(errno));
    }

    core::installInterruptHandlers();

    std::vector<Job> jobs = expandGrid(spec, out_dir, runner);
    std::printf("sweep '%s': %zu grid points, %zu concurrent, out=%s\n",
                spec.name.c_str(), jobs.size(), spec.jobs,
                out_dir.c_str());
    if (dry_run) {
        for (const Job &j : jobs) {
            std::string cmd;
            for (const std::string &a : j.argv) {
                cmd += (cmd.empty() ? "" : " ") + a;
            }
            std::printf("  %s\n", cmd.c_str());
        }
        return 0;
    }

    // Resume pass: a grid point whose canonical artifact validates is
    // already done — scrape it and skip the run.  Invalid or missing
    // artifacts (debris from a crash, "interrupted" partials, timed-out
    // points) re-run below on their usual paths; the atomic artifact
    // write makes overwriting the debris safe.
    if (resume) {
        size_t skipped = 0;
        for (Job &j : jobs) {
            const analysis::RunArtifact::Validation v =
                analysis::RunArtifact::validate(j.json);
            if (v.ok && scrapeArtifact(j, j.json)) {
                j.status = "skipped-resume";
                j.exit_code = 0;
                ++skipped;
            } else if (!v.error.empty() &&
                       v.error.find("cannot read") == std::string::npos) {
                std::printf("%s: re-running (%s)\n", j.label.c_str(),
                            v.error.c_str());
            }
        }
        std::printf("resume: %zu/%zu grid points already valid, "
                    "re-running %zu\n",
                    skipped, jobs.size(), jobs.size() - skipped);
    }

    // Bounded-concurrency fault-tolerant scheduler: keep up to
    // spec.jobs children alive; poll (never block) so per-job
    // deadlines, retry backoff, and interrupts stay responsive.
    std::vector<Job *> pending;
    for (Job &j : jobs) {
        if (j.status.empty()) {
            pending.push_back(&j);
        }
    }
    std::map<pid_t, Job *> live;
    size_t failed = 0;
    bool interrupted = false;
    const size_t total_to_run = pending.size();
    size_t done_count = 0;
    size_t started_count = 0;

    auto finishJob = [&](Job &j, const Clock::time_point &now) {
        const bool ran_ok =
            j.exit_code == 0 && scrapeArtifact(j, j.attempt_json);
        if (ran_ok) {
            if (j.attempts > 1) {
                // Promote the winning retry's artifact to the
                // canonical path (same-directory rename: atomic).
                if (std::rename(j.attempt_json.c_str(),
                                j.json.c_str()) != 0) {
                    fatal("diablo_sweep: rename %s -> %s: %s",
                          j.attempt_json.c_str(), j.json.c_str(),
                          std::strerror(errno));
                }
                j.log = j.attempt_log;
                j.status = "retried";
            } else {
                j.status = "ok";
            }
            ++done_count;
            return;
        }
        const char *cause = j.timed_out ? "timeout" : "failed";
        if (j.attempts <= spec.retries && !interrupted) {
            const double delay =
                spec.backoff_s *
                static_cast<double>(1ULL << (j.attempts - 1));
            j.earliest_start =
                now + std::chrono::microseconds(
                          static_cast<int64_t>(delay * 1e6));
            pending.push_back(&j);
            std::printf("%s: %s (exit %d), retry %zu/%zu in %.1fs\n",
                        j.label.c_str(), cause, j.exit_code,
                        j.attempts, spec.retries, delay);
            return;
        }
        j.status = cause;
        ++failed;
        ++done_count;
        std::printf("%s: FAILED (%s, exit %d, see %s)\n", j.label.c_str(),
                    cause, j.exit_code, j.attempt_log.c_str());
    };

    while (!pending.empty() || !live.empty()) {
        const Clock::time_point now = Clock::now();

        if (core::interruptRequested() && !interrupted) {
            interrupted = true;
            std::printf("sweep interrupted (%s): terminating %zu "
                        "running job(s), %zu never started\n",
                        core::interruptCauseName(), live.size(),
                        pending.size());
            std::fflush(stdout);
            pending.clear();
            for (auto &[pid, j] : live) {
                (void)j;
                // Negative pid: signal the job's whole process group,
                // so multiprocess engine ranks finalize too.
                kill(-pid, SIGTERM);
            }
        }

        // Launch: any pending job whose backoff gate has passed.
        for (size_t i = 0; i < pending.size() && live.size() < spec.jobs;) {
            Job &j = *pending[i];
            if (now < j.earliest_start) {
                ++i;
                continue;
            }
            pending.erase(pending.begin() + static_cast<long>(i));
            ++j.attempts;
            setAttemptPaths(j, j.attempts);
            j.timed_out = false;
            j.term_sent = false;
            j.pid = spawnJob(j);
            if (j.pid < 0) {
                j.exit_code = -3;
                finishJob(j, now);
                continue;
            }
            if (spec.timeout_s > 0.0) {
                j.deadline = now + std::chrono::microseconds(
                                       static_cast<int64_t>(
                                           spec.timeout_s * 1e6));
            }
            live[j.pid] = &j;
            if (j.attempts == 1) {
                ++started_count;
            }
            std::printf("[%zu/%zu] %s: started%s\n", started_count,
                        total_to_run, j.label.c_str(),
                        j.attempts > 1 ? " (retry)" : "");
            std::fflush(stdout);
        }

        // Reap every child that has exited since the last tick.
        while (!live.empty()) {
            int status = 0;
            const pid_t pid = reapOne(&status);
            if (pid <= 0) {
                break;
            }
            auto it = live.find(pid);
            if (it == live.end()) {
                continue;
            }
            Job &j = *it->second;
            live.erase(it);
            j.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                            : 128 + WTERMSIG(status);
            finishJob(j, now);
            std::fflush(stdout);
        }

        // Enforce per-job deadlines: SIGTERM first (diablo_run
        // finalizes a partial "interrupted" artifact), SIGKILL after
        // the grace period if the child is wedged.
        if (spec.timeout_s > 0.0 || interrupted) {
            for (auto &[pid, jp] : live) {
                Job &j = *jp;
                const bool overdue =
                    spec.timeout_s > 0.0 && now >= j.deadline;
                if (!j.term_sent && (overdue || interrupted)) {
                    j.term_sent = true;
                    j.timed_out = overdue;
                    j.kill_at =
                        now + std::chrono::microseconds(
                                  static_cast<int64_t>(
                                      spec.grace_s * 1e6));
                    kill(-pid, SIGTERM);
                    if (overdue) {
                        std::printf("%s: timeout after %.1fs, sent "
                                    "SIGTERM\n",
                                    j.label.c_str(), spec.timeout_s);
                        std::fflush(stdout);
                    }
                } else if (j.term_sent && now >= j.kill_at) {
                    kill(-pid, SIGKILL);
                }
            }
        }

        if (!live.empty() ||
            (!pending.empty() && !core::interruptRequested())) {
            sleepMs(20);
        }
    }

    analysis::Table table({"run", "workload", "engine", "status",
                           "elapsed_ms", "goodput_mbps", "requests",
                           "p99_us", "fingerprint"});
    for (const Job &j : jobs) {
        const std::string st = j.status.empty() ? "not-run" : j.status;
        if (!j.parsed) {
            table.addRow({j.label, j.get("workload"), j.get("engine"),
                          st, "-", "-", "-", "-", "-"});
            continue;
        }
        table.addRow(
            {j.label, j.get("workload"),
             j.get("engine").empty() ? "single" : j.get("engine"), st,
             analysis::Table::cell("%.1f", j.elapsed_us / 1000.0),
             analysis::Table::cell("%.1f", j.goodput_mbps),
             analysis::Table::cell("%llu",
                                   static_cast<unsigned long long>(
                                       j.requests)),
             analysis::Table::cell("%.1f", j.p99_us), j.fingerprint});
    }
    table.print();

    const std::vector<CrossCheck> checks = crossCheckEngines(jobs);
    size_t mismatches = 0;
    for (const CrossCheck &c : checks) {
        std::printf("cross-check %s: %s", c.label.c_str(),
                    c.match ? "MATCH" : "MISMATCH");
        for (const Job *r : c.runs) {
            std::printf(" %s=%s", r->get("engine").c_str(),
                        r->parsed ? r->fingerprint.c_str() : "?");
        }
        std::printf("\n");
        mismatches += c.match ? 0 : 1;
    }

    const bool ok = failed == 0 && mismatches == 0 && !interrupted;
    writeReport(out_dir + "/report.json", spec, jobs, checks, ok);
    std::printf("report: %s/report.json (%zu runs, %zu failed, "
                "%zu fingerprint mismatches)\n",
                out_dir.c_str(), jobs.size(), failed, mismatches);
    // A fingerprint mismatch is a determinism bug — never masked by
    // the softer partial-failure code.
    if (mismatches != 0) {
        return 1;
    }
    if (interrupted) {
        return core::kExitInterrupted;
    }
    return failed != 0 ? core::kExitSweepPartial : 0;
}
