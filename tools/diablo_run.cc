/**
 * @file
 * diablo_run: command-line front end for ad-hoc experiments.
 *
 * Runs one of the built-in workloads on a cluster described entirely by
 * key=value overrides (every model parameter is runtime-configurable,
 * like DIABLO's FAME models):
 *
 *   diablo_run memcached topo.num_arrays=2 kernel.version=3.5.7 \
 *              mc.requests=500 mc.udp=false
 *   diablo_run incast incast.servers=16 topo.rack.buffer_per_port_bytes=4096
 *
 * Unknown keys are ignored by the models that do not read them, so the
 * full key set is discoverable from the *Params::fromConfig readers.
 *
 * --fault-plan <file> injects a deterministic fault timeline (see
 * sim::FaultPlan::fromFile for the key=value schema) into the run;
 * fault.<i>.* keys given directly on the command line work too, and
 * when both are present the file's timeline comes first with the
 * command-line events appended (and a command-line fault.seed winning).
 *
 * --engine <single|seq|par> selects the execution engine: `single`
 * (default) runs the whole array on one Simulator; `seq` and `par`
 * build the rack/switch-sharded cluster and drive it with the
 * sequential reference or the fused parallel engine — all three
 * produce bit-identical simulated results.  --threads <N> caps the
 * parallel engine's worker count (0 = one per hardware thread).
 *
 * --json <path> writes the machine-readable run artifact (see
 * analysis::RunArtifact for the schema): everything the text report
 * prints — goodput, latency digests incl. per hop class, datapath /
 * pool / fault / memory counters, engine + quanta stats, the run's
 * determinism fingerprint, and the full key=value configuration.
 * diablo_sweep consumes these artifacts.
 *
 * telemetry.period=<sim-time µs> streams in-run snapshots (goodput,
 * requests completed, p99-so-far, pool ledger, materialized-node
 * deltas) to a JSONL file every period of *simulated* time
 * (telemetry.path overrides the destination, default <json>.telemetry
 * .jsonl).  Sampling only reads model state on the simulated clock, so
 * enabling it never changes simulated results or fingerprints.
 *
 * Unattended operation: SIGINT/SIGTERM finalize a *partial* --json
 * artifact (`"status": "interrupted"`, results-so-far, fingerprint-so-
 * far), flush telemetry, and exit with core::kExitInterrupted (75).
 * run.deadline=<s> caps the run's wall clock and run.stall=<s> trips
 * when the engine makes no progress for that long; either dumps a
 * best-effort engine diagnostic (sim time, per-partition next-event
 * minima, pool ledgers), requests the same cooperative finalize, and
 * hard-exits with core::kExitWatchdog (76) if the run stays wedged past
 * run.grace=<s> (default 5).
 *
 * --mem-report prints the memory-diet ledger after the run: peak RSS,
 * bytes per simulated node, how many nodes were actually materialized
 * (sim.lazy_servers=true defers node construction to first use), and
 * the per-arena slab ledgers.  Paper-scale knobs: mc.clients caps the
 * active client count (0 = every non-server node), stats.sketch=true
 * records latencies into fixed-memory quantile sketches.
 */

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/incast.hh"
#include "apps/mc_experiment.hh"
#include "analysis/artifact.hh"
#include "analysis/report.hh"
#include "core/cpu_topology.hh"
#include "core/interrupt.hh"
#include "core/shm.hh"
#include "fame/transport.hh"
#include "sim/fault.hh"
#include "sim/telemetry.hh"
#include "sim/watchdog.hh"

using namespace diablo;

namespace {

/** Which engine drives the run (see the file comment). */
enum class Engine { Single, Seq, Par };

struct EngineOpts {
    Engine engine = Engine::Single;
    size_t threads = 0; ///< parallel worker cap; 0 = hardware default
    bool pin = true;    ///< cache-topology-aware worker pinning
    bool mem_report = false;
    /**
     * Engine processes (--processes).  >1 selects the coupled
     * multiprocess engine: the launcher re-execs N-1 child copies of
     * this binary, partitions are assigned to ranks by the same LPT
     * balance the parallel engine uses, and the group runs in lockstep
     * windows over shared-memory ring transports.  Results are
     * bit-identical to seq/par.
     */
    size_t processes = 1;

    bool
    parseEngine(const char *val)
    {
        if (std::strcmp(val, "single") == 0) {
            engine = Engine::Single;
        } else if (std::strcmp(val, "seq") == 0) {
            engine = Engine::Seq;
        } else if (std::strcmp(val, "par") == 0) {
            engine = Engine::Par;
        } else {
            return false;
        }
        return true;
    }

    const char *
    name() const
    {
        if (processes > 1) {
            return "mp";
        }
        switch (engine) {
        case Engine::Single:
            return "single";
        case Engine::Seq:
            return "seq";
        case Engine::Par:
            return "par";
        }
        return "?";
    }
};

/** Everything main() parses besides key=value model overrides. */
struct RunOpts {
    EngineOpts eng;
    const char *plan_file = nullptr;
    const char *json_path = nullptr;

    /** Original command line, for re-execing child engine ranks. */
    int argc = 0;
    char **argv = nullptr;

    // --- child-rank identity (internal --proc-* flags) ---------------
    uint32_t proc_rank = 0;        ///< this process's coupled rank
    uint32_t proc_nprocs = 0;      ///< group size
    const char *proc_shm = nullptr; ///< group segment path
    int proc_result_fd = -1;       ///< pipe back to the launcher

    bool isChildRank() const { return proc_shm != nullptr; }
};

/**
 * Build the run's fault plan: the --fault-plan file (when given) comes
 * first, then any fault.<i>.* command-line events are appended, with a
 * command-line fault.seed overriding the file's.  Returns an empty
 * plan when the run is fault-free.
 */
sim::FaultPlan
makeFaultPlan(const Config &cfg, const char *plan_file)
{
    sim::FaultPlan cli = sim::FaultPlan::fromConfig(cfg);
    if (plan_file == nullptr) {
        return cli;
    }
    sim::FaultPlan plan = sim::FaultPlan::fromFile(plan_file);
    plan.merge(cli, /*take_seed=*/cfg.has("fault.seed"));
    return plan;
}

void
installFaults(sim::Cluster &cluster, const sim::FaultPlan &plan,
              std::unique_ptr<sim::FaultController> &fc,
              bool quiet = false)
{
    if (plan.empty()) {
        return;
    }
    if (!quiet) {
        std::printf("%s", plan.str().c_str());
    }
    fc = std::make_unique<sim::FaultController>(cluster, plan);
    fc->install();
}

void
printFaultOutcome(sim::Cluster &cluster)
{
    topo::ClosNetwork &net = cluster.network();
    std::printf("faults: reroutes=%llu link_down_drops=%llu "
                "link_degrade_drops=%llu tcp_aborts=%llu "
                "tcp_recovered=%llu crash_rx_discards=%llu\n",
                static_cast<unsigned long long>(net.rerouteCount()),
                static_cast<unsigned long long>(
                    net.totalLinkDownDrops()),
                static_cast<unsigned long long>(
                    net.totalLinkDegradeDrops()),
                static_cast<unsigned long long>(cluster.totalTcpAborts()),
                static_cast<unsigned long long>(
                    cluster.totalTcpRecovered()),
                static_cast<unsigned long long>(
                    cluster.totalCrashRxDiscards()));
}

/**
 * Per-partition packet-pool counters plus the datapath batching
 * totals, printed next to the engine's quanta/executed-event figures
 * so a perf regression in one partition's pool is visible at a glance.
 */
void
printDatapathStats(sim::Cluster &cluster)
{
    const auto pools = cluster.poolStats();
    fame::PartitionSet *ps = cluster.partitionSet();
    for (size_t i = 0; i < pools.size(); ++i) {
        const auto &p = pools[i];
        const uint64_t events = ps != nullptr
                                    ? ps->partition(i).executedEvents()
                                    : cluster.sim().executedEvents();
        std::printf("  part %zu: events=%llu pool makes=%llu "
                    "recycles=%llu heap=%llu returns=%llu "
                    "high_water=%llu\n",
                    i, static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(p.makes),
                    static_cast<unsigned long long>(p.recycles),
                    static_cast<unsigned long long>(p.heap_allocs),
                    static_cast<unsigned long long>(p.returns),
                    static_cast<unsigned long long>(p.high_water));
    }
    std::printf("datapath: quanta=%llu trains=%llu coalesced=%llu "
                "nic_tx_ring_drops=%llu\n",
                static_cast<unsigned long long>(
                    ps != nullptr ? ps->quantaExecuted() : 0),
                static_cast<unsigned long long>(
                    cluster.totalDeliveryTrains()),
                static_cast<unsigned long long>(
                    cluster.totalDeliveriesCoalesced()),
                static_cast<unsigned long long>(
                    cluster.totalNicTxRingDrops()));
}

uint64_t
peakRssBytes()
{
    struct rusage ru;
    std::memset(&ru, 0, sizeof(ru));
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

/**
 * The memory-diet ledger: process peak RSS, bytes per simulated node,
 * materialization ratio, and the per-arena slab accounting (one arena
 * per rack partition on a sharded build; empty arenas are summarized).
 */
void
printMemReport(sim::Cluster &cluster)
{
    const uint64_t rss = peakRssBytes();
    const uint32_t nodes = cluster.size();

    std::printf("mem: peak_rss=%.1f MB bytes/node=%.0f nodes/GB=%.0f\n",
                static_cast<double>(rss) / (1024.0 * 1024.0),
                static_cast<double>(rss) / nodes,
                static_cast<double>(nodes) /
                    (static_cast<double>(rss) /
                     (1024.0 * 1024.0 * 1024.0)));
    std::printf("mem: materialized=%zu/%u nodes (%s)\n",
                cluster.materializedServers(), nodes,
                cluster.params().lazy_servers ? "lazy" : "eager");

    const auto arenas = cluster.arenaStats();
    uint64_t used = 0, reserved = 0;
    size_t nonempty = 0;
    for (size_t i = 0; i < arenas.size(); ++i) {
        used += arenas[i].bytes_used;
        reserved += arenas[i].bytes_reserved;
        if (arenas[i].nodes != 0) {
            ++nonempty;
            std::printf("  arena %zu: nodes=%llu used=%llu reserved=%llu\n",
                        i,
                        static_cast<unsigned long long>(arenas[i].nodes),
                        static_cast<unsigned long long>(
                            arenas[i].bytes_used),
                        static_cast<unsigned long long>(
                            arenas[i].bytes_reserved));
        }
    }
    std::printf("mem: arenas=%zu (%zu populated) used=%llu "
                "reserved=%llu bytes\n",
                arenas.size(), nonempty,
                static_cast<unsigned long long>(used),
                static_cast<unsigned long long>(reserved));
}

/** "256KB"-style rendering of a byte count for the incast summary. */
std::string
fmtBytes(uint64_t b)
{
    char buf[32];
    if (b >= 1024 * 1024 && b % (1024 * 1024) == 0) {
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(b >> 20));
    } else if (b >= 1024 && b % 1024 == 0) {
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(b >> 10));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(b));
    }
    return buf;
}

/**
 * Construct the telemetry probe when telemetry.period (sim-time µs) is
 * set.  The stream goes to telemetry.path, defaulting to the --json
 * path with a .telemetry.jsonl suffix (or ./telemetry.jsonl when the
 * run has no artifact).
 */
std::unique_ptr<sim::TelemetryProbe>
makeProbe(const Config &cfg, sim::Cluster &cluster, const RunOpts &opts)
{
    const double period_us = cfg.getDouble("telemetry.period", 0.0);
    if (period_us <= 0.0) {
        return nullptr;
    }
    std::string def = opts.json_path != nullptr
                          ? std::string(opts.json_path) +
                                ".telemetry.jsonl"
                          : std::string("telemetry.jsonl");
    return std::make_unique<sim::TelemetryProbe>(
        cluster, SimTime::microseconds(period_us),
        cfg.getString("telemetry.path", def));
}

/**
 * Build the run watchdog when run.deadline / run.stall (wall-clock
 * seconds) are configured.  The diagnostic dump reads engine state
 * best-effort — the run may be wedged mid-quantum, so the values are
 * for post-mortems, not for consumption by tools.
 */
std::unique_ptr<sim::Watchdog>
makeWatchdog(const Config &cfg, sim::Cluster &cluster)
{
    sim::Watchdog::Params wp;
    wp.deadline_s = cfg.getDouble("run.deadline", 0.0);
    wp.stall_s = cfg.getDouble("run.stall", 0.0);
    wp.grace_s = cfg.getDouble("run.grace", 5.0);
    if (!wp.enabled()) {
        return nullptr;
    }
    auto diag = [&cluster](const char *reason) {
        std::fprintf(stderr, "watchdog: engine state at %s trip "
                     "(best effort):\n", reason);
        fame::PartitionSet *ps = cluster.partitionSet();
        if (ps != nullptr) {
            std::fprintf(stderr,
                         "  quanta=%llu total_events=%llu\n",
                         static_cast<unsigned long long>(
                             ps->quantaExecuted()),
                         static_cast<unsigned long long>(
                             ps->totalExecutedEvents()));
            for (size_t i = 0; i < ps->size(); ++i) {
                Simulator &p = ps->partition(i);
                std::fprintf(stderr,
                             "  part %zu: now=%s next_event=%s "
                             "events=%llu\n",
                             i, p.now().str().c_str(),
                             p.nextEventTime().str().c_str(),
                             static_cast<unsigned long long>(
                                 p.executedEvents()));
            }
        } else {
            Simulator &s = cluster.sim();
            std::fprintf(stderr,
                         "  now=%s next_event=%s events=%llu\n",
                         s.now().str().c_str(),
                         s.nextEventTime().str().c_str(),
                         static_cast<unsigned long long>(
                             s.executedEvents()));
        }
        const auto pools = cluster.poolStats();
        for (size_t i = 0; i < pools.size(); ++i) {
            std::fprintf(stderr,
                         "  pool %zu: makes=%llu returns=%llu "
                         "heap=%llu high_water=%llu\n", i,
                         static_cast<unsigned long long>(pools[i].makes),
                         static_cast<unsigned long long>(
                             pools[i].returns),
                         static_cast<unsigned long long>(
                             pools[i].heap_allocs),
                         static_cast<unsigned long long>(
                             pools[i].high_water));
        }
    };
    auto wd = std::make_unique<sim::Watchdog>(wp, std::move(diag));
    wd->arm();
    return wd;
}

/**
 * Single-Simulator run control: a self-rescheduling read-only event
 * (same pattern as TelemetryProbe::installPeriodic) that pumps the
 * watchdog's progress counter and answers an interrupt request by
 * stopping the Simulator so the driver can finalize a partial
 * artifact.  Stops rescheduling once @p done reports completion so
 * run() can drain the queue.  Only reads model state — simulated
 * results are identical with or without it (engine-internal event
 * counts are excluded from fingerprints).
 */
void
installRunControl(Simulator &sim, sim::Watchdog *wd,
                  std::function<bool()> done)
{
    struct Tick {
        Simulator *sim;
        sim::Watchdog *wd;
        std::function<bool()> done;

        void
        operator()()
        {
            if (wd != nullptr) {
                wd->noteProgress(sim->executedEvents());
            }
            if (core::interruptRequested()) {
                sim->stop();
                return;
            }
            if (done && done()) {
                return;
            }
            sim->schedule(SimTime::ms(10), Tick{*this});
        }
    };
    sim.schedule(SimTime::ms(10), Tick{&sim, wd, std::move(done)});
}

void writeArtifact(const analysis::RunArtifact &a, const RunOpts &opts);

/**
 * The run was cut short (signal or watchdog): finalize the partial
 * artifact with status "interrupted" + the cause, flush the telemetry
 * stream, and map the cause to the exit code contract (75 signal, 76
 * watchdog).
 */
int
finalizeInterrupted(analysis::RunArtifact &a, const RunOpts &opts,
                    sim::TelemetryProbe *probe)
{
    a.status = "interrupted";
    a.interrupt_cause = core::interruptCauseName();
    if (probe != nullptr) {
        probe->flush();
    }
    writeArtifact(a, opts);
    std::fprintf(stderr, "run interrupted (%s); partial artifact "
                 "finalized\n", a.interrupt_cause.c_str());
    const int cause = core::interruptCause();
    return cause == core::kCauseWatchdogDeadline ||
                   cause == core::kCauseWatchdogStall
               ? core::kExitWatchdog
               : core::kExitInterrupted;
}

/**
 * Shared artifact sections: engine identity, per-partition event/pool
 * ledgers, the datapath + network counter groups, fault outcome, the
 * memory report, telemetry metadata, and the resolved configuration.
 */
void
fillCommonArtifact(analysis::RunArtifact &a, sim::Cluster &cluster,
                   const Config &cfg, const RunOpts &opts,
                   const sim::FaultPlan &plan,
                   const sim::TelemetryProbe *probe)
{
    a.engine = opts.eng.name();
    a.threads_requested = opts.eng.threads;
    a.nodes = cluster.size();

    fame::PartitionSet *ps = cluster.partitionSet();
    a.partitions = ps != nullptr ? ps->size() : 1;
    a.workers = (ps != nullptr && opts.eng.engine == Engine::Par)
                    ? ps->lastRunWorkers()
                    : 1;
    a.cores = CpuTopology::host().cpuCount();
    if (ps != nullptr && opts.eng.engine == Engine::Par) {
        a.oversubscribed = ps->lastRunOversubscribed();
        a.worker_cpus = ps->lastRunWorkerCpus();
    }
    a.quanta = ps != nullptr ? ps->quantaExecuted() : 0;
    a.executed_events = ps != nullptr ? ps->totalExecutedEvents()
                                      : cluster.sim().executedEvents();
    const auto pools = cluster.poolStats();
    for (size_t i = 0; i < pools.size(); ++i) {
        analysis::RunArtifact::PartitionRow row;
        row.events = ps != nullptr ? ps->partition(i).executedEvents()
                                   : cluster.sim().executedEvents();
        row.pool_makes = pools[i].makes;
        row.pool_recycles = pools[i].recycles;
        row.pool_heap_allocs = pools[i].heap_allocs;
        row.pool_returns = pools[i].returns;
        row.pool_high_water = pools[i].high_water;
        a.partition_rows.push_back(row);
    }

    auto &net = a.addGroup("network");
    net.counters = {
        {"switch_drops", cluster.network().totalSwitchDrops()},
        {"forwarded", cluster.network().totalForwarded()},
        {"tcp_retransmits", cluster.totalTcpRetransmits()},
        {"tcp_rtos", cluster.totalTcpRtos()},
        {"udp_socket_drops", cluster.totalUdpSocketDrops()},
        {"nic_rx_drops", cluster.totalNicRxDrops()},
    };
    auto &dp = a.addGroup("datapath");
    dp.counters = {
        {"delivery_trains", cluster.totalDeliveryTrains()},
        {"deliveries_coalesced", cluster.totalDeliveriesCoalesced()},
        {"nic_tx_ring_drops", cluster.totalNicTxRingDrops()},
    };
    if (!plan.empty()) {
        auto &f = a.addGroup("faults");
        f.counters = {
            {"plan_events", plan.size()},
            {"reroutes", cluster.network().rerouteCount()},
            {"link_down_drops", cluster.network().totalLinkDownDrops()},
            {"link_degrade_drops",
             cluster.network().totalLinkDegradeDrops()},
            {"tcp_aborts", cluster.totalTcpAborts()},
            {"tcp_recovered", cluster.totalTcpRecovered()},
            {"crash_rx_discards", cluster.totalCrashRxDiscards()},
        };
    }

    a.has_mem = true;
    a.peak_rss_mb =
        static_cast<double>(peakRssBytes()) / (1024.0 * 1024.0);
    a.materialized_nodes = cluster.materializedServers();
    a.lazy_servers = cluster.params().lazy_servers;
    for (const auto &ar : cluster.arenaStats()) {
        a.arena_bytes_used += ar.bytes_used;
        a.arena_bytes_reserved += ar.bytes_reserved;
    }

    if (probe != nullptr) {
        a.telemetry_path = probe->path();
        a.telemetry_period_us = probe->period().asMicros();
        a.telemetry_samples = probe->samplesWritten();
    }

    a.config = cfg;
    a.config.set("resolved.kernel",
                 cluster.params().kernel_profile.name);
}

void
writeArtifact(const analysis::RunArtifact &a, const RunOpts &opts)
{
    if (opts.json_path == nullptr) {
        return;
    }
    a.writeJson(opts.json_path);
    std::printf("artifact: %s\n", opts.json_path);
}

int
runMemcached(const Config &cfg, const sim::FaultPlan &plan,
             const RunOpts &opts)
{
    const EngineOpts &eng = opts.eng;
    apps::McExperimentParams p;
    p.cluster = cfg.getDouble("topo.rack.port_gbps", 1.0) > 5
                    ? sim::ClusterParams::tengig100ns()
                    : sim::ClusterParams::gige1us();
    p.cluster.applyConfig(cfg);
    p.num_servers = static_cast<uint32_t>(
        cfg.getUint("mc.servers",
                    2 * p.cluster.topo.racks_per_array *
                        p.cluster.topo.num_arrays));
    p.num_clients = static_cast<uint32_t>(cfg.getUint("mc.clients", 0));
    p.sketch_stats = cfg.getBool("stats.sketch", false);
    p.server.udp = cfg.getBool("mc.udp", true);
    p.server.version = static_cast<int>(cfg.getUint("mc.version", 1417));
    p.server.worker_threads = static_cast<uint32_t>(
        cfg.getUint("mc.workers", 4));
    p.client.udp = p.server.udp;
    p.client.requests = static_cast<uint32_t>(
        cfg.getUint("mc.requests", 200));
    p.client.think_mean = SimTime::microseconds(
        cfg.getDouble("mc.think_us", 1500.0));

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<fame::PartitionSet> ps;
    std::unique_ptr<apps::McExperiment> exp;
    if (eng.engine == Engine::Single) {
        sim = std::make_unique<Simulator>();
        exp = std::make_unique<apps::McExperiment>(*sim, p);
    } else {
        ps = std::make_unique<fame::PartitionSet>(
            sim::Cluster::partitionsRequired(p.cluster));
        ps->setParallelism(eng.threads);
        ps->setWorkerPinning(eng.pin);
        exp = std::make_unique<apps::McExperiment>(*ps, p);
    }
    std::unique_ptr<sim::FaultController> fc;
    installFaults(exp->cluster(), plan, fc);
    std::unique_ptr<sim::TelemetryProbe> probe =
        makeProbe(cfg, exp->cluster(), opts);
    if (probe != nullptr) {
        probe->setSampler([&exp](sim::TelemetryProbe::AppStats &s) {
            const auto ls = exp->liveStats();
            s.requests_completed = ls.requests_completed;
            s.p99_us = ls.p99_us;
        });
        exp->attachTelemetry(probe.get());
    }
    std::unique_ptr<sim::Watchdog> wd = makeWatchdog(cfg, exp->cluster());
    exp->setPulse([&exp, wd = wd.get()] {
        if (wd != nullptr) {
            fame::PartitionSet *eps = exp->cluster().partitionSet();
            wd->noteProgress(eps != nullptr
                                 ? eps->totalExecutedEvents()
                                 : exp->cluster().sim()
                                       .executedEvents());
        }
        return core::interruptRequested();
    });
    exp->run(eng.engine == Engine::Par);
    if (wd != nullptr) {
        wd->disarm();
    }
    const auto &r = exp->result();

    std::printf("nodes=%u servers=%u clients=%u proto=%s kernel=%s\n",
                exp->cluster().size(), r.servers, r.clients,
                p.server.udp ? "UDP" : "TCP",
                p.cluster.kernel_profile.name.c_str());
    if (ps != nullptr) {
        std::printf("engine=%s partitions=%zu workers=%zu\n",
                    eng.engine == Engine::Par ? "par" : "seq",
                    ps->size(),
                    eng.engine == Engine::Par ? ps->lastRunWorkers()
                                              : size_t{1});
    }
    std::printf("completed=%llu in %s (sim), %llu events\n",
                static_cast<unsigned long long>(r.requests_completed),
                r.elapsed.str().c_str(),
                static_cast<unsigned long long>(
                    sim != nullptr ? sim->executedEvents()
                                   : ps->totalExecutedEvents()));
    std::printf("latency %s\n",
                analysis::latencySummary(r.latency_us).c_str());
    const char *names[3] = {"local", "1-hop", "2-hop"};
    for (int h = 0; h < 3; ++h) {
        if (r.latency_us_by_hop[h].count()) {
            std::printf("  %-5s %s\n", names[h],
                        analysis::latencySummary(
                            r.latency_us_by_hop[h]).c_str());
        }
    }
    std::printf("udp retries=%llu lost=%llu; switch drops=%llu; tcp "
                "rtos=%llu\n",
                static_cast<unsigned long long>(r.udp_retries),
                static_cast<unsigned long long>(r.udp_timeouts),
                static_cast<unsigned long long>(
                    exp->cluster().network().totalSwitchDrops()),
                static_cast<unsigned long long>(
                    exp->cluster().totalTcpRtos()));
    printDatapathStats(exp->cluster());
    if (eng.mem_report) {
        printMemReport(exp->cluster());
    }
    if (!plan.empty()) {
        printFaultOutcome(exp->cluster());
    }

    if (opts.json_path != nullptr || exp->aborted()) {
        analysis::RunArtifact a;
        a.workload = "memcached";
        a.elapsed_us = r.elapsed.asMicros();
        a.requests_completed = r.requests_completed;
        a.latencies.emplace_back(
            "latency_us", analysis::LatencyDigest::of(r.latency_us));
        for (int h = 0; h < 3; ++h) {
            a.latencies.emplace_back(
                std::string("latency_us.") + names[h],
                analysis::LatencyDigest::of(r.latency_us_by_hop[h]));
        }
        a.latencies.emplace_back(
            "first_request_us",
            analysis::LatencyDigest::of(r.first_request_us));
        auto &app = a.addGroup("app");
        app.counters = {
            {"servers", r.servers},
            {"clients", r.clients},
            {"udp_retries", r.udp_retries},
            {"udp_lost", r.udp_timeouts},
        };
        fillCommonArtifact(a, exp->cluster(), cfg, opts, plan,
                           probe.get());
        a.config.set("resolved.proto", p.server.udp ? "UDP" : "TCP");
        if (exp->aborted()) {
            return finalizeInterrupted(a, opts, probe.get());
        }
        writeArtifact(a, opts);
    }
    return 0;
}

/** The incast scenario, shared by the in-process and mp drivers. */
struct IncastSetup {
    uint32_t n = 0;     ///< fan-in servers
    uint32_t racks = 0;
    sim::ClusterParams cp;
    apps::IncastParams ip;
    std::vector<net::NodeId> servers;
};

IncastSetup
makeIncastSetup(const Config &cfg)
{
    IncastSetup s;
    s.n = static_cast<uint32_t>(cfg.getUint("incast.servers", 8));
    // incast.racks spreads the fan-in across racks so the trunk and
    // the sharded engines have cross-partition traffic to chew on;
    // the default keeps the classic single-ToR shape.
    s.racks = static_cast<uint32_t>(cfg.getUint("incast.racks", 1));
    s.cp = cfg.getDouble("topo.rack.port_gbps", 1.0) > 5
               ? sim::ClusterParams::tengig100ns()
               : sim::ClusterParams::gige1us();
    s.cp.applyConfig(cfg);
    s.cp.topo.servers_per_rack = (s.n + 1 + s.racks - 1) / s.racks;
    s.cp.topo.racks_per_array = s.racks;
    s.cp.topo.num_arrays = 1;
    s.ip.block_bytes = cfg.getUint("incast.block_bytes", 256 * 1024);
    s.ip.iterations = static_cast<uint32_t>(
        cfg.getUint("incast.iterations", 20));
    s.ip.use_epoll = cfg.getBool("incast.epoll", false);
    for (uint32_t i = 1; i <= s.n; ++i) {
        s.servers.push_back(i);
    }
    return s;
}

int
runIncast(const Config &cfg, const sim::FaultPlan &plan,
          const RunOpts &opts)
{
    const EngineOpts &eng = opts.eng;
    const IncastSetup setup = makeIncastSetup(cfg);
    const uint32_t n = setup.n;
    const uint32_t racks = setup.racks;
    const sim::ClusterParams &cp = setup.cp;

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<fame::PartitionSet> ps;
    std::unique_ptr<sim::Cluster> cluster;
    if (eng.engine == Engine::Single) {
        sim = std::make_unique<Simulator>();
        cluster = std::make_unique<sim::Cluster>(*sim, cp);
    } else {
        ps = std::make_unique<fame::PartitionSet>(
            sim::Cluster::partitionsRequired(cp));
        ps->setParallelism(eng.threads);
        ps->setWorkerPinning(eng.pin);
        cluster = std::make_unique<sim::Cluster>(*ps, cp);
    }
    const apps::IncastParams &ip = setup.ip;
    apps::IncastApp app(*cluster, ip, 0, setup.servers);
    app.install();
    std::unique_ptr<sim::FaultController> fc;
    installFaults(*cluster, plan, fc);
    std::unique_ptr<sim::TelemetryProbe> probe =
        makeProbe(cfg, *cluster, opts);
    if (probe != nullptr) {
        probe->setSampler(
            [&app, &ip, n](sim::TelemetryProbe::AppStats &s) {
                const apps::IncastResult &r = app.result();
                const uint64_t iters = r.iteration_us.count();
                s.requests_completed = iters;
                s.bytes = iters * ip.block_bytes * n;
                if (iters != 0) {
                    s.p99_us = r.iteration_us.percentile(99);
                }
            });
    }
    std::unique_ptr<sim::Watchdog> wd = makeWatchdog(cfg, *cluster);
    if (sim != nullptr) {
        if (probe != nullptr) {
            probe->installPeriodic(
                [&app] { return app.result().done; });
        }
        installRunControl(*sim, wd.get(),
                          [&app] { return app.result().done; });
        sim->run();
    } else {
        // The PartitionSet runs to a time bound; advance in windows
        // until the client reports completion (or a generous cap, in
        // case a fault plan leaves the transfer unable to finish).
        // Telemetry subdivides each window at the sample instants; the
        // outer window sequence is identical with the probe on or off.
        SimTime t;
        auto step = [&](SimTime w) {
            if (eng.engine == Engine::Par) {
                ps->runParallel(w);
            } else {
                ps->runSequential(w);
            }
        };
        while (!app.result().done && t < SimTime::sec(60) &&
               !core::interruptRequested()) {
            t = t + SimTime::ms(250);
            if (probe != nullptr) {
                probe->driveTo(t, step);
            } else {
                step(t);
            }
            if (wd != nullptr) {
                wd->noteProgress(ps->totalExecutedEvents());
            }
        }
        std::printf("engine=%s partitions=%zu workers=%zu\n",
                    eng.engine == Engine::Par ? "par" : "seq",
                    ps->size(),
                    eng.engine == Engine::Par ? ps->lastRunWorkers()
                                              : size_t{1});
    }
    if (wd != nullptr) {
        wd->disarm();
    }
    const bool interrupted =
        !app.result().done && core::interruptRequested();
    if (!app.result().done && !interrupted) {
        std::fprintf(stderr, "incast did not complete\n");
        return 1;
    }

    const auto &r = app.result();
    std::printf("incast: %u servers in %u rack%s, %s blocks x %u "
                "iterations (%s client)\n", n, racks,
                racks == 1 ? "" : "s", fmtBytes(ip.block_bytes).c_str(),
                ip.iterations, ip.use_epoll ? "epoll" : "pthread");
    std::printf("goodput=%.1f Mbps; drops=%llu rtos=%llu retx=%llu\n",
                r.goodputMbps(),
                static_cast<unsigned long long>(
                    cluster->network().totalSwitchDrops()),
                static_cast<unsigned long long>(cluster->totalTcpRtos()),
                static_cast<unsigned long long>(
                    cluster->totalTcpRetransmits()));
    std::printf("iteration times (us): %s\n",
                analysis::latencySummary(r.iteration_us).c_str());
    printDatapathStats(*cluster);
    if (eng.mem_report) {
        printMemReport(*cluster);
    }
    if (!plan.empty()) {
        printFaultOutcome(*cluster);
    }

    if (opts.json_path != nullptr || interrupted) {
        analysis::RunArtifact a;
        a.workload = "incast";
        a.elapsed_us = r.elapsed.asMicros();
        a.goodput_mbps = r.goodputMbps();
        a.requests_completed = r.iteration_us.count();
        a.latencies.emplace_back(
            "iteration_us", analysis::LatencyDigest::of(r.iteration_us));
        auto &app_grp = a.addGroup("app");
        app_grp.counters = {
            {"servers", n},
            {"racks", racks},
            {"total_bytes", r.total_bytes},
            {"block_bytes", ip.block_bytes},
            {"iterations", ip.iterations},
        };
        fillCommonArtifact(a, *cluster, cfg, opts, plan, probe.get());
        if (interrupted) {
            return finalizeInterrupted(a, opts, probe.get());
        }
        writeArtifact(a, opts);
    }
    return 0;
}

// ====================================================================
// Coupled multiprocess engine (--processes N)
//
// The leader (rank 0) builds the full model, spawns N-1 re-exec'd
// copies of this binary, and drives the group through outer windows
// via the shared control block; every rank runs only the partitions
// the deterministic LPT assignment gives it, exchanging trunk packets
// and sync records over shared-memory rings (fame::ShmRingTransport).
// Results are bit-identical to the seq/par engines: children report
// their per-partition event/pool ledgers and pathology counters over
// a pipe, the leader sums them into the artifact, and the fingerprint
// folds the same values a single-process run would have produced.
// ====================================================================

/** Per-rank counters wired back to the launcher over the result pipe. */
struct ProcCounters {
    uint64_t executed_events = 0;
    uint64_t materialized_nodes = 0;
    uint64_t arena_bytes_used = 0;
    uint64_t arena_bytes_reserved = 0;
    // "network" group
    uint64_t switch_drops = 0;
    uint64_t forwarded = 0;
    uint64_t tcp_retransmits = 0;
    uint64_t tcp_rtos = 0;
    uint64_t udp_socket_drops = 0;
    uint64_t nic_rx_drops = 0;
    // "datapath" group
    uint64_t delivery_trains = 0;
    uint64_t deliveries_coalesced = 0;
    uint64_t nic_tx_ring_drops = 0;
    // "faults" group
    uint64_t reroutes = 0;
    uint64_t link_down_drops = 0;
    uint64_t link_degrade_drops = 0;
    uint64_t tcp_aborts = 0;
    uint64_t tcp_recovered = 0;
    uint64_t crash_rx_discards = 0;
    // transport ("mp" group; wall-clock-dependent, never folded)
    uint64_t sync_sent = 0;
    uint64_t sync_recv = 0;
    uint64_t msgs_sent = 0;
    uint64_t msgs_recv = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_recv = 0;
    uint64_t waits_elided = 0;
    uint64_t waits_blocked = 0;
};

/** One partition's engine/pool ledger, as PartitionRow. */
struct ProcPoolRow {
    uint64_t events = 0;
    uint64_t makes = 0;
    uint64_t recycles = 0;
    uint64_t heap_allocs = 0;
    uint64_t returns = 0;
    uint64_t high_water = 0;
};

/** Pipe report: header, then `partitions` ProcPoolRow records. */
struct ProcResultHeader {
    static constexpr uint32_t kMagic = 0x4d505253; // "MPRS"
    uint32_t magic = kMagic;
    uint32_t rank = 0;
    uint32_t interrupted = 0;
    uint32_t partitions = 0;
    ProcCounters c;
};

ProcCounters
collectProcCounters(sim::Cluster &cluster, fame::PartitionSet &ps)
{
    ProcCounters c;
    c.executed_events = ps.totalExecutedEvents();
    c.materialized_nodes = cluster.materializedServers();
    for (const auto &ar : cluster.arenaStats()) {
        c.arena_bytes_used += ar.bytes_used;
        c.arena_bytes_reserved += ar.bytes_reserved;
    }
    topo::ClosNetwork &net = cluster.network();
    c.switch_drops = net.totalSwitchDrops();
    c.forwarded = net.totalForwarded();
    c.tcp_retransmits = cluster.totalTcpRetransmits();
    c.tcp_rtos = cluster.totalTcpRtos();
    c.udp_socket_drops = cluster.totalUdpSocketDrops();
    c.nic_rx_drops = cluster.totalNicRxDrops();
    c.delivery_trains = cluster.totalDeliveryTrains();
    c.deliveries_coalesced = cluster.totalDeliveriesCoalesced();
    c.nic_tx_ring_drops = cluster.totalNicTxRingDrops();
    c.reroutes = net.rerouteCount();
    c.link_down_drops = net.totalLinkDownDrops();
    c.link_degrade_drops = net.totalLinkDegradeDrops();
    c.tcp_aborts = cluster.totalTcpAborts();
    c.tcp_recovered = cluster.totalTcpRecovered();
    c.crash_rx_discards = cluster.totalCrashRxDiscards();
    const fame::PartitionSet::CoupledStats &cs = ps.coupledStats();
    c.sync_sent = cs.sync_sent;
    c.sync_recv = cs.sync_recv;
    c.msgs_sent = cs.msgs_sent;
    c.msgs_recv = cs.msgs_recv;
    c.bytes_sent = cs.bytes_sent;
    c.bytes_recv = cs.bytes_recv;
    c.waits_elided = cs.waits_elided;
    c.waits_blocked = cs.waits_blocked;
    return c;
}

std::vector<ProcPoolRow>
collectPoolRows(sim::Cluster &cluster, fame::PartitionSet &ps)
{
    const auto pools = cluster.poolStats();
    std::vector<ProcPoolRow> rows(pools.size());
    for (size_t i = 0; i < pools.size(); ++i) {
        rows[i].events = ps.partition(i).executedEvents();
        rows[i].makes = pools[i].makes;
        rows[i].recycles = pools[i].recycles;
        rows[i].heap_allocs = pools[i].heap_allocs;
        rows[i].returns = pools[i].returns;
        rows[i].high_water = pools[i].high_water;
    }
    return rows;
}

bool
writeAll(int fd, const void *p, size_t n)
{
    const char *b = static_cast<const char *>(p);
    while (n > 0) {
        const ssize_t w = write(fd, b, n);
        if (w < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        b += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
readAll(int fd, void *p, size_t n)
{
    char *b = static_cast<char *>(p);
    while (n > 0) {
        const ssize_t r = read(fd, b, n);
        if (r < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        if (r == 0) {
            return false; // EOF: the child died before reporting
        }
        b += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

/** The identical deterministic rank map every process computes. */
std::vector<uint32_t>
coupledOwnerMap(fame::PartitionSet &ps, uint32_t nprocs)
{
    return fame::PartitionSet::lptAssign(ps.partitionWeights(), nprocs);
}

/**
 * A child engine rank: build the identical cluster, attach the group
 * segment, follow the leader's epoch/until commands with runCoupled,
 * then report counters over the result pipe.  Prints nothing on the
 * happy path — the launcher owns the report; a rank that sees a local
 * interrupt raises its mask bit and keeps following barriers until the
 * leader stops the group at a window boundary, so partial results stay
 * bit-consistent across all ranks.
 */
int
runIncastChild(const Config &cfg, const sim::FaultPlan &plan,
               const RunOpts &opts)
{
    const IncastSetup setup = makeIncastSetup(cfg);
    auto ps = std::make_unique<fame::PartitionSet>(
        sim::Cluster::partitionsRequired(setup.cp));
    auto cluster = std::make_unique<sim::Cluster>(*ps, setup.cp);
    apps::IncastApp app(*cluster, setup.ip, 0, setup.servers);
    app.install();
    std::unique_ptr<sim::FaultController> fc;
    installFaults(*cluster, plan, fc, /*quiet=*/true);

    fame::ShmGroupLayout layout;
    layout.nprocs = opts.proc_nprocs;
    ShmSegment seg = ShmSegment::attach(opts.proc_shm);
    if (seg.size() < layout.totalBytes()) {
        fatal("rank %u: group segment %s is %zu bytes, need %zu",
              opts.proc_rank, opts.proc_shm, seg.size(),
              layout.totalBytes());
    }
    fame::ShmGroupControl *ctl = fame::groupControl(seg.data(), layout);
    ctl->attached.fetch_add(1, std::memory_order_seq_cst);

    fame::PartitionSet::CoupledOptions copts;
    copts.self_rank = opts.proc_rank;
    copts.owner_of = coupledOwnerMap(*ps, opts.proc_nprocs);
    std::vector<std::unique_ptr<fame::Transport>> transports;
    for (uint32_t r = 0; r < opts.proc_nprocs; ++r) {
        if (r == opts.proc_rank) {
            continue;
        }
        transports.push_back(
            fame::groupTransport(seg.data(), layout, opts.proc_rank, r));
        copts.peers.emplace_back(r, transports.back().get());
    }
    cluster->enableProcessCoupling(copts);

    bool abandoned = false;
    uint32_t last_epoch = 0;
    auto cmd = fame::ShmGroupControl::kRun;
    // The leader publishes every outer window, and windows are
    // wall-clock fast; silence this long means it is gone.
    constexpr int64_t kSliceNs = 200LL * 1000 * 1000;
    constexpr int64_t kLeaderBudgetNs = 120LL * 1000 * 1000 * 1000;
    int64_t idle_ns = 0;
    for (;;) {
        const uint32_t e = ctl->waitEpoch(last_epoch, kSliceNs);
        if (e == last_epoch) {
            idle_ns += kSliceNs;
            if (idle_ns >= kLeaderBudgetNs) {
                std::fprintf(stderr,
                             "rank %u: leader silent for %llds; "
                             "abandoning\n",
                             opts.proc_rank,
                             static_cast<long long>(kLeaderBudgetNs /
                                                    1000000000));
                abandoned = true;
                break;
            }
            continue;
        }
        idle_ns = 0;
        last_epoch = e;
        cmd = static_cast<fame::ShmGroupControl::Command>(
            ctl->command.load(std::memory_order_seq_cst));
        if (cmd != fame::ShmGroupControl::kRun) {
            break;
        }
        const SimTime until =
            SimTime::ps(ctl->until_ps.load(std::memory_order_seq_cst));
        if (!ps->runCoupled(until)) {
            abandoned = true;
            break;
        }
        if (core::interruptRequested()) {
            ctl->markInterrupted(opts.proc_rank);
        }
    }
    const bool interrupted =
        abandoned || core::interruptRequested() ||
        cmd == fame::ShmGroupControl::kStopInterrupted;

    ProcResultHeader h;
    h.rank = opts.proc_rank;
    h.interrupted = interrupted ? 1 : 0;
    h.partitions = static_cast<uint32_t>(ps->size());
    h.c = collectProcCounters(*cluster, *ps);
    const auto rows = collectPoolRows(*cluster, *ps);
    if (!writeAll(opts.proc_result_fd, &h, sizeof(h)) ||
        !writeAll(opts.proc_result_fd, rows.data(),
                  rows.size() * sizeof(rows[0]))) {
        std::fprintf(stderr, "rank %u: result pipe write failed\n",
                     opts.proc_rank);
        return 1;
    }
    close(opts.proc_result_fd);
    return interrupted ? core::kExitInterrupted : 0;
}

analysis::RunArtifact::CounterGroup *
findGroup(analysis::RunArtifact &a, const char *name)
{
    for (auto &g : a.groups) {
        if (g.name == name) {
            return &g;
        }
    }
    return nullptr;
}

void
bumpCounter(analysis::RunArtifact::CounterGroup &g, const char *name,
            uint64_t delta)
{
    for (auto &kv : g.counters) {
        if (kv.first == name) {
            kv.second += delta;
            return;
        }
    }
    g.counters.emplace_back(name, delta);
}

/** The launcher + rank 0 engine behind `--processes N`. */
int
runIncastLeader(const Config &cfg, const sim::FaultPlan &plan,
                const RunOpts &opts)
{
    const IncastSetup setup = makeIncastSetup(cfg);
    const size_t nparts = sim::Cluster::partitionsRequired(setup.cp);
    uint32_t nprocs = static_cast<uint32_t>(opts.eng.processes);
    if (nprocs > nparts) {
        nprocs = static_cast<uint32_t>(nparts);
    }
    if (nprocs > fame::ShmGroupLayout::kMaxProcs) {
        nprocs = fame::ShmGroupLayout::kMaxProcs;
    }
    if (nprocs < 2) {
        std::fprintf(stderr,
                     "--processes needs at least 2 partitions to split "
                     "(got %zu); use incast.racks>=2\n",
                     nparts);
        return 2;
    }
    if (nprocs != opts.eng.processes) {
        std::printf("processes clamped to %u (%zu partitions, max %u)\n",
                    nprocs, nparts, fame::ShmGroupLayout::kMaxProcs);
    }

    auto ps = std::make_unique<fame::PartitionSet>(nparts);
    auto cluster = std::make_unique<sim::Cluster>(*ps, setup.cp);
    apps::IncastApp app(*cluster, setup.ip, 0, setup.servers);
    app.install();
    std::unique_ptr<sim::FaultController> fc;
    installFaults(*cluster, plan, fc);

    fame::ShmGroupLayout layout;
    layout.nprocs = nprocs;
    const std::string shm_path =
        "/tmp/diablo_mp_" + std::to_string(getpid()) + ".shm";
    ::unlink(shm_path.c_str()); // clear debris a crashed run left
    ShmSegment seg = ShmSegment::create(shm_path, layout.totalBytes());
    fame::initGroupSegment(seg.data(), layout);
    fame::ShmGroupControl *ctl = fame::groupControl(seg.data(), layout);
    ctl->attached.fetch_add(1, std::memory_order_seq_cst);

    struct ChildProc {
        pid_t pid;
        int fd;
        uint32_t rank;
    };
    std::vector<ChildProc> kids;
    for (uint32_t r = 1; r < nprocs; ++r) {
        int pfd[2];
        if (pipe(pfd) != 0) {
            fatal("pipe: %s", std::strerror(errno));
        }
        // Only the write end crosses the exec; read ends of earlier
        // children must not leak into later ones.
        fcntl(pfd[0], F_SETFD, FD_CLOEXEC);
        const pid_t pid = fork();
        if (pid < 0) {
            fatal("fork: %s", std::strerror(errno));
        }
        if (pid == 0) {
            close(pfd[0]);
            // Re-exec this binary as rank r: same scenario arguments,
            // minus the leader-only --json/--processes, plus the
            // child-rank identity.
            std::vector<std::string> args;
            args.push_back(opts.argv[0]);
            args.push_back("incast");
            for (int i = 2; i < opts.argc; ++i) {
                const char *a = opts.argv[i];
                auto strips = [&](const char *flag) {
                    const size_t len = std::strlen(flag);
                    if (std::strncmp(a, flag, len) != 0) {
                        return false;
                    }
                    if (a[len] == '=') {
                        return true;
                    }
                    if (a[len] == '\0') {
                        ++i; // skip the separate value argument
                        return true;
                    }
                    return false;
                };
                if (strips("--json") || strips("--processes")) {
                    continue;
                }
                args.push_back(a);
            }
            args.push_back("--proc-rank");
            args.push_back(std::to_string(r));
            args.push_back("--proc-nprocs");
            args.push_back(std::to_string(nprocs));
            args.push_back("--proc-shm");
            args.push_back(shm_path);
            args.push_back("--proc-result-fd");
            args.push_back(std::to_string(pfd[1]));
            std::vector<char *> cargv;
            cargv.reserve(args.size() + 1);
            for (std::string &s : args) {
                cargv.push_back(const_cast<char *>(s.c_str()));
            }
            cargv.push_back(nullptr);
            execv("/proc/self/exe", cargv.data());
            std::fprintf(stderr, "execv: %s\n", std::strerror(errno));
            _exit(127);
        }
        close(pfd[1]);
        kids.push_back(ChildProc{pid, pfd[0], r});
    }

    fame::PartitionSet::CoupledOptions copts;
    copts.self_rank = 0;
    copts.owner_of = coupledOwnerMap(*ps, nprocs);
    std::vector<std::unique_ptr<fame::Transport>> transports;
    for (uint32_t r = 1; r < nprocs; ++r) {
        transports.push_back(
            fame::groupTransport(seg.data(), layout, 0, r));
        copts.peers.emplace_back(r, transports.back().get());
    }
    cluster->enableProcessCoupling(copts);

    std::unique_ptr<sim::Watchdog> wd = makeWatchdog(cfg, *cluster);

    SimTime t;
    bool abandoned = false;
    bool forwarded = false;
    bool unlinked = false;
    // Forward the stop signal to every child rank so each finalizes
    // and reports instead of being orphaned mid-window.
    auto forwardInterrupt = [&]() {
        if (forwarded) {
            return;
        }
        forwarded = true;
        for (const ChildProc &k : kids) {
            kill(k.pid, SIGTERM);
        }
    };
    while (!app.result().done && t < SimTime::sec(60)) {
        if (core::interruptRequested()) {
            forwardInterrupt();
            break;
        }
        if (ctl->anyInterrupted()) {
            break;
        }
        t = t + SimTime::ms(250);
        ctl->publish(fame::ShmGroupControl::kRun, t.toPs());
        if (!ps->runCoupled(t)) {
            abandoned = true;
            break;
        }
        if (!unlinked) {
            // Every rank answered the first barrier, so the segment is
            // mapped everywhere; nothing leaks on a crash from here on.
            seg.unlinkFile();
            unlinked = true;
        }
        if (wd != nullptr) {
            wd->noteProgress(ps->totalExecutedEvents());
        }
    }
    if (wd != nullptr) {
        wd->disarm();
    }
    const bool interrupted = abandoned || core::interruptRequested() ||
                             ctl->anyInterrupted();
    if (core::interruptRequested()) {
        forwardInterrupt();
    }
    ctl->publish(interrupted ? fame::ShmGroupControl::kStopInterrupted
                             : fame::ShmGroupControl::kStop,
                 t.toPs());
    if (!unlinked) {
        seg.unlinkFile();
    }

    // Reap every child and merge its counter report.
    std::vector<ProcResultHeader> child_hdrs;
    std::vector<std::vector<ProcPoolRow>> child_rows;
    bool child_failed = false;
    for (const ChildProc &k : kids) {
        ProcResultHeader h;
        std::vector<ProcPoolRow> rows;
        bool have = readAll(k.fd, &h, sizeof(h)) &&
                    h.magic == ProcResultHeader::kMagic &&
                    h.partitions == ps->size();
        if (have) {
            rows.resize(h.partitions);
            have = readAll(k.fd, rows.data(),
                           rows.size() * sizeof(rows[0]));
        }
        close(k.fd);
        int status = 0;
        waitpid(k.pid, &status, 0);
        const int code =
            WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        if (!have) {
            std::fprintf(stderr,
                         "rank %u: no result report (exit %d)\n",
                         k.rank, code);
            child_failed = true;
            continue;
        }
        if (code != 0 && code != core::kExitInterrupted) {
            std::fprintf(stderr, "rank %u: exit code %d\n", k.rank,
                         code);
            child_failed = true;
        }
        child_hdrs.push_back(h);
        child_rows.push_back(std::move(rows));
    }

    const bool done = app.result().done;
    const bool partial = interrupted || child_failed;
    if (!done && !partial) {
        std::fprintf(stderr, "incast did not complete\n");
        return 1;
    }

    const auto &r = app.result();
    std::printf("engine=mp processes=%u partitions=%zu\n", nprocs,
                ps->size());
    if (done) {
        std::printf("incast: %u servers in %u rack%s, %s blocks x %u "
                    "iterations (%s client)\n",
                    setup.n, setup.racks, setup.racks == 1 ? "" : "s",
                    fmtBytes(setup.ip.block_bytes).c_str(),
                    setup.ip.iterations,
                    setup.ip.use_epoll ? "epoll" : "pthread");
        std::printf("goodput=%.1f Mbps\n", r.goodputMbps());
        std::printf("iteration times (us): %s\n",
                    analysis::latencySummary(r.iteration_us).c_str());
    }
    fame::PartitionSet::CoupledStats cs = ps->coupledStats();
    for (const ProcResultHeader &h : child_hdrs) {
        cs.sync_sent += h.c.sync_sent;
        cs.sync_recv += h.c.sync_recv;
        cs.msgs_sent += h.c.msgs_sent;
        cs.msgs_recv += h.c.msgs_recv;
        cs.bytes_sent += h.c.bytes_sent;
        cs.bytes_recv += h.c.bytes_recv;
        cs.waits_elided += h.c.waits_elided;
        cs.waits_blocked += h.c.waits_blocked;
    }
    std::printf("mp: sync_sent=%llu msgs_sent=%llu bytes_sent=%llu "
                "waits_elided=%llu waits_blocked=%llu\n",
                static_cast<unsigned long long>(cs.sync_sent),
                static_cast<unsigned long long>(cs.msgs_sent),
                static_cast<unsigned long long>(cs.bytes_sent),
                static_cast<unsigned long long>(cs.waits_elided),
                static_cast<unsigned long long>(cs.waits_blocked));
    if (opts.eng.mem_report) {
        printMemReport(*cluster);
    }
    if (!plan.empty()) {
        printFaultOutcome(*cluster);
    }

    if (opts.json_path != nullptr || partial) {
        analysis::RunArtifact a;
        a.workload = "incast";
        a.elapsed_us = r.elapsed.asMicros();
        a.goodput_mbps = r.goodputMbps();
        a.requests_completed = r.iteration_us.count();
        a.latencies.emplace_back(
            "iteration_us", analysis::LatencyDigest::of(r.iteration_us));
        auto &app_grp = a.addGroup("app");
        app_grp.counters = {
            {"servers", setup.n},
            {"racks", setup.racks},
            {"total_bytes", r.total_bytes},
            {"block_bytes", setup.ip.block_bytes},
            {"iterations", setup.ip.iterations},
        };
        fillCommonArtifact(a, *cluster, cfg, opts, plan, nullptr);
        // Fold every child rank's ledgers in: the per-partition sums
        // across processes equal the single-process totals exactly,
        // which is what keeps the fingerprint engine-invariant.
        for (size_t ci = 0; ci < child_hdrs.size(); ++ci) {
            const ProcCounters &c = child_hdrs[ci].c;
            a.executed_events += c.executed_events;
            a.materialized_nodes += c.materialized_nodes;
            a.arena_bytes_used += c.arena_bytes_used;
            a.arena_bytes_reserved += c.arena_bytes_reserved;
            if (auto *g = findGroup(a, "network")) {
                bumpCounter(*g, "switch_drops", c.switch_drops);
                bumpCounter(*g, "forwarded", c.forwarded);
                bumpCounter(*g, "tcp_retransmits", c.tcp_retransmits);
                bumpCounter(*g, "tcp_rtos", c.tcp_rtos);
                bumpCounter(*g, "udp_socket_drops", c.udp_socket_drops);
                bumpCounter(*g, "nic_rx_drops", c.nic_rx_drops);
            }
            if (auto *g = findGroup(a, "datapath")) {
                bumpCounter(*g, "delivery_trains", c.delivery_trains);
                bumpCounter(*g, "deliveries_coalesced",
                            c.deliveries_coalesced);
                bumpCounter(*g, "nic_tx_ring_drops",
                            c.nic_tx_ring_drops);
            }
            if (auto *g = findGroup(a, "faults")) {
                bumpCounter(*g, "reroutes", c.reroutes);
                bumpCounter(*g, "link_down_drops", c.link_down_drops);
                bumpCounter(*g, "link_degrade_drops",
                            c.link_degrade_drops);
                bumpCounter(*g, "tcp_aborts", c.tcp_aborts);
                bumpCounter(*g, "tcp_recovered", c.tcp_recovered);
                bumpCounter(*g, "crash_rx_discards",
                            c.crash_rx_discards);
            }
            const auto &rows = child_rows[ci];
            for (size_t i = 0;
                 i < rows.size() && i < a.partition_rows.size(); ++i) {
                a.partition_rows[i].events += rows[i].events;
                a.partition_rows[i].pool_makes += rows[i].makes;
                a.partition_rows[i].pool_recycles += rows[i].recycles;
                a.partition_rows[i].pool_heap_allocs +=
                    rows[i].heap_allocs;
                a.partition_rows[i].pool_returns += rows[i].returns;
                a.partition_rows[i].pool_high_water +=
                    rows[i].high_water;
            }
        }
        // Wall-clock-dependent transport counters: reported for the
        // bench tooling, deliberately excluded from the fingerprint
        // (single-process runs have no such group).
        auto &mp = a.addGroup("mp", /*deterministic=*/false);
        mp.counters = {
            {"processes", nprocs},
            {"sync_sent", cs.sync_sent},
            {"sync_recv", cs.sync_recv},
            {"msgs_sent", cs.msgs_sent},
            {"msgs_recv", cs.msgs_recv},
            {"bytes_sent", cs.bytes_sent},
            {"bytes_recv", cs.bytes_recv},
            {"waits_elided", cs.waits_elided},
            {"waits_blocked", cs.waits_blocked},
        };
        if (partial) {
            if (!core::interruptRequested()) {
                core::requestInterrupt(core::kCausePeer);
            }
            return finalizeInterrupted(a, opts, nullptr);
        }
        writeArtifact(a, opts);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <memcached|incast> [--fault-plan <file>] "
                     "[--engine <single|seq|par>] [--threads <N>] "
                     "[--processes <N>] [--no-pin] [--json <path>] "
                     "[--mem-report] [key=value ...]\n",
                     argv[0]);
        return 2;
    }
    Config cfg;
    RunOpts opts;
    opts.argc = argc;
    opts.argv = argv;
    EngineOpts &eng = opts.eng;
    // Strict non-negative integer parse shared by the count flags: an
    // unchecked strtoull would silently accept garbage or wraparound.
    auto parseCount = [](const char *flag, const char *v,
                         unsigned long long *out) {
        if (*v == '\0' ||
            std::strspn(v, "0123456789") != std::strlen(v)) {
            std::fprintf(stderr,
                         "%s needs a non-negative integer (got '%s')\n",
                         flag, v);
            std::exit(2);
        }
        errno = 0;
        *out = std::strtoull(v, nullptr, 10);
        if (errno == ERANGE) {
            std::fprintf(stderr, "%s value '%s' is out of range\n", flag,
                         v);
            std::exit(2);
        }
    };
    for (int i = 2; i < argc; ++i) {
        // Each --flag accepts both "--flag value" and "--flag=value".
        auto flagValue = [&](const char *flag) -> const char * {
            const size_t len = std::strlen(flag);
            if (std::strncmp(argv[i], flag, len) != 0) {
                return nullptr;
            }
            if (argv[i][len] == '=') {
                return argv[i] + len + 1;
            }
            if (argv[i][len] == '\0') {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s needs a value\n", flag);
                    std::exit(2);
                }
                return argv[++i];
            }
            return nullptr;
        };
        if (const char *v = flagValue("--fault-plan")) {
            opts.plan_file = v;
            continue;
        }
        if (const char *v = flagValue("--json")) {
            opts.json_path = v;
            continue;
        }
        if (const char *v = flagValue("--engine")) {
            if (!eng.parseEngine(v)) {
                std::fprintf(stderr,
                             "--engine must be single, seq, or par "
                             "(got '%s')\n", v);
                return 2;
            }
            continue;
        }
        if (const char *v = flagValue("--threads")) {
            unsigned long long t = 0;
            parseCount("--threads", v, &t);
            eng.threads = static_cast<size_t>(t);
            continue;
        }
        if (const char *v = flagValue("--processes")) {
            unsigned long long p = 0;
            parseCount("--processes", v, &p);
            if (p == 0) {
                std::fprintf(stderr, "--processes must be >= 1\n");
                return 2;
            }
            eng.processes = static_cast<size_t>(p);
            continue;
        }
        // Internal child-rank identity flags, set by the launcher's
        // re-exec; never given by hand.
        if (const char *v = flagValue("--proc-rank")) {
            unsigned long long r = 0;
            parseCount("--proc-rank", v, &r);
            opts.proc_rank = static_cast<uint32_t>(r);
            continue;
        }
        if (const char *v = flagValue("--proc-nprocs")) {
            unsigned long long np = 0;
            parseCount("--proc-nprocs", v, &np);
            opts.proc_nprocs = static_cast<uint32_t>(np);
            continue;
        }
        if (const char *v = flagValue("--proc-shm")) {
            opts.proc_shm = v;
            continue;
        }
        if (const char *v = flagValue("--proc-result-fd")) {
            unsigned long long fd = 0;
            parseCount("--proc-result-fd", v, &fd);
            opts.proc_result_fd = static_cast<int>(fd);
            continue;
        }
        if (std::strcmp(argv[i], "--no-pin") == 0) {
            eng.pin = false;
            continue;
        }
        if (std::strcmp(argv[i], "--mem-report") == 0) {
            eng.mem_report = true;
            continue;
        }
        if (!cfg.parseAssignment(argv[i])) {
            std::fprintf(stderr, "not a key=value assignment: '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    const bool mp = eng.processes > 1 || opts.isChildRank();
    if (mp && std::strcmp(argv[1], "incast") != 0) {
        // memcached attaches request descriptors (AppData) to packets,
        // which cannot cross a process boundary.
        std::fprintf(stderr,
                     "--processes supports only the incast workload\n");
        return 2;
    }
    if (mp && cfg.getDouble("telemetry.period", 0.0) > 0.0) {
        std::fprintf(stderr, "--processes does not support telemetry "
                             "streaming (samplers read only the "
                             "leader's partitions)\n");
        return 2;
    }
    if (opts.isChildRank() &&
        (opts.proc_rank == 0 || opts.proc_nprocs < 2 ||
         opts.proc_rank >= opts.proc_nprocs || opts.proc_result_fd < 0)) {
        std::fprintf(stderr, "malformed --proc-* child identity\n");
        return 2;
    }
    const sim::FaultPlan plan = makeFaultPlan(cfg, opts.plan_file);
    // Install before any simulation work so even an immediate SIGTERM
    // takes the finalize-partial-artifact path rather than killing the
    // process artifact-less.
    core::installInterruptHandlers();
    if (std::strcmp(argv[1], "memcached") == 0) {
        return runMemcached(cfg, plan, opts);
    }
    if (std::strcmp(argv[1], "incast") == 0) {
        if (opts.isChildRank()) {
            return runIncastChild(cfg, plan, opts);
        }
        if (eng.processes > 1) {
            return runIncastLeader(cfg, plan, opts);
        }
        return runIncast(cfg, plan, opts);
    }
    std::fprintf(stderr, "unknown experiment '%s'\n", argv[1]);
    return 2;
}
