#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "apps/mc_experiment.hh"
#include "core/log.hh"

using namespace diablo;
using namespace diablo::apps;

int
main(int argc, char **argv)
{
    // args: racks proto(udp/tcp) gbps requests kernel(2.6/3.5) mcver
    uint32_t racks = argc > 1 ? atoi(argv[1]) : 16;
    bool udp = argc > 2 ? std::string(argv[2]) == "udp" : true;
    double gbps = argc > 3 ? atof(argv[3]) : 1.0;
    uint32_t requests = argc > 4 ? atoi(argv[4]) : 100;
    std::string kver = argc > 5 ? argv[5] : "2.6.39.3";
    int mcver = argc > 6 ? atoi(argv[6]) : 1417;

    McExperimentParams p;
    p.cluster = gbps > 5 ? sim::ClusterParams::tengig100ns()
                         : sim::ClusterParams::gige1us();
    p.cluster.kernel_profile = os::KernelProfile::byName(kver);
    p.cluster.topo.servers_per_rack = 31;
    if (racks <= 16) {
        p.cluster.topo.racks_per_array = racks;
        p.cluster.topo.num_arrays = 1;
    } else {
        p.cluster.topo.racks_per_array = 16;
        p.cluster.topo.num_arrays = (racks + 15) / 16;
    }
    p.num_servers = std::max(4u, racks * 2);
    p.server.udp = udp;
    p.server.version = mcver;
    p.client.udp = udp;
    p.client.requests = requests;
    if (getenv("DIABLO_THINK_US"))
        p.client.think_mean = SimTime::us(atoi(getenv("DIABLO_THINK_US")));

    Simulator sim;
    McExperiment exp(sim, p);
    auto t0 = std::chrono::steady_clock::now();
    exp.run();
    auto t1 = std::chrono::steady_clock::now();
    const McExperimentResult &r = exp.result();

    printf("nodes=%u servers=%u clients=%u proto=%s %gG kernel=%s "
           "mc=%d req/cli=%u\n",
           exp.cluster().size(), r.servers, r.clients, udp ? "UDP" : "TCP",
           gbps, kver.c_str(), mcver, requests);
    printf("completed=%llu timeouts=%llu retries=%llu elapsed=%s\n",
           (unsigned long long)r.requests_completed,
           (unsigned long long)r.udp_timeouts,
           (unsigned long long)r.udp_retries, r.elapsed.str().c_str());
    const SampleSet &l = r.latency_us;
    printf("latency us: p50=%.0f p90=%.0f p95=%.0f p99=%.0f p99.9=%.0f "
           "max=%.0f mean=%.0f\n",
           l.percentile(50), l.percentile(90), l.percentile(95),
           l.percentile(99), l.percentile(99.9), l.max(), l.mean());
    const char *names[3] = {"local", "1-hop", "2-hop"};
    for (int h = 0; h < 3; ++h) {
        const SampleSet &s = r.latency_us_by_hop[h];
        if (s.count()) {
            printf("  %s n=%zu p50=%.0f p99=%.0f max=%.0f\n", names[h],
                   s.count(), s.percentile(50), s.percentile(99), s.max());
        }
    }
    printf("tcp: retx=%llu rtos=%llu; switch drops=%llu; udp sock "
           "drops=%llu; nic drops=%llu\n",
           (unsigned long long)exp.cluster().totalTcpRetransmits(),
           (unsigned long long)exp.cluster().totalTcpRtos(),
           (unsigned long long)exp.cluster().network().totalSwitchDrops(),
           (unsigned long long)exp.cluster().totalUdpSocketDrops(),
           (unsigned long long)exp.cluster().totalNicRxDrops());
    {
        auto &net = exp.cluster().network();
        uint64_t rack = 0, arr = 0, dc = 0;
        for (size_t i = 0; i < net.numRackSwitches(); ++i)
            rack += net.rackSwitch((uint32_t)i).stats().dropped_pkts;
        for (size_t i = 0; i < net.numArraySwitches(); ++i)
            arr += net.arraySwitch((uint32_t)i).stats().dropped_pkts;
        if (net.hasDcSwitch()) dc = net.dcSwitch().stats().dropped_pkts;
        printf("drops by level: rack=%llu array=%llu dc=%llu\n",
               (unsigned long long)rack, (unsigned long long)arr,
               (unsigned long long)dc);
    }
    double wall =
        std::chrono::duration<double>(t1 - t0).count();
    printf("wallclock=%.1fs events=%llu (%.1fM ev/s)\n", wall,
           (unsigned long long)sim.executedEvents(),
           sim.executedEvents() / wall / 1e6);
    return 0;
}
