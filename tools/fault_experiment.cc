/**
 * @file
 * fault_experiment: scripted graceful-degradation acceptance run.
 *
 * A 4-rack, 2-plane Clos cluster runs a continuous incast-style block
 * workload (one client in rack 0 streaming 32 KB blocks from every
 * server in racks 1-3) through a deterministic fault plan that cuts the
 * client rack's busiest uplink plane mid-run and repairs it later.  The
 * expected story, asserted from the availability report:
 *
 *   - goodput dips while the trunk is down (flows on the dead plane
 *     stall for an RTO, then ECMP reroutes them to the survivor);
 *   - the fabric degrades, never panics: in-flight frames on the cut
 *     trunk become counted drops, TCP retransmits with backoff;
 *   - goodput recovers after the repair;
 *   - the whole faulted timeline is bit-identical between sequential
 *     and sharded-parallel execution of the same plan.
 *
 * Exits 0 when every assertion holds, 1 otherwise.
 */

#include <cstdio>

#include "analysis/availability.hh"
#include "apps/app_util.hh"
#include "core/log.hh"
#include "sim/cluster.hh"
#include "sim/fault.hh"

using namespace diablo;

namespace {

constexpr uint64_t kBlockBytes = 32 * 1024;
constexpr uint32_t kRequestBytes = 64;
constexpr uint16_t kPort = 5001;

const SimTime kFaultAt = SimTime::ms(400);
const SimTime kRepairAt = SimTime::ms(700);
const SimTime kEnd = SimTime::ms(1100);
const SimTime kRunUntil = SimTime::ms(1150);
/** Healthy window starts after connect + slow-start ramp. */
const SimTime kWarmup = SimTime::ms(50);

sim::ClusterParams
faultParams()
{
    sim::ClusterParams p = sim::ClusterParams::gige1us();
    p.topo.servers_per_rack = 3;
    p.topo.racks_per_array = 4;
    p.topo.num_arrays = 1;
    p.topo.uplink_planes = 2;
    // Make the array-level down-trunks into the client rack the
    // bottleneck (1 Gbps per plane) while the rack layer and hosts run
    // at 10 Gbps: with both planes live the client can sink ~2 Gbps, so
    // cutting one plane visibly halves capacity instead of hiding
    // behind the access link.
    p.topo.rack_sw.port_bw = Bandwidth::gbps(10);
    p.topo.host_bw = Bandwidth::gbps(10);
    return p;
}

/** One server: accept a connection, then stream blocks on request. */
Task<>
blockServer(os::Kernel &k)
{
    os::Thread &t = k.createThread("blk-srv");
    long lfd = co_await k.sysSocket(t, net::Proto::Tcp);
    co_await k.sysBind(t, static_cast<int>(lfd), kPort);
    co_await k.sysListen(t, static_cast<int>(lfd), 16);
    long fd = co_await k.sysAccept(t, static_cast<int>(lfd), true);
    if (fd < 0) {
        co_return;
    }
    while (true) {
        uint64_t got = 0;
        while (got < kRequestBytes) {
            long n = co_await k.sysRecv(t, static_cast<int>(fd),
                                        kRequestBytes - got, nullptr);
            if (n <= 0) {
                co_return;
            }
            got += static_cast<uint64_t>(n);
        }
        co_await t.compute(3000);
        co_await k.sysSend(t, static_cast<int>(fd), kBlockBytes, nullptr);
    }
}

/**
 * One client worker: continuously fetch blocks from @p server and log
 * each completed block into the availability report.  Runs until the
 * simulation horizon (or the connection dies).
 */
Task<>
fetchWorker(sim::Cluster *cluster, net::NodeId server,
            analysis::AvailabilityReport *report)
{
    os::Kernel &k = cluster->kernel(0);
    os::Thread &t = k.createThread(strprintf("fetch%u", server));
    long fd = co_await apps::connectWithRetry(k, t, server, kPort);
    if (fd < 0) {
        panic("fault_experiment: connect to node %u failed", server);
    }
    while (true) {
        if (co_await k.sysSend(t, static_cast<int>(fd), kRequestBytes,
                               nullptr) < 0) {
            co_return;
        }
        uint64_t got = 0;
        while (got < kBlockBytes) {
            long n = co_await k.sysRecv(t, static_cast<int>(fd),
                                        kBlockBytes - got, nullptr);
            if (n <= 0) {
                co_return;
            }
            got += static_cast<uint64_t>(n);
        }
        report->recordDelivery(k.sim().now(), kBlockBytes);
    }
}

struct Outcome {
    uint64_t fingerprint = 0;
    double healthy_mbps = 0;
    double degraded_mbps = 0;
    double recovered_mbps = 0;
    uint64_t reroutes = 0;
    uint64_t down_drops = 0;
    uint64_t retransmits = 0;
    uint64_t rtos = 0;
    std::string report_str;
    std::string plan_str;
};

Outcome
runOnce(bool parallel)
{
    const sim::ClusterParams params = faultParams();
    fame::PartitionSet ps(sim::Cluster::partitionsRequired(params));
    sim::Cluster cluster(ps, params);

    analysis::AvailabilityReport report;
    report.definePhase("healthy", kWarmup, kFaultAt);
    report.definePhase("degraded", kFaultAt, kRepairAt);
    report.definePhase("recovered", kRepairAt, kEnd);

    std::vector<net::NodeId> servers;
    for (net::NodeId n = params.topo.servers_per_rack; n < cluster.size();
         ++n) {
        servers.push_back(n);
    }
    for (net::NodeId s : servers) {
        cluster.kernel(s).spawnProcess(blockServer(cluster.kernel(s)));
    }
    for (net::NodeId s : servers) {
        cluster.kernel(0).spawnProcess(fetchWorker(&cluster, s, &report));
    }

    // Kill the plane carrying the most response flows (the bulk bytes
    // descend rack 0's trunk on the server->client flow's plane), so
    // the outage is guaranteed to strand traffic and force reroutes.
    topo::ClosNetwork &net = cluster.network();
    std::vector<uint32_t> flows_per_plane(net.planes(), 0);
    for (net::NodeId s : servers) {
        ++flows_per_plane[net.preferredPlane(s, 0)];
    }
    uint32_t victim = 0;
    for (uint32_t p = 1; p < net.planes(); ++p) {
        if (flows_per_plane[p] > flows_per_plane[victim]) {
            victim = p;
        }
    }

    sim::FaultPlan plan(params.seed);
    plan.trunkDown(kFaultAt, /*rack=*/0, victim);
    plan.trunkUp(kRepairAt, /*rack=*/0, victim);
    sim::FaultController fc(cluster, plan);
    fc.install();

    if (parallel) {
        ps.runParallel(kRunUntil);
    } else {
        ps.runSequential(kRunUntil);
    }

    report.setCounter("ecmp_reroutes", net.rerouteCount());
    report.setCounter("link_down_drops", net.totalLinkDownDrops());
    report.setCounter("link_degrade_drops", net.totalLinkDegradeDrops());
    report.setCounter("switch_drops", net.totalSwitchDrops());
    report.setCounter("tcp_retransmits", cluster.totalTcpRetransmits());
    report.setCounter("tcp_rtos", cluster.totalTcpRtos());
    report.setCounter("tcp_aborts", cluster.totalTcpAborts());
    report.setCounter("tcp_recovered", cluster.totalTcpRecovered());

    Outcome out;
    out.fingerprint = report.fingerprint();
    out.healthy_mbps = report.phaseGoodputMbps(0);
    out.degraded_mbps = report.phaseGoodputMbps(1);
    out.recovered_mbps = report.phaseGoodputMbps(2);
    out.reroutes = report.counter("ecmp_reroutes");
    out.down_drops = report.counter("link_down_drops");
    out.retransmits = report.counter("tcp_retransmits");
    out.rtos = report.counter("tcp_rtos");
    out.report_str = report.str();
    out.plan_str = plan.str();
    return out;
}

bool
check(bool ok, const char *what)
{
    std::printf("%s  %s\n", ok ? "PASS" : "FAIL", what);
    return ok;
}

} // namespace

int
main()
{
    std::printf("fault_experiment: sequential run...\n");
    Outcome seq = runOnce(false);
    std::printf("fault_experiment: sharded-parallel run...\n");
    Outcome par = runOnce(true);

    std::printf("\n%s\n%s\n", seq.plan_str.c_str(),
                seq.report_str.c_str());

    bool ok = true;
    ok &= check(seq.degraded_mbps < seq.healthy_mbps,
                "goodput dips while the trunk is down");
    ok &= check(seq.recovered_mbps > seq.degraded_mbps,
                "goodput recovers after the repair");
    ok &= check(seq.reroutes > 0,
                "ECMP rerouted flows off the dead plane");
    ok &= check(seq.down_drops > 0,
                "the cut trunk accounted its drops (no panic)");
    ok &= check(seq.retransmits > 0 && seq.rtos > 0,
                "TCP retransmitted with backoff through the outage");
    ok &= check(seq.fingerprint == par.fingerprint,
                "sequential and sharded-parallel runs are bit-identical");

    if (!ok) {
        std::printf("\nfault_experiment: FAILED\n");
        return 1;
    }
    std::printf("\nfault_experiment: OK (fingerprint %016llx)\n",
                static_cast<unsigned long long>(seq.fingerprint));
    return 0;
}
