#!/usr/bin/env python3
"""Guard engine and datapath performance invariants in CI.

Two modes:

sync (default) — reads a google-benchmark JSON file (--benchmark_out)
containing BM_ClusterIncastSharded rows and checks that the fused
parallel engine capped at one worker (par:1/threads:1) retains at least
a minimum fraction of the sequential reference's event throughput
(par:0) at the same cluster shape.  That ratio is the engine's "sync
tax" with all parallelism removed: fusion + the solo-worker fast path
should make it a few percent, and a regression here means every
multi-threaded run pays more too.

packet (--mode packet) — reads a BENCH_packet.json trajectory written
by bench/microbench_packet and enforces the allocation-free datapath
contract: every benchmark in the newest entry must report exactly 0
allocs_per_packet, and throughput must not have fallen more than
--max-regression (default 20%) below the previous trajectory entry for
the same benchmark (first runs pass vacuously).

Usage:
    bench_guard.py <benchmark.json> [--racks N] [--min-ratio R]
    bench_guard.py BENCH_packet.json --mode packet [--max-regression F]

Exit status 0 when the invariants hold, 1 on a regression or missing
rows.  Timings on shared CI runners are noisy, so the default floors
(0.8 sync ratio, 20% packet regression) are far below what an idle host
measures: these catch cliffs, not jitter.  allocs_per_packet has no
tolerance at all — one allocation on the steady-state path is a leak of
the whole design.
"""

import argparse
import json
import sys


def run_args(name):
    """Parse 'BM_X/par:1/racks:4/...' into {'par': 1, 'racks': 4, ...}."""
    out = {}
    for part in name.split("/")[1:]:
        if ":" in part:
            key, _, val = part.partition(":")
            try:
                out[key] = int(val)
            except ValueError:
                pass
    return out


def items_per_second(bench):
    ips = bench.get("items_per_second")
    if ips is None:
        raise SystemExit(
            f"bench_guard: no items_per_second in {bench.get('name')}")
    return float(ips)


def check_packet(path, max_regression):
    """Enforce the allocation-free datapath contract on a trajectory."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list) or not data:
        print(f"bench_guard: {path} is not a non-empty trajectory",
              file=sys.stderr)
        return 1

    newest = data[-1].get("benchmarks", [])
    if not newest:
        print(f"bench_guard: newest entry in {path} has no benchmarks",
              file=sys.stderr)
        return 1
    previous = data[-2].get("benchmarks", []) if len(data) >= 2 else []
    prev_ips = {b.get("name"): b.get("items_per_second")
                for b in previous}

    failed = False
    for bench in newest:
        name = bench.get("name", "?")
        allocs = bench.get("allocs_per_packet")
        if allocs is None:
            print(f"bench_guard: {name}: no allocs_per_packet counter",
                  file=sys.stderr)
            failed = True
            continue
        ips = items_per_second(bench)
        verdict = "OK"
        if float(allocs) != 0.0:
            verdict = f"ALLOC-REGRESSION ({allocs} allocs/packet)"
            failed = True
        old = prev_ips.get(name)
        if old and ips < (1.0 - max_regression) * float(old):
            verdict = (f"THROUGHPUT-REGRESSION "
                       f"({ips:.3e} < {1.0 - max_regression:.2f} * "
                       f"{float(old):.3e})")
            failed = True
        print(f"bench_guard: {name} items/s={ips:.3e} "
              f"allocs/pkt={allocs} {verdict}")
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_file")
    ap.add_argument("--mode", choices=["sync", "packet"], default="sync",
                    help="which invariant to check (default sync)")
    ap.add_argument("--racks", type=int, default=4,
                    help="cluster shape to compare (default 4)")
    ap.add_argument("--min-ratio", type=float, default=0.8,
                    help="minimum par:1/threads:1 vs seq throughput "
                         "ratio (default 0.8)")
    ap.add_argument("--max-regression", type=float, default=0.2,
                    help="packet mode: max fractional throughput drop "
                         "vs the previous trajectory entry (default "
                         "0.2)")
    opts = ap.parse_args()

    if opts.mode == "packet":
        return check_packet(opts.json_file, opts.max_regression)

    with open(opts.json_file) as f:
        data = json.load(f)

    seq = par1 = None
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not name.startswith("BM_ClusterIncastSharded/"):
            continue
        args = run_args(name)
        if args.get("racks") != opts.racks:
            continue
        if args.get("par") == 0:
            seq = items_per_second(bench)
        elif args.get("par") == 1 and args.get("threads") == 1:
            par1 = items_per_second(bench)

    if seq is None or par1 is None:
        print(f"bench_guard: missing BM_ClusterIncastSharded rows at "
              f"racks={opts.racks} (seq={seq}, par1={par1}) in "
              f"{opts.json_file}", file=sys.stderr)
        return 1

    ratio = par1 / seq
    verdict = "OK" if ratio >= opts.min_ratio else "REGRESSION"
    print(f"bench_guard: racks={opts.racks} seq={seq:.3e} "
          f"par(threads=1)={par1:.3e} items/s "
          f"ratio={ratio:.3f} (floor {opts.min_ratio}) {verdict}")
    return 0 if ratio >= opts.min_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
