#!/usr/bin/env python3
"""Guard the parallel engine's degenerate-fusion cost in CI.

Reads a google-benchmark JSON file (--benchmark_out) containing
BM_ClusterIncastSharded rows and checks that the fused parallel engine
capped at one worker (par:1/threads:1) retains at least a minimum
fraction of the sequential reference's event throughput (par:0) at the
same cluster shape.  That ratio is the engine's "sync tax" with all
parallelism removed: fusion + the solo-worker fast path should make it
a few percent, and a regression here means every multi-threaded run
pays more too.

Usage:
    bench_guard.py <benchmark.json> [--racks N] [--min-ratio R]

Exit status 0 when the ratio holds, 1 on a regression or missing rows.
Timings on shared CI runners are noisy, so the default floor (0.8) is
far below the ~0.95 measured on an idle host: this catches an engine
that fell off a cliff (e.g. back to barrier-per-quantum condvar costs),
not a few points of jitter.
"""

import argparse
import json
import sys


def run_args(name):
    """Parse 'BM_X/par:1/racks:4/...' into {'par': 1, 'racks': 4, ...}."""
    out = {}
    for part in name.split("/")[1:]:
        if ":" in part:
            key, _, val = part.partition(":")
            try:
                out[key] = int(val)
            except ValueError:
                pass
    return out


def items_per_second(bench):
    ips = bench.get("items_per_second")
    if ips is None:
        raise SystemExit(
            f"bench_guard: no items_per_second in {bench.get('name')}")
    return float(ips)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_file")
    ap.add_argument("--racks", type=int, default=4,
                    help="cluster shape to compare (default 4)")
    ap.add_argument("--min-ratio", type=float, default=0.8,
                    help="minimum par:1/threads:1 vs seq throughput "
                         "ratio (default 0.8)")
    opts = ap.parse_args()

    with open(opts.json_file) as f:
        data = json.load(f)

    seq = par1 = None
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not name.startswith("BM_ClusterIncastSharded/"):
            continue
        args = run_args(name)
        if args.get("racks") != opts.racks:
            continue
        if args.get("par") == 0:
            seq = items_per_second(bench)
        elif args.get("par") == 1 and args.get("threads") == 1:
            par1 = items_per_second(bench)

    if seq is None or par1 is None:
        print(f"bench_guard: missing BM_ClusterIncastSharded rows at "
              f"racks={opts.racks} (seq={seq}, par1={par1}) in "
              f"{opts.json_file}", file=sys.stderr)
        return 1

    ratio = par1 / seq
    verdict = "OK" if ratio >= opts.min_ratio else "REGRESSION"
    print(f"bench_guard: racks={opts.racks} seq={seq:.3e} "
          f"par(threads=1)={par1:.3e} items/s "
          f"ratio={ratio:.3f} (floor {opts.min_ratio}) {verdict}")
    return 0 if ratio >= opts.min_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
