#!/usr/bin/env python3
"""Guard engine and datapath performance invariants in CI.

Six modes:

sync (default) — reads a google-benchmark JSON file (--benchmark_out)
containing BM_ClusterIncastSharded rows and checks that the fused
parallel engine capped at one worker (par:1/threads:1) retains at least
a minimum fraction of the sequential reference's event throughput
(par:0) at the same cluster shape.  That ratio is the engine's "sync
tax" with all parallelism removed: fusion + the solo-worker fast path
should make it a few percent, and a regression here means every
multi-threaded run pays more too.

packet (--mode packet) — reads a BENCH_packet.json trajectory written
by bench/microbench_packet and enforces the allocation-free datapath
contract: every benchmark in the newest entry must report exactly 0
allocs_per_packet, and throughput must not have fallen more than
--max-regression (default 20%) below the previous trajectory entry for
the same benchmark (first runs pass vacuously).

scale (--mode scale) — reads a BENCH_scale.json trajectory written by
bench/microbench_scale and enforces the paper-scale memory-diet floors
on the newest entry: the 32k-node run must hold at least
--min-nodes-per-gb (default 4000, i.e. peak RSS under 8 GB for the
paper's 32,768-node datacenter), sustain at least --min-events-per-sec
engine throughput (default 50k — conservative for shared runners), its
sequential and parallel executions must have been bit-identical
(seq_par_identical == 1, covering the chained sketch fingerprints), and
the sketch fold must be at least --min-sketch-speedup (default 10x)
faster than the raw SampleSet fold at equal sample counts.

multicore (--mode multicore) — reads the same --benchmark_out JSON as
sync mode, but checks the *other* direction: that adding workers buys
real speedup.  For every BM_ClusterIncastSharded par:1 row whose worker
count W (min(threads, racks), with threads:0 meaning all cores) fits
the runner — 2 <= W <= num_cpus — the parallel throughput must be at
least --scale-factor * W times the sequential (par:0) reference at the
same shape (default 0.7, i.e. >=1.4x at two workers).  Oversubscribed
rows are reported but not scored.  On a single-core runner the mode
prints an explicit SKIPPED line and exits 0 — it never passes
vacuously without saying so.  Pass --fame-json BENCH_fame.json to also
enforce the raw barrier floor: every non-oversubscribed
BM_FameBarrierRoundTrip row with >=2 workers in the newest trajectory
entry must sustain --min-barrier-qps quanta per second (default 1e6).

transport (--mode transport) — reads a BENCH_transport.json
trajectory written by bench/microbench_transport and enforces the
cross-process engine floors on the newest entry: shm ring round-trip
time at most --max-rtt-ns (default 50us), coupled SYNC exchange rate at
least --min-sync-per-sec (default 5e4), and the two-copy coupled incast
retaining at least --min-pair-ratio (default 0.5) of the sequential
reference's event throughput.  The structural check — all four rows
present — always runs, but the timing floors are only scored when the
rows report cores >= 2 and no oversubscription: on a single-core runner
both sides of every ping-pong timeshare one CPU, so the mode prints an
explicit SKIPPED line and exits 0 rather than passing vacuously.

sweep (--mode sweep) — reads the report.json a diablo_sweep run
directory contains (no stdout scraping: the merged report is the
machine-readable contract) and enforces that every grid point ran to
completion (exit_code 0 with a parseable artifact) and that every
engine cross-check group — grid points identical except for the engine
— produced bit-identical run fingerprints.

Usage:
    bench_guard.py <benchmark.json> [--racks N] [--min-ratio R]
    bench_guard.py <benchmark.json> --mode multicore [--scale-factor F]
    bench_guard.py BENCH_packet.json --mode packet [--max-regression F]
    bench_guard.py BENCH_scale.json --mode scale [--min-nodes-per-gb N]
    bench_guard.py BENCH_transport.json --mode transport [--max-rtt-ns N]
    bench_guard.py sweep-out/report.json --mode sweep

Exit status 0 when the invariants hold, 1 on a regression or missing
rows.  Timings on shared CI runners are noisy, so the default floors
(0.8 sync ratio, 20% packet regression) are far below what an idle host
measures: these catch cliffs, not jitter.  allocs_per_packet has no
tolerance at all — one allocation on the steady-state path is a leak of
the whole design.
"""

import argparse
import json
import sys


def run_args(name):
    """Parse 'BM_X/par:1/racks:4/...' into {'par': 1, 'racks': 4, ...}."""
    out = {}
    for part in name.split("/")[1:]:
        if ":" in part:
            key, _, val = part.partition(":")
            try:
                out[key] = int(val)
            except ValueError:
                pass
    return out


def items_per_second(bench):
    ips = bench.get("items_per_second")
    if ips is None:
        raise SystemExit(
            f"bench_guard: no items_per_second in {bench.get('name')}")
    return float(ips)


def check_packet(path, max_regression):
    """Enforce the allocation-free datapath contract on a trajectory."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list) or not data:
        print(f"bench_guard: {path} is not a non-empty trajectory",
              file=sys.stderr)
        return 1

    newest = data[-1].get("benchmarks", [])
    if not newest:
        print(f"bench_guard: newest entry in {path} has no benchmarks",
              file=sys.stderr)
        return 1
    previous = data[-2].get("benchmarks", []) if len(data) >= 2 else []
    prev_ips = {b.get("name"): b.get("items_per_second")
                for b in previous}

    failed = False
    for bench in newest:
        name = bench.get("name", "?")
        allocs = bench.get("allocs_per_packet")
        if allocs is None:
            print(f"bench_guard: {name}: no allocs_per_packet counter",
                  file=sys.stderr)
            failed = True
            continue
        ips = items_per_second(bench)
        verdict = "OK"
        if float(allocs) != 0.0:
            verdict = f"ALLOC-REGRESSION ({allocs} allocs/packet)"
            failed = True
        old = prev_ips.get(name)
        if old and ips < (1.0 - max_regression) * float(old):
            verdict = (f"THROUGHPUT-REGRESSION "
                       f"({ips:.3e} < {1.0 - max_regression:.2f} * "
                       f"{float(old):.3e})")
            failed = True
        print(f"bench_guard: {name} items/s={ips:.3e} "
              f"allocs/pkt={allocs} {verdict}")
    return 1 if failed else 0


def check_scale(path, min_nodes_per_gb, min_events_per_sec,
                min_sketch_speedup):
    """Enforce the paper-scale memory/throughput/determinism floors."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list) or not data:
        print(f"bench_guard: {path} is not a non-empty trajectory",
              file=sys.stderr)
        return 1

    newest = {b.get("name"): b for b in data[-1].get("benchmarks", [])}

    def find(prefix):
        for name, bench in newest.items():
            if name.startswith(prefix):
                return bench
        return None

    failed = False

    run = find("BM_Memcached32kUdp")
    if run is None:
        print("bench_guard: newest entry has no BM_Memcached32kUdp row",
              file=sys.stderr)
        failed = True
    else:
        nodes_per_gb = float(run.get("nodes_per_gb", 0))
        events = items_per_second(run)
        identical = float(run.get("seq_par_identical", 0))
        verdict = "OK"
        if nodes_per_gb < min_nodes_per_gb:
            verdict = (f"MEMORY-REGRESSION (nodes/GB {nodes_per_gb:.0f} "
                       f"< floor {min_nodes_per_gb})")
            failed = True
        if events < min_events_per_sec:
            verdict = (f"THROUGHPUT-REGRESSION (events/s {events:.3e} "
                       f"< floor {min_events_per_sec:.3e})")
            failed = True
        if identical != 1.0:
            verdict = "DETERMINISM-REGRESSION (seq != par)"
            failed = True
        print(f"bench_guard: 32k run nodes/GB={nodes_per_gb:.0f} "
              f"peak_rss_mb={run.get('peak_rss_mb', '?')} "
              f"events/s={events:.3e} seq_par_identical={identical:g} "
              f"{verdict}")

    raw = find("BM_SampleSetFoldPercentile")
    sketch = find("BM_SketchFoldPercentile")
    if raw is None or sketch is None:
        print("bench_guard: newest entry is missing the fold benchmarks",
              file=sys.stderr)
        failed = True
    else:
        raw_ns = float(raw.get("real_ns_per_iter", 0))
        sketch_ns = float(sketch.get("real_ns_per_iter", 0))
        if raw.get("total_samples") != sketch.get("total_samples"):
            print("bench_guard: fold benchmarks ran unequal sample "
                  "counts", file=sys.stderr)
            failed = True
        speedup = raw_ns / sketch_ns if sketch_ns > 0 else 0.0
        verdict = ("OK" if speedup >= min_sketch_speedup else
                   f"SKETCH-REGRESSION (speedup {speedup:.1f} < floor "
                   f"{min_sketch_speedup})")
        if speedup < min_sketch_speedup:
            failed = True
        print(f"bench_guard: stats fold raw={raw_ns / 1e6:.3f}ms "
              f"sketch={sketch_ns / 1e6:.3f}ms speedup={speedup:.1f}x "
              f"(floor {min_sketch_speedup}x) {verdict}")

    return 1 if failed else 0


def check_multicore(path, racks, scale_factor, fame_json,
                    min_barrier_qps):
    """Adding workers must buy real speedup on a multi-core runner."""
    with open(path) as f:
        data = json.load(f)

    cores = int(data.get("context", {}).get("num_cpus", 0))
    if cores < 2:
        print(f"bench_guard: multicore SKIPPED — runner reports "
              f"{cores if cores else 'an unknown number of'} CPU(s); "
              f"parallel scaling is not measurable here (this is an "
              f"explicit skip, not a pass)")
        return 0

    seq = None
    par_rows = []
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not name.startswith("BM_ClusterIncastSharded/"):
            continue
        args = run_args(name)
        if args.get("racks") != racks:
            continue
        if args.get("par") == 0:
            seq = items_per_second(bench)
        elif args.get("par") == 1:
            par_rows.append((args.get("threads", 0),
                             items_per_second(bench), name))

    if seq is None or not par_rows:
        print(f"bench_guard: missing BM_ClusterIncastSharded rows at "
              f"racks={racks} (seq={seq}, par rows={len(par_rows)}) in "
              f"{path}", file=sys.stderr)
        return 1

    failed = False
    scored = 0
    for threads, ips, name in sorted(par_rows):
        workers = min(threads if threads else cores, racks)
        if workers < 2:
            # The solo-worker row is the sync-tax guard's business.
            continue
        ratio = ips / seq
        if workers > cores:
            print(f"bench_guard: {name} workers={workers} > cores="
                  f"{cores}, oversubscribed row not scored "
                  f"(ratio={ratio:.2f})")
            continue
        floor = scale_factor * workers
        verdict = "OK" if ratio >= floor else "SCALING-REGRESSION"
        if ratio < floor:
            failed = True
        scored += 1
        print(f"bench_guard: {name} workers={workers} cores={cores} "
              f"par={ips:.3e} seq={seq:.3e} items/s "
              f"speedup={ratio:.2f}x (floor {floor:.2f}x) {verdict}")
    if scored == 0:
        print(f"bench_guard: no scoreable multi-worker rows at "
              f"racks={racks} on a {cores}-core runner — add a "
              f"threads:2 row", file=sys.stderr)
        failed = True

    if fame_json is not None:
        failed |= check_barrier_floor(fame_json, cores, min_barrier_qps)

    return 1 if failed else 0


def check_barrier_floor(path, cores, min_barrier_qps):
    """Raw barrier throughput floor from the fame trajectory."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list) or not data:
        print(f"bench_guard: {path} is not a non-empty trajectory",
              file=sys.stderr)
        return True

    failed = False
    scored = 0
    for bench in data[-1].get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_FameBarrierRoundTrip/"):
            continue
        workers = float(bench.get("workers", 0))
        if workers < 2 or float(bench.get("oversubscribed", 0)) != 0.0:
            continue
        qps = items_per_second(bench)
        verdict = ("OK" if qps >= min_barrier_qps else
                   f"BARRIER-REGRESSION (< floor {min_barrier_qps:.1e})")
        if qps < min_barrier_qps:
            failed = True
        scored += 1
        print(f"bench_guard: {name} workers={workers:g} "
              f"quanta/s={qps:.3e} {verdict}")
    if scored == 0:
        print(f"bench_guard: no non-oversubscribed multi-worker "
              f"BarrierRoundTrip rows in {path} newest entry "
              f"(cores={cores})", file=sys.stderr)
        failed = True
    return failed


def check_transport(path, max_rtt_ns, min_sync_per_sec, min_pair_ratio):
    """Enforce the cross-process transport floors on a trajectory."""
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list) or not data:
        print(f"bench_guard: {path} is not a non-empty trajectory",
              file=sys.stderr)
        return 1

    newest = data[-1].get("benchmarks", [])

    def find(prefix):
        for bench in newest:
            if bench.get("name", "").startswith(prefix):
                return bench
        return None

    rtt = find("BM_ShmRingRoundTrip")
    sync = find("BM_CoupledSyncRate")
    seq = find("BM_CoupledIncastSeq")
    pair = find("BM_CoupledIncastPair")
    missing = [label for label, bench in
               [("BM_ShmRingRoundTrip", rtt),
                ("BM_CoupledSyncRate", sync),
                ("BM_CoupledIncastSeq", seq),
                ("BM_CoupledIncastPair", pair)] if bench is None]
    if missing:
        print(f"bench_guard: newest entry in {path} is missing "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1

    # The structural check above always runs.  The timing floors only
    # mean something when the two sides of each ping-pong had their own
    # core; oversubscribed rows measure the scheduler, not the ring.
    cores = min(float(b.get("cores", 0)) for b in (rtt, sync, pair))
    oversub = any(float(b.get("oversubscribed", 0)) != 0.0
                  for b in (rtt, sync, pair))
    if cores < 2 or oversub:
        print(f"bench_guard: transport floors SKIPPED — rows report "
              f"cores={cores:g}"
              f"{' and oversubscription' if oversub else ''}; "
              f"two-sided transport timing is not measurable here "
              f"(this is an explicit skip, not a pass)")
        return 0

    failed = False

    rtt_ns = float(rtt.get("real_ns_per_iter", 0))
    verdict = ("OK" if rtt_ns <= max_rtt_ns else
               f"RTT-REGRESSION (> ceiling {max_rtt_ns:.0f}ns)")
    if rtt_ns > max_rtt_ns:
        failed = True
    print(f"bench_guard: shm ring rtt={rtt_ns:.0f}ns "
          f"(ceiling {max_rtt_ns:.0f}ns) {verdict}")

    sync_ps = items_per_second(sync)
    verdict = ("OK" if sync_ps >= min_sync_per_sec else
               f"SYNC-REGRESSION (< floor {min_sync_per_sec:.1e})")
    if sync_ps < min_sync_per_sec:
        failed = True
    print(f"bench_guard: coupled sync msgs/s={sync_ps:.3e} "
          f"(floor {min_sync_per_sec:.1e}) {verdict}")

    seq_eps = items_per_second(seq)
    pair_eps = items_per_second(pair)
    ratio = pair_eps / seq_eps if seq_eps > 0 else 0.0
    verdict = ("OK" if ratio >= min_pair_ratio else
               f"COUPLING-REGRESSION (< floor {min_pair_ratio})")
    if ratio < min_pair_ratio:
        failed = True
    print(f"bench_guard: coupled pair={pair_eps:.3e} "
          f"seq={seq_eps:.3e} events/s ratio={ratio:.2f} "
          f"(floor {min_pair_ratio}) {verdict}")

    return 1 if failed else 0


def check_sweep(path):
    """Every sweep run completed; every engine cross-check matched."""
    with open(path) as f:
        report = json.load(f)

    runs = report.get("runs", [])
    checks = report.get("engine_cross_checks", [])
    if not runs:
        print(f"bench_guard: {path} has no runs", file=sys.stderr)
        return 1

    failed = False
    # A run is healthy when its status says so: "ok", "retried" (flaky
    # but recovered), or "skipped-resume" (validated artifact carried
    # over by --resume).  Older reports without a status field fall
    # back to the exit-code check.
    healthy = {"ok", "retried", "skipped-resume"}
    for run in runs:
        name = run.get("name", "?")
        code = run.get("exit_code", -1)
        fp = run.get("fingerprint")
        status = run.get("status")
        bad = (status not in healthy) if status is not None else code != 0
        if bad or not fp:
            print(f"bench_guard: {name} FAILED "
                  f"(status={status}, exit={code}, fingerprint={fp})",
                  file=sys.stderr)
            failed = True
        else:
            print(f"bench_guard: {name} {status or 'ok'} "
                  f"elapsed_ms={run.get('elapsed_us', 0) / 1000:.1f} "
                  f"fingerprint={fp}")
    for check in checks:
        group = check.get("group", "?")
        match = check.get("match", False)
        fps = {r.get("engine", "?"): r.get("fingerprint", "?")
               for r in check.get("runs", [])}
        verdict = "MATCH" if match else "DETERMINISM-REGRESSION"
        print(f"bench_guard: cross-check [{group}] {verdict} {fps}")
        if not match:
            failed = True
    if not report.get("ok", False) and not failed:
        print(f"bench_guard: {path} reports ok=false", file=sys.stderr)
        failed = True
    print(f"bench_guard: sweep {report.get('sweep', '?')}: "
          f"{len(runs)} runs, {len(checks)} cross-checks, "
          f"{'FAIL' if failed else 'OK'}")
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_file")
    ap.add_argument("--mode",
                    choices=["sync", "multicore", "packet", "scale",
                             "sweep", "transport"],
                    default="sync",
                    help="which invariant to check (default sync)")
    ap.add_argument("--racks", type=int, default=4,
                    help="cluster shape to compare (default 4)")
    ap.add_argument("--min-ratio", type=float, default=0.8,
                    help="minimum par:1/threads:1 vs seq throughput "
                         "ratio (default 0.8)")
    ap.add_argument("--max-regression", type=float, default=0.2,
                    help="packet mode: max fractional throughput drop "
                         "vs the previous trajectory entry (default "
                         "0.2)")
    ap.add_argument("--min-nodes-per-gb", type=float, default=4000,
                    help="scale mode: minimum simulated nodes per GB "
                         "of peak RSS (default 4000 = 32k nodes in "
                         "8 GB)")
    ap.add_argument("--min-events-per-sec", type=float, default=5e4,
                    help="scale mode: minimum engine event throughput "
                         "for the 32k run (default 50k)")
    ap.add_argument("--min-sketch-speedup", type=float, default=10.0,
                    help="scale mode: minimum sketch-vs-raw fold "
                         "speedup at equal sample counts (default 10)")
    ap.add_argument("--scale-factor", type=float, default=0.7,
                    help="multicore mode: required speedup per worker "
                         "(floor = factor * workers, default 0.7)")
    ap.add_argument("--fame-json", default=None,
                    help="multicore mode: BENCH_fame.json trajectory "
                         "to enforce the barrier round-trip floor on")
    ap.add_argument("--min-barrier-qps", type=float, default=1e6,
                    help="multicore mode: minimum quanta/s for "
                         "non-oversubscribed multi-worker barrier "
                         "round trips (default 1e6)")
    ap.add_argument("--max-rtt-ns", type=float, default=5e4,
                    help="transport mode: maximum shm ring round-trip "
                         "time in ns (default 50us — catches cliffs, "
                         "not jitter)")
    ap.add_argument("--min-sync-per-sec", type=float, default=5e4,
                    help="transport mode: minimum coupled SYNC "
                         "messages per second (default 5e4)")
    ap.add_argument("--min-pair-ratio", type=float, default=0.5,
                    help="transport mode: minimum two-copy coupled vs "
                         "sequential event-throughput ratio (default "
                         "0.5)")
    opts = ap.parse_args()

    if opts.mode == "multicore":
        return check_multicore(opts.json_file, opts.racks,
                               opts.scale_factor, opts.fame_json,
                               opts.min_barrier_qps)
    if opts.mode == "sweep":
        return check_sweep(opts.json_file)
    if opts.mode == "transport":
        return check_transport(opts.json_file, opts.max_rtt_ns,
                               opts.min_sync_per_sec,
                               opts.min_pair_ratio)
    if opts.mode == "packet":
        return check_packet(opts.json_file, opts.max_regression)
    if opts.mode == "scale":
        return check_scale(opts.json_file, opts.min_nodes_per_gb,
                           opts.min_events_per_sec,
                           opts.min_sketch_speedup)

    with open(opts.json_file) as f:
        data = json.load(f)

    seq = par1 = None
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        if not name.startswith("BM_ClusterIncastSharded/"):
            continue
        args = run_args(name)
        if args.get("racks") != opts.racks:
            continue
        if args.get("par") == 0:
            seq = items_per_second(bench)
        elif args.get("par") == 1 and args.get("threads") == 1:
            par1 = items_per_second(bench)

    if seq is None or par1 is None:
        print(f"bench_guard: missing BM_ClusterIncastSharded rows at "
              f"racks={opts.racks} (seq={seq}, par1={par1}) in "
              f"{opts.json_file}", file=sys.stderr)
        return 1

    ratio = par1 / seq
    verdict = "OK" if ratio >= opts.min_ratio else "REGRESSION"
    print(f"bench_guard: racks={opts.racks} seq={seq:.3e} "
          f"par(threads=1)={par1:.3e} items/s "
          f"ratio={ratio:.3f} (floor {opts.min_ratio}) {verdict}")
    return 0 if ratio >= opts.min_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
