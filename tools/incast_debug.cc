#include <cstdio>
#include <cstdlib>
#include "apps/incast.hh"
#include "core/log.hh"

using namespace diablo;
using namespace diablo::apps;

int main(int argc, char** argv) {
    uint32_t n = argc > 1 ? atoi(argv[1]) : 2;
    uint64_t buf = argc > 2 ? atoll(argv[2]) : 4096;
    uint32_t iters = argc > 3 ? atoi(argv[3]) : 5;
    const char* policy = argc > 4 ? argv[4] : "partitioned";
    bool epoll = argc > 5 && atoi(argv[5]);
    double ghz = argc > 6 ? atof(argv[6]) : 4.0;
    double gbps = argc > 7 ? atof(argv[7]) : 1.0;
    if (getenv("DIABLO_TRACE")) log::setLevel(log::Level::Trace);
    Simulator sim;
    sim::ClusterParams cp = gbps > 5 ? sim::ClusterParams::tengig100ns()
                                     : sim::ClusterParams::gige1us();
    cp.topo.servers_per_rack = n + 1;
    cp.topo.racks_per_array = 1;
    cp.topo.num_arrays = 1;
    cp.cpu.freq_ghz = ghz;
    cp.topo.rack_sw.buffer_per_port_bytes = buf;
    cp.topo.rack_sw.buffer_total_bytes = buf * 16;
    cp.topo.rack_sw.buffer_policy = switchm::bufferPolicyFromString(policy);
    sim::Cluster cluster(sim, cp);
    IncastParams ip;
    ip.block_bytes = 262144;
    ip.iterations = iters;
    ip.use_epoll = epoll;
    std::vector<net::NodeId> servers;
    for (uint32_t i = 1; i <= n; ++i) servers.push_back(i);
    IncastApp app(cluster, ip, 0, servers);
    app.install();
    sim.run();
    auto& r = app.result();
    printf("n=%2u buf=%llu pol=%s iters=%u epoll=%d ghz=%.0f goodput=%8.1f Mbps "
           "rtos=%llu retx=%llu drops=%llu\n",
           n, (unsigned long long)buf, policy, iters, (int)epoll, ghz,
           r.goodputMbps(),
           (unsigned long long)cluster.totalTcpRtos(),
           (unsigned long long)cluster.totalTcpRetransmits(),
           (unsigned long long)cluster.network().totalSwitchDrops());
    auto& tor = cluster.network().rackSwitch(0);
    for (uint32_t i = 0; i <= n; ++i) {
        if (tor.dropsAt(i)) printf("  tor port %u drops=%llu\n", i,
            (unsigned long long)tor.dropsAt(i));
    }
    return 0;
}
