/**
 * @file
 * A one-rack-of-racks memcached deployment: 124 nodes (4 racks x 31
 * servers) running 8 memcached instances with Facebook-ETC-shaped
 * traffic from 116 closed-loop clients — the paper's Figure 7 setup in
 * miniature, with full per-hop latency accounting.
 *
 *   $ ./build/examples/memcached_cluster [udp|tcp] [requests_per_client]
 */

#include <cstdio>
#include <cstring>

#include "apps/mc_experiment.hh"

using namespace diablo;

int
main(int argc, char **argv)
{
    const bool udp = argc > 1 ? std::strcmp(argv[1], "tcp") != 0 : true;
    const uint32_t requests = argc > 2 ? atoi(argv[2]) : 200;

    apps::McExperimentParams p;
    p.cluster = sim::ClusterParams::gige1us();
    p.cluster.topo.servers_per_rack = 31;
    p.cluster.topo.racks_per_array = 4;
    p.cluster.topo.num_arrays = 1;
    p.num_servers = 8;
    p.server.udp = udp;
    p.client.udp = udp;
    p.client.requests = requests;

    Simulator sim;
    apps::McExperiment exp(sim, p);
    exp.run();
    const apps::McExperimentResult &r = exp.result();

    std::printf("memcached over %s: %u servers, %u clients, %llu "
                "requests completed\n", udp ? "UDP" : "TCP", r.servers,
                r.clients,
                static_cast<unsigned long long>(r.requests_completed));
    std::printf("simulated time: %s\n", r.elapsed.str().c_str());

    const char *names[3] = {"local ", "1-hop ", "2-hop "};
    for (int h = 0; h < 3; ++h) {
        const SampleSet &s = r.latency_us_by_hop[h];
        if (s.empty()) {
            continue;
        }
        std::printf("%s n=%-7zu p50=%6.1f us  p99=%7.1f us  max=%8.1f "
                    "us\n", names[h], s.count(), s.percentile(50),
                    s.percentile(99), s.max());
    }
    std::printf("overall n=%-7zu p50=%6.1f us  p99=%7.1f us  p99.9=%7.1f "
                "us\n", r.latency_us.count(),
                r.latency_us.percentile(50), r.latency_us.percentile(99),
                r.latency_us.percentile(99.9));
    if (udp) {
        std::printf("UDP retries: %llu, lost after retries: %llu\n",
                    static_cast<unsigned long long>(r.udp_retries),
                    static_cast<unsigned long long>(r.udp_timeouts));
    }

    // Per-server CPU utilization: the paper keeps servers under 50%.
    double max_util = 0;
    for (net::NodeId s : exp.serverNodes()) {
        max_util = std::max(max_util,
                            exp.cluster().kernel(s).cpu().utilization());
    }
    std::printf("busiest memcached server CPU utilization: %.1f%%\n",
                100 * max_util);
    return 0;
}
