/**
 * @file
 * The FAME-7 host-multithreading story in one runnable page.
 *
 * Loads the same dSPARC program (an iterative Fibonacci that walks
 * target memory) into 1, 8 and 32 hardware-thread contexts of one host
 * pipeline and shows how multithreading converts host-DRAM stall slots
 * into useful target work — the mechanism behind RAMP Gold's (and
 * DIABLO's) simulation throughput.
 *
 *   $ ./build/examples/dsparc_pipeline
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "isa/pipeline.hh"

using namespace diablo;
using namespace diablo::isa;

int
main()
{
    const char *program = R"(
        # fib(20) via memory, then print it
        addi r1, r0, 0
        addi r2, r0, 1
        st   r1, 0(r0)
        st   r2, 4(r0)
        addi r5, r0, 2
        addi r6, r0, 21
    loop:
        slli r7, r5, 2
        ld   r8, -8(r7)
        ld   r9, -4(r7)
        add  r10, r8, r9
        st   r10, 0(r7)
        addi r5, r5, 1
        blt  r5, r6, loop
        addi r7, r0, 80
        ld   r2, 0(r7)     # fib(20)
        addi r1, r0, 2     # putint service
        ecall
        addi r1, r0, 10    # exit
        addi r2, r0, 0
        ecall
    )";

    TimingModel timing;        // fixed CPI = 1 per class
    PipelineParams host;
    host.host_mem_stall_cycles = 16; // host DRAM latency to hide

    std::printf("dSPARC FAME-7 pipeline: same program, growing thread "
                "count\n\n");
    std::printf("%8s %12s %14s %12s %16s\n", "threads", "host cycles",
                "target instrs", "utilization", "instrs/host-cyc");
    for (uint32_t threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
        HostPipeline pipe(threads, 256, timing, host);
        for (uint32_t t = 0; t < threads; ++t) {
            pipe.load(t, assemble(program));
        }
        pipe.runToCompletion();
        std::printf("%8u %12llu %14llu %11.0f%% %16.2f\n", threads,
                    static_cast<unsigned long long>(pipe.hostCycles()),
                    static_cast<unsigned long long>(
                        pipe.instructionsRetired()),
                    100 * pipe.utilization(),
                    static_cast<double>(pipe.instructionsRetired()) /
                        static_cast<double>(pipe.hostCycles()));
    }

    // Show the functional result is what it should be.
    HostPipeline check(1, 256, timing, host);
    check.load(0, assemble(program));
    check.runToCompletion();
    std::printf("\nprogram console output (fib(20)): %s\n",
                check.state(0).console.c_str());
    std::printf("\nThe single-thread pipeline idles during host-DRAM "
                "stalls; at 32 threads\nevery stall slot is filled with "
                "another target's instruction — DIABLO's\nhost-"
                "multithreading (paper SS3.1) and the basis of its "
                "simulation rate.\n");
    return 0;
}
