/**
 * @file
 * Design-space exploration — the reason DIABLO exists: every switch
 * parameter is runtime-configurable, so radical designs can be compared
 * under identical full-stack workloads without re-synthesis.
 *
 * This example sweeps a 2x2x2 design space for the ToR switch under a
 * mixed workload (a latency-sensitive UDP echo sharing the rack with a
 * TCP bulk transfer):
 *   - packet switch (VOQ) vs virtual-circuit switch philosophy is
 *     explored in the latency numbers (cut-through vs store-and-forward
 *     stands in for the fabric-latency axis);
 *   - per-port partitioned vs shared-dynamic buffering;
 *   - shallow vs deep packet memory.
 *
 *   $ ./build/examples/switch_design_space
 */

#include <cstdio>

#include "apps/incast.hh"
#include "sim/cluster.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

struct Outcome {
    double echo_p99_us;
    double bulk_mbps;
    uint64_t drops;
};

Task<>
echoServer(os::Kernel &k)
{
    os::Thread &t = k.createThread("echo");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 9);
    while (true) {
        os::RecvedMessage m;
        long n = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
        if (n < 0) {
            co_return;
        }
        co_await k.sysSendTo(t, static_cast<int>(fd), m.from, m.from_port,
                             static_cast<uint64_t>(n), nullptr);
    }
}

Task<>
echoClient(os::Kernel &k, net::NodeId dst, SampleSet &rtt, bool &done)
{
    os::Thread &t = k.createThread("echo-cli");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    for (int i = 0; i < 400; ++i) {
        const SimTime start = k.sim().now();
        co_await k.sysSendTo(t, static_cast<int>(fd), dst, 9, 128,
                             nullptr);
        os::RecvedMessage m;
        long n = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m,
                                        50_ms);
        if (n > 0) {
            rtt.record((k.sim().now() - start).asMicros());
        }
        co_await k.sim().sleep(200_us);
    }
    done = true;
}

Outcome
evaluate(bool cut_through, bool shared, uint64_t buffer_bytes)
{
    Simulator sim;
    sim::ClusterParams cp = sim::ClusterParams::gige1us();
    cp.topo.servers_per_rack = 8;
    cp.topo.racks_per_array = 1;
    cp.topo.num_arrays = 1;
    cp.topo.rack_sw.cut_through = cut_through;
    cp.topo.rack_sw.buffer_policy =
        shared ? switchm::BufferPolicy::SharedDynamic
               : switchm::BufferPolicy::Partitioned;
    cp.topo.rack_sw.buffer_per_port_bytes = buffer_bytes;
    cp.topo.rack_sw.buffer_total_bytes = buffer_bytes * 8;
    sim::Cluster cluster(sim, cp);

    // Latency-sensitive pair: nodes 0 <-> 1.
    SampleSet rtt;
    bool echo_done = false;
    cluster.kernel(1).spawnProcess(echoServer(cluster.kernel(1)));
    cluster.kernel(0).spawnProcess(
        echoClient(cluster.kernel(0), 1, rtt, echo_done));

    // Bulk incast traffic: nodes 3..7 blast node 2.
    apps::IncastParams ip;
    ip.iterations = 8;
    apps::IncastApp bulk(cluster, ip, 2, {3, 4, 5, 6, 7});
    bulk.install();

    sim.run();
    return Outcome{rtt.percentile(99), bulk.result().goodputMbps(),
                   cluster.network().totalSwitchDrops()};
}

} // namespace

int
main()
{
    std::printf("ToR design sweep under a mixed rack workload (UDP echo "
                "+ 5-way incast):\n\n");
    std::printf("%-14s %-16s %-10s | %12s %12s %8s\n", "forwarding",
                "buffer policy", "bytes/port", "echo p99 us",
                "bulk Mbps", "drops");
    for (bool ct : {true, false}) {
        for (bool shared : {false, true}) {
            for (uint64_t bytes : {4096ULL, 65536ULL}) {
                Outcome o = evaluate(ct, shared, bytes);
                std::printf("%-14s %-16s %-10llu | %12.1f %12.1f %8llu\n",
                            ct ? "cut-through" : "store-forward",
                            shared ? "shared-dynamic" : "partitioned",
                            static_cast<unsigned long long>(bytes),
                            o.echo_p99_us, o.bulk_mbps,
                            static_cast<unsigned long long>(o.drops));
            }
        }
    }
    std::printf(
        "\nReadings: the echo flow's tail is protected from the bulk "
        "traffic by the\nVOQ switch's input-side buffering regardless "
        "of policy; buffer depth decides\nwhether the incast collapses; "
        "shared-dynamic pools help at small sizes but\ntheir thresholds "
        "cap a single hot input below a deep private partition;\n"
        "cut-through shaves the store-and-forward serialization from "
        "every hop\n(visible in the echo p99).\n");
    return 0;
}
