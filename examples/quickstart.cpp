/**
 * @file
 * Quickstart: build a tiny simulated WSC array, run a UDP ping-pong
 * application on two servers in different racks, and read out latency
 * and switch statistics.
 *
 *   $ ./build/examples/quickstart
 *
 * This walks through the complete public API surface:
 *   1. describe the cluster (topology + CPU + kernel + NIC parameters);
 *   2. instantiate it against a Simulator;
 *   3. write application logic as coroutines over the syscall API;
 *   4. run and inspect statistics.
 */

#include <cstdio>

#include "sim/cluster.hh"

using namespace diablo;
using namespace diablo::time_literals;

namespace {

struct PingStats {
    int rounds = 0;
    SampleSet rtt_us;
};

/// The server: bind a UDP socket and echo datagrams back, forever.
Task<>
echoServer(os::Kernel &k)
{
    os::Thread &t = k.createThread("echo-server");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    co_await k.sysBind(t, static_cast<int>(fd), 7777);
    while (true) {
        os::RecvedMessage m;
        long n = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m);
        if (n < 0) {
            co_return;
        }
        // A little application work per request: 2000 instructions on
        // the fixed-CPI core.
        co_await t.compute(2000);
        co_await k.sysSendTo(t, static_cast<int>(fd), m.from, m.from_port,
                             static_cast<uint64_t>(n), nullptr);
    }
}

/// The client: 100 request/response rounds of 512 bytes each.
Task<>
pingClient(os::Kernel &k, net::NodeId server, PingStats &stats)
{
    os::Thread &t = k.createThread("ping-client");
    long fd = co_await k.sysSocket(t, net::Proto::Udp);
    for (int i = 0; i < 100; ++i) {
        const SimTime start = k.sim().now();
        co_await k.sysSendTo(t, static_cast<int>(fd), server, 7777, 512,
                             nullptr);
        os::RecvedMessage m;
        long n = co_await k.sysRecvFrom(t, static_cast<int>(fd), &m,
                                        100_ms);
        if (n > 0) {
            stats.rtt_us.record((k.sim().now() - start).asMicros());
            ++stats.rounds;
        }
    }
}

} // namespace

int
main()
{
    // 1. Describe the target system: two racks of four servers behind
    //    1 Gbps ToR switches and one array switch, 4 GHz fixed-CPI
    //    cores running the Linux 2.6.39.3 kernel profile.
    sim::ClusterParams params = sim::ClusterParams::gige1us();
    params.topo.servers_per_rack = 4;
    params.topo.racks_per_array = 2;
    params.topo.num_arrays = 1;
    params.cpu.freq_ghz = 4.0;

    // 2. Instantiate.
    Simulator sim;
    sim::Cluster cluster(sim, params);
    std::printf("built a %u-node cluster: %zu rack switches, %zu array "
                "switches\n", cluster.size(),
                cluster.network().numRackSwitches(),
                cluster.network().numArraySwitches());

    // 3. Install applications: server on node 7 (rack 1), client on
    //    node 0 (rack 0) — a cross-rack (1-hop) path.
    PingStats stats;
    cluster.kernel(7).spawnProcess(echoServer(cluster.kernel(7)));
    cluster.kernel(0).spawnProcess(pingClient(cluster.kernel(0), 7,
                                              stats));

    // 4. Run to completion and inspect.
    sim.run();

    std::printf("completed %d ping-pong rounds\n", stats.rounds);
    std::printf("RTT: min %.1f us, median %.1f us, p99 %.1f us\n",
                stats.rtt_us.min(), stats.rtt_us.percentile(50),
                stats.rtt_us.percentile(99));
    std::printf("hop class 0 -> 7: %s\n",
                topo::hopClassName(cluster.network().hopClass(0, 7)));
    std::printf("simulated time: %s, events executed: %llu\n",
                sim.now().str().c_str(),
                static_cast<unsigned long long>(sim.executedEvents()));
    std::printf("array switch forwarded %llu packets, dropped %llu\n",
                static_cast<unsigned long long>(
                    cluster.network().arraySwitch(0).stats()
                        .forwarded_pkts),
                static_cast<unsigned long long>(
                    cluster.network().arraySwitch(0).stats()
                        .dropped_pkts));
    return 0;
}
