/**
 * @file
 * TCP Incast demo: watch application-level throughput collapse as the
 * number of synchronized senders grows past what a shallow-buffered
 * switch can absorb — and see exactly why, from the simulator's
 * instrumentation (drops, retransmissions, RTO events).
 *
 *   $ ./build/examples/incast_demo [max_servers] [buffer_bytes]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/incast.hh"

using namespace diablo;

int
main(int argc, char **argv)
{
    const uint32_t max_servers = argc > 1 ? atoi(argv[1]) : 16;
    const uint64_t buffer = argc > 2 ? atoll(argv[2]) : 4096;

    std::printf("TCP Incast: 256 KB blocks from N servers to 1 client "
                "through a 1 Gbps\nToR switch with %llu-byte per-port "
                "buffers.\n\n",
                static_cast<unsigned long long>(buffer));
    std::printf("%8s %14s %10s %8s %12s %14s\n", "servers",
                "goodput Mbps", "drops", "RTOs", "retransmits",
                "worst iter ms");

    for (uint32_t n = 1; n <= max_servers; n *= 2) {
        Simulator sim;
        sim::ClusterParams cp = sim::ClusterParams::gige1us();
        cp.topo.servers_per_rack = n + 1;
        cp.topo.racks_per_array = 1;
        cp.topo.num_arrays = 1;
        cp.topo.rack_sw.buffer_per_port_bytes = buffer;
        sim::Cluster cluster(sim, cp);

        apps::IncastParams ip;
        ip.iterations = 10;
        std::vector<net::NodeId> servers;
        for (uint32_t i = 1; i <= n; ++i) {
            servers.push_back(i);
        }
        apps::IncastApp app(cluster, ip, 0, servers);
        app.install();
        sim.run();

        const apps::IncastResult &r = app.result();
        std::printf("%8u %14.1f %10llu %8llu %12llu %14.1f\n", n,
                    r.goodputMbps(),
                    static_cast<unsigned long long>(
                        cluster.network().totalSwitchDrops()),
                    static_cast<unsigned long long>(
                        cluster.totalTcpRtos()),
                    static_cast<unsigned long long>(
                        cluster.totalTcpRetransmits()),
                    r.iteration_us.max() / 1000.0);
    }

    std::printf(
        "\nWhat to look for: once the synchronized responses overflow "
        "the per-port\nbuffer, block tails are lost whole, fast "
        "retransmit has no duplicate ACKs\nto work with, and every "
        "recovery waits out TCP's 200 ms minimum RTO — the\nclassic "
        "incast throughput collapse (paper SS4.1).  Re-run with a "
        "deeper\nbuffer (e.g. 65536) to watch the collapse point move "
        "out.\n");
    return 0;
}
